"""Equivalence harness: the columnar batch path vs the scalar event loop.

The batched serving path (``AdvisorSession.submit_batch``,
``AdvisorService.process_batch``/``ingest_lines``, ``serve --batch N``)
promises to be an *optimization only*: for any event stream and any
batch-boundary split, the decisions returned, the session state digest
(which pins the estimator, the drift detectors, the health ladder, the
bounded histories AND the RNG stream), the ingestion counters, and the
emitted ledger events are bit-identical to feeding the same stream
through the per-event scalar loop — including recovery after a kill
mid-group-commit.

Layers:

* Hypothesis property at the session level: adversarial streams
  (duplicates, stale timestamps, NaN/negative values, drift-inducing
  regime shifts) under ANY chunking == the scalar loop, event for
  event;
* Hypothesis property at the service level: multi-vehicle interleaved
  streams with malformed records mixed in;
* Hypothesis recovery property: abandon a durable batched session at
  any split (optionally tearing the WAL group-commit at any byte),
  recover, redeliver everything — digest equals the uninterrupted
  scalar reference;
* deterministic pins: ``--batch 1`` equals the default loop, strict
  policy still raises, ledger transition parity, and a real-SIGKILL
  chaos cycle in batch mode (marked ``slow``).
"""

import json
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.ledger import RunLedger, use_ledger
from repro.errors import DataValidationError
from repro.service import AdvisorService, AdvisorSession, SessionConfig
from repro.service.batch import ColumnarRun, MalformedEvent, plan_chunk
from repro.service.soak import build_fleet_events, run_chaos, run_stream

B = 28.0

#: Aggressive knobs: tiny warmups and low drift thresholds so short
#: Hypothesis streams routinely cross HEALTHY -> DEGRADED -> SAFE and
#: back, play every vertex, and trigger mid-batch alarm cuts.
CONFIG = SessionConfig(
    break_even=B,
    min_samples=3,
    dedup_window=512,
    snapshot_every=4,
    length_threshold=6.0,
    split_threshold=6.0,
    drift_min_count=4,
    recover_after=8,
    safe_recover_after=16,
    seed=77,
)


def _scalar_reference(events):
    """Uninterrupted scalar run: decisions + digest + counters."""
    session = AdvisorSession("v1", CONFIG)
    decisions = [session.submit(*event) for event in events]
    return decisions, session


def _chunked(items, sizes):
    """Split ``items`` into chunks whose sizes cycle through ``sizes``."""
    chunks = []
    position = 0
    index = 0
    while position < len(items):
        size = sizes[index % len(sizes)]
        chunks.append(items[position : position + size])
        position += size
        index += 1
    return chunks


@st.composite
def adversarial_stream(draw):
    """Events exercising every admission path and both drift regimes."""
    n = draw(st.integers(min_value=5, max_value=60))
    events = []
    clock = 0.0
    for index in range(n):
        kind = draw(
            st.sampled_from(
                ["ok", "ok", "ok", "ok", "ok", "dup", "stale", "nan", "neg"]
            )
        )
        # Two regimes, switched mid-stream, so the Page-Hinkley tests
        # actually alarm inside batches.
        regime_high = index >= n // 2 and draw(st.booleans())
        value = draw(
            st.floats(min_value=200.0, max_value=900.0)
            if regime_high
            else st.floats(min_value=0.0, max_value=20.0)
        )
        if kind == "dup" and events:
            events.append(events[draw(st.integers(0, len(events) - 1))])
            continue
        clock += 1.0
        if kind == "stale":
            events.append((f"s-{index:03d}", clock - 5.0, value))
        elif kind == "nan":
            events.append((f"n-{index:03d}", clock, float("nan")))
        elif kind == "neg":
            events.append((f"g-{index:03d}", clock, -abs(value) - 0.5))
        else:
            events.append((f"e-{index:03d}", clock, value))
    sizes = draw(
        st.lists(st.integers(min_value=1, max_value=17), min_size=1, max_size=5)
    )
    return events, sizes


@given(adversarial_stream())
@settings(max_examples=60, deadline=None)
def test_submit_batch_any_split_bit_identical(case):
    """For ANY stream and ANY chunking, submit_batch == scalar submit."""
    events, sizes = case
    scalar_decisions, scalar = _scalar_reference(events)
    batched = AdvisorSession("v1", CONFIG)
    batched_decisions = []
    for chunk in _chunked(events, sizes):
        batched_decisions.extend(
            batched.submit_batch(
                [event[0] for event in chunk],
                [event[1] for event in chunk],
                [event[2] for event in chunk],
            )
        )
    assert batched_decisions == scalar_decisions
    assert batched.state_digest() == scalar.state_digest()
    assert (batched.duplicates, batched.rejected) == (
        scalar.duplicates,
        scalar.rejected,
    )


@st.composite
def fleet_stream(draw):
    """Interleaved multi-vehicle JSON records with malformed ones mixed in."""
    n = draw(st.integers(min_value=5, max_value=50))
    records = []
    clocks = {"veh-a": 0.0, "veh-b": 0.0}
    for index in range(n):
        vehicle = draw(st.sampled_from(["veh-a", "veh-b"]))
        kind = draw(
            st.sampled_from(["ok", "ok", "ok", "ok", "missing", "badnum", "loose"])
        )
        if kind == "missing":
            records.append({"vehicle": vehicle, "t": index})
            continue
        if kind == "loose":
            records.append({"stop": 5.0})
            continue
        clocks[vehicle] += 1.0
        value = draw(st.floats(min_value=0.0, max_value=400.0))
        record = {
            "id": f"{vehicle}-{index:03d}",
            "vehicle": vehicle,
            "t": clocks[vehicle],
            "stop": "oops" if kind == "badnum" else value,
        }
        records.append(record)
    sizes = draw(
        st.lists(st.integers(min_value=1, max_value=13), min_size=1, max_size=4)
    )
    return records, sizes


@given(fleet_stream())
@settings(max_examples=40, deadline=None)
def test_service_batch_any_split_bit_identical(case):
    """Multi-vehicle chunks == per-event processing, malformed included."""
    records, sizes = case
    with tempfile.TemporaryDirectory() as tmp:
        scalar = AdvisorService(Path(tmp) / "scalar", CONFIG, policy="repair")
        scalar_decisions = [scalar.process(record) for record in records]
        scalar.close()
        scalar_snapshot = scalar.health_snapshot()

        batched = AdvisorService(Path(tmp) / "batched", CONFIG, policy="repair")
        batched_decisions = []
        for chunk in _chunked(records, sizes):
            batched_decisions.extend(batched.process_batch(chunk))
        batched.close()
        batched_snapshot = batched.health_snapshot()

    assert batched_decisions == scalar_decisions
    assert batched_snapshot["vehicles"] == scalar_snapshot["vehicles"]
    assert batched_snapshot["fleet_cost"] == scalar_snapshot["fleet_cost"]
    assert batched_snapshot["states"] == scalar_snapshot["states"]
    scalar_ingest = dict(scalar_snapshot["ingest"])
    batched_ingest = dict(batched_snapshot["ingest"])
    scalar_ingest.pop("batch")
    batched_ingest.pop("batch")
    assert batched_ingest == scalar_ingest
    # The validation report records the same findings (row order within
    # a chunk may interleave differently across vehicles).
    assert sorted(
        (issue.check, issue.message) for issue in batched.report.issues
    ) == sorted((issue.check, issue.message) for issue in scalar.report.issues)


@st.composite
def durable_case(draw):
    n = draw(st.integers(min_value=4, max_value=40))
    rng_seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = np.random.default_rng(rng_seed)
    lengths = rng.lognormal(3.0, 1.2, n)
    events = [
        (f"e-{index:04d}", float(index), float(length))
        for index, length in enumerate(lengths)
    ]
    split = draw(st.integers(min_value=0, max_value=n))
    chunk = draw(st.integers(min_value=1, max_value=16))
    tear = draw(st.booleans())
    return events, split, chunk, tear


@given(durable_case())
@settings(max_examples=40, deadline=None)
def test_batched_recovery_any_split_any_tear(case):
    """Abandon a durable batched run anywhere — optionally tearing the
    last WAL group-commit at an arbitrary byte — then recover and
    redeliver the full stream in batches: bit-identical to the scalar
    uninterrupted reference.  Exercises delta snapshots throughout
    (snapshot_every=4 compacts on nearly every batch)."""
    events, split, chunk, tear = case
    _, reference = _scalar_reference(events)
    expected = reference.state_digest()
    with tempfile.TemporaryDirectory() as tmp:
        state_dir = Path(tmp) / "v1"
        first = AdvisorSession("v1", CONFIG, state_dir)
        head = events[:split]
        for piece in _chunked(head, [chunk]) if head else []:
            first.submit_batch(
                [event[0] for event in piece],
                [event[1] for event in piece],
                [event[2] for event in piece],
            )
        del first
        if tear:
            wal_path = state_dir / "wal.jsonl"
            if wal_path.exists():
                payload = wal_path.read_bytes()
                if payload:
                    cut = split % (len(payload) + 1)
                    wal_path.write_bytes(payload[:cut])
        recovered = AdvisorSession("v1", CONFIG, state_dir)
        for piece in _chunked(events, [chunk]):
            recovered.submit_batch(
                [event[0] for event in piece],
                [event[1] for event in piece],
                [event[2] for event in piece],
            )
        assert recovered.state_digest() == expected


def test_batch_of_one_equals_scalar():
    """submit_batch with singleton batches IS the scalar loop."""
    events = [(f"e-{i:03d}", float(i), float((i * 37) % 200)) for i in range(25)]
    scalar_decisions, scalar = _scalar_reference(events)
    batched = AdvisorSession("v1", CONFIG)
    decisions = []
    for event_id, timestamp, stop_length in events:
        decisions.extend(batched.submit_batch([event_id], [timestamp], [stop_length]))
    assert decisions == scalar_decisions
    assert batched.state_digest() == scalar.state_digest()


def test_strict_policy_still_raises_in_batch_mode(tmp_path):
    service = AdvisorService(tmp_path, CONFIG, policy="strict")
    with pytest.raises(DataValidationError):
        service.process_batch([{"vehicle": "veh-a", "t": 1}])
    service = AdvisorService(tmp_path / "b", CONFIG, policy="strict")
    with pytest.raises(DataValidationError):
        service.ingest_lines(["{not json"])


def test_ledger_transitions_parity(tmp_path):
    """Per-vehicle advisor-state ledger events match the scalar run's."""
    events = build_fleet_events(vehicles=2, stops_per_vehicle=60, seed=13)
    lines = [json.dumps(event) for event in events]

    def _run(tag, batch):
        ledger_path = tmp_path / f"{tag}.jsonl"
        service = AdvisorService(tmp_path / tag, CONFIG, policy="repair")
        with use_ledger(RunLedger(ledger_path)):
            if batch == 1:
                for line in lines:
                    service.ingest_line(line)
            else:
                for offset in range(0, len(lines), batch):
                    service.ingest_lines(lines[offset : offset + batch])
        service.close()
        records = [
            json.loads(line)
            for line in ledger_path.read_text().splitlines()
            if line
        ]
        by_vehicle = {}
        for record in records:
            if record.get("event") == "advisor-state":
                key = record["vehicle"]
                by_vehicle.setdefault(key, []).append(
                    {
                        field: record[field]
                        for field in ("from", "to", "reason", "applied")
                    }
                )
        return by_vehicle, service

    scalar_transitions, scalar = _run("scalar", 1)
    batched_transitions, batched = _run("batched", 7)
    assert scalar_transitions, "stream should provoke at least one transition"
    assert batched_transitions == scalar_transitions
    assert {
        v: s.state_digest() for v, s in batched.sessions.items()
    } == {v: s.state_digest() for v, s in scalar.sessions.items()}


def test_plan_chunk_orders_and_splits_runs():
    """Malformed records split their vehicle's run; order is by first index."""
    records = [
        {"id": "a-1", "vehicle": "a", "t": 1, "stop": 5.0},
        {"id": "b-1", "vehicle": "b", "t": 1, "stop": 5.0},
        {"vehicle": "a", "t": 2},  # malformed, attributed to a
        {"id": "a-2", "vehicle": "a", "t": 3, "stop": 6.0},
        {"stop": 1.0},  # malformed, unattributable
        {"id": "b-2", "vehicle": "b", "t": 2, "stop": 7.0},
    ]
    plan = plan_chunk(records)
    kinds = [
        (item.vehicle, len(item))
        if isinstance(item, ColumnarRun)
        else ("malformed", item.index)
        for item in plan.items
    ]
    assert plan.size == 6
    assert kinds == [
        ("a", 1),  # a's first run, split by the malformed record at 2
        ("b", 2),  # b's events 1 and 5 coalesce into one run
        ("malformed", 2),
        ("a", 1),  # a's second run
        ("malformed", 4),
    ]
    run_b = plan.items[1]
    assert list(run_b.indices) == [1, 5]
    assert run_b.timestamps.tolist() == [1.0, 2.0]
    assert run_b.stop_lengths.tolist() == [5.0, 7.0]


@pytest.mark.slow
def test_sigkill_chaos_in_batch_mode(tmp_path):
    """Real SIGKILLs mid-group-commit: batched chaos == scalar clean."""
    events = build_fleet_events(vehicles=3, stops_per_vehicle=30, seed=21)
    config = SessionConfig(
        break_even=B, dedup_window=1024, snapshot_every=8, seed=21
    )
    clean = run_stream(events, tmp_path / "clean", config)
    batched_clean = run_stream(events, tmp_path / "clean-batch", config, batch=8)
    assert batched_clean["digests"] == clean["digests"]
    assert batched_clean["fleet_cost"] == clean["fleet_cost"]
    chaos, restarts = run_chaos(
        events, tmp_path / "chaos", config, [17, 44], batch=8
    )
    assert restarts >= 2
    assert chaos["digests"] == clean["digests"]
    assert chaos["fleet_cost"] == clean["fleet_cost"]
