"""Smoke tests for the benchmark suite's ``emit`` helper.

``emit`` is what writes the committed ``results/`` artifacts, so it must
create the output directory (including missing parents, e.g. on a fresh
clone with ``results/`` absent), write every table as CSV, and keep the
stored report text free of run-dependent wall times.
"""

import csv

from benchmarks import conftest as bench_conftest
from benchmarks.conftest import emit
from repro.engine import StageTiming
from repro.experiments.report import ExperimentResult, Table


def _sample_result() -> ExperimentResult:
    return ExperimentResult(
        experiment_id="smoke",
        title="emit round-trip smoke",
        tables=[
            Table(
                name="values",
                headers=("name", "value"),
                rows=[("alpha", 1.5), ("beta", 2)],
            )
        ],
        notes=["one note"],
        timings=[StageTiming(stage="total", seconds=0.123, tasks=2)],
    )


def test_emit_round_trips_csv_and_report(tmp_path):
    result = _sample_result()
    emit(result, tmp_path)

    csv_path = tmp_path / "smoke_values.csv"
    with csv_path.open() as handle:
        rows = list(csv.reader(handle))
    assert rows[0] == list(result.tables[0].headers)
    assert rows[1:] == [["alpha", "1.5"], ["beta", "2"]]

    report = (tmp_path / "smoke_report.txt").read_text()
    assert "emit round-trip smoke" in report
    assert "alpha" in report and "one note" in report
    # Stored reports stay byte-stable across machines: no wall times.
    assert "timings" not in report
    # ... but the interactive report (CLI) does show them.
    assert "timings" in result.to_ascii()


def test_results_dir_fixture_creates_missing_parents(tmp_path, monkeypatch):
    target = tmp_path / "deep" / "nested" / "results"
    monkeypatch.setattr(bench_conftest, "RESULTS_DIR", target)
    created = bench_conftest.results_dir.__wrapped__()
    assert created == target
    assert target.is_dir()
