"""Property tests for the parallel engine (ParallelMap + seed fan-out).

Workers must behave like ``[fn(x) for x in items]`` in every observable
way — ordering, exceptions — and the seed fan-out must never hand two
tasks the same random stream.  Process-backed examples are capped at a
handful of Hypothesis examples because each one forks a pool.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    ParallelMap,
    ParallelTaskError,
    get_default_jobs,
    parallel_map,
    spawn_rngs,
    spawn_seeds,
)
from repro.engine.parallel import JOBS_ENV_VAR
from repro.errors import InvalidParameterError


def _square(x: int) -> int:
    return x * x


def _explode_on_negative(x: int) -> int:
    if x < 0:
        raise ValueError(f"poison value {x}")
    return x


class TestOrderPreservation:
    @given(items=st.lists(st.integers(min_value=-10**6, max_value=10**6)))
    def test_serial_matches_comprehension(self, items):
        assert ParallelMap(1).map(_square, items) == [_square(x) for x in items]

    @settings(max_examples=8, deadline=None)
    @given(
        items=st.lists(
            st.integers(min_value=-10**6, max_value=10**6), min_size=2, max_size=12
        ),
        jobs=st.sampled_from([2, 3, 4]),
    )
    def test_process_backend_matches_comprehension(self, items, jobs):
        assert ParallelMap(jobs).map(_square, items) == [_square(x) for x in items]

    def test_backend_selection(self):
        assert ParallelMap(1).backend == "serial"
        assert ParallelMap(4).backend == "process"


class TestExceptionPropagation:
    @settings(max_examples=6, deadline=None)
    @given(
        prefix=st.lists(st.integers(min_value=0, max_value=100), max_size=4),
        suffix=st.lists(st.integers(min_value=0, max_value=100), max_size=4),
    )
    def test_original_exception_and_traceback_surface(self, prefix, suffix):
        # The trailing healthy item keeps len(items) >= 2, which forces
        # the process backend (single-task lists short-circuit to serial).
        items = [*prefix, -1, *suffix, 7]
        with pytest.raises(ValueError, match="poison value -1") as excinfo:
            parallel_map(_explode_on_negative, items, jobs=2)
        cause = excinfo.value.__cause__
        assert isinstance(cause, ParallelTaskError)
        assert cause.task_index == len(prefix)
        # The worker's traceback (with the raising frame) rides along.
        assert "_explode_on_negative" in cause.traceback_text

    def test_serial_path_raises_plainly(self):
        with pytest.raises(ValueError, match="poison value"):
            parallel_map(_explode_on_negative, [1, -5], jobs=1)


class TestSeedFanOut:
    @given(
        seed=st.integers(min_value=0, max_value=2**63 - 1),
        count=st.integers(min_value=1, max_value=64),
    )
    def test_children_never_collide(self, seed, count):
        children = spawn_seeds(seed, count)
        states = {tuple(child.generate_state(4)) for child in children}
        assert len(states) == count

    @given(
        seed=st.integers(min_value=0, max_value=2**63 - 1),
        count=st.integers(min_value=1, max_value=16),
    )
    def test_fan_out_is_deterministic(self, seed, count):
        first = [rng.random() for rng in spawn_rngs(seed, count)]
        second = [rng.random() for rng in spawn_rngs(seed, count)]
        assert first == second

    @given(seed=st.integers(min_value=0, max_value=2**63 - 1))
    def test_rng_streams_differ_between_children(self, seed):
        a, b = spawn_rngs(seed, 2)
        assert a.random() != b.random()

    def test_generator_root_is_consumed_not_copied(self):
        # Spawning from a Generator advances its spawn state, so two
        # fan-outs from the same generator must not repeat streams.
        root = np.random.default_rng(0)
        first = [rng.random() for rng in spawn_rngs(root, 2)]
        second = [rng.random() for rng in spawn_rngs(root, 2)]
        assert first != second


class TestJobsResolution:
    def test_env_var_sets_default(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "3")
        assert get_default_jobs() == 3

    def test_unset_defaults_to_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
        assert get_default_jobs() == 1

    @pytest.mark.parametrize("value", ["0", "-2", "two"])
    def test_invalid_env_value_rejected(self, monkeypatch, value):
        monkeypatch.setenv(JOBS_ENV_VAR, value)
        with pytest.raises(InvalidParameterError):
            get_default_jobs()

    def test_invalid_jobs_rejected(self):
        with pytest.raises(InvalidParameterError):
            ParallelMap(0)
