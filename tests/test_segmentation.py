"""Unit tests for trip segmentation from raw speed logs."""

import numpy as np
import pytest

from repro.errors import TraceFormatError
from repro.traces import SpeedTrace, segment_trips, trace_from_daily_log


def log(*segments, dt=1.0, start=0.0):
    """Build a speed trace from (speed, seconds) pairs."""
    speeds = np.concatenate([np.full(int(n), v, dtype=float) for v, n in segments])
    return SpeedTrace(start_time=start, dt=dt, speeds=speeds)


class TestSegmentTrips:
    def test_single_trip(self):
        trace = log((10.0, 120))
        trips = segment_trips(trace)
        assert len(trips) == 1
        assert trips[0].duration == pytest.approx(120.0)

    def test_parking_splits_trips(self):
        trace = log((10.0, 120), (0.0, 600), (10.0, 120))
        trips = segment_trips(trace, ignition_off_gap=300.0)
        assert len(trips) == 2
        assert trips[1].start_time == pytest.approx(720.0)

    def test_short_stop_does_not_split(self):
        trace = log((10.0, 120), (0.0, 60), (10.0, 120))
        trips = segment_trips(trace, ignition_off_gap=300.0)
        assert len(trips) == 1
        # The 60 s stop belongs to the trip's stop list.
        assert len(trips[0].stops) == 1
        assert trips[0].stops[0].duration == pytest.approx(60.0)

    def test_parking_time_excluded_from_trips(self):
        trace = log((10.0, 120), (0.0, 600), (10.0, 120))
        trips = segment_trips(trace, ignition_off_gap=300.0)
        total = sum(trip.duration for trip in trips)
        assert total == pytest.approx(240.0, abs=2.0)

    def test_jitter_trips_discarded(self):
        trace = log((10.0, 10), (0.0, 600), (10.0, 120))
        trips = segment_trips(trace, min_trip_duration=30.0)
        assert len(trips) == 1
        assert trips[0].duration == pytest.approx(120.0)

    def test_all_parked_returns_empty(self):
        assert segment_trips(log((0.0, 500))) == []

    def test_invalid_parameters_rejected(self):
        trace = log((10.0, 60))
        with pytest.raises(TraceFormatError):
            segment_trips(trace, ignition_off_gap=0.0)
        with pytest.raises(TraceFormatError):
            segment_trips(trace, min_trip_duration=-1.0)


class TestTraceFromDailyLog:
    def test_end_to_end(self):
        trace = log(
            (10.0, 300), (0.0, 45), (10.0, 300),   # trip 1 with a 45 s stop
            (0.0, 1200),                            # parking
            (10.0, 200), (0.0, 20), (10.0, 100),   # trip 2 with a 20 s stop
        )
        driving = trace_from_daily_log("veh", trace, recording_days=1.0)
        assert len(driving.trips) == 2
        lengths = driving.stop_lengths()
        assert lengths.size == 2
        np.testing.assert_allclose(sorted(lengths), [20.0, 45.0])

    def test_default_recording_days_from_duration(self):
        trace = log((10.0, 86400))
        driving = trace_from_daily_log("veh", trace)
        assert driving.recording_days == pytest.approx(1.0)

    def test_statistics_flow_through(self):
        # The segmented trace feeds the selector end to end.
        from repro.core import ProposedOnline

        trace = log(
            (10.0, 100), (0.0, 10), (10.0, 100), (0.0, 40), (10.0, 100),
            (0.0, 900),
            (10.0, 100), (0.0, 15), (10.0, 100),
        )
        driving = trace_from_daily_log("veh", trace, recording_days=1.0)
        policy = ProposedOnline.from_samples(driving.stop_lengths(), 28.0)
        assert policy.selected_name in {"TOI", "DET", "b-DET", "N-Rand"}
