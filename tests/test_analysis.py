"""Unit tests for the expected-cost / CR evaluation layer."""

import math

import numpy as np
import pytest

from repro.constants import E
from repro.core.analysis import (
    empirical_cr,
    empirical_offline_cost,
    empirical_online_cost,
    expected_cr,
    expected_cr_prime,
    expected_offline_cost,
    expected_online_cost,
    monte_carlo_online_cost,
    worst_case_cr,
    worst_case_expected_cost,
)
from repro.core.constrained import ConstrainedSkiRentalSolver, ProposedOnline
from repro.core.deterministic import BDet, Deterministic, NeverOff, TurnOffImmediately
from repro.core.randomized import MOMRand, NRand
from repro.core.stats import StopStatistics
from repro.distributions import (
    DiscreteStopDistribution,
    EmpiricalDistribution,
    Exponential,
    Uniform,
)
from repro.errors import InvalidParameterError

B = 28.0


class TestExpectedOfflineCost:
    def test_matches_eq13(self):
        dist = Exponential(40.0)
        stats = StopStatistics.from_distribution(dist, B)
        assert expected_offline_cost(dist, B) == pytest.approx(
            stats.expected_offline_cost
        )

    def test_uniform_all_short(self):
        assert expected_offline_cost(Uniform(0, 20), B) == pytest.approx(10.0)


class TestExpectedOnlineCost:
    def test_deterministic_threshold_closed_form(self):
        dist = Exponential(40.0)
        det = Deterministic(B)
        # mu_B_minus + 2 q_B_plus B for DET (Eq. 14).
        stats = StopStatistics.from_distribution(dist, B)
        assert expected_online_cost(det, dist) == pytest.approx(
            stats.mu_b_minus + 2 * stats.q_b_plus * B, rel=1e-9
        )

    def test_toi_constant_b(self):
        assert expected_online_cost(TurnOffImmediately(B), Exponential(40.0)) == pytest.approx(B)

    def test_nev_is_distribution_mean(self):
        assert expected_online_cost(NeverOff(B), Exponential(40.0)) == pytest.approx(40.0)

    def test_nrand_ratio_property(self):
        dist = Exponential(40.0)
        assert expected_online_cost(NRand(B), dist) == pytest.approx(
            E / (E - 1) * expected_offline_cost(dist, B), rel=1e-7
        )

    def test_discrete_distribution_exact_sum(self):
        dist = DiscreteStopDistribution([5.0, 60.0], [0.5, 0.5])
        nr = NRand(B)
        expected = 0.5 * nr.expected_cost(5.0) + 0.5 * nr.expected_cost(60.0)
        assert expected_online_cost(nr, dist) == pytest.approx(expected)

    def test_empirical_distribution_exact_sum(self):
        stops = np.array([5.0, 60.0, 12.0])
        dist = EmpiricalDistribution(stops)
        det = Deterministic(B)
        assert expected_online_cost(det, dist) == pytest.approx(
            det.expected_cost_vec(stops).mean()
        )

    def test_break_even_mismatch_rejected(self):
        with pytest.raises(InvalidParameterError):
            expected_online_cost(Deterministic(B), Exponential(40.0), break_even=47.0)


class TestExpectedCR:
    def test_cr_at_least_one(self):
        dist = Exponential(40.0)
        for strategy in (Deterministic(B), TurnOffImmediately(B), NRand(B), BDet(B, 10.0)):
            assert expected_cr(strategy, dist) >= 1.0 - 1e-9

    def test_nrand_cr_is_constant(self):
        for mean in (10.0, 40.0, 200.0):
            assert expected_cr(NRand(B), Exponential(mean)) == pytest.approx(
                E / (E - 1), rel=1e-7
            )

    def test_zero_offline_rejected(self):
        dist = DiscreteStopDistribution([0.0], [1.0])
        with pytest.raises(InvalidParameterError):
            expected_cr(Deterministic(B), dist)


class TestCRPrime:
    def test_momrand_bound_holds(self):
        # CR' <= 1 + mu / (2B(e-2)) in the revised regime (Eq. 8 metric).
        dist = Uniform(0.0, 40.0)  # mean 20 <= 0.836 B
        mom = MOMRand(B, 20.0)
        bound = mom.cr_prime_bound()
        assert expected_cr_prime(mom, dist) <= bound + 1e-9

    def test_discrete_excludes_zero_stops(self):
        dist = DiscreteStopDistribution([0.0, 10.0], [0.5, 0.5])
        det = Deterministic(B)
        # Among positive stops, DET is offline-optimal (y < B -> ratio 1).
        assert expected_cr_prime(det, dist) == pytest.approx(1.0)

    def test_all_zero_stops_rejected(self):
        dist = DiscreteStopDistribution([0.0], [1.0])
        with pytest.raises(InvalidParameterError):
            expected_cr_prime(Deterministic(B), dist)


class TestEmpiricalEvaluators:
    def test_offline_mean(self):
        stops = np.array([10.0, 100.0])
        assert empirical_offline_cost(stops, B) == pytest.approx((10.0 + B) / 2)

    def test_online_uses_expected_cost(self):
        stops = np.array([10.0, 100.0])
        nr = NRand(B)
        assert empirical_online_cost(nr, stops) == pytest.approx(
            nr.expected_cost_vec(stops).mean()
        )

    def test_cr_ratio(self):
        stops = np.array([10.0, 100.0])
        det = Deterministic(B)
        expected = det.expected_cost_vec(stops).mean() / empirical_offline_cost(stops, B)
        assert empirical_cr(det, stops) == pytest.approx(expected)

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            empirical_offline_cost(np.array([]), B)
        with pytest.raises(InvalidParameterError):
            empirical_online_cost(Deterministic(B), np.array([]))


class TestMonteCarlo:
    def test_agrees_with_exact_for_randomized(self, rng):
        stops = Exponential(40.0).sample(20000, rng)
        nr = NRand(B)
        mc = monte_carlo_online_cost(nr, stops, rng)
        exact = empirical_online_cost(nr, stops)
        assert mc == pytest.approx(exact, rel=0.02)

    def test_nev_infinite_threshold_handled(self, rng):
        stops = np.array([10.0, 500.0])
        assert monte_carlo_online_cost(NeverOff(B), stops, rng) == pytest.approx(255.0)


class TestWorstCaseOverQ:
    def test_matches_analytic_det(self):
        stats = StopStatistics(0.2 * B, 0.3, B)
        numeric = worst_case_expected_cost(Deterministic(B), stats)
        assert numeric == pytest.approx(stats.mu_b_minus + 2 * stats.q_b_plus * B, rel=1e-6)

    def test_matches_analytic_toi(self):
        stats = StopStatistics(0.2 * B, 0.3, B)
        assert worst_case_expected_cost(TurnOffImmediately(B), stats) == pytest.approx(
            B, rel=1e-6
        )

    def test_matches_analytic_nrand(self):
        stats = StopStatistics(0.2 * B, 0.3, B)
        assert worst_case_expected_cost(NRand(B), stats) == pytest.approx(
            E / (E - 1) * stats.expected_offline_cost, rel=1e-4
        )

    def test_matches_eq34_for_bdet(self):
        stats = StopStatistics(0.05 * B, 0.3, B)
        from repro.core.deterministic import optimal_b

        b = optimal_b(stats)
        numeric = worst_case_expected_cost(BDet(B, b), stats, grid_size=4096)
        expected = (b + B) * (stats.mu_b_minus / b + stats.q_b_plus)
        assert numeric == pytest.approx(expected, rel=1e-3)

    def test_nev_unbounded_with_long_stops(self):
        stats = StopStatistics(0.2 * B, 0.3, B)
        assert worst_case_expected_cost(NeverOff(B), stats) == math.inf

    def test_nev_bounded_without_long_stops(self):
        stats = StopStatistics(0.2 * B, 0.0, B)
        assert worst_case_expected_cost(NeverOff(B), stats) == pytest.approx(
            stats.mu_b_minus
        )

    def test_proposed_minimizes_worst_case(self):
        # The proposed strategy's numeric worst case never exceeds any
        # baseline's numeric worst case (the paper's headline guarantee).
        for mu_frac, q in [(0.02, 0.3), (0.3, 0.3), (0.6, 0.1), (0.05, 0.7)]:
            stats = StopStatistics(mu_frac * B, q, B)
            proposed_cr = worst_case_cr(ProposedOnline(stats), stats)
            for baseline in (Deterministic(B), TurnOffImmediately(B), NRand(B)):
                assert proposed_cr <= worst_case_cr(baseline, stats) + 1e-4

    def test_tiny_grid_rejected(self):
        stats = StopStatistics(0.2 * B, 0.3, B)
        with pytest.raises(InvalidParameterError):
            worst_case_expected_cost(Deterministic(B), stats, grid_size=2)
