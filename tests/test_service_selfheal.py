"""Self-healing supervision: disk-fault degradation, hang detection,
poison-chunk quarantine, crash-loop circuit breaking and readiness.

The load-bearing properties:

* **Disk faults degrade, never corrupt.**  For ANY injected schedule of
  write failures (``FsFaultInjector`` down-windows over the WAL /
  snapshot / ledger write path), the service keeps serving — SAFE
  decisions, zero unhandled exceptions — and once the disk heals the
  recovered state is bit-identical to a run that never saw a fault.
  Stated as a Hypothesis property over fault schedules.
* **A hung worker is a detected worker.**  A SIGSTOPped worker holding
  in-flight work is SIGKILLed and respawned through the normal
  redelivery path (marked ``slow``: real processes).
* **A poison chunk is quarantined, not retried forever.**  The sidecar
  record carries full provenance and the rest of the fleet keeps
  serving (marked ``slow``).
* **A crash loop opens the breaker.**  Traffic to the dead shard is
  shed with count and readiness says why (marked ``slow``).
"""

import contextlib
import errno
import json
import os
import signal
import stat
import threading
import time
from types import SimpleNamespace

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.faults import Fault, FaultInjector, FsFault, FsFaultInjector
from repro.engine.ledger import RunLedger
from repro.service import AdvisorService, SessionConfig
from repro.service.shard import POISON_SIDECAR_NAME, ShardedAdvisorService
from repro.service.soak import _noop
from repro.service.wal import SnapshotStore, WriteAheadLog

B = 28.0

#: Small snapshot cadence so short streams exercise WAL appends,
#: snapshot publishes AND WAL resets inside the injected fault windows.
CONFIG = SessionConfig(
    break_even=B,
    min_samples=3,
    dedup_window=512,
    snapshot_every=4,
    seed=77,
)


def _events(vehicles: int = 3, stops: int = 12) -> list[dict]:
    return [
        {
            "id": f"e{v}-{i}",
            "vehicle": f"veh-{v}",
            "t": float(i * 60),
            "stop": 20.0 + (7 * i + 13 * v) % 30,
        }
        for i in range(stops)
        for v in range(vehicles)
    ]


def _serve(state_dir, events, fs=None) -> dict[str, str]:
    """Stream events through an AdvisorService; force-heal; return digests."""
    service = AdvisorService(state_dir, CONFIG, fs=fs)
    for record in events:
        service.process(record)
    # Drain any still-open fault window: every probe advances the
    # injector's op ordinal, so this terminates for any finite schedule.
    for session in service.sessions.values():
        for _ in range(1000):
            if session.probe_durability():
                break
        assert not session.durability_suspended
    service.close()
    return {
        vehicle: session.state_digest()
        for vehicle, session in sorted(service.sessions.items())
    }


# -- FsFaultInjector ------------------------------------------------------


def test_fs_injector_windows_are_ordinal_and_claim_once(tmp_path):
    faults = {3: FsFault(count=2), 7: FsFault(errno_code=errno.EIO)}
    fs = FsFaultInjector(faults, tmp_path / "claims")
    outcomes = []
    for _ in range(8):
        try:
            fs.check("op", "/dev/null")
            outcomes.append(None)
        except OSError as exc:
            outcomes.append(exc.errno)
    assert outcomes == [
        None, None, errno.ENOSPC, errno.ENOSPC, None, None, errno.EIO, None,
    ]
    assert fs.ops == 8
    assert fs.raised == 3
    # The claim files make windows fire exactly once per state dir: a
    # second injector over the same claims (the recovery rerun) is clean.
    again = FsFaultInjector(faults, tmp_path / "claims")
    for _ in range(8):
        again.check("op", "/dev/null")
    assert again.raised == 0


def test_fs_injector_rejects_degenerate_schedules(tmp_path):
    from repro.errors import InvalidParameterError

    with pytest.raises(InvalidParameterError):
        FsFaultInjector({0: FsFault()}, tmp_path)
    with pytest.raises(InvalidParameterError):
        FsFault(count=0)
    with pytest.raises(InvalidParameterError):
        FsFault(errno_code=0)


# -- disk-fault degradation ------------------------------------------------


def test_disk_fault_suspends_serves_safe_then_heals_bit_identically(tmp_path):
    events = _events()
    clean = _serve(tmp_path / "clean", events)
    fs = FsFaultInjector({4: FsFault(count=5)}, tmp_path / "claims")
    service = AdvisorService(tmp_path / "faulty", CONFIG, fs=fs)
    suspended_seen = 0
    for record in events:
        decision = service.process(record)
        assert decision is not None  # a sick disk never drops a decision
        suspended_seen += sum(
            1 for s in service.sessions.values() if s.durability_suspended
        )
    assert suspended_seen > 0  # the window actually opened mid-stream
    assert fs.raised > 0
    for session in service.sessions.values():
        assert session.probe_durability()
    service.close()
    faulty = {
        vehicle: session.state_digest()
        for vehicle, session in sorted(service.sessions.items())
    }
    assert faulty == clean
    # ...and the on-disk state is equally healed: a warm restart over
    # the faulted directory recovers the same digests with no injector.
    rerun = AdvisorService(tmp_path / "faulty", CONFIG)
    for vehicle in clean:
        rerun.session(vehicle)
    assert {
        vehicle: session.state_digest()
        for vehicle, session in sorted(rerun.sessions.items())
    } == clean
    rerun.close()


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    schedule=st.dictionaries(
        st.integers(min_value=1, max_value=60),
        st.builds(
            FsFault,
            errno_code=st.sampled_from([errno.ENOSPC, errno.EIO, errno.EROFS]),
            count=st.integers(min_value=1, max_value=6),
        ),
        max_size=4,
    ),
    case=st.integers(),
)
def test_any_fault_schedule_recovers_bit_identically(
    tmp_path_factory, schedule, case
):
    """The tentpole property: disk faults are invisible after healing.

    ANY schedule of down-windows — any ordinals, any widths, any errno,
    overlapping or not — must leave the service bit-identical to the
    never-faulted run once the disk heals and the buffered tail replays.
    """
    root = tmp_path_factory.mktemp("fault-schedule")
    events = _events(vehicles=2, stops=10)
    clean = _serve(root / "clean", events)
    fs = FsFaultInjector(schedule, root / "claims")
    healed = _serve(root / "faulty", events, fs=fs)
    assert healed == clean


def test_run_ledger_swallows_injected_disk_faults(tmp_path):
    fs = FsFaultInjector({2: FsFault(count=2)}, tmp_path / "claims")
    ledger = RunLedger(tmp_path / "run.jsonl", fs=fs)
    for index in range(5):
        ledger.emit("tick", index=index)  # must never raise
    assert ledger.io_errors == 2
    assert "ENOSPC" in (ledger.last_io_error or "")
    survived = [
        json.loads(line)["index"]
        for line in (tmp_path / "run.jsonl").read_text().splitlines()
        if json.loads(line).get("event") == "tick"
    ]
    assert survived == [0, 3, 4]  # the window's records are lost, not fatal


# -- directory fsync (publish durability against OS crash) -----------------


def test_fsync_true_syncs_directory_after_publish_and_creation(
    tmp_path, monkeypatch
):
    """``os.replace`` + file-fsync is not enough: the *directory* entry
    must be fsynced or an OS crash can revert the publish.  Pin that
    ``fsync=True`` syncs the parent directory after a snapshot publish,
    after the first WAL append (creation), and after a WAL reset."""
    synced_dirs = []
    real_fsync = os.fsync

    def recording_fsync(fd):
        if stat.S_ISDIR(os.fstat(fd).st_mode):
            synced_dirs.append(fd)
        real_fsync(fd)

    monkeypatch.setattr(os, "fsync", recording_fsync)

    store = SnapshotStore(tmp_path / "snapshot.json", fsync=True)
    store.save(1, {"seq": 1})
    assert len(synced_dirs) >= 1

    synced_dirs.clear()
    wal = WriteAheadLog(tmp_path / "wal.jsonl", fsync=True)
    wal.append({"id": "e1", "t": 0.0, "stop": 30.0})
    assert len(synced_dirs) == 1  # creation is made durable on first append
    wal.append({"id": "e2", "t": 1.0, "stop": 30.0})
    assert len(synced_dirs) == 1  # ...and only on the first

    synced_dirs.clear()
    wal.reset()
    assert len(synced_dirs) == 1  # the os.replace of the fresh log

    # Without fsync none of these paths sync the directory.
    synced_dirs.clear()
    plain = WriteAheadLog(tmp_path / "wal2.jsonl", fsync=False)
    plain.append({"id": "e1", "t": 0.0, "stop": 30.0})
    plain.reset()
    SnapshotStore(tmp_path / "snap2.json", fsync=False).save(1, {})
    assert synced_dirs == []


# -- respawn escalation ----------------------------------------------------


class _ZombieProcess:
    """A worker whose exit raced a revival: ``join`` alone never reaps
    it, only an explicit SIGKILL does."""

    def __init__(self):
        self.pid = 4242
        self.kills = 0
        self.joins = []
        self._alive = True

    def join(self, timeout=None):
        self.joins.append(timeout)
        if self.kills:
            self._alive = False

    def is_alive(self):
        return self._alive

    def kill(self):
        self.kills += 1


class _Endpoint:
    def __init__(self):
        self.closed = False

    def close(self):
        self.closed = True

    def cancel_join_thread(self):
        pass


def _fake_tier(process):
    """The minimal attribute surface ``_respawn`` touches, so the
    zombie-escalation branch is testable without real processes."""
    tier = SimpleNamespace(
        _shard_locks=[threading.Lock()],
        _commands=[_Endpoint()],
        _pipes=[_Endpoint()],
        _procs=[process],
        _lock=threading.Lock(),
        restarts=[0],
        _eof=set(),
        _in_flight=[{}],
        _pending_controls={},
        _stop_sent=set(),
        _ledger=None,
    )
    tier.spawned = []

    def fake_spawn(shard):
        tier.spawned.append(shard)
        tier._commands[shard] = _Endpoint()
        tier._pipes[shard] = _Endpoint()
        tier._procs[shard] = SimpleNamespace(pid=7777, is_alive=lambda: True)

    tier._spawn = fake_spawn
    return tier


def test_respawn_escalates_unjoinable_worker_to_sigkill():
    zombie = _ZombieProcess()
    tier = _fake_tier(zombie)
    old_commands, old_pipe = tier._commands[0], tier._pipes[0]
    ShardedAdvisorService._respawn(tier, 0)
    assert zombie.kills == 1
    assert zombie.joins == [1.0, 10.0]  # polite join, then post-kill reap
    assert not zombie.is_alive()
    assert tier.spawned == [0]
    assert tier.restarts == [1]
    assert old_commands.closed and old_pipe.closed


def test_respawn_skips_escalation_for_a_reaped_worker():
    class _DeadProcess(_ZombieProcess):
        def join(self, timeout=None):
            self.joins.append(timeout)
            self._alive = False

    dead = _DeadProcess()
    tier = _fake_tier(dead)
    ShardedAdvisorService._respawn(tier, 0)
    assert dead.kills == 0
    assert dead.joins == [1.0]
    assert tier.spawned == [0]


# -- readiness (GET /ready) ------------------------------------------------


class _ProbeService:
    """Frontend-shaped stub with a pluggable readiness verdict."""

    def __init__(self, verdict=None):
        if verdict is not None:
            self.readiness = lambda: verdict

    def request_lines(self, lines):
        return [{"echo": line} for line in lines]

    def health_snapshot(self):
        return {"ok": True}

    def close(self):
        pass


def _http(frontend, tmp_path, requests):
    """Serve over a unix socket, run the given raw requests, collect
    the raw responses."""
    import asyncio

    tmp_path.mkdir(parents=True, exist_ok=True)
    sock_path = str(tmp_path / "advisor.sock")

    async def exchange(payload):
        reader, writer = await asyncio.open_unix_connection(sock_path)
        writer.write(payload)
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout=10)
        writer.close()
        with contextlib.suppress(Exception):
            await writer.wait_closed()
        return raw

    async def scenario():
        ready = asyncio.Event()
        server = asyncio.create_task(
            frontend.serve(f"unix:{sock_path}", ready=ready, install_signals=False)
        )
        await asyncio.wait_for(ready.wait(), timeout=30)
        responses = [await exchange(request) for request in requests]
        frontend.request_stop()
        await asyncio.wait_for(server, timeout=30)
        return responses

    return asyncio.run(scenario())


def test_ready_endpoint_gates_on_the_service_verdict(tmp_path):
    from repro.service.frontend import JsonlFrontend

    ready_service = _ProbeService({"ready": True, "reasons": []})
    [ok, head] = _http(
        JsonlFrontend(ready_service),
        tmp_path,
        [b"GET /ready HTTP/1.0\r\n\r\n", b"HEAD /readyz HTTP/1.0\r\n\r\n"],
    )
    header, _, body = ok.partition(b"\r\n\r\n")
    assert header.startswith(b"HTTP/1.0 200")
    assert json.loads(body) == {"ready": True, "reasons": []}
    assert head.startswith(b"HTTP/1.0 200")
    assert head.partition(b"\r\n\r\n")[2] == b""  # HEAD: headers only


def test_ready_endpoint_503_when_not_ready_or_probe_raises(tmp_path):
    from repro.service.frontend import JsonlFrontend

    sick = _ProbeService({"ready": False, "reasons": ["circuit breaker open"]})
    [response] = _http(
        JsonlFrontend(sick), tmp_path / "a", [b"GET /ready HTTP/1.0\r\n\r\n"]
    )
    header, _, body = response.partition(b"\r\n\r\n")
    assert header.startswith(b"HTTP/1.0 503")
    assert json.loads(body)["reasons"] == ["circuit breaker open"]

    class _Raising(_ProbeService):
        def readiness(self):
            raise RuntimeError("probe exploded")

    [response] = _http(
        JsonlFrontend(_Raising()), tmp_path / "b", [b"GET /ready HTTP/1.0\r\n\r\n"]
    )
    header, _, body = response.partition(b"\r\n\r\n")
    assert header.startswith(b"HTTP/1.0 503")
    assert "probe exploded" in json.loads(body)["reasons"][0]

    # A service with no readiness probe (legacy shape) is ready whenever
    # it answers — /ready degrades to liveness, never to a 500.
    [response] = _http(
        JsonlFrontend(_ProbeService()), tmp_path / "c",
        [b"GET /ready HTTP/1.0\r\n\r\n"],
    )
    assert response.partition(b"\r\n\r\n")[0].startswith(b"HTTP/1.0 200")


def test_inline_tier_readiness_reflects_suspended_sessions(tmp_path):
    service = ShardedAdvisorService(
        tmp_path, CONFIG, shards=2, workers=False
    )
    try:
        service.submit_lines(
            [json.dumps(record) for record in _events(vehicles=2, stops=3)]
        )
        assert service.readiness() == {"ready": True, "reasons": []}
        session = next(iter(service._inline[0].sessions.values()), None) or next(
            iter(service._inline[1].sessions.values())
        )
        session._suspend(OSError(errno.ENOSPC, "injected"), "wal-append")
        verdict = service.readiness()
        assert not verdict["ready"]
        assert any("durability suspended" in reason for reason in verdict["reasons"])
    finally:
        service.close()


# -- process-mode supervision (slow: real workers) -------------------------


@pytest.mark.slow
def test_hang_detection_respawns_a_frozen_worker(tmp_path):
    events = _events(vehicles=4, stops=8)
    lines = [json.dumps(record) for record in events]
    service = ShardedAdvisorService(
        tmp_path, CONFIG, shards=2, hang_timeout=1.0
    )
    try:
        service.submit_lines(lines[: len(lines) // 2])
        # Settle first: hang detection only arms once a worker has
        # spoken since its last spawn (a booting worker is excused).
        service.drain(timeout=120.0)
        victim = service.route(events[len(events) // 2]["vehicle"])
        pid = service.worker_pids[victim]
        baseline = service.restarts[victim]
        os.kill(pid, signal.SIGSTOP)
        service.submit_lines(lines[len(lines) // 2 :])
        deadline = time.monotonic() + 60.0
        while service.restarts[victim] == baseline:
            assert time.monotonic() < deadline, "hang was never detected"
            time.sleep(0.05)
        assert service.hangs[victim] == 1
        service.drain(timeout=120.0)
        snapshot = service.health_snapshot(timeout=60.0)
        assert snapshot["routing"]["hangs"] == 1
        # Nothing was lost to the freeze: the respawned worker's warm
        # recovery plus redelivery converge on the clean run's state.
        assert service.digests(timeout=60.0) == _serve(
            tmp_path.parent / "hang-clean", events
        )
    finally:
        service.close()


@pytest.mark.slow
def test_poison_chunk_is_quarantined_with_provenance(tmp_path):
    events = _events(vehicles=4, stops=6)
    poison_line = json.dumps(
        {"id": "poison-0", "vehicle": "poison-pill", "t": -1.0, "stop": 1.0},
        sort_keys=True,
    )
    injector = FaultInjector(
        _noop, {poison_line: Fault("kill", times=12)}, tmp_path / "claims"
    )
    service = ShardedAdvisorService(
        tmp_path, CONFIG, shards=2, poison_budget=2, injector=injector
    )
    try:
        service.submit_lines([json.dumps(record) for record in events[:12]])
        service.drain(timeout=120.0)  # attribution needs a lone head chunk
        service.submit_lines([poison_line])
        deadline = time.monotonic() + 120.0
        while service.quarantined_chunks < 1:
            assert time.monotonic() < deadline, "poison chunk never quarantined"
            time.sleep(0.05)
        service.submit_lines([json.dumps(record) for record in events[12:]])
        service.drain(timeout=120.0)
        assert service.quarantined_chunks == 1
        assert service.quarantined_events == 1
        snapshot = service.health_snapshot(timeout=60.0)
        assert snapshot["routing"]["quarantined_chunks"] == 1
        # The quarantine protected everyone else: final digests match a
        # run that never saw the poison line at all.
        assert service.digests(timeout=60.0) == _serve(
            tmp_path.parent / "poison-clean", events
        )
    finally:
        service.close()
    records = [
        json.loads(line)
        for line in (tmp_path / POISON_SIDECAR_NAME).read_text().splitlines()
    ]
    assert len(records) == 1
    [record] = records
    assert record["lines"] == [poison_line]
    assert record["crashes"] == 2
    assert record["events"] == 1
    assert record["shard"] == service.route("poison-pill")
    # Written at classification time: the final crash's respawn has not
    # bumped the counter yet, so it records the restarts *before* it.
    assert record["restarts"] == 1


@pytest.mark.slow
def test_crash_loop_opens_the_breaker_and_sheds_with_count(tmp_path):
    events = _events(vehicles=1, stops=4)
    lines = [json.dumps(record) for record in events]
    # EVERY line kills the worker and the poison budget is out of
    # reach, so nothing can be blamed on a chunk: a pure crash loop.
    injector = FaultInjector(
        _noop,
        {line: Fault("kill", times=50) for line in lines},
        tmp_path / "claims",
    )
    service = ShardedAdvisorService(
        tmp_path,
        CONFIG,
        shards=1,
        restart_budget=2,
        poison_budget=99,
        injector=injector,
    )
    try:
        service.submit_lines(lines)
        deadline = time.monotonic() + 120.0
        while 0 not in service.breaker_open:
            assert time.monotonic() < deadline, "breaker never opened"
            time.sleep(0.05)
        # Everything the shard held was shed with count...
        assert service.breaker_shed == len(events)
        # ...new traffic sheds instead of blocking forever...
        assert service.offer_lines(lines[:1]) == 0
        assert service.breaker_shed == len(events) + 1
        # ...and readiness names the breaker.
        verdict = service.readiness(timeout=30.0)
        assert not verdict["ready"]
        assert any("breaker" in reason for reason in verdict["reasons"])
        snapshot = service.health_snapshot(timeout=60.0)
        assert snapshot["routing"]["breaker_open"] == [0]
        [row] = snapshot["shards"]
        assert row["down"] is True
    finally:
        service.close()  # must not hang on the held-down shard
    assert service.quarantined_chunks == 0
