"""Unit tests for fleet dataset persistence."""

import json

import numpy as np
import pytest

from repro.errors import TraceFormatError
from repro.fleet import load_fleet_dataset, load_fleets, save_fleet_dataset


@pytest.fixture
def small_fleets():
    return load_fleets(seed=9, vehicles_per_area=4)


class TestRoundTrip:
    def test_stop_lengths_preserved(self, tmp_path, small_fleets):
        save_fleet_dataset(tmp_path / "ds", small_fleets, seed=9)
        restored = load_fleet_dataset(tmp_path / "ds")
        assert set(restored) == set(small_fleets)
        for area in small_fleets:
            for original, loaded in zip(small_fleets[area], restored[area]):
                assert original.vehicle_id == loaded.vehicle_id
                np.testing.assert_allclose(original.stop_lengths, loaded.stop_lengths)
                assert original.scale_factor == pytest.approx(loaded.scale_factor)

    def test_manifest_contents(self, tmp_path, small_fleets):
        path = save_fleet_dataset(tmp_path / "ds", small_fleets, seed=9)
        manifest = json.loads((path / "manifest.json").read_text())
        assert manifest["seed"] == 9
        assert manifest["areas"]["chicago"]["vehicle_count"] == 4

    def test_evaluation_identical_after_round_trip(self, tmp_path, small_fleets):
        from repro.evaluation import evaluate_fleet

        save_fleet_dataset(tmp_path / "ds", small_fleets, seed=9)
        restored = load_fleet_dataset(tmp_path / "ds")
        for area in small_fleets:
            original = evaluate_fleet(small_fleets[area], 28.0)
            loaded = evaluate_fleet(restored[area], 28.0)
            assert original.mean_cr("Proposed") == pytest.approx(
                loaded.mean_cr("Proposed")
            )
            assert original.win_counts() == loaded.win_counts()


class TestErrors:
    def test_missing_dataset_rejected(self, tmp_path):
        with pytest.raises(TraceFormatError):
            load_fleet_dataset(tmp_path / "nope")

    def test_manifest_vehicle_mismatch_rejected(self, tmp_path, small_fleets):
        path = save_fleet_dataset(tmp_path / "ds", small_fleets, seed=9)
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["areas"]["chicago"]["vehicle_ids"].append("chicago-9999")
        manifest["areas"]["chicago"]["scale_factors"].append(1.0)
        manifest["areas"]["chicago"]["vehicle_count"] += 1
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(TraceFormatError):
            load_fleet_dataset(path)
