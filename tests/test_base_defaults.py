"""Tests for default implementations on the abstract base classes and
the package-level docstring example."""

import doctest

import numpy as np
import pytest

import repro
from repro.distributions.base import StopLengthDistribution
from repro.errors import InvalidDistributionError


class TriangularStops(StopLengthDistribution):
    """Minimal concrete distribution: triangular on [0, 2m] with mean m.

    Implements only cdf/pdf/sample — everything else exercises the base
    class defaults (survival, quadrature partial_expectation, survival-
    integral mean).
    """

    def __init__(self, mean: float) -> None:
        self.peak = 2.0 * mean
        self.name = "triangular"

    def pdf(self, y: float) -> float:
        if not 0.0 <= y <= self.peak:
            return 0.0
        return 2.0 * (self.peak - y) / (self.peak * self.peak)

    def cdf(self, y: float) -> float:
        if y <= 0.0:
            return 0.0
        if y >= self.peak:
            return 1.0
        return 1.0 - (self.peak - y) ** 2 / (self.peak * self.peak)

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        u = rng.uniform(size=count)
        return self.peak * (1.0 - np.sqrt(1.0 - u))


class TestBaseDefaults:
    @pytest.fixture(scope="class")
    def dist(self):
        return TriangularStops(mean=30.0)

    def test_default_survival(self, dist):
        assert dist.survival(20.0) == pytest.approx(1.0 - dist.cdf(20.0))

    def test_default_mean_via_survival_integral(self, dist):
        # Triangular(0, 0, peak) has mean peak/3 = 20... careful: with
        # pdf 2(p - y)/p^2, the mean is p/3.
        assert dist.mean() == pytest.approx(dist.peak / 3.0, rel=1e-6)

    def test_default_partial_expectation_quadrature(self, dist):
        full = dist.partial_expectation(dist.peak + 1.0)
        assert full == pytest.approx(dist.mean(), rel=1e-6)
        assert dist.partial_expectation(0.0) == 0.0
        partial = dist.partial_expectation(dist.peak / 2.0)
        assert 0.0 < partial < full

    def test_sampling_matches_moments(self, dist, rng):
        samples = dist.sample(50000, rng)
        assert samples.mean() == pytest.approx(dist.mean(), rel=0.03)

    def test_discrete_pdf_raises(self):
        from repro.distributions import DiscreteStopDistribution

        dist = DiscreteStopDistribution([1.0], [1.0])
        with pytest.raises(InvalidDistributionError):
            dist.pdf(1.0)


class TestPackageDocstring:
    def test_quickstart_doctest(self):
        results = doctest.testmod(repro, verbose=False)
        assert results.failed == 0
        assert results.attempted >= 2
