"""Unit tests for the out-of-sample (train/test) fleet evaluation."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.evaluation import (
    STRATEGY_NAMES,
    compare_in_vs_out_of_sample,
    evaluate_fleet,
    holdout_evaluate_fleet,
    holdout_evaluate_vehicle,
)
from repro.fleet import FleetGenerator, area_config
from repro.fleet.generator import VehicleRecord

B = 28.0


def make_vehicle(stops, vehicle_id="v"):
    return VehicleRecord(
        vehicle_id=vehicle_id,
        area="test",
        stop_lengths=np.asarray(stops, dtype=float),
        scale_factor=1.0,
    )


class TestHoldoutVehicle:
    def test_trains_on_prefix_only(self):
        # Prefix: all short -> selector picks DET.  Suffix: all long ->
        # DET's test CR is 2; the in-sample protocol would have picked
        # TOI instead.
        stops = [5.0] * 10 + [100.0] * 10
        evaluation = holdout_evaluate_vehicle(make_vehicle(stops), B, 0.5)
        assert evaluation.selected_vertex == "DET"
        assert evaluation.crs["Proposed"] == pytest.approx(2.0)

    def test_single_stop_falls_back_to_in_sample(self):
        evaluation = holdout_evaluate_vehicle(make_vehicle([50.0]), B, 0.5)
        assert evaluation.crs["Proposed"] >= 1.0

    def test_zero_suffix_falls_back(self):
        stops = [10.0] * 5 + [0.0] * 5
        evaluation = holdout_evaluate_vehicle(make_vehicle(stops), B, 0.5)
        assert np.isfinite(evaluation.crs["Proposed"])

    def test_invalid_fraction_rejected(self):
        with pytest.raises(InvalidParameterError):
            holdout_evaluate_vehicle(make_vehicle([1.0, 2.0]), B, 1.0)


class TestHoldoutFleet:
    @pytest.fixture(scope="class")
    def vehicles(self):
        return FleetGenerator(area_config("california"), seed=17).generate(50)

    def test_out_of_sample_proposed_still_wins_majority(self, vehicles):
        evaluation = holdout_evaluate_fleet(vehicles, B)
        wins = evaluation.win_counts()
        assert wins["Proposed"] >= 0.7 * evaluation.vehicle_count

    def test_comparison_structure(self, vehicles):
        comparisons = compare_in_vs_out_of_sample(vehicles, B)
        assert [c.strategy for c in comparisons] == list(STRATEGY_NAMES)
        for comparison in comparisons:
            assert comparison.in_sample_mean_cr >= 1.0 - 1e-9
            assert comparison.out_of_sample_mean_cr >= 1.0 - 1e-9

    def test_statistics_free_strategies_unaffected_by_protocol(self, vehicles):
        # TOI / NEV / DET / N-Rand use no statistics: their *mean* CR can
        # shift only because the evaluation window shrinks, not because
        # of training.  With the same window, per-vehicle CRs of the
        # in-sample protocol restricted to the suffix must equal the
        # holdout CRs for these strategies.
        vehicle = vehicles[0]
        suffix = vehicle.stop_lengths[vehicle.stop_lengths.size // 2 :]
        suffix_eval = evaluate_fleet([make_vehicle(suffix)], B)
        holdout_eval = holdout_evaluate_fleet([vehicle], B)
        for name in ("TOI", "NEV", "DET", "N-Rand"):
            assert holdout_eval.evaluations[0].crs[name] == pytest.approx(
                suffix_eval.evaluations[0].crs[name]
            )

    def test_optimism_is_small_on_week_of_data(self, vehicles):
        # With ~70 training stops the selector generalizes: the proposed
        # strategy's out-of-sample mean CR is within a few percent of
        # in-sample.
        comparisons = {c.strategy: c for c in compare_in_vs_out_of_sample(vehicles, B)}
        assert abs(comparisons["Proposed"].optimism) < 0.05
