"""Unit tests for the multislope ski-rental extension [14]."""

import numpy as np
import pytest

from repro.core.multislope import FollowTheEnvelope, MultislopeProblem, Slope
from repro.errors import InvalidParameterError

B = 28.0


class TestSlope:
    def test_cost(self):
        assert Slope(10.0, 0.5).cost(20.0) == pytest.approx(20.0)

    def test_invalid_rejected(self):
        with pytest.raises(InvalidParameterError):
            Slope(-1.0, 0.5)
        with pytest.raises(InvalidParameterError):
            Slope(1.0, -0.5)


class TestMultislopeProblem:
    def test_classic_reduces_to_ski_rental(self):
        problem = MultislopeProblem.classic(B)
        assert problem.offline_cost(10.0) == 10.0
        assert problem.offline_cost(100.0) == B
        assert problem.transition_points == (B,)

    def test_envelope_state_convention(self):
        problem = MultislopeProblem.classic(B)
        assert problem.envelope_state(B - 1e-9) == 0
        assert problem.envelope_state(B) == 1  # y >= B is the long branch

    def test_three_state_transitions_increasing(self):
        problem = MultislopeProblem.automotive_three_state()
        points = problem.transition_points
        assert len(points) == 2
        assert points[0] < points[1]

    def test_offline_cost_is_lower_envelope(self):
        problem = MultislopeProblem.automotive_three_state()
        for y in np.linspace(0.0, 100.0, 40):
            direct = min(s.cost(y) for s in problem.slopes)
            assert problem.offline_cost(float(y)) == pytest.approx(direct)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            MultislopeProblem([Slope(0.0, 1.0)])  # too few
        with pytest.raises(InvalidParameterError):
            MultislopeProblem([Slope(1.0, 1.0), Slope(2.0, 0.5)])  # state 0 not free
        with pytest.raises(InvalidParameterError):
            MultislopeProblem([Slope(0.0, 1.0), Slope(0.0, 0.5)])  # cost not increasing
        with pytest.raises(InvalidParameterError):
            MultislopeProblem([Slope(0.0, 1.0), Slope(5.0, 1.0)])  # rate not decreasing

    def test_tuple_inputs_accepted(self):
        problem = MultislopeProblem([(0.0, 1.0), (B, 0.0)])
        assert problem.offline_cost(100.0) == B


class TestFollowTheEnvelope:
    def test_classic_is_det(self):
        policy = FollowTheEnvelope(MultislopeProblem.classic(B))
        assert policy.online_cost(10.0) == 10.0
        assert policy.online_cost(B) == pytest.approx(2 * B)
        assert policy.online_cost(1000.0) == pytest.approx(2 * B)

    def test_two_competitive_everywhere(self):
        for problem in (
            MultislopeProblem.classic(B),
            MultislopeProblem.automotive_three_state(),
            MultislopeProblem([(0.0, 1.0), (5.0, 0.6), (15.0, 0.3), (40.0, 0.0)]),
        ):
            policy = FollowTheEnvelope(problem)
            for y in np.linspace(0.01, 200.0, 100):
                assert policy.competitive_ratio(float(y)) <= 2.0 + 1e-9

    def test_cost_decomposition(self):
        # online = OPT(t) + cumulative switch cost of the final state.
        problem = MultislopeProblem.automotive_three_state()
        policy = FollowTheEnvelope(problem)
        for y in (5.0, 30.0, 80.0, 200.0):
            state = problem.envelope_state(y)
            expected = problem.offline_cost(y) + problem.slopes[state].switch_cost
            assert policy.online_cost(y) == pytest.approx(expected, rel=1e-9)

    def test_accessory_state_helps_mid_stops(self):
        # The three-state policy beats the classic two-state DET on
        # middle-length stops (the accessory state's raison d'etre).
        three = FollowTheEnvelope(MultislopeProblem.automotive_three_state())
        two = FollowTheEnvelope(MultislopeProblem.classic(B))
        mid = 30.0
        assert three.online_cost(mid) < two.online_cost(mid)

    def test_zero_stop_free(self):
        policy = FollowTheEnvelope(MultislopeProblem.classic(B))
        assert policy.online_cost(0.0) == 0.0
        assert policy.competitive_ratio(0.0) == 1.0

    def test_negative_stop_rejected(self):
        policy = FollowTheEnvelope(MultislopeProblem.classic(B))
        with pytest.raises(InvalidParameterError):
            policy.online_cost(-1.0)
