"""Cross-module integration tests: the full pipelines a user would run."""

import numpy as np
import pytest

from repro.constants import B_SSV, E_RATIO
from repro.core import AdaptiveProposed, ProposedOnline, TurnOffImmediately
from repro.core.analysis import empirical_cr
from repro.drivecycle import (
    CongestionModel,
    DriveCycleSimulator,
    DriverProfile,
    grid_network,
)
from repro.evaluation import evaluate_fleet
from repro.fleet import FleetGenerator, area_config
from repro.simulation import realized_cr, simulate_trace
from repro.traces import read_stops_csv, write_stops_csv
from repro.vehicle import ssv_cost_model


class TestDriveCycleToPolicy:
    """The examples/drivecycle_to_policy.py pipeline, asserted."""

    @pytest.fixture(scope="class")
    def weeks(self):
        rng = np.random.default_rng(123)
        simulator = DriveCycleSimulator(
            grid_network(rows=5, cols=5, signal_density=0.8, rng=rng),
            CongestionModel(level=0.4),
            DriverProfile(trips_per_day=5.0),
        )
        week1 = simulator.simulate_vehicle("w1", days=5, rng=rng)
        week2 = simulator.simulate_vehicle("w2", days=5, rng=rng)
        return week1, week2

    def test_policy_learned_from_simulated_driving(self, weeks):
        week1, week2 = weeks
        assert week1.stop_count > 5
        policy = ProposedOnline.from_samples(week1.stop_lengths(), B_SSV)
        assert policy.selected_name in {"TOI", "DET", "b-DET", "N-Rand"}
        assert 1.0 <= policy.worst_case_cr <= E_RATIO + 1e-12

    def test_deployment_never_beats_offline(self, weeks):
        week1, week2 = weeks
        rng = np.random.default_rng(5)
        policy = ProposedOnline.from_samples(week1.stop_lengths(), B_SSV)
        offline = simulate_trace(week2, break_even=B_SSV)
        deployed = simulate_trace(week2, strategy=policy, rng=rng)
        cr = realized_cr(deployed, offline)
        assert cr >= 1.0 - 1e-9

    def test_money_accounting_consistent(self, weeks):
        _, week2 = weeks
        model = ssv_cost_model()
        rng = np.random.default_rng(6)
        result = simulate_trace(week2, strategy=TurnOffImmediately(B_SSV), rng=rng)
        # Cents = idle * rate + restarts * restart cost, exactly.
        expected = (
            result.ledger.idle_seconds * model.idling_cost_cents_per_s()
            + result.ledger.restarts * model.restart_cost_cents()
        )
        assert result.cost_cents(model) == pytest.approx(expected)


class TestFleetRoundTripThroughCSV:
    """Synthesize -> persist -> reload -> evaluate: numbers unchanged."""

    def test_csv_round_trip_preserves_evaluation(self, tmp_path):
        vehicles = FleetGenerator(area_config("california"), seed=21).generate(8)
        traces = [vehicle.to_trace() for vehicle in vehicles]
        path = tmp_path / "stops.csv"
        write_stops_csv(path, traces)
        loaded = read_stops_csv(path)
        for vehicle in vehicles:
            direct = ProposedOnline.from_samples(vehicle.stop_lengths, B_SSV)
            reloaded = ProposedOnline.from_samples(loaded[vehicle.vehicle_id], B_SSV)
            assert direct.selected_name == reloaded.selected_name
            assert direct.worst_case_cr == pytest.approx(reloaded.worst_case_cr)


class TestAdaptiveAgainstFleet:
    def test_adaptive_beats_nrand_on_realistic_traffic(self):
        # After a warm-up, the adaptive controller's realized mean cost
        # beats always-playing N-Rand on the same stop stream.
        rng = np.random.default_rng(77)
        distribution = area_config("california").stop_length_distribution()
        stops = distribution.sample(1200, rng)
        adaptive = AdaptiveProposed(B_SSV, min_samples=20)
        adaptive_costs = adaptive.run_online(stops, rng)
        from repro.core import NRand

        nrand_expected = NRand(B_SSV).expected_cost_vec(stops)
        # Compare the post-warmup halves.
        half = stops.size // 2
        assert adaptive_costs[half:].mean() < nrand_expected[half:].mean() + 1e-9


class TestFleetEvaluationAgainstSimulation:
    def test_expected_cr_matches_realized_for_deterministic_winner(self):
        # For vehicles where the proposed selector picks a deterministic
        # vertex, the exact CR equals the realized event-level CR.
        vehicles = FleetGenerator(area_config("atlanta"), seed=31).generate(10)
        evaluation = evaluate_fleet(vehicles, B_SSV)
        rng = np.random.default_rng(0)
        for vehicle, vehicle_eval in zip(vehicles, evaluation.evaluations):
            if vehicle_eval.selected_vertex == "N-Rand":
                continue
            policy = ProposedOnline.from_samples(vehicle.stop_lengths, B_SSV)
            trace = vehicle.to_trace()
            online = simulate_trace(trace, strategy=policy, rng=rng)
            offline = simulate_trace(trace, break_even=B_SSV)
            assert realized_cr(online, offline) == pytest.approx(
                vehicle_eval.crs["Proposed"], rel=1e-9
            )

    def test_empirical_cr_definition(self):
        # evaluate_fleet's CR equals the direct empirical_cr computation.
        vehicles = FleetGenerator(area_config("chicago"), seed=41).generate(5)
        evaluation = evaluate_fleet(vehicles, B_SSV)
        for vehicle, vehicle_eval in zip(vehicles, evaluation.evaluations):
            direct = empirical_cr(
                TurnOffImmediately(B_SSV), vehicle.stop_lengths, B_SSV
            )
            assert vehicle_eval.crs["TOI"] == pytest.approx(direct)
