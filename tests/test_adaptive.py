"""Unit tests for the adaptive (online-estimating) selector."""

import numpy as np
import pytest

from repro.core import AdaptiveProposed, ProposedOnline, StopStatistics
from repro.errors import InvalidParameterError

B = 28.0


class TestColdStart:
    def test_plays_nrand_before_min_samples(self):
        adaptive = AdaptiveProposed(B, min_samples=10)
        assert adaptive.selected_name == "N-Rand"
        for stop in [10.0] * 9:
            adaptive.observe(stop)
        assert adaptive.selected_name == "N-Rand"

    def test_switches_after_min_samples(self):
        adaptive = AdaptiveProposed(B, min_samples=5)
        for stop in [10.0] * 5:  # all short -> DET territory
            adaptive.observe(stop)
        assert adaptive.selected_name == "DET"

    def test_min_samples_validated(self):
        with pytest.raises(InvalidParameterError):
            AdaptiveProposed(B, min_samples=0)


class TestStreamingEstimator:
    def test_statistics_match_batch(self):
        stops = np.array([5.0, 40.0, 12.0, 90.0, 3.0, 28.0])
        adaptive = AdaptiveProposed(B, min_samples=1, prior_stops=stops)
        streaming = adaptive.current_statistics()
        batch = StopStatistics.from_samples(stops, B)
        assert streaming.mu_b_minus == pytest.approx(batch.mu_b_minus)
        assert streaming.q_b_plus == pytest.approx(batch.q_b_plus)

    def test_no_statistics_before_first_stop(self):
        assert AdaptiveProposed(B).current_statistics() is None

    def test_observed_count(self):
        adaptive = AdaptiveProposed(B, prior_stops=[1.0, 2.0, 3.0])
        assert adaptive.observed_stops == 3

    def test_all_zero_stops_keeps_fallback(self):
        adaptive = AdaptiveProposed(B, min_samples=2, prior_stops=[0.0, 0.0, 0.0])
        assert adaptive.selected_name == "N-Rand"


class TestDecay:
    def test_decay_one_matches_full_history(self):
        stops = [5.0, 40.0, 12.0, 90.0]
        full = AdaptiveProposed(B, min_samples=1, prior_stops=stops)
        decayed = AdaptiveProposed(B, min_samples=1, prior_stops=stops, decay=1.0)
        a, b = full.current_statistics(), decayed.current_statistics()
        assert a.mu_b_minus == pytest.approx(b.mu_b_minus)
        assert a.q_b_plus == pytest.approx(b.q_b_plus)

    def test_decay_forgets_old_regime(self):
        # 200 short stops then 200 long stops: the decayed estimator's
        # q_B_plus approaches 1, the full-history one stays near 0.5.
        stops = [5.0] * 200 + [100.0] * 200
        full = AdaptiveProposed(B, min_samples=1, prior_stops=stops)
        decayed = AdaptiveProposed(B, min_samples=1, prior_stops=stops, decay=0.95)
        assert full.current_statistics().q_b_plus == pytest.approx(0.5)
        assert decayed.current_statistics().q_b_plus > 0.95

    def test_decay_tracks_regime_shift_selection(self):
        # After the shift to long stops, the decayed selector moves to
        # TOI while the full-history one is still blending regimes.
        stops = [5.0] * 300 + [200.0] * 100
        decayed = AdaptiveProposed(B, min_samples=1, prior_stops=stops, decay=0.9)
        assert decayed.selected_name == "TOI"

    def test_invalid_decay_rejected(self):
        with pytest.raises(InvalidParameterError):
            AdaptiveProposed(B, decay=0.0)
        with pytest.raises(InvalidParameterError):
            AdaptiveProposed(B, decay=1.5)


class TestConvergence:
    def test_converges_to_static_selection(self, rng):
        from repro.fleet import area_config

        distribution = area_config("california").stop_length_distribution()
        stops = distribution.sample(400, rng)
        adaptive = AdaptiveProposed(B, min_samples=10, prior_stops=stops)
        static = ProposedOnline.from_samples(stops, B)
        assert adaptive.selected_name == static.selected_name

    def test_run_online_costs_match_protocol(self, rng):
        # With min_samples=1 and deterministic vertex winners, costs must
        # follow Eq. (3) with the threshold selected *before* each stop.
        adaptive = AdaptiveProposed(B, min_samples=1)
        stops = np.array([10.0, 10.0, 100.0])
        costs = adaptive.run_online(stops, rng)
        # First stop: N-Rand draw (cost <= stop + B); later stops use the
        # re-selected strategy.
        assert costs.shape == (3,)
        assert np.all(costs <= stops + B + 1e-9)
        assert np.all(costs >= np.minimum(stops, B) - 1e-9)

    def test_regret_shrinks_with_experience(self, rng):
        # Realized mean cost of the adaptive controller approaches the
        # static (omniscient) proposed strategy's expected cost.
        from repro.core.analysis import empirical_online_cost
        from repro.fleet import area_config

        distribution = area_config("chicago").stop_length_distribution()
        stops = distribution.sample(1500, rng)
        adaptive = AdaptiveProposed(B, min_samples=10)
        realized = adaptive.run_online(stops, rng).mean()
        static = ProposedOnline.from_samples(stops, B)
        expected = empirical_online_cost(static, stops)
        assert realized == pytest.approx(expected, rel=0.1)

    def test_expected_cost_delegates(self):
        adaptive = AdaptiveProposed(B, min_samples=1, prior_stops=[5.0, 6.0])
        # DET selected: expected cost of a short stop is the stop itself.
        assert adaptive.expected_cost(10.0) == 10.0
        np.testing.assert_allclose(
            adaptive.expected_cost_vec(np.array([10.0, 100.0])), [10.0, B + B]
        )
