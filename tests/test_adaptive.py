"""Unit tests for the adaptive (online-estimating) selector."""

import numpy as np
import pytest

from repro.core import AdaptiveProposed, ProposedOnline, StopStatistics
from repro.core.adaptive import RENORM_FLUSH, RENORM_INTERVAL
from repro.errors import InvalidParameterError

B = 28.0


class TestColdStart:
    def test_plays_nrand_before_min_samples(self):
        adaptive = AdaptiveProposed(B, min_samples=10)
        assert adaptive.selected_name == "N-Rand"
        for stop in [10.0] * 9:
            adaptive.observe(stop)
        assert adaptive.selected_name == "N-Rand"

    def test_switches_after_min_samples(self):
        adaptive = AdaptiveProposed(B, min_samples=5)
        for stop in [10.0] * 5:  # all short -> DET territory
            adaptive.observe(stop)
        assert adaptive.selected_name == "DET"

    def test_min_samples_validated(self):
        with pytest.raises(InvalidParameterError):
            AdaptiveProposed(B, min_samples=0)


class TestStreamingEstimator:
    def test_statistics_match_batch(self):
        stops = np.array([5.0, 40.0, 12.0, 90.0, 3.0, 28.0])
        adaptive = AdaptiveProposed(B, min_samples=1, prior_stops=stops)
        streaming = adaptive.current_statistics()
        batch = StopStatistics.from_samples(stops, B)
        assert streaming.mu_b_minus == pytest.approx(batch.mu_b_minus)
        assert streaming.q_b_plus == pytest.approx(batch.q_b_plus)

    def test_no_statistics_before_first_stop(self):
        assert AdaptiveProposed(B).current_statistics() is None

    def test_observed_count(self):
        adaptive = AdaptiveProposed(B, prior_stops=[1.0, 2.0, 3.0])
        assert adaptive.observed_stops == 3

    def test_all_zero_stops_keeps_fallback(self):
        adaptive = AdaptiveProposed(B, min_samples=2, prior_stops=[0.0, 0.0, 0.0])
        assert adaptive.selected_name == "N-Rand"


class TestDecay:
    def test_decay_one_matches_full_history(self):
        stops = [5.0, 40.0, 12.0, 90.0]
        full = AdaptiveProposed(B, min_samples=1, prior_stops=stops)
        decayed = AdaptiveProposed(B, min_samples=1, prior_stops=stops, decay=1.0)
        a, b = full.current_statistics(), decayed.current_statistics()
        assert a.mu_b_minus == pytest.approx(b.mu_b_minus)
        assert a.q_b_plus == pytest.approx(b.q_b_plus)

    def test_decay_forgets_old_regime(self):
        # 200 short stops then 200 long stops: the decayed estimator's
        # q_B_plus approaches 1, the full-history one stays near 0.5.
        stops = [5.0] * 200 + [100.0] * 200
        full = AdaptiveProposed(B, min_samples=1, prior_stops=stops)
        decayed = AdaptiveProposed(B, min_samples=1, prior_stops=stops, decay=0.95)
        assert full.current_statistics().q_b_plus == pytest.approx(0.5)
        assert decayed.current_statistics().q_b_plus > 0.95

    def test_decay_tracks_regime_shift_selection(self):
        # After the shift to long stops, the decayed selector moves to
        # TOI while the full-history one is still blending regimes.
        stops = [5.0] * 300 + [200.0] * 100
        decayed = AdaptiveProposed(B, min_samples=1, prior_stops=stops, decay=0.9)
        assert decayed.selected_name == "TOI"

    def test_invalid_decay_rejected(self):
        with pytest.raises(InvalidParameterError):
            AdaptiveProposed(B, decay=0.0)
        with pytest.raises(InvalidParameterError):
            AdaptiveProposed(B, decay=1.5)


class TestBatchObservation:
    def test_observe_many_matches_sequential_observes_bit_exactly(self, rng):
        stops = rng.lognormal(3.0, 1.0, 5000)
        sequential = AdaptiveProposed(B, min_samples=10, decay=0.999)
        batched = AdaptiveProposed(B, min_samples=10, decay=0.999)
        for value in stops:
            sequential.observe(float(value))
        batched.observe_many(stops)
        assert batched.to_state() == sequential.to_state()  # exact floats
        assert batched.selected_name == sequential.selected_name

    def test_observe_many_across_renorm_boundary(self, rng):
        # Split a batch right at a renormalization point: state must not
        # depend on the call pattern, only on the observation sequence.
        stops = rng.lognormal(3.0, 1.0, RENORM_INTERVAL + 100)
        whole = AdaptiveProposed(B, decay=0.99)
        split = AdaptiveProposed(B, decay=0.99)
        whole.observe_many(stops)
        split.observe_many(stops[: RENORM_INTERVAL - 1])
        split.observe_many(stops[RENORM_INTERVAL - 1 :])
        assert split.to_state() == whole.to_state()

    def test_observe_many_rejects_invalid_values(self):
        adaptive = AdaptiveProposed(B)
        with pytest.raises(InvalidParameterError):
            adaptive.observe_many([1.0, -2.0])
        with pytest.raises(InvalidParameterError):
            adaptive.observe_many([1.0, float("nan")])
        assert adaptive.observed_stops == 0  # validated before mutation

    def test_observe_many_empty_is_a_noop(self):
        adaptive = AdaptiveProposed(B, prior_stops=[5.0])
        state = adaptive.to_state()
        adaptive.observe_many([])
        assert adaptive.to_state() == state


class TestUnderflowRenormalization:
    def test_decayed_accumulator_flushes_to_exact_zero_at_1e7(self):
        # Regression for denormal underflow: ~100 short stops followed by
        # 1e7 long stops under decay < 1.  The short-stop sum decays
        # geometrically toward the denormal range; the renormalization
        # schedule must flush it to an exact 0.0 (absorbing), never leave
        # a denormal to slow down (or NaN-contaminate) the hot loop.
        adaptive = AdaptiveProposed(B, min_samples=10, decay=0.999)
        adaptive.observe_many(np.full(100, 5.0))  # short stops
        assert adaptive.to_state()["short_sum"] > 0.0
        adaptive.observe_many(np.full(10_000_000, 100.0))  # all long
        state = adaptive.to_state()
        assert state["short_sum"] == 0.0  # exact flush, not a denormal
        assert state["count"] == 10_000_100
        stats = adaptive.current_statistics()
        assert stats.q_b_plus == pytest.approx(1.0)
        assert stats.mu_b_minus == 0.0
        assert adaptive.selected_name == "TOI"

    def test_flush_threshold_is_far_above_denormals(self):
        # The flush must trigger while arithmetic is still normal.
        assert RENORM_FLUSH > 2.3e-308 * 1e10

    def test_live_accumulators_are_never_flushed(self):
        # Values above the flush threshold pass a renorm boundary intact.
        adaptive = AdaptiveProposed(B, decay=1.0)
        adaptive.observe_many(np.full(RENORM_INTERVAL, 5.0))
        assert adaptive.to_state()["short_sum"] == pytest.approx(5.0 * RENORM_INTERVAL)


class TestStateRoundTrip:
    def test_from_state_restores_bit_identically(self, rng):
        original = AdaptiveProposed(B, min_samples=5, decay=0.99)
        original.observe_many(rng.lognormal(3.0, 1.0, 500))
        restored = AdaptiveProposed.from_state(original.to_state())
        assert restored.to_state() == original.to_state()
        assert restored.selected_name == original.selected_name
        # And they evolve identically afterwards.
        tail = rng.lognormal(3.0, 1.0, 50)
        original.observe_many(tail)
        restored.observe_many(tail)
        assert restored.to_state() == original.to_state()

    def test_state_survives_json_round_trip(self):
        import json

        original = AdaptiveProposed(B, prior_stops=[5.0, 40.0, 0.1 + 0.2])
        state = json.loads(json.dumps(original.to_state()))
        assert AdaptiveProposed.from_state(state).to_state() == original.to_state()

    def test_cold_state_round_trip_keeps_fallback(self):
        restored = AdaptiveProposed.from_state(AdaptiveProposed(B).to_state())
        assert restored.selected_name == "N-Rand"
        assert restored.observed_stops == 0


class TestConvergence:
    def test_converges_to_static_selection(self, rng):
        from repro.fleet import area_config

        distribution = area_config("california").stop_length_distribution()
        stops = distribution.sample(400, rng)
        adaptive = AdaptiveProposed(B, min_samples=10, prior_stops=stops)
        static = ProposedOnline.from_samples(stops, B)
        assert adaptive.selected_name == static.selected_name

    def test_run_online_costs_match_protocol(self, rng):
        # With min_samples=1 and deterministic vertex winners, costs must
        # follow Eq. (3) with the threshold selected *before* each stop.
        adaptive = AdaptiveProposed(B, min_samples=1)
        stops = np.array([10.0, 10.0, 100.0])
        costs = adaptive.run_online(stops, rng)
        # First stop: N-Rand draw (cost <= stop + B); later stops use the
        # re-selected strategy.
        assert costs.shape == (3,)
        assert np.all(costs <= stops + B + 1e-9)
        assert np.all(costs >= np.minimum(stops, B) - 1e-9)

    def test_regret_shrinks_with_experience(self, rng):
        # Realized mean cost of the adaptive controller approaches the
        # static (omniscient) proposed strategy's expected cost.
        from repro.core.analysis import empirical_online_cost
        from repro.fleet import area_config

        distribution = area_config("chicago").stop_length_distribution()
        stops = distribution.sample(1500, rng)
        adaptive = AdaptiveProposed(B, min_samples=10)
        realized = adaptive.run_online(stops, rng).mean()
        static = ProposedOnline.from_samples(stops, B)
        expected = empirical_online_cost(static, stops)
        assert realized == pytest.approx(expected, rel=0.1)

    def test_expected_cost_delegates(self):
        adaptive = AdaptiveProposed(B, min_samples=1, prior_stops=[5.0, 6.0])
        # DET selected: expected cost of a short stop is the stop itself.
        assert adaptive.expected_cost(10.0) == 10.0
        np.testing.assert_allclose(
            adaptive.expected_cost_vec(np.array([10.0, 100.0])), [10.0, B + B]
        )
