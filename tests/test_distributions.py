"""Unit tests for the stop-length distribution toolkit."""

import math

import numpy as np
import pytest
from scipy import integrate

from repro.distributions import (
    DiscreteStopDistribution,
    EmpiricalDistribution,
    Exponential,
    LogNormal,
    MixtureDistribution,
    Pareto,
    ScaledDistribution,
    Uniform,
    Weibull,
    scale_to_mean,
    three_point,
    two_point,
)
from repro.errors import InvalidDistributionError, InvalidParameterError


class TestExponential:
    def test_mean(self):
        assert Exponential(40.0).mean() == pytest.approx(40.0)

    def test_partial_expectation_closed_form(self):
        dist = Exponential(40.0)
        numeric, _ = integrate.quad(lambda y: y * dist.pdf(y), 0, 28.0)
        assert dist.partial_expectation(28.0) == pytest.approx(numeric, rel=1e-9)

    def test_survival(self):
        assert Exponential(40.0).survival(40.0) == pytest.approx(math.exp(-1))

    def test_sampling_mean(self, rng):
        samples = Exponential(40.0).sample(20000, rng)
        assert samples.mean() == pytest.approx(40.0, rel=0.05)

    def test_invalid_mean_rejected(self):
        with pytest.raises(InvalidParameterError):
            Exponential(0.0)


class TestUniform:
    def test_partial_expectation(self):
        dist = Uniform(0.0, 20.0)
        assert dist.partial_expectation(10.0) == pytest.approx(2.5)
        assert dist.partial_expectation(20.0) == pytest.approx(10.0)
        assert dist.partial_expectation(100.0) == pytest.approx(10.0)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(InvalidParameterError):
            Uniform(10.0, 5.0)
        with pytest.raises(InvalidParameterError):
            Uniform(-1.0, 5.0)


class TestLogNormal:
    def test_partial_expectation_matches_quadrature(self):
        dist = LogNormal(mu=3.0, sigma=1.0)
        numeric, _ = integrate.quad(lambda y: y * dist.pdf(y), 0, 50.0)
        assert dist.partial_expectation(50.0) == pytest.approx(numeric, rel=1e-6)

    def test_mean_closed_form(self):
        dist = LogNormal(mu=3.0, sigma=1.0)
        assert dist.mean() == pytest.approx(math.exp(3.5), rel=1e-9)

    def test_partial_expectation_converges_to_mean(self):
        dist = LogNormal(mu=3.0, sigma=1.0)
        assert dist.partial_expectation(1e9) == pytest.approx(dist.mean(), rel=1e-6)


class TestParetoAndWeibull:
    def test_pareto_mean(self):
        assert Pareto(alpha=2.5, scale=30.0).mean() == pytest.approx(20.0)

    def test_pareto_infinite_mean(self):
        assert Pareto(alpha=0.9, scale=30.0).mean() == math.inf

    def test_pareto_survival_power_law(self):
        dist = Pareto(alpha=2.0, scale=30.0)
        assert dist.survival(30.0) == pytest.approx(0.25)

    def test_weibull_mean(self):
        # shape=1 reduces to exponential.
        assert Weibull(shape=1.0, scale=40.0).mean() == pytest.approx(40.0)


class TestDiscrete:
    def test_moments(self):
        dist = DiscreteStopDistribution([5.0, 60.0], [0.5, 0.5])
        assert dist.mean() == pytest.approx(32.5)
        assert dist.partial_expectation(28.0) == pytest.approx(2.5)
        assert dist.survival(28.0) == pytest.approx(0.5)

    def test_survival_includes_atom(self):
        dist = DiscreteStopDistribution([28.0], [1.0])
        assert dist.survival(28.0) == 1.0
        assert dist.partial_expectation(28.0) == 0.0

    def test_sampling(self, rng):
        dist = DiscreteStopDistribution([5.0, 60.0], [0.9, 0.1])
        samples = dist.sample(5000, rng)
        assert set(np.unique(samples)) <= {5.0, 60.0}
        assert (samples == 5.0).mean() == pytest.approx(0.9, abs=0.03)

    def test_invalid_probabilities_rejected(self):
        with pytest.raises(InvalidDistributionError):
            DiscreteStopDistribution([1.0, 2.0], [0.5, 0.6])

    def test_duplicate_values_rejected(self):
        with pytest.raises(InvalidDistributionError):
            DiscreteStopDistribution([1.0, 1.0], [0.5, 0.5])

    def test_two_point_constructor(self):
        dist = two_point(5.0, 60.0, 0.25)
        assert dist.survival(60.0) == pytest.approx(0.25)

    def test_two_point_degenerate_cases(self):
        assert two_point(5.0, 60.0, 0.0).mean() == 5.0
        assert two_point(5.0, 60.0, 1.0).mean() == 60.0

    def test_three_point_constructor(self):
        dist = three_point(10.0, 0.3, 60.0, 0.2)
        assert dist.cdf(0.0) == pytest.approx(0.5)
        assert dist.mean() == pytest.approx(0.3 * 10.0 + 0.2 * 60.0)

    def test_three_point_invalid_masses(self):
        with pytest.raises(InvalidParameterError):
            three_point(10.0, 0.8, 60.0, 0.3)


class TestMixture:
    def test_moments_are_weighted(self):
        mix = MixtureDistribution([Exponential(10.0), Exponential(100.0)], [0.7, 0.3])
        assert mix.mean() == pytest.approx(0.7 * 10 + 0.3 * 100)
        b = 28.0
        expected = 0.7 * Exponential(10.0).partial_expectation(b) + 0.3 * Exponential(
            100.0
        ).partial_expectation(b)
        assert mix.partial_expectation(b) == pytest.approx(expected)

    def test_pdf_integrates_to_one(self):
        mix = MixtureDistribution([Exponential(10.0), Exponential(100.0)], [0.7, 0.3])
        total, _ = integrate.quad(mix.pdf, 0, np.inf, limit=200)
        assert total == pytest.approx(1.0, rel=1e-6)

    def test_sampling_mixes(self, rng):
        mix = MixtureDistribution([Exponential(10.0), Exponential(1000.0)], [0.5, 0.5])
        samples = mix.sample(20000, rng)
        assert samples.mean() == pytest.approx(505.0, rel=0.1)

    def test_weights_must_sum_to_one(self):
        with pytest.raises(InvalidDistributionError):
            MixtureDistribution([Exponential(10.0)], [0.9])

    def test_empty_rejected(self):
        with pytest.raises(InvalidDistributionError):
            MixtureDistribution([], [])


class TestEmpirical:
    def test_cdf_and_survival(self):
        dist = EmpiricalDistribution([1.0, 2.0, 3.0, 4.0])
        assert dist.cdf(2.0) == pytest.approx(0.5)
        assert dist.survival(2.0) == pytest.approx(0.75)  # closed event

    def test_partial_expectation(self):
        dist = EmpiricalDistribution([10.0, 20.0, 100.0, 200.0])
        assert dist.partial_expectation(28.0) == pytest.approx(7.5)

    def test_mean_and_quantile(self):
        dist = EmpiricalDistribution([1.0, 3.0])
        assert dist.mean() == 2.0
        assert dist.quantile(0.5) == pytest.approx(2.0)

    def test_histogram_masses(self):
        dist = EmpiricalDistribution([1.0, 2.0, 3.0, 10.0])
        masses = dist.histogram([0.0, 5.0, 20.0])
        np.testing.assert_allclose(masses, [0.75, 0.25])

    def test_bootstrap_sampling(self, rng):
        dist = EmpiricalDistribution([1.0, 2.0])
        samples = dist.sample(1000, rng)
        assert set(np.unique(samples)) <= {1.0, 2.0}

    def test_empty_rejected(self):
        with pytest.raises(InvalidDistributionError):
            EmpiricalDistribution([])

    def test_count(self):
        assert EmpiricalDistribution([1.0, 2.0, 3.0]).count == 3


class TestScaled:
    def test_mean_scales(self):
        base = Exponential(10.0)
        scaled = ScaledDistribution(base, 3.0)
        assert scaled.mean() == pytest.approx(30.0)

    def test_shape_preserved(self):
        # Normalized survival is unchanged: S_scaled(s*y) = S_base(y).
        base = LogNormal(3.0, 1.0)
        scaled = ScaledDistribution(base, 2.0)
        for y in (10.0, 50.0, 200.0):
            assert scaled.survival(2.0 * y) == pytest.approx(base.survival(y), rel=1e-9)

    def test_partial_expectation_scales(self):
        base = Exponential(10.0)
        scaled = ScaledDistribution(base, 3.0)
        numeric, _ = integrate.quad(lambda y: y * scaled.pdf(y), 0, 28.0)
        assert scaled.partial_expectation(28.0) == pytest.approx(numeric, rel=1e-8)

    def test_scale_to_mean(self):
        base = LogNormal(3.0, 1.0)
        scaled = scale_to_mean(base, 75.0)
        assert scaled.mean() == pytest.approx(75.0, rel=1e-9)

    def test_sampling_scales(self, rng):
        base = Exponential(10.0)
        scaled = ScaledDistribution(base, 3.0)
        assert scaled.sample(20000, rng).mean() == pytest.approx(30.0, rel=0.05)

    def test_invalid_scale_rejected(self):
        with pytest.raises(InvalidParameterError):
            ScaledDistribution(Exponential(10.0), 0.0)
        with pytest.raises(InvalidParameterError):
            scale_to_mean(Exponential(10.0), -5.0)
