"""Learning-augmented session pins: recovery, SAFE parity, robustness.

Four guarantees from the serving contract:

* **crash recovery** — for ANY split point of the stream, abandoning an
  augmented session mid-run and recovering from its state directory
  restores the predictor tables and the trust accumulators (and hence
  every future λ) bit-identically — the state digest covers them;
* **SAFE parity** — a SAFE augmented session is byte-identical to the
  plain session: same decisions, same RNG stream, same cost;
* **batch == scalar** — ``submit_batch`` through the augmented staging
  path reproduces the scalar loop bit-for-bit;
* **robustness** — with adversarially corrupted predictions the
  realized cost never exceeds the PSK ``1 + 1/λ`` bound, while good
  time-of-day predictions beat the plain adaptive session.
"""

import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.service import (
    AdvisorSession,
    AugmentedAdvisorSession,
    AugmentedSessionConfig,
    ConstantPredictor,
    ContextualPredictor,
    HealthState,
    SessionConfig,
    TrustLearner,
    build_predictor,
)

B = 28.0
N_EVENTS = 40

#: Base knobs shared by the plain and augmented configs; snapshot_every=3
#: lands most recovery splits near a compaction boundary.
BASE = dict(
    break_even=B,
    min_samples=3,
    snapshot_every=3,
    dedup_window=64,
    drift_min_count=5,
    seed=99,
)

#: Contextual predictor warm after 4 stops, CVaR-capped warm-up.
AUG_CONFIG = AugmentedSessionConfig(
    **BASE,
    predictor="contextual",
    predictor_min_samples=4,
    trust_floor=0.2,
    cvar_alpha=0.1,
    cvar_cap=2.0,
)


def _events() -> list[tuple[str, float, float]]:
    # 3700 s steps walk the hour-of-day buckets while staying monotone.
    rng = np.random.default_rng(2014)
    lengths = rng.lognormal(3.0, 1.2, N_EVENTS)
    return [
        (f"e-{index:04d}", float(index) * 3700.0, float(length))
        for index, length in enumerate(lengths)
    ]


EVENTS = _events()


def _reference() -> AugmentedAdvisorSession:
    session = AugmentedAdvisorSession("v1", AUG_CONFIG)  # in-memory
    for event_id, timestamp, stop_length in EVENTS:
        session.submit(event_id, timestamp, stop_length)
    return session


REFERENCE = _reference()
REFERENCE_DIGEST = REFERENCE.state_digest()


class TestRecovery:
    @settings(max_examples=25, deadline=None)
    @given(split=st.integers(min_value=0, max_value=N_EVENTS))
    def test_any_split_restores_predictor_and_trust_bit_identically(self, split):
        with tempfile.TemporaryDirectory() as tmp:
            state_dir = Path(tmp) / "v1"
            first = AugmentedAdvisorSession("v1", AUG_CONFIG, state_dir)
            for event_id, timestamp, stop_length in EVENTS[:split]:
                first.submit(event_id, timestamp, stop_length)
            del first  # crash: no close, no final compaction
            recovered = AugmentedAdvisorSession("v1", AUG_CONFIG, state_dir)
            for event_id, timestamp, stop_length in EVENTS:
                recovered.submit(event_id, timestamp, stop_length)
            assert recovered.applied == N_EVENTS
            assert recovered.duplicates == split
            # The digest covers the augmented state, but assert the
            # learner internals explicitly too — the λ every future
            # decision plays depends on exactly these floats.
            assert recovered.predictor.to_state() == REFERENCE.predictor.to_state()
            assert (
                recovered.trust_learner.to_state()
                == REFERENCE.trust_learner.to_state()
            )
            assert recovered.effective_trust() == REFERENCE.effective_trust()
            assert recovered.state_digest() == REFERENCE_DIGEST

    def test_plain_snapshot_starts_augmented_learners_cold(self):
        # Upgrading a fleet in place: an augmented session reopening a
        # plain session's state directory must not crash — the learners
        # just start cold.
        with tempfile.TemporaryDirectory() as tmp:
            state_dir = Path(tmp) / "v1"
            plain = AdvisorSession("v1", SessionConfig(**BASE), state_dir)
            for event_id, timestamp, stop_length in EVENTS[:9]:
                plain.submit(event_id, timestamp, stop_length)
            plain.compact()
            del plain
            recovered = AugmentedAdvisorSession("v1", AUG_CONFIG, state_dir)
            assert recovered.applied == 9
            assert recovered.trust_learner.to_state() == TrustLearner().to_state()


class TestSafeParity:
    def test_safe_is_byte_identical_to_the_plain_session(self):
        plain_config = SessionConfig(**BASE, safe_recover_after=10_000_000)
        aug_config = AugmentedSessionConfig(
            **BASE,
            safe_recover_after=10_000_000,
            predictor="constant:50",
            cvar_alpha=0.25,
        )
        plain = AdvisorSession("v1", plain_config)
        augmented = AugmentedAdvisorSession("v1", aug_config)
        for session in (plain, augmented):
            session._on_alarm("forced")  # healthy -> degraded
            session._on_alarm("forced")  # degraded -> safe
            assert session.health is HealthState.SAFE
        for event_id, timestamp, stop_length in EVENTS:
            left = plain.submit(event_id, timestamp, stop_length)
            right = augmented.submit(event_id, timestamp, stop_length)
            assert left == right  # threshold, cost, labels — everything
        assert augmented.health is HealthState.SAFE
        assert plain.total_cost == augmented.total_cost
        assert plain.to_state()["rng"] == augmented.to_state()["rng"]


class TestBatchParity:
    def test_submit_batch_matches_scalar_bit_for_bit(self):
        scalar = AugmentedAdvisorSession("v1", AUG_CONFIG)
        scalar_decisions = [
            scalar.submit(event_id, timestamp, stop_length)
            for event_id, timestamp, stop_length in EVENTS
        ]
        batched = AugmentedAdvisorSession("v1", AUG_CONFIG)
        batched_decisions = []
        for start in range(0, N_EVENTS, 7):
            chunk = EVENTS[start : start + 7]
            batched_decisions.extend(
                batched.submit_batch(
                    [event_id for event_id, _, _ in chunk],
                    [timestamp for _, timestamp, _ in chunk],
                    [stop_length for _, _, stop_length in chunk],
                )
            )
        assert batched_decisions == scalar_decisions
        assert batched.state_digest() == scalar.state_digest()


class TestRobustness:
    def test_corrupted_predictions_respect_the_psk_bound(self):
        # Adversarial predictor: always claims a long stop while the
        # stream is mostly short ones.  With pinned trust λ the realized
        # cost may not exceed (1 + 1/λ) x offline optimum.
        trust = 0.4
        config = AugmentedSessionConfig(
            **BASE,
            predictor="constant:1000",
            trust=trust,
        )
        assert config.robustness_guarantee == pytest.approx(1.0 + 1.0 / trust)
        session = AugmentedAdvisorSession("v1", config)
        rng = np.random.default_rng(42)
        offline = 0.0
        for index in range(400):
            stop = float(rng.lognormal(2.5, 0.5))
            session.submit(f"c-{index:04d}", float(index), stop)
            offline += min(stop, B)
        # Stationary stream: the ladder stays out of SAFE, so the PSK
        # bound (not the safe fallback) is what's being exercised.
        assert session.health is not HealthState.SAFE
        assert session.total_cost <= config.robustness_guarantee * offline + 1e-9

    def test_good_time_of_day_predictions_beat_plain_adaptive(self):
        # Bimodal day: short stops by day, long stops by night.  The
        # contextual predictor separates the regimes by hour bucket;
        # the plain adaptive estimator must fit one mixed distribution.
        knobs = dict(BASE, length_threshold=1e9, split_threshold=1e9)
        plain = AdvisorSession("v1", SessionConfig(**knobs))
        augmented = AugmentedAdvisorSession(
            "v1",
            AugmentedSessionConfig(
                **knobs, predictor="contextual", predictor_min_samples=4
            ),
        )
        rng = np.random.default_rng(7)
        step = 1800.0  # two stops per hour
        for index in range(960):  # 20 simulated days
            timestamp = index * step
            hour = int((timestamp % 86400.0) // 3600.0)
            mean = 5.0 if hour < 12 else 200.0
            stop = float(mean * rng.lognormal(0.0, 0.1))
            for session in (plain, augmented):
                session.submit(f"d-{index:04d}", timestamp, stop)
        assert augmented.total_cost < plain.total_cost

    def test_trust_learner_tracks_the_wrong_side_rate(self):
        learner = TrustLearner(decay=1.0, floor=0.1)
        assert learner.trust == 1.0  # uninformed: fully robust (DET)
        for _ in range(9):
            learner.update(100.0, 100.0, B)  # right side
        learner.update(100.0, 1.0, B)  # wrong side
        assert learner.wrong_rate == pytest.approx(0.1)
        assert learner.trust == pytest.approx((0.1 / 0.9) ** 0.5)
        # Worse than a coin: back to DET.
        for _ in range(20):
            learner.update(100.0, 1.0, B)
        assert learner.trust == 1.0


class TestPredictors:
    def test_contextual_cold_then_bucket_then_global(self):
        predictor = ContextualPredictor(min_samples=2)
        assert predictor.predict(0.0) is None
        predictor.observe(0.0, 10.0)  # hour 0
        predictor.observe(3600.0, 20.0)  # hour 1
        # Global mean is warm (2 samples), buckets are not.
        assert predictor.predict(7200.0) == pytest.approx(15.0)
        predictor.observe(86400.0, 30.0)  # hour 0, next day
        assert predictor.predict(86400.0) == pytest.approx(20.0)  # bucket mean

    def test_build_predictor_specs(self):
        assert build_predictor("none") is None
        inline = build_predictor("contextual:7:0.9")
        assert (inline.min_samples, inline.decay) == (7, 0.9)
        defaults = build_predictor("contextual", min_samples=3, decay=0.8)
        assert (defaults.min_samples, defaults.decay) == (3, 0.8)
        constant = build_predictor("constant:42.5")
        assert isinstance(constant, ConstantPredictor)
        assert constant.predict(0.0) == 42.5
        for bad in ("bogus", "constant:x", "contextual:1", "constant:-1"):
            with pytest.raises(InvalidParameterError):
                build_predictor(bad)

    def test_mismatched_predictor_kind_in_snapshot_raises(self):
        with tempfile.TemporaryDirectory() as tmp:
            state_dir = Path(tmp) / "v1"
            first = AugmentedAdvisorSession("v1", AUG_CONFIG, state_dir)
            for event_id, timestamp, stop_length in EVENTS[:6]:
                first.submit(event_id, timestamp, stop_length)
            first.compact()
            del first
            constant = AugmentedSessionConfig(**BASE, predictor="constant:50")
            with pytest.raises(InvalidParameterError):
                AugmentedAdvisorSession("v1", constant, state_dir)
