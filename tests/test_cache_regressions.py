"""Regression tests for the cache-keying and payload-integrity fixes.

Each class pins one historical bug:

* dict params whose keys differed only in Python type (``{1: "a"}`` vs
  ``{"1": "a"}``) collided onto one cache key;
* non-finite floats either crashed ``cache_key`` or leaked ``NaN`` /
  ``Infinity`` tokens (non-standard JSON) into stored payloads;
* temp files orphaned by killed writers survived ``clear()`` forever;
* ``StageTiming.from_payload`` crashed on pre-``tasks`` payloads.
"""

import json
import math

import numpy as np
import pytest

from repro.engine import (
    ResultCache,
    StageTiming,
    cache_key,
    decode_payload,
    encode_payload,
)

#: Pinned code version so keys in this file don't depend on source edits.
_V = "test-version"


def _key(params: dict) -> str:
    return cache_key("regression", params, version=_V)


class TestKeyTypeCollisions:
    def test_int_and_str_keys_are_distinct(self):
        assert _key({1: "a"}) != _key({"1": "a"})

    def test_bool_and_int_keys_are_distinct(self):
        # bool is an int subclass; str(True) != str(1) saves the naive
        # coercion here, but the tagged form must still keep them apart
        # from each other and from the string spellings.
        keys = [_key({k: "a"}) for k in (True, 1, "True", "1")]
        assert len(set(keys)) == len(keys)

    def test_float_and_int_keys_are_distinct(self):
        assert _key({1.0: "a"}) != _key({1: "a"})

    def test_nested_dict_keys_are_tagged_too(self):
        assert _key({"outer": {2: "x"}}) != _key({"outer": {"2": "x"}})

    def test_equal_params_still_share_a_key(self):
        # The fix must not break the point of the cache: same params
        # (regardless of dict order) address the same entry.
        assert _key({"a": 1, "b": 2}) == _key({"b": 2, "a": 1})


class TestNonFiniteParams:
    def test_nan_param_is_keyable(self):
        _key({"threshold": float("nan")})  # must not raise

    def test_nonfinite_values_key_distinctly(self):
        keys = [
            _key({"x": value})
            for value in (float("nan"), float("inf"), float("-inf"), 0.0)
        ]
        assert len(set(keys)) == len(keys)

    def test_no_nan_token_in_stored_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = _key({"x": 1})
        cache.put(key, {"series": [1.0, float("nan"), float("inf")]})
        raw = cache.entry_path(key).read_text()
        for token in ("NaN", "Infinity"):
            assert token not in raw

    def test_nonfinite_payload_round_trips_losslessly(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = _key({"x": 2})
        cache.put(key, {"v": [float("nan"), float("inf"), float("-inf"), 3.5]})
        restored = cache.get(key)["v"]
        assert math.isnan(restored[0])
        assert restored[1] == float("inf")
        assert restored[2] == float("-inf")
        assert restored[3] == 3.5

    def test_encode_decode_inverse_on_nested_payloads(self):
        payload = {"a": {"b": [float("nan"), {"c": float("-inf")}]}, "d": 1}
        restored = decode_payload(encode_payload(payload))
        assert math.isnan(restored["a"]["b"][0])
        assert restored["a"]["b"][1]["c"] == float("-inf")
        assert restored["d"] == 1

    def test_numpy_nonfinite_scalars_handled(self):
        _key({"x": np.float64("nan"), "y": np.array([np.inf, 1.0])})


class TestOrphanSweep:
    def _orphan(self, cache: ResultCache):
        bucket = cache.root / "ab"
        bucket.mkdir(parents=True, exist_ok=True)
        orphan = bucket / "abcd.json.tmp12345"
        orphan.write_text('{"partial":')
        return orphan

    def test_orphans_are_not_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        orphan = self._orphan(cache)
        assert orphan not in cache.entries()
        assert cache.orphan_tmp_files() == [orphan]

    def test_clear_sweeps_orphans(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_key({"x": 1}), {"value": 1})
        self._orphan(cache)
        assert cache.clear() == 2
        assert cache.entries() == []
        assert cache.orphan_tmp_files() == []

    def test_doctor_reports_orphans_and_invalid_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_key({"x": 1}), {"value": 1})  # healthy
        orphan = self._orphan(cache)
        # An entry written by pre-fix code: carries a NaN token.
        legacy = cache.root / "cd" / "cdef.json"
        legacy.parent.mkdir(parents=True, exist_ok=True)
        legacy.write_text('{"value": NaN}')
        report = cache.doctor()
        assert report["orphans"] == [orphan]
        assert report["invalid"] == [legacy]

    def test_doctor_clean_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_key({"x": 1}), {"value": 1})
        report = cache.doctor()
        assert report["orphans"] == [] and report["invalid"] == []


class TestStageTimingPayloads:
    def test_from_payload_tolerates_missing_tasks(self):
        # Cached payloads written before `tasks` existed lack the field;
        # reading them must not raise.
        timing = StageTiming.from_payload({"stage": "sweep", "seconds": 1.5})
        assert timing == StageTiming(stage="sweep", seconds=1.5, tasks=None)

    @pytest.mark.parametrize("tasks", [None, 0, 64])
    def test_round_trip(self, tasks):
        timing = StageTiming(stage="eval", seconds=0.25, tasks=tasks)
        assert StageTiming.from_payload(timing.to_payload()) == timing

    def test_payload_survives_json(self):
        timing = StageTiming(stage="grid", seconds=2.0, tasks=16)
        restored = StageTiming.from_payload(json.loads(json.dumps(timing.to_payload())))
        assert restored == timing
