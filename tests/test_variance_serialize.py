"""Unit tests for cost-variance analysis and strategy serialization."""

import json

import numpy as np
import pytest

from repro.core import (
    BDet,
    BRand,
    Deterministic,
    MOMRand,
    NeverOff,
    NRand,
    ProposedOnline,
    StopStatistics,
    TurnOffImmediately,
)
from repro.core.serialize import strategy_from_dict, strategy_to_dict
from repro.errors import InvalidParameterError
from repro.evaluation.variance import risk_report, weekly_cost_moments

B = 28.0


class TestCostVariance:
    def test_deterministic_strategies_zero_variance(self):
        for strategy in (Deterministic(B), TurnOffImmediately(B), BDet(B, 10.0), NeverOff(B)):
            for y in (5.0, B, 100.0):
                assert strategy.cost_variance(y) == 0.0

    def test_nrand_variance_matches_monte_carlo(self, rng):
        strategy = NRand(B)
        y = 20.0
        draws = strategy.draw_thresholds(100000, rng)
        costs = np.where(y < draws, y, draws + B)
        assert strategy.cost_variance(y) == pytest.approx(costs.var(), rel=0.03)

    def test_momrand_variance_positive(self):
        assert MOMRand(B, 10.0).cost_variance(20.0) > 0.0

    def test_nrand_closed_form_matches_quadrature(self):
        from scipy import integrate

        strategy = NRand(B)
        for y in (3.0, 17.0, B, 80.0):
            upper = min(y, B)
            quad, _ = integrate.quad(
                lambda x: (x + B) ** 2 * strategy.pdf(x), 0.0, upper
            )
            quad += y * y * (1.0 - strategy.cdf(y))
            assert strategy.expected_cost_squared(y) == pytest.approx(quad, rel=1e-9)

    def test_brand_closed_form_matches_quadrature(self):
        from scipy import integrate

        strategy = BRand(B, 11.0)
        for y in (3.0, 11.0, 20.0, 80.0):
            upper = min(y, strategy.beta)
            quad, _ = integrate.quad(
                lambda x: (x + B) ** 2 * strategy.pdf(x), 0.0, upper
            )
            quad += y * y * (1.0 - strategy.cdf(y))
            assert strategy.expected_cost_squared(y) == pytest.approx(quad, rel=1e-9)

    def test_brand_variance_vanishes_below_support(self):
        strategy = BRand(B, 10.0)
        # Stops shorter than any threshold draw... a stop of 0 costs 0
        # under every draw except threshold 0 (measure zero).
        assert strategy.cost_variance(0.0) == pytest.approx(0.0, abs=1e-9)
        assert strategy.cost_variance(20.0) > 0.0

    def test_weekly_moments_sum_per_stop(self, rng):
        stops = np.array([10.0, 20.0, 50.0])
        strategy = NRand(B)
        moments = weekly_cost_moments(strategy, stops)
        expected_mean = strategy.expected_cost_vec(stops).sum()
        expected_var = sum(strategy.cost_variance(float(v)) for v in stops)
        assert moments.mean == pytest.approx(expected_mean)
        assert moments.std == pytest.approx(np.sqrt(expected_var))

    def test_risk_report_shape(self, rng):
        stops = np.array([10.0, 40.0, 90.0, 5.0])
        report = risk_report(stops, B)
        assert set(report) == {"Proposed", "TOI", "NEV", "DET", "N-Rand", "MOM-Rand"}
        # Deterministic baselines: zero std.  Randomized: positive when
        # some stop can straddle the draw.
        assert report["TOI"].std == 0.0
        assert report["DET"].std == 0.0
        assert report["N-Rand"].std > 0.0

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            weekly_cost_moments(Deterministic(B), np.array([]))


class TestSerialization:
    @pytest.mark.parametrize(
        "strategy",
        [
            NeverOff(B),
            TurnOffImmediately(B),
            Deterministic(B),
            NRand(B),
            BDet(B, 9.5),
            BRand(B, 12.0),
            MOMRand(B, 17.0),
        ],
        ids=lambda s: s.name,
    )
    def test_round_trip_preserves_behaviour(self, strategy):
        document = json.loads(json.dumps(strategy_to_dict(strategy)))
        restored = strategy_from_dict(document)
        assert type(restored) is type(strategy)
        for y in (0.0, 5.0, B, 100.0):
            assert restored.expected_cost(y) == pytest.approx(strategy.expected_cost(y))

    def test_proposed_round_trip_reselects(self):
        original = ProposedOnline(StopStatistics(0.02 * B, 0.3, B))
        restored = strategy_from_dict(strategy_to_dict(original))
        assert isinstance(restored, ProposedOnline)
        assert restored.selected_name == original.selected_name
        assert restored.worst_case_cr == pytest.approx(original.worst_case_cr)

    def test_unknown_type_rejected(self):
        with pytest.raises(InvalidParameterError):
            strategy_from_dict({"type": "martian", "break_even": B})

    def test_malformed_document_rejected(self):
        with pytest.raises(InvalidParameterError):
            strategy_from_dict({"break_even": B})

    def test_unserializable_strategy_rejected(self):
        from repro.core import AdaptiveProposed

        with pytest.raises(InvalidParameterError):
            strategy_to_dict(AdaptiveProposed(B))
