"""The engine's central promise: worker count never changes results.

Every parallelized entry point spawns its per-task random state from a
single ``SeedSequence`` in the parent *before* dispatch, so a serial
run, ``--jobs 2`` and ``--jobs 4`` must be bit-identical — and a cached
result must serve later invocations byte for byte, asserted through the
cache's hit counter rather than wall-clock.
"""

import numpy as np
import pytest

from repro.constants import B_SSV
from repro.core import NRand
from repro.engine import ResultCache, cache_key
from repro.evaluation import monte_carlo_cr
from repro.experiments import cached_run, run_experiment

JOB_COUNTS = (1, 2, 4)

#: Small enough to run three times per figure in a few seconds.
SWEEP_PARAMS = {
    "means": (10.0, 30.0, 120.0),
    "vehicles_per_point": 6,
    "stops_per_vehicle": 20,
    "grid_size": 64,
}


def _comparable_payload(result) -> dict:
    """The result payload minus wall-time measurements."""
    payload = result.to_payload()
    payload.pop("timings", None)
    return payload


@pytest.mark.parametrize("experiment_id", ["fig5", "fig6"])
def test_sweeps_identical_across_worker_counts(experiment_id):
    reference = None
    for jobs in JOB_COUNTS:
        result = run_experiment(experiment_id, jobs=jobs, **SWEEP_PARAMS)
        payload = _comparable_payload(result)
        if reference is None:
            reference = payload
        else:
            assert payload == reference, f"jobs={jobs} diverged from serial"


def test_monte_carlo_identical_across_worker_counts():
    stops = np.random.default_rng(7).exponential(40.0, size=50)
    samples = {}
    for jobs in JOB_COUNTS:
        estimate = monte_carlo_cr(
            NRand(B_SSV), stops, repetitions=24, rng=np.random.default_rng(3), jobs=jobs
        )
        samples[jobs] = estimate.samples
    assert np.array_equal(samples[1], samples[2])
    assert np.array_equal(samples[1], samples[4])
    # Randomized strategy: the draws must actually vary across repetitions.
    assert np.std(samples[1]) > 0.0


class TestResultCache:
    def test_cached_run_skips_recomputation(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = cached_run("appc", cache=cache)
        assert (cache.hits, cache.misses) == (0, 1)
        second = cached_run("appc", cache=cache)
        assert (cache.hits, cache.misses) == (1, 1)
        assert _comparable_payload(first) == _comparable_payload(second)
        # A cache hit replays the stored run verbatim, timings included.
        assert second.to_payload() == first.to_payload()

    def test_hit_payload_is_byte_identical(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = run_experiment("appc")
        key = cache_key("appc", {})
        stored = cache.put(key, result.to_payload())
        assert cache.get_bytes(key) == stored
        assert cache.get_bytes(key) == stored  # stable across reads

    def test_jobs_excluded_from_cache_key(self, tmp_path):
        cache = ResultCache(tmp_path)
        cached_run("appc", cache=cache, jobs=1)
        cached_run("appc", cache=cache, jobs=4)
        assert cache.hits == 1  # the jobs=4 call was served by the jobs=1 entry

    def test_no_cache_bypasses_store(self, tmp_path):
        cache = ResultCache(tmp_path)
        cached_run("appc", cache=cache, use_cache=False)
        assert (cache.hits, cache.misses) == (0, 0)
        assert cache.entries() == []

    def test_clear_empties_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        cached_run("appc", cache=cache)
        assert len(cache.entries()) == 1
        assert cache.clear() == 1
        assert cache.entries() == []
        assert cache.size_bytes() == 0
