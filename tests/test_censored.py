"""Unit tests for right-censored stop observations and their effect on
the constrained statistics vs the first moment."""

import numpy as np
import pytest

from repro.constants import MOM_RAND_MU_THRESHOLD
from repro.core import MOMRand, StopStatistics
from repro.distributions import CensoredDistribution, Exponential, Pareto
from repro.errors import InvalidParameterError

B = 28.0


class TestCensoredDistribution:
    @pytest.fixture(scope="class")
    def censored(self):
        return CensoredDistribution(Exponential(60.0), ceiling=300.0)

    def test_cdf_saturates_at_ceiling(self, censored):
        assert censored.cdf(300.0) == 1.0
        assert censored.cdf(100.0) == pytest.approx(Exponential(60.0).cdf(100.0))

    def test_survival_zero_past_ceiling(self, censored):
        assert censored.survival(301.0) == 0.0
        # The atom at the ceiling keeps the closed-event convention.
        assert censored.survival(300.0) == pytest.approx(
            Exponential(60.0).survival(300.0)
        )

    def test_mean_is_expected_min(self, censored, rng):
        samples = np.minimum(Exponential(60.0).sample(100000, rng), 300.0)
        assert censored.mean() == pytest.approx(samples.mean(), rel=0.02)

    def test_sampling_capped(self, censored, rng):
        samples = censored.sample(5000, rng)
        assert samples.max() <= 300.0

    def test_censoring_probability(self, censored):
        assert censored.censoring_probability() == pytest.approx(
            np.exp(-300.0 / 60.0), rel=1e-9
        )

    def test_invalid_ceiling_rejected(self):
        with pytest.raises(InvalidParameterError):
            CensoredDistribution(Exponential(60.0), 0.0)


class TestCensoringBias:
    def test_constrained_statistics_unbiased_above_b(self):
        # With the ceiling above B, (mu-, q+) are exactly the base's.
        base = Pareto(alpha=1.6, scale=200.0)
        censored = CensoredDistribution(base, ceiling=600.0)
        base_stats = StopStatistics.from_distribution(base, B)
        censored_stats = StopStatistics.from_distribution(censored, B)
        assert censored_stats.mu_b_minus == pytest.approx(base_stats.mu_b_minus, rel=1e-9)
        assert censored_stats.q_b_plus == pytest.approx(base_stats.q_b_plus, rel=1e-9)

    def test_first_moment_biased_down(self):
        base = Pareto(alpha=1.6, scale=200.0)
        censored = CensoredDistribution(base, ceiling=600.0)
        assert censored.mean() < base.mean()

    def test_censoring_can_flip_mom_rand_regime(self):
        # A heavy tail keeps the true mean above the MOM-Rand threshold,
        # but aggressive censoring drags the *observed* mean below it —
        # MOM-Rand would then wrongly switch to its revised pdf while the
        # (mu-, q+) statistics are untouched.
        base = Pareto(alpha=1.2, scale=30.0)  # true mean 150
        threshold = MOM_RAND_MU_THRESHOLD * B  # ~23.4 s
        assert base.mean() > threshold
        censored = CensoredDistribution(base, ceiling=B + 1.0)
        assert censored.mean() < threshold
        assert not MOMRand(B, base.mean()).uses_revised_pdf
        assert MOMRand(B, censored.mean()).uses_revised_pdf

    def test_ceiling_below_b_does_bias_q_plus(self):
        # Documented failure mode: censoring below B destroys the
        # long-stop statistic too (stops appear short).
        base = Exponential(60.0)
        censored = CensoredDistribution(base, ceiling=B / 2.0)
        stats = StopStatistics.from_distribution(censored, B)
        assert stats.q_b_plus == 0.0  # everything observed below B
