"""Properties of the CVaR-α-constrained strategy (repro.core.tailrisk).

Three layers:

* Hypothesis properties — for ANY feasible (α, τ, B) the mixture is a
  probability distribution (continuous mass + atom integrate to 1) and
  the realized ``CVaR_α(y)/opt(y)`` respects the cap at every stop
  length;
* the N-Rand limit — as α → 1 (cap ≥ 2) the constraint goes slack,
  ``ρ* = 1`` exactly, and every observable matches N-Rand within 1e-9;
* quadrature cross-checks — the closed-form ``cvar_cost`` branches
  against a numeric tail mean on a dense quantile grid.
"""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.constants import E
from repro.core import NRand, TailRiskRand, max_nrand_weight, tail_cap_feasible
from repro.errors import InvalidParameterError

B = 28.0


def _numeric_cvar(strategy: TailRiskRand, y: float, n: int = 400_000) -> float:
    """Tail mean of the per-stop cost on a midpoint quantile grid."""
    b = strategy.break_even
    rho = strategy.nrand_weight
    quantiles = (np.arange(n) + 0.5) / n
    with np.errstate(divide="ignore"):
        thresholds = np.where(
            quantiles < rho,
            b * np.log1p((quantiles / np.maximum(rho, 1e-300)) * (E - 1.0)),
            b,
        )
    costs = np.where(thresholds <= y, thresholds + b, y)
    k = max(1, int(round(strategy.alpha * n)))
    return float(np.sort(costs)[n - k :].mean())


class TestDistribution:
    @settings(max_examples=30, deadline=None)
    @given(
        alpha=st.floats(min_value=0.02, max_value=1.0),
        cap=st.floats(min_value=1.1, max_value=4.0),
        b=st.floats(min_value=5.0, max_value=300.0),
    )
    def test_mass_integrates_to_one_and_cap_is_respected(self, alpha, cap, b):
        assume(tail_cap_feasible(alpha, cap))
        strategy = TailRiskRand(b, alpha, cap)
        xs = np.linspace(0.0, b, 2001)
        mass = np.trapezoid([strategy.pdf(x) for x in xs], xs) + strategy.atom_weight
        assert abs(mass - 1.0) < 1e-5
        for y in np.linspace(0.05 * b, 3.0 * b, 23):
            assert strategy.cvar_ratio(float(y)) <= cap * (1.0 + 1e-9) + 1e-9

    def test_inverse_cdf_roundtrips_the_cdf(self):
        strategy = TailRiskRand(B, 0.1, 2.0)
        rho = strategy.nrand_weight
        for u in np.linspace(0.0, 0.999, 41):
            x = strategy.inverse_cdf(float(u))
            assert 0.0 <= x <= B
            if u < rho:  # continuous branch: exact roundtrip
                assert strategy.cdf(x) == pytest.approx(float(u), abs=1e-12)
            else:  # atom: everything above rho maps to B
                assert x == B
        with pytest.raises(InvalidParameterError):
            strategy.inverse_cdf(1.5)

    def test_draw_consumes_exactly_one_uniform(self):
        # Stream parity with N-Rand: one uniform per draw no matter
        # which mixture component it lands in (the serving layer's
        # batched/scalar bit-identity depends on it).
        strategy = TailRiskRand(B, 0.1, 2.0)
        rng = np.random.default_rng(7)
        draws = [strategy.draw_threshold(rng) for _ in range(50)]
        replay = np.random.default_rng(7)
        expected = [strategy.inverse_cdf(float(replay.uniform())) for _ in range(50)]
        assert draws == expected


class TestFeasibility:
    def test_caps_at_or_above_two_always_feasible(self):
        assert tail_cap_feasible(0.001, 2.0)
        assert tail_cap_feasible(1.0, 2.0)

    def test_caps_below_two_need_slack_nrand(self):
        # alpha*(cap-1)*(e-1) >= 1: at cap=1.8, needs alpha >= 0.7275...
        assert not tail_cap_feasible(0.5, 1.8)
        assert tail_cap_feasible(0.8, 1.8)
        assert max_nrand_weight(0.8, 1.8) == 1.0

    @pytest.mark.parametrize(
        "alpha,cap",
        [(0.0, 2.0), (1.5, 2.0), (0.5, 1.0), (0.5, float("inf")), (0.5, 1.8)],
    )
    def test_bad_or_infeasible_parameters_raise(self, alpha, cap):
        with pytest.raises(InvalidParameterError):
            max_nrand_weight(alpha, cap)
        with pytest.raises(InvalidParameterError):
            TailRiskRand(B, alpha, cap)


class TestNRandLimit:
    @pytest.mark.parametrize("alpha", [0.59, 0.9, 1.0])
    def test_alpha_to_one_degenerates_to_nrand_within_1e9(self, alpha):
        # The constraint is slack at alpha >= 1/((cap-1)(e-1)) ~ 0.582
        # for cap=2, so rho* = 1 exactly: the strategy IS N-Rand.
        strategy = TailRiskRand(B, alpha, 2.0)
        nrand = NRand(B)
        assert strategy.nrand_weight == 1.0
        assert strategy.atom_weight == 0.0
        assert abs(strategy.worst_case_expected_cr - E / (E - 1.0)) <= 1e-9
        for u in np.linspace(0.0, 1.0, 101):
            delta = strategy.inverse_cdf(float(u)) - nrand.inverse_cdf(float(u))
            assert abs(delta) <= 1e-9
        for y in np.linspace(0.5, 3.0 * B, 37):
            delta = strategy.expected_cost(float(y)) - nrand.expected_cost(float(y))
            assert abs(delta) <= 1e-9
            assert abs(strategy.pdf(float(y)) - nrand.pdf(float(y))) <= 1e-9

    def test_rho_shrinks_with_tighter_tails(self):
        weights = [max_nrand_weight(alpha, 2.0) for alpha in (0.5, 0.2, 0.1, 0.02)]
        assert weights == sorted(weights, reverse=True)
        assert weights[-1] == pytest.approx(0.02 * (E - 1.0))


class TestClosedForms:
    @pytest.mark.parametrize(
        "alpha,cap,y",
        [
            (0.05, 2.0, 14.0),  # binding regime: m(y) <= alpha, y < B
            (0.05, 2.0, 27.0),  # deep-tail regime: m(y) > alpha, y < B
            (0.50, 2.0, 40.0),  # y >= B, tail spills past the atom
            (0.05, 2.0, 40.0),  # y >= B, atom alone covers the tail
            (0.25, 3.0, 10.0),  # binding regime at a looser cap
        ],
    )
    def test_cvar_cost_matches_quadrature(self, alpha, cap, y):
        strategy = TailRiskRand(B, alpha, cap)
        closed = strategy.cvar_cost(y)
        numeric = _numeric_cvar(strategy, y)
        assert closed == pytest.approx(numeric, rel=1e-3)

    def test_atom_only_tail_is_twice_break_even(self):
        strategy = TailRiskRand(B, 0.05, 2.0)
        assert 1.0 - strategy.nrand_weight >= 0.05  # atom covers the tail
        assert strategy.cvar_cost(B) == 2.0 * B
        assert strategy.cvar_cost(10.0 * B) == 2.0 * B

    def test_cap_binds_exactly_when_rho_below_one(self):
        strategy = TailRiskRand(B, 0.1, 2.0)
        assert strategy.nrand_weight < 1.0
        # sup_y CVaR/opt is attained in the binding regime where the
        # ratio is flat at cap; verify the sup over a dense grid.
        ratios = [strategy.cvar_ratio(float(y)) for y in np.linspace(0.1, 3 * B, 600)]
        assert max(ratios) == pytest.approx(strategy.cap, rel=1e-9)

    def test_worst_case_expected_cr_matches_grid_sup(self):
        for alpha, cap in ((0.1, 2.0), (0.5, 2.5), (1.0, 2.0)):
            strategy = TailRiskRand(B, alpha, cap)
            grid = np.linspace(0.1, 5.0 * B, 800)
            ratios = strategy.expected_cost_vec(grid) / np.minimum(grid, B)
            assert float(ratios.max()) <= strategy.worst_case_expected_cr + 1e-9
            assert float(ratios.max()) == pytest.approx(
                strategy.worst_case_expected_cr, rel=1e-6
            )
            assert np.allclose(
                strategy.expected_cost_vec(grid),
                [strategy.expected_cost(float(y)) for y in grid],
            )
