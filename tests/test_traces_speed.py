"""Unit tests for speed traces and stop extraction."""

import numpy as np
import pytest

from repro.errors import TraceFormatError
from repro.traces import SpeedTrace, extract_stops


def make_trace(speeds, start=0.0, dt=1.0):
    return SpeedTrace(start_time=start, dt=dt, speeds=np.asarray(speeds, dtype=float))


class TestSpeedTrace:
    def test_duration_and_times(self):
        trace = make_trace([1.0, 2.0, 3.0], start=5.0)
        assert trace.duration == 3.0
        np.testing.assert_allclose(trace.times, [5.0, 6.0, 7.0])

    def test_distance(self):
        trace = make_trace([10.0, 10.0, 0.0])
        assert trace.distance() == pytest.approx(20.0)

    def test_negative_speed_rejected(self):
        with pytest.raises(TraceFormatError):
            make_trace([1.0, -1.0])

    def test_empty_rejected(self):
        with pytest.raises(TraceFormatError):
            make_trace([])

    def test_bad_dt_rejected(self):
        with pytest.raises(TraceFormatError):
            SpeedTrace(start_time=0.0, dt=0.0, speeds=np.array([1.0]))


class TestExtractStops:
    def test_single_stop(self):
        speeds = [10.0] * 5 + [0.0] * 10 + [10.0] * 5
        stops = extract_stops(make_trace(speeds))
        assert len(stops) == 1
        assert stops[0].start_time == 5.0
        assert stops[0].duration == 10.0

    def test_no_stops(self):
        assert extract_stops(make_trace([10.0] * 20)) == []

    def test_threshold_counts_creep_as_stopped(self):
        speeds = [10.0] * 5 + [0.3] * 10 + [10.0] * 5
        stops = extract_stops(make_trace(speeds), speed_threshold=0.5)
        assert len(stops) == 1
        assert stops[0].duration == 10.0

    def test_merge_gap_joins_blips(self):
        # Two rest periods separated by a 2 s moving blip -> one stop.
        speeds = [10.0] * 5 + [0.0] * 5 + [5.0] * 2 + [0.0] * 5 + [10.0] * 5
        stops = extract_stops(make_trace(speeds), merge_gap=3.0)
        assert len(stops) == 1
        assert stops[0].duration == 12.0

    def test_no_merge_when_gap_large(self):
        speeds = [10.0] * 5 + [0.0] * 5 + [5.0] * 10 + [0.0] * 5 + [10.0] * 5
        stops = extract_stops(make_trace(speeds), merge_gap=3.0)
        assert len(stops) == 2

    def test_min_duration_filters_noise(self):
        speeds = [10.0] * 5 + [0.0] * 1 + [10.0] * 5
        assert extract_stops(make_trace(speeds), min_duration=2.0) == []

    def test_stop_at_trace_end(self):
        speeds = [10.0] * 5 + [0.0] * 8
        stops = extract_stops(make_trace(speeds))
        assert len(stops) == 1
        assert stops[0].duration == 8.0

    def test_offset_start_time(self):
        speeds = [10.0] * 3 + [0.0] * 5 + [10.0] * 2
        stops = extract_stops(make_trace(speeds, start=100.0))
        assert stops[0].start_time == 103.0

    def test_invalid_parameters_rejected(self):
        trace = make_trace([1.0, 0.0, 1.0])
        with pytest.raises(TraceFormatError):
            extract_stops(trace, speed_threshold=-1.0)
        with pytest.raises(TraceFormatError):
            extract_stops(trace, min_duration=-1.0)
