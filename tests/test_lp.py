"""Unit tests for the Section 4.4 LP cross-check."""

import math

import numpy as np
import pytest

from repro.constants import E
from repro.core.constrained import ConstrainedSkiRentalSolver
from repro.core.lp import lp_coefficients, solve_lp, verify_against_lp
from repro.core.stats import StopStatistics

B = 28.0


class TestCoefficients:
    def test_k_alpha_matches_paper(self):
        stats = StopStatistics(7.0, 0.25, B)
        offline = stats.expected_offline_cost
        coeffs = lp_coefficients(stats)
        assert coeffs.k_alpha == pytest.approx(B - E / (E - 1) * offline)

    def test_k_beta_matches_paper(self):
        stats = StopStatistics(7.0, 0.25, B)
        offline = stats.expected_offline_cost
        coeffs = lp_coefficients(stats)
        assert coeffs.k_beta == pytest.approx(
            (7.0 + 2 * 0.25 * B) - E / (E - 1) * offline
        )

    def test_k_gamma_uses_eq35(self):
        stats = StopStatistics(0.05 * B, 0.3, B)
        offline = stats.expected_offline_cost
        coeffs = lp_coefficients(stats)
        bdet = (math.sqrt(0.05 * B) + math.sqrt(0.3 * B)) ** 2
        assert coeffs.k_gamma == pytest.approx(bdet - E / (E - 1) * offline)

    def test_k_gamma_infinite_when_inadmissible(self):
        coeffs = lp_coefficients(StopStatistics(10.0, 0.0, B))
        assert not coeffs.b_det_admissible
        assert coeffs.k_gamma == math.inf

    def test_constant_is_nrand_cost(self):
        stats = StopStatistics(7.0, 0.25, B)
        coeffs = lp_coefficients(stats)
        assert coeffs.constant == pytest.approx(E / (E - 1) * stats.expected_offline_cost)


class TestSolveLP:
    @pytest.mark.parametrize(
        "mu_frac,q,expected",
        [
            (0.2, 0.4, "N-Rand"),
            (0.02, 0.3, "b-DET"),
            (0.5, 0.0001, "DET"),
            (0.04, 0.8, "TOI"),
        ],
    )
    def test_lp_vertex_matches_analytic(self, mu_frac, q, expected):
        stats = StopStatistics(mu_frac * B, q, B)
        solution = solve_lp(stats)
        assert solution.vertex_name == expected
        analytic = ConstrainedSkiRentalSolver(stats).select()
        assert analytic.name == expected
        assert solution.cost == pytest.approx(analytic.chosen.worst_case_cost, rel=1e-9)

    def test_masses_are_vertex_like(self):
        stats = StopStatistics(0.02 * B, 0.3, B)
        solution = solve_lp(stats)
        masses = np.array([solution.alpha, solution.beta, solution.gamma])
        assert np.isclose(masses.sum(), masses.max())  # all mass on one atom
        assert masses.max() == pytest.approx(1.0)

    def test_inadmissible_bdet_gets_zero_gamma(self):
        solution = solve_lp(StopStatistics(10.0, 0.0, B))
        assert solution.gamma == 0.0


class TestVerifyAgainstLP:
    def test_agreement_over_grid(self):
        for mu_frac in (0.01, 0.05, 0.2, 0.5, 0.9):
            for q in (0.01, 0.1, 0.3, 0.7, 0.99):
                if mu_frac > 1 - q:
                    continue
                stats = StopStatistics(mu_frac * B, q, B)
                selection = verify_against_lp(stats)
                assert selection.name in {"TOI", "DET", "b-DET", "N-Rand"}

    def test_returns_analytic_selection(self):
        stats = StopStatistics(0.3 * B, 0.3, B)
        selection = verify_against_lp(stats)
        assert selection.stats is stats
