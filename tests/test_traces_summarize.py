"""Unit tests for trace summaries (Table 1 machinery)."""

import pytest

from repro.errors import TraceFormatError
from repro.traces import DrivingTrace, stops_per_day_table, summarize_trace


def trace_with(lengths, vehicle_id="v", days=7.0):
    return DrivingTrace.from_stop_lengths(vehicle_id, lengths, recording_days=days)


class TestSummarizeTrace:
    def test_fields(self):
        summary = summarize_trace(trace_with([10.0, 20.0, 60.0]))
        assert summary.stop_count == 3
        assert summary.stops_per_day == pytest.approx(3 / 7)
        assert summary.mean_stop_length == pytest.approx(30.0)
        assert summary.median_stop_length == pytest.approx(20.0)
        assert summary.max_stop_length == 60.0
        assert 0.0 < summary.idle_fraction < 1.0

    def test_empty_trace_rejected(self):
        empty = DrivingTrace("v", (), recording_days=7.0)
        with pytest.raises(TraceFormatError):
            summarize_trace(empty)


class TestStopsPerDayTable:
    def test_statistics(self):
        traces = [
            trace_with([1.0] * 7),   # 1 stop/day
            trace_with([1.0] * 14),  # 2 stops/day
            trace_with([1.0] * 21),  # 3 stops/day
        ]
        stats = stops_per_day_table(traces)
        assert stats["vehicles"] == 3
        assert stats["mean"] == pytest.approx(2.0)
        assert stats["std"] == pytest.approx(1.0)
        # All three fall within mean + 2 std = 4.
        assert stats["p_within_2_sigma"] == 1.0

    def test_outlier_detected(self):
        traces = [trace_with([1.0] * 7) for _ in range(30)]
        traces.append(trace_with([1.0] * 700))  # 100 stops/day outlier
        stats = stops_per_day_table(traces)
        assert stats["p_within_2_sigma"] < 1.0

    def test_single_vehicle_zero_std(self):
        stats = stops_per_day_table([trace_with([1.0] * 7)])
        assert stats["std"] == 0.0

    def test_empty_rejected(self):
        with pytest.raises(TraceFormatError):
            stops_per_day_table([])
