"""Crash-recovery pins: bit-identical state after any interruption.

Two layers:

* a Hypothesis property — for ANY split point of the event stream
  (including splits landing inside a snapshot compaction), abandoning
  the session mid-stream and recovering from its state directory, then
  redelivering the FULL stream, yields a state digest bit-identical to
  an uninterrupted in-memory run;
* the acceptance chaos pin — a real SIGKILL delivered at arbitrary
  event indices via :func:`repro.service.soak.run_chaos`, restart from
  ``--state-dir``, per-vehicle thresholds (RNG stream included) and
  total cost bit-identical to the uninterrupted run.
"""

import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import AdvisorSession, SessionConfig
from repro.service.soak import build_fleet_events, run_chaos, run_stream

B = 28.0
N_EVENTS = 40

#: snapshot_every=3 makes most split points land near (or inside) a
#: compaction boundary, the trickiest recovery window.
CONFIG = SessionConfig(
    break_even=B,
    min_samples=3,
    snapshot_every=3,
    dedup_window=64,
    drift_min_count=5,
    seed=99,
)


def _events() -> list[tuple[str, float, float]]:
    rng = np.random.default_rng(2014)
    lengths = rng.lognormal(3.0, 1.2, N_EVENTS)
    return [
        (f"e-{index:04d}", float(index), float(length))
        for index, length in enumerate(lengths)
    ]


EVENTS = _events()


def _reference_digest() -> str:
    session = AdvisorSession("v1", CONFIG)  # in-memory, uninterrupted
    for event_id, timestamp, stop_length in EVENTS:
        session.submit(event_id, timestamp, stop_length)
    return session.state_digest()


REFERENCE = _reference_digest()


class TestSplitRecovery:
    @settings(max_examples=30, deadline=None)
    @given(split=st.integers(min_value=0, max_value=N_EVENTS))
    def test_any_split_plus_full_redelivery_is_bit_identical(self, split):
        with tempfile.TemporaryDirectory() as tmp:
            state_dir = Path(tmp) / "v1"
            first = AdvisorSession("v1", CONFIG, state_dir)
            for event_id, timestamp, stop_length in EVENTS[:split]:
                first.submit(event_id, timestamp, stop_length)
            # Crash: the session object is simply abandoned — no close,
            # no final compaction.  Durability must not depend on them.
            del first
            recovered = AdvisorSession("v1", CONFIG, state_dir)
            # At-least-once delivery: the producer replays the WHOLE
            # stream; everything before the split must dedup to no-ops.
            for event_id, timestamp, stop_length in EVENTS:
                recovered.submit(event_id, timestamp, stop_length)
            assert recovered.applied == N_EVENTS
            assert recovered.duplicates == split
            assert recovered.state_digest() == REFERENCE

    def test_split_inside_compaction_window(self):
        # Deterministic pin of the exact boundary cases around
        # snapshot_every=3: right before, at, and after a compaction.
        for split in (2, 3, 4, 6, 39, 40):
            with tempfile.TemporaryDirectory() as tmp:
                state_dir = Path(tmp) / "v1"
                first = AdvisorSession("v1", CONFIG, state_dir)
                for event_id, timestamp, stop_length in EVENTS[:split]:
                    first.submit(event_id, timestamp, stop_length)
                del first
                recovered = AdvisorSession("v1", CONFIG, state_dir)
                for event_id, timestamp, stop_length in EVENTS[split:]:
                    recovered.submit(event_id, timestamp, stop_length)
                assert recovered.state_digest() == REFERENCE, f"split={split}"

    def test_recovery_restores_the_rng_stream(self):
        # The next drawn threshold after recovery equals the one the
        # uninterrupted session would draw: the RNG state round-trips.
        with tempfile.TemporaryDirectory() as tmp:
            state_dir = Path(tmp) / "v1"
            uninterrupted = AdvisorSession("v1", CONFIG)
            first = AdvisorSession("v1", CONFIG, state_dir)
            for event_id, timestamp, stop_length in EVENTS[:17]:
                uninterrupted.submit(event_id, timestamp, stop_length)
                first.submit(event_id, timestamp, stop_length)
            del first
            recovered = AdvisorSession("v1", CONFIG, state_dir)
            for event_id, timestamp, stop_length in EVENTS[17:]:
                expected = uninterrupted.submit(event_id, timestamp, stop_length)
                actual = recovered.submit(event_id, timestamp, stop_length)
                assert actual == expected  # thresholds bit-identical

    def test_torn_wal_tail_is_compacted_away_and_parity_holds(self):
        # split=3 lands exactly on a compaction (snapshot_every=3), so
        # the WAL is empty except for the torn bytes: recovery replays
        # nothing, yet must still compact so a later append can never
        # merge into the torn frame.
        split = 3
        with tempfile.TemporaryDirectory() as tmp:
            state_dir = Path(tmp) / "v1"
            first = AdvisorSession("v1", CONFIG, state_dir)
            for event_id, timestamp, stop_length in EVENTS[:split]:
                first.submit(event_id, timestamp, stop_length)
            del first
            with open(state_dir / "wal.jsonl", "a") as handle:
                handle.write('deadbeef {"torn')  # kill mid-append
            recovered = AdvisorSession("v1", CONFIG, state_dir)
            assert recovered._wal.replay() == []  # torn tail gone
            for event_id, timestamp, stop_length in EVENTS[split:]:
                recovered.submit(event_id, timestamp, stop_length)
            del recovered
            final = AdvisorSession("v1", CONFIG, state_dir)
            assert final.state_digest() == REFERENCE

    def test_recompaction_after_recovery_leaves_empty_wal(self):
        with tempfile.TemporaryDirectory() as tmp:
            state_dir = Path(tmp) / "v1"
            first = AdvisorSession("v1", CONFIG, state_dir)
            for event_id, timestamp, stop_length in EVENTS[:7]:
                first.submit(event_id, timestamp, stop_length)
            del first
            recovered = AdvisorSession("v1", CONFIG, state_dir)
            assert recovered.applied == 7
            # Recovery re-compacts: WAL empty, snapshot == live state.
            assert recovered._wal.replay() == []
            seq, state = recovered._snapshots.load()
            assert seq == 7
            assert state == recovered.to_state()


class TestSigkillChaosPin:
    """The acceptance crash pin, with real SIGKILLs."""

    @pytest.mark.slow
    def test_chaos_run_is_bit_identical_to_clean_run(self, tmp_path):
        events = build_fleet_events(vehicles=2, stops_per_vehicle=25, seed=3)
        config = SessionConfig(
            break_even=B,
            min_samples=5,
            snapshot_every=7,
            dedup_window=64,
            seed=3,
        )
        clean = run_stream(events, tmp_path / "clean", config)
        kill_points = [17, 41]
        chaos, restarts = run_chaos(
            events,
            tmp_path / "chaos",
            config,
            kill_points,
            ledger_path=tmp_path / "chaos-ledger.jsonl",
        )
        assert restarts == len(kill_points)  # each kill fired exactly once
        assert chaos["fleet_cost"] == clean["fleet_cost"]  # exact, not approx
        assert chaos["digests"] == clean["digests"]
        # The ledger survived the kills and is readable.
        assert (tmp_path / "chaos-ledger.jsonl").exists()
