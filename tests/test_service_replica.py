"""Disaster-recovery pins: WAL shipping, promotion, PITR, fleet doctor.

The acceptance bar (mirrored from the chaos harness): a standby fed by
WAL shipping, promoted after the primary dies, must land on per-vehicle
state digests bit-identical to a run that never failed.  On top of that
pin, this module covers the replication channel (local and remote with
injected connection drops), point-in-time restore under the backup
manifest, the ``fleet doctor`` verifier, replication-lag readiness
gating, and a Hypothesis property: a crash at ANY operation ordinal
during ``restore``/``promote`` — or a torn write truncating any restored
file at any byte — leaves a state dir that either recovers
bit-identically or is cleanly detected, never a silently wrong digest.
"""

import asyncio
import contextlib
import json
import os
import threading
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.faults import FsFault, FsFaultInjector, NetFault, NetFaultInjector
from repro.service.advisor import AdvisorService, RegisteredAdvisorService
from repro.service.replica import (
    LocalReplicaTarget,
    RemoteReplicaTarget,
    ReplicaServer,
    ReplicationError,
    ReplicationMonitor,
    backup,
    durable_summary,
    fleet_doctor,
    promote,
    read_manifest,
    replicate,
    restore,
    session_dirs,
    sweep_state_dir,
    sync_once,
)
from repro.service.session import SessionConfig
from repro.service.shard import ShardLockError, acquire_shard_lock, release_shard_lock
from repro.service.soak import build_fleet_events, run_stream
from repro.service.wal import WriteAheadLog

#: snapshot_every=5 keeps compaction (and delta sidecars) in play for
#: most shipping passes — the trickiest replication window.
CONFIG = SessionConfig(
    break_even=28.0,
    min_samples=3,
    snapshot_every=5,
    dedup_window=256,
    drift_min_count=5,
    seed=99,
)

EVENTS = build_fleet_events(vehicles=3, stops_per_vehicle=12, seed=21)


def _serve_registered(events, state_dir, *, config=CONFIG, close=True):
    """Run a registered (promotable) primary; optionally crash-abandon it."""
    service = RegisteredAdvisorService(Path(state_dir), config, policy="repair")
    for record in events:
        service.process(record)
    if close:
        service.close()
        return service.health_snapshot()
    snapshot = service.health_snapshot()
    # Crash: abandon without close — no final compaction, WAL keeps its
    # tail.  Durability must not depend on a clean shutdown.
    del service
    return snapshot


def _digests(snapshot) -> dict:
    return {vid: info["digest"] for vid, info in snapshot["vehicles"].items()}


@pytest.fixture()
def reference(tmp_path):
    """Digests of a clean, never-failed run over the full stream."""
    return _digests(_serve_registered(EVENTS, tmp_path / "ref"))


# -- WAL follow -------------------------------------------------------------


class TestFollow:
    def test_follow_yields_frames_past_the_watermark(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.jsonl")
        for seq in range(1, 6):
            wal.append({"seq": seq, "value": seq * 10})
        frames = list(wal.follow(2))
        assert [seq for seq, _line, _record in frames] == [3, 4, 5]
        assert frames[0][2]["value"] == 30
        # the yielded line re-verifies: it is the exact framed bytes
        assert all(" " in line for _seq, line, _record in frames)

    def test_follow_drops_a_torn_tail_like_replay(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.jsonl")
        wal.append({"seq": 1})
        wal.append({"seq": 2})
        with open(wal.path, "a") as handle:
            handle.write('deadbeef {"seq": 3, "torn')  # no newline, bad crc
        fresh = WriteAheadLog(tmp_path / "wal.jsonl")
        frames = list(fresh.follow(0))
        assert [seq for seq, _line, _record in frames] == [1, 2]
        assert fresh.tail_torn

    def test_follow_raises_on_mid_file_corruption(self, tmp_path):
        from repro.service.wal import WalCorruptionError

        wal = WriteAheadLog(tmp_path / "wal.jsonl")
        wal.append({"seq": 1})
        wal.append({"seq": 2})
        lines = wal.path.read_text().splitlines()
        lines[0] = "00000000 " + lines[0].split(" ", 1)[1]
        wal.path.write_text("\n".join(lines) + "\n")
        fresh = WriteAheadLog(tmp_path / "wal.jsonl")
        with pytest.raises(WalCorruptionError):
            list(fresh.follow(0))


# -- local shipping + promotion ---------------------------------------------


class TestShipAndPromote:
    def test_promoted_standby_is_bit_identical_to_a_clean_run(
        self, tmp_path, reference
    ):
        primary = tmp_path / "primary"
        standby = tmp_path / "standby"
        _serve_registered(EVENTS, primary, close=False)
        target = LocalReplicaTarget(standby)
        stats = sync_once(primary, target)
        assert stats["frames"] > 0  # abandoned primary leaves WAL tail
        promoted = promote(standby, CONFIG, fence=primary)
        assert promoted["digests"] == reference

    def test_incremental_catchup_ships_only_new_frames(self, tmp_path):
        primary = tmp_path / "primary"
        standby = tmp_path / "standby"
        half = len(EVENTS) // 2
        _serve_registered(EVENTS[:half], primary, close=False)
        target = LocalReplicaTarget(standby)
        sync_once(primary, target)
        quiet = sync_once(primary, target)
        assert (quiet["frames"], quiet["snapshots"], quiet["deltas"],
                quiet["registries"]) == (0, 0, 0, 0)
        # primary recovers and serves the rest (full redelivery dedups)
        _serve_registered(EVENTS, primary, close=False)
        moved = sync_once(primary, target)
        assert moved["frames"] > 0 or moved["snapshots"] > 0

    def test_lagging_standby_promotes_then_redelivery_restores_parity(
        self, tmp_path, reference
    ):
        primary = tmp_path / "primary"
        standby = tmp_path / "standby"
        cut = (2 * len(EVENTS)) // 3
        _serve_registered(EVENTS[:cut], primary, close=False)
        sync_once(primary, LocalReplicaTarget(standby))
        # primary dies here; the standby is promoted mid-history and the
        # producer replays the WHOLE stream (at-least-once delivery).
        promote(standby, CONFIG, fence=primary)
        final = _digests(_serve_registered(EVENTS, standby))
        assert final == reference

    def test_promote_is_fenced_by_a_live_primary_lock(self, tmp_path, reference):
        primary = tmp_path / "primary"
        standby = tmp_path / "standby"
        _serve_registered(EVENTS, primary, close=False)
        sync_once(primary, LocalReplicaTarget(standby))
        lock = acquire_shard_lock(primary)  # we are the live old primary
        try:
            with pytest.raises(ShardLockError, match="split-brain"):
                promote(standby, CONFIG, fence=primary)
        finally:
            release_shard_lock(lock)
        # a DEAD owner is a stale lock, not a fence
        (primary / "shard.lock").write_text("999999999 0\n")
        promoted = promote(standby, CONFIG, fence=primary)
        assert promoted["digests"] == reference

    def test_promote_refuses_an_unidentifiable_session_dir(self, tmp_path):
        primary = tmp_path / "primary"
        # an UNregistered service: no vehicles.idx, no registry entry
        service = AdvisorService(primary, CONFIG, policy="repair")
        for record in EVENTS[:3]:
            service.process(record)
        # crash before any snapshot names the vehicle
        vdir = next(iter((primary / "vehicles").iterdir()))
        for name in ("snapshot.json", "snapshot.json.delta"):
            with contextlib.suppress(FileNotFoundError):
                (vdir / name).unlink()
        del service
        with pytest.raises(ReplicationError, match="RNG stream"):
            promote(primary, CONFIG)


# -- remote shipping over the JSONL socket channel --------------------------


@contextlib.contextmanager
def _replica_server(standby, sock_path):
    server = ReplicaServer(standby)
    ready = threading.Event()
    thread = threading.Thread(
        target=lambda: asyncio.run(server.serve(f"unix:{sock_path}", ready=ready)),
        daemon=True,
    )
    thread.start()
    assert ready.wait(timeout=30)
    try:
        yield server
    finally:
        server.request_stop()
        thread.join(timeout=30)
        assert not thread.is_alive()


class TestRemoteShipping:
    def test_remote_standby_promotes_bit_identically(self, tmp_path, reference):
        primary = tmp_path / "primary"
        standby = tmp_path / "standby"
        _serve_registered(EVENTS, primary, close=False)
        sock = str(tmp_path / "replica.sock")
        with _replica_server(standby, sock):
            target = RemoteReplicaTarget(f"unix:{sock}")
            totals = replicate(primary, target, passes=2, interval=0)
            assert totals["passes"] == 2
            assert totals["channel_errors"] == 0
        promoted = promote(standby, CONFIG, fence=primary)
        assert promoted["digests"] == reference

    def test_injected_connection_drops_are_retried_idempotently(
        self, tmp_path, reference
    ):
        primary = tmp_path / "primary"
        standby = tmp_path / "standby"
        _serve_registered(EVENTS, primary, close=False)
        sock = str(tmp_path / "replica.sock")
        # ordinals are global over net ops: drop the very first connect
        # and a mid-stream send — both passes must re-ship idempotently.
        net = NetFaultInjector(
            {1: NetFault(), 5: NetFault(count=2)}, tmp_path / "net-claims"
        )
        with _replica_server(standby, sock):
            target = RemoteReplicaTarget(f"unix:{sock}", net=net)
            totals = replicate(
                primary, target, passes=2, interval=0, max_errors=10
            )
            assert totals["channel_errors"] >= 1
            assert totals["passes"] == 2
        assert net.raised >= 1
        promoted = promote(standby, CONFIG, fence=primary)
        assert promoted["digests"] == reference

    def test_a_dead_channel_becomes_a_replication_error(self, tmp_path):
        primary = tmp_path / "primary"
        _serve_registered(EVENTS[:6], primary, close=False)
        # a regular file where a socket should be: ECONNREFUSED per try
        (tmp_path / "nobody.sock").touch()
        target = RemoteReplicaTarget(f"unix:{tmp_path / 'nobody.sock'}")
        with pytest.raises(ReplicationError, match="channel failed"):
            replicate(primary, target, passes=1, interval=0, max_errors=2)


# -- cold backup / point-in-time restore ------------------------------------


class TestBackupRestore:
    def test_backup_restore_round_trip_promotes_bit_identically(
        self, tmp_path, reference
    ):
        primary = tmp_path / "primary"
        archive = tmp_path / "archive"
        restored = tmp_path / "restored"
        _serve_registered(EVENTS, primary, close=False)
        manifest = backup(primary, archive)
        assert manifest["files"] and manifest["vehicles"]
        report = restore(archive, restored)
        assert report["files"] == len(
            [rel for rel in manifest["files"] if rel != "replica.watermarks.json"]
        )
        doctor = fleet_doctor(restored, archive_dir=archive, verify_restore=True)
        assert doctor["ok"], doctor["problems"]
        promoted = promote(restored, CONFIG)
        assert promoted["digests"] == reference

    def test_backup_refuses_to_overwrite_an_archive(self, tmp_path):
        primary = tmp_path / "primary"
        archive = tmp_path / "archive"
        _serve_registered(EVENTS[:6], primary)
        backup(primary, archive)
        with pytest.raises(ReplicationError, match="already holds"):
            backup(primary, archive)

    def test_restore_refuses_a_nonempty_target(self, tmp_path):
        primary = tmp_path / "primary"
        archive = tmp_path / "archive"
        _serve_registered(EVENTS[:6], primary)
        backup(primary, archive)
        with pytest.raises(ReplicationError, match="refusing to restore"):
            restore(archive, primary)

    def test_a_corrupt_archive_is_refused_and_diagnosed(self, tmp_path):
        primary = tmp_path / "primary"
        archive = tmp_path / "archive"
        _serve_registered(EVENTS[:6], primary, close=False)
        backup(primary, archive)
        victim = next(
            path
            for path in sorted(archive.rglob("*"))
            if path.is_file() and path.name == "wal.jsonl"
        )
        data = bytearray(victim.read_bytes())
        data[len(data) // 2] ^= 0xFF
        victim.write_bytes(bytes(data))
        with pytest.raises(ReplicationError, match="corrupt backup"):
            restore(archive, tmp_path / "restored")
        doctor = fleet_doctor(primary, archive_dir=archive)
        assert not doctor["ok"]
        assert any("backup-corrupt" in line for line in doctor["problems"])

    def test_point_in_time_restore_equals_the_shorter_clean_run(self, tmp_path):
        # One vehicle, no compaction: every applied event is one WAL seq,
        # so --upto-seq k IS "the first k events".
        config = SessionConfig(
            break_even=28.0,
            min_samples=3,
            snapshot_every=10**6,
            dedup_window=256,
            drift_min_count=5,
            seed=99,
        )
        events = build_fleet_events(vehicles=1, stops_per_vehicle=14, seed=3)
        upto = 9
        primary = tmp_path / "primary"
        archive = tmp_path / "archive"
        restored = tmp_path / "restored"
        _serve_registered(events, primary, config=config, close=False)
        backup(primary, archive)
        report = restore(archive, restored, upto_seq=upto)
        assert sum(report["truncated"].values()) == len(events) - upto
        promoted = promote(restored, config)
        shorter = _digests(
            _serve_registered(events[:upto], tmp_path / "short", config=config)
        )
        assert promoted["digests"] == shorter

    def test_pitr_refuses_history_already_compacted_away(self, tmp_path):
        # snapshot_every=5: by event 12 the full snapshot sits past seq 5,
        # so a restore to seq 2 cannot be honoured and must say so.
        events = build_fleet_events(vehicles=1, stops_per_vehicle=12, seed=3)
        primary = tmp_path / "primary"
        archive = tmp_path / "archive"
        _serve_registered(events, primary, close=False)
        backup(primary, archive)
        with pytest.raises(ReplicationError, match="compact"):
            restore(archive, tmp_path / "restored", upto_seq=2)


# -- fleet doctor + replication-lag readiness -------------------------------


class TestDoctorAndReadiness:
    def test_doctor_reports_lag_and_divergence(self, tmp_path):
        primary = tmp_path / "primary"
        standby = tmp_path / "standby"
        cut = len(EVENTS) // 2
        _serve_registered(EVENTS[:cut], primary, close=False)
        sync_once(primary, LocalReplicaTarget(standby))
        _serve_registered(EVENTS, primary, close=False)  # standby now lags

        lagging = fleet_doctor(primary, replica_dir=standby)
        assert lagging["ok"]  # lag without a bound is a report, not a problem
        assert lagging["replication"]["max_lag_events"] > 0

        bounded = fleet_doctor(primary, replica_dir=standby, max_lag=0)
        assert not bounded["ok"]
        assert any("replication-lag" in line for line in bounded["problems"])

        sync_once(primary, LocalReplicaTarget(standby))
        caught_up = fleet_doctor(primary, replica_dir=standby, max_lag=0)
        assert caught_up["ok"], caught_up["problems"]
        assert caught_up["replication"]["max_lag_events"] == 0

    def test_doctor_flags_a_replica_ahead_of_its_primary(self, tmp_path):
        primary = tmp_path / "primary"
        standby = tmp_path / "standby"
        cut = len(EVENTS) // 2
        _serve_registered(EVENTS[:cut], primary, close=False)
        sync_once(primary, LocalReplicaTarget(standby))
        _serve_registered(EVENTS, standby)  # standby ran AHEAD: wrong pairing
        report = fleet_doctor(primary, replica_dir=standby)
        assert not report["ok"]
        assert any("replica-ahead" in line for line in report["problems"])

    def test_readiness_gates_on_replication_lag(self, tmp_path):
        primary = tmp_path / "primary"
        standby = tmp_path / "standby"
        _serve_registered(EVENTS, primary, close=False)
        monitor = ReplicationMonitor(primary, standby, max_lag=0)
        service = AdvisorService(primary, CONFIG, replication=monitor)
        try:
            verdict = service.readiness()
            assert not verdict["ready"]
            assert any("replication lag" in reason for reason in verdict["reasons"])
            health = service.health_snapshot()
            assert health["replication"]["within_bound"] is False

            sync_once(primary, LocalReplicaTarget(standby))
            verdict = service.readiness()
            assert verdict["ready"], verdict["reasons"]
            assert service.health_snapshot()["replication"]["max_lag_events"] == 0
        finally:
            service.close()

    def test_corrupt_watermarks_fail_closed(self, tmp_path):
        primary = tmp_path / "primary"
        standby = tmp_path / "standby"
        _serve_registered(EVENTS[:6], primary, close=False)
        sync_once(primary, LocalReplicaTarget(standby))
        (standby / "replica.watermarks.json").write_text("garbage not a frame\n")
        monitor = ReplicationMonitor(primary, standby, max_lag=10**6)
        snap = monitor.snapshot()
        assert snap["watermarks_corrupt"]
        assert not snap["within_bound"]
        service = AdvisorService(primary, CONFIG, replication=monitor)
        try:
            verdict = service.readiness()
            assert not verdict["ready"]
            assert any("watermarks corrupt" in r for r in verdict["reasons"])
        finally:
            service.close()


# -- crash-anywhere property (Hypothesis) -----------------------------------


def _build_archive(tmp_path):
    primary = tmp_path / "primary"
    events = build_fleet_events(vehicles=2, stops_per_vehicle=6, seed=5)
    _serve_registered(events, primary, close=False)
    archive = tmp_path / "archive"
    backup(primary, archive)
    reference = promote(tmp_path / "primary", CONFIG)["digests"]
    return archive, reference


class TestCrashDuringRecoveryOps:
    @settings(max_examples=12, deadline=None)
    @given(ordinal=st.integers(min_value=1, max_value=10))
    def test_restore_crash_is_detected_or_recovers_bit_identically(
        self, tmp_path_factory, ordinal
    ):
        tmp_path = tmp_path_factory.mktemp("pitr-crash")
        archive, reference = _build_archive(tmp_path)
        restored = tmp_path / "restored"
        fs = FsFaultInjector({ordinal: FsFault()}, tmp_path / "fs-claims")
        try:
            restore(archive, restored, fs=fs)
        except OSError:
            # Crashed mid-restore: the partial dir must be DETECTED —
            # verify_restore byte-compares against the manifest, so a
            # missing or half-written file cannot pass silently.
            doctor = fleet_doctor(restored, archive_dir=archive, verify_restore=True)
            assert not doctor["ok"]
            return
        # The schedule landed past the last write: the restore is whole
        # and must promote to the exact reference digests.
        doctor = fleet_doctor(restored, archive_dir=archive, verify_restore=True)
        assert doctor["ok"], doctor["problems"]
        assert promote(restored, CONFIG)["digests"] == reference

    @settings(max_examples=12, deadline=None)
    @given(data=st.data())
    def test_torn_write_in_a_restored_file_never_passes_silently(
        self, tmp_path_factory, data
    ):
        tmp_path = tmp_path_factory.mktemp("pitr-torn")
        archive, _reference = _build_archive(tmp_path)
        restored = tmp_path / "restored"
        restore(archive, restored)
        files = sorted(
            path
            for path in restored.rglob("*")
            if path.is_file() and path.name != "replica.watermarks.json"
        )
        victim = files[data.draw(st.integers(0, len(files) - 1), label="file")]
        size = victim.stat().st_size
        cut = data.draw(st.integers(0, max(0, size - 1)), label="offset")
        victim.write_bytes(victim.read_bytes()[:cut])
        doctor = fleet_doctor(restored, archive_dir=archive, verify_restore=True)
        assert not doctor["ok"]

    @settings(max_examples=8, deadline=None)
    @given(ordinal=st.integers(min_value=1, max_value=40))
    def test_promote_crash_leaves_a_repromotable_dir(
        self, tmp_path_factory, ordinal
    ):
        tmp_path = tmp_path_factory.mktemp("promote-crash")
        archive, reference = _build_archive(tmp_path)
        restored = tmp_path / "restored"
        restore(archive, restored)
        fs = FsFaultInjector({ordinal: FsFault()}, tmp_path / "fs-claims")
        try:
            first = promote(restored, CONFIG, fs=fs)
        except OSError:
            first = None
        # Whether the fault hit a durable write or the schedule ran past
        # the end, a clean re-promotion must land on the reference
        # digests — compaction publishes atomically, so no torn state.
        again = promote(restored, CONFIG)
        assert again["digests"] == reference
        if first is not None:
            assert first["digests"] == reference


# -- state-dir sweeping (cache doctor) --------------------------------------


class TestSweepStateDir:
    def test_sweep_removes_dead_tmp_and_stale_deltas_only(self, tmp_path):
        primary = tmp_path / "primary"
        _serve_registered(EVENTS[:6], primary, close=False)
        vdir = next(iter((primary / "vehicles").iterdir()))
        dead_tmp = vdir / "snapshot.json.tmp999999999"
        dead_tmp.write_text("abandoned by a dead writer")
        live_tmp = vdir / f"snapshot.json.tmp{os.getpid()}"
        live_tmp.write_text("in flight right now")
        orphan_delta = vdir / "snapshot.json.delta"
        base = vdir / "snapshot.json"
        had_base = base.exists()
        if had_base:
            base.unlink()
        orphan_delta.write_text("00000000 {}\n")

        removed = sweep_state_dir(primary)
        assert not dead_tmp.exists()
        assert live_tmp.exists()  # owner alive: mid-publish, hands off
        assert not orphan_delta.exists()
        assert len(removed) == 2
        live_tmp.unlink()

    def test_cache_doctor_cli_sweeps_a_state_dir(self, tmp_path, capsys):
        from repro import cli

        primary = tmp_path / "primary"
        _serve_registered(EVENTS[:6], primary, close=False)
        vdir = next(iter((primary / "vehicles").iterdir()))
        (vdir / "wal.jsonl.tmp999999999").write_text("orphan")
        code = cli.main(["cache", "doctor", "--state-dir", str(primary)])
        assert code == 0
        out = capsys.readouterr().out
        assert "state dir:       swept 1 orphan(s)" in out


# -- CLI round trip ---------------------------------------------------------


class TestCliRoundTrip:
    def test_replicate_promote_backup_restore_doctor(self, tmp_path, capsys):
        from repro import cli

        # only flags `promote` exposes — the promoted config must match
        # the primary's exactly for a bit-identical continuation
        config = SessionConfig(break_even=28.0, snapshot_every=5, seed=99)
        primary = tmp_path / "primary"
        standby = tmp_path / "standby"
        archive = tmp_path / "archive"
        restored = tmp_path / "restored"
        _serve_registered(EVENTS, primary, config=config, close=False)
        reference = _digests(
            _serve_registered(EVENTS, tmp_path / "ref", config=config)
        )

        assert cli.main([
            "replicate", str(primary), "--standby", str(standby),
            "--passes", "1", "--interval", "0",
        ]) == 0
        assert cli.main([
            "fleet", "doctor", str(primary),
            "--replica", str(standby), "--max-lag", "0",
        ]) == 0
        assert cli.main([
            "promote", str(standby), "--fence", str(primary),
            "--break-even", "28", "--snapshot-every", "5", "--seed", "99",
        ]) == 0
        out = capsys.readouterr().out
        for digest in reference.values():
            assert digest in out

        assert cli.main(["backup", str(standby), str(archive)]) == 0
        assert cli.main(["restore", str(archive), str(restored)]) == 0
        assert cli.main([
            "fleet", "doctor", str(restored),
            "--archive", str(archive), "--verify-restore",
        ]) == 0
        capsys.readouterr()

        # corrupt the archive: doctor must exit nonzero and say why
        victim = next(
            path
            for path in sorted(archive.rglob("snapshot.json"))
            if path.is_file()
        )
        victim.write_bytes(victim.read_bytes()[:-4])
        assert cli.main([
            "fleet", "doctor", str(restored), "--archive", str(archive),
        ]) == 1
        captured = capsys.readouterr()
        assert "backup-corrupt" in captured.out

    def test_replicate_argument_validation(self, tmp_path, capsys):
        from repro import cli

        assert cli.main(["replicate"]) == 2
        assert cli.main(["replicate", str(tmp_path)]) == 2
        assert cli.main([
            "replicate", str(tmp_path), "--standby", str(tmp_path / "s"),
            "--to", "unix:/nope",
        ]) == 2
        assert cli.main(["replicate", "--serve"]) == 2
        capsys.readouterr()


# -- the acceptance pin: SIGKILL the primary, promote, stay bit-identical ---


class TestKillPrimaryChaosPin:
    """The disaster-recovery acceptance bar, with a real SIGKILL."""

    @pytest.mark.slow
    def test_killed_primary_promoted_standby_is_bit_identical(self, tmp_path):
        from repro.service.soak import run_replica_chaos

        events = build_fleet_events(vehicles=2, stops_per_vehicle=20, seed=3)
        config = SessionConfig(
            break_even=28.0,
            min_samples=5,
            snapshot_every=7,
            dedup_window=64,
            seed=3,
        )
        clean = run_stream(events, tmp_path / "clean", config, register=True)
        result = run_replica_chaos(
            events,
            tmp_path / "chaos",
            config,
            kill_point=(2 * len(events)) // 3,
        )
        # run_replica_chaos already raises on backup/restore divergence;
        # the promoted-standby parity against a never-failed run is ours.
        assert result["final"]["fleet_cost"] == clean["fleet_cost"]
        assert result["final"]["digests"] == clean["digests"]
        assert result["sync_passes"] >= 1
        assert result["frames_shipped"] >= 1
        assert result["restored_digests"] == clean["digests"]


# -- durable summaries ------------------------------------------------------


class TestDurableSummary:
    def test_summary_is_stable_across_processless_reads(self, tmp_path):
        primary = tmp_path / "primary"
        _serve_registered(EVENTS[:6], primary, close=False)
        for _key, vdir in session_dirs(primary):
            first = durable_summary(vdir)
            second = durable_summary(vdir)
            assert first == second
            assert first["tip"] >= first["snapshot_seq"]
            assert isinstance(first["digest"], str) and len(first["digest"]) == 64

    def test_manifest_read_rejects_missing_and_corrupt(self, tmp_path):
        with pytest.raises(ReplicationError, match="backup incomplete"):
            read_manifest(tmp_path)
        (tmp_path / "backup.manifest.json").write_text("junk with no frame\n")
        with pytest.raises(ReplicationError, match="CRC"):
            read_manifest(tmp_path)
