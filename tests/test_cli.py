"""Unit tests for the repro-idling command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_requires_known_experiment(self, capsys):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "fig99"])

    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"


class TestCommands:
    def test_list_prints_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in ("fig1", "fig4", "table1", "appc"):
            assert experiment_id in out

    def test_run_appc(self, capsys):
        assert main(["run", "appc"]) == 0
        out = capsys.readouterr().out
        assert "break-even" in out
        assert "28" in out and "47" in out

    def test_run_with_csv_output(self, tmp_path, capsys):
        assert main(["run", "appc", "--out", str(tmp_path)]) == 0
        written = list(tmp_path.glob("appc_*.csv"))
        assert len(written) == 3

    def test_run_fast_fig1(self, capsys):
        assert main(["run", "fig1", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "region" in out

    def test_advise_with_inline_stops(self, capsys):
        stops = ",".join(["12", "45", "300", "8", "22", "90", "15", "600"])
        assert main(["advise", "--stops", stops, "--break-even", "28"]) == 0
        out = capsys.readouterr().out
        assert "selected strategy" in out
        assert "worst-case expected CR" in out

    def test_advise_with_stop_file(self, tmp_path, capsys):
        path = tmp_path / "stops.txt"
        path.write_text("12\n45\n300\n8\n")
        assert main(["advise", "--stops", str(path)]) == 0
        out = capsys.readouterr().out
        assert "stops observed:        4" in out

    def test_advise_reports_error_for_bad_input(self, capsys):
        # Negative stop lengths are invalid -> exit code 1 + stderr note.
        assert main(["advise", "--stops=-5,10"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_all_fast_runs_every_experiment(self, tmp_path, capsys):
        assert main(["all", "--fast", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        for experiment_id in (
            "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "table1", "appc",
            "improved",
        ):
            assert f"== {experiment_id}:" in out
        # CSVs were written for every experiment.
        assert len(list(tmp_path.glob("*.csv"))) >= 9

    def test_breakeven_ssv_default(self, capsys):
        assert main(["breakeven"]) == 0
        out = capsys.readouterr().out
        assert "break-even interval B" in out
        assert "starter wear" in out

    def test_breakeven_conventional_larger(self, capsys):
        assert main(["breakeven", "--conventional"]) == 0
        conventional = capsys.readouterr().out
        assert main(["breakeven"]) == 0
        ssv = capsys.readouterr().out

        def extract(text):
            line = [l for l in text.splitlines() if l.startswith("break-even")][0]
            return float(line.split()[-2])

        assert extract(conventional) > extract(ssv)

    def test_breakeven_measured_rate_override(self, capsys):
        assert main(["breakeven", "--measured-idle-cc-per-s", "0.279"]) == 0
        out = capsys.readouterr().out
        assert "0.279 cc/s" in out

    def test_simulate_runs(self, capsys):
        assert main(["simulate", "--area", "chicago", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "offline optimum" in out
        assert "factory TOI" in out

    def test_simulate_unknown_area_errors(self, capsys):
        assert main(["simulate", "--area", "gotham"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_advise_improved_flag(self, capsys):
        # A b-DET-region sample: the corrected solver proposes b-Rand
        # with a strictly better guarantee.
        stops = ",".join(["1"] * 14 + ["100"] * 6)
        assert main(["advise", "--stops", stops, "--break-even", "28", "--improved"]) == 0
        out = capsys.readouterr().out
        assert "b-Rand correction" in out
        assert "corrected worst-case CR" in out

    def test_dataset_round_trip(self, tmp_path, capsys):
        assert main(["dataset", str(tmp_path / "ds"), "--vehicles", "3", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "wrote 9 vehicles" in out
        from repro.fleet import load_fleet_dataset

        fleets = load_fleet_dataset(tmp_path / "ds")
        assert sum(len(v) for v in fleets.values()) == 9

    def test_run_with_ledger_writes_jsonl_and_summary(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        ledger_path = tmp_path / "run.jsonl"
        assert main(["run", "appc", "--ledger", str(ledger_path)]) == 0
        out = capsys.readouterr().out
        assert "-- ledger --" in out
        assert f"events written to {ledger_path}" in out
        events = [json.loads(line) for line in ledger_path.read_text().splitlines()]
        assert events, "ledger file must not be empty"
        assert [e["seq"] for e in events] == list(range(len(events)))
        assert any(e["event"] == "cache-miss" for e in events)
        # Second run hits the cache — and the ledger records it.
        assert main(["run", "appc", "--ledger", str(ledger_path)]) == 0
        assert "cache-hit" in capsys.readouterr().out

    def test_cache_doctor_healthy(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert main(["cache", "doctor"]) == 0
        out = capsys.readouterr().out
        assert "orphaned tmp:    0" in out
        assert "invalid JSON:    0" in out
        assert "cache is healthy" in out

    def test_cache_doctor_flags_orphans_and_invalid(self, tmp_path, capsys, monkeypatch):
        root = tmp_path / "cache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(root))
        bucket = root / "ab"
        bucket.mkdir(parents=True)
        (bucket / "abcd.json.tmp99").write_text("{")
        (bucket / "abcd.json").write_text('{"value": NaN}')
        assert main(["cache", "doctor"]) == 0
        out = capsys.readouterr().out
        assert "orphaned tmp:    1" in out
        assert "invalid JSON:    1" in out
        assert "cache clear" in out

    def test_cache_info_reports_orphans(self, tmp_path, capsys, monkeypatch):
        root = tmp_path / "cache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(root))
        bucket = root / "cd"
        bucket.mkdir(parents=True)
        (bucket / "cdef.json.tmp7").write_text("{")
        assert main(["cache"]) == 0
        assert "orphaned tmp:    1" in capsys.readouterr().out

    def test_cache_clear_sweeps_orphans(self, tmp_path, capsys, monkeypatch):
        root = tmp_path / "cache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(root))
        bucket = root / "ef"
        bucket.mkdir(parents=True)
        (bucket / "efab.json.tmp3").write_text("{")
        assert main(["cache", "clear"]) == 0
        assert "removed 1 cached file(s)" in capsys.readouterr().out
        assert not list(root.glob("*/*"))

    def test_advise_each_strategy_branch(self, capsys):
        # All short stops -> DET advice text.
        assert main(["advise", "--stops", "5,6,7,8", "--break-even", "28"]) == 0
        assert "idle until B" in capsys.readouterr().out
        # All long stops -> TOI advice text.
        assert main(["advise", "--stops", "100,200,300", "--break-even", "28"]) == 0
        assert "immediately" in capsys.readouterr().out
