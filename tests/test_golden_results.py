"""Golden regression tests for the committed ``results/`` artifacts.

Two complementary layers:

* **Stored-artifact pins** assert that key rows of the committed CSVs
  match literals recorded here, so an accidental edit or a stale
  regeneration of ``results/`` fails loudly.
* **Fresh-run pins** regenerate the same artifacts from source with the
  experiments' fixed default seeds (full size where cheap, ``--fast``
  sizes where not) and assert the values, so a behavioural change in the
  pipeline — generator, evaluator, seeding — fails even when nobody
  touched ``results/``.

If a change is *intentional* (e.g. a seeding or calibration change),
regenerate ``results/`` via ``pytest benchmarks/ -q``, update the
literals below from the new files, and update the numbers quoted in
EXPERIMENTS.md and README.md in the same commit.
"""

from pathlib import Path

import pytest

from repro.experiments import run_experiment

RESULTS = Path(__file__).resolve().parent.parent / "results"


def _stored_lines(name: str) -> list[str]:
    path = RESULTS / name
    if not path.exists():
        pytest.skip(f"{name} not present (results/ not generated)")
    return path.read_text().splitlines()


class TestStoredArtifacts:
    """The committed CSVs contain the rows the docs quote."""

    def test_fig1_grid_rows(self):
        lines = _stored_lines("fig1_grid.csv")
        assert lines[0] == "normalized_mu,q_b_plus,region,worst_case_cr"
        assert lines[1] == "0.012195,0.012195,DET,1.5"
        assert "0.5,0.256098,TOI,1.322581" in lines

    def test_fig4_proposed_rows(self):
        lines = _stored_lines("fig4_cr.csv")
        expected = [
            "28.0,atlanta,Proposed,1.4707,1.0913",
            "28.0,california,Proposed,1.3822,1.0846",
            "28.0,chicago,Proposed,1.5466,1.2728",
            "47.0,atlanta,Proposed,1.582,1.2459",
            "47.0,california,Proposed,1.516,1.2287",
            "47.0,chicago,Proposed,1.582,1.3628",
        ]
        for row in expected:
            assert row in lines

    def test_table1_full_content(self):
        assert _stored_lines("table1_stops_per_day.csv") == [
            "location,vehicles,mean,std,p_within_2_sigma,mu_plus_2sigma",
            "atlanta,653,10.21,8.34,0.9556,26.89",
            "california,217,9.23,7.77,0.9539,24.77",
            "chicago,312,11.73,9.22,0.9487,30.17",
        ]

    def test_appc_summary_full_content(self):
        assert _stored_lines("appc_summary.csv") == [
            "vehicle,idling_cost_cents_per_s,computed_B_s,paper_B_s,restart_cost_cents",
            "SSV,0.0258,28.96,28.0,0.7473",
            "conventional,0.0258,48.34,47.0,1.2473",
        ]


class TestFreshRuns:
    """Regenerating the artifacts from source reproduces the pins."""

    def test_fig1_full_size_matches_stored(self, tmp_path):
        # Deterministic and sub-second even at the stored 81x81 size, so
        # compare the regenerated CSVs to the committed ones byte for byte.
        result = run_experiment("fig1", mu_points=81, q_points=81)
        result.write_csvs(tmp_path)
        for name in ("fig1_grid.csv", "fig1_region_fractions.csv"):
            if not (RESULTS / name).exists():
                pytest.skip(f"{name} not present")
            assert (tmp_path / name).read_bytes() == (RESULTS / name).read_bytes()

    def test_appc_matches_stored(self, tmp_path):
        result = run_experiment("appc")
        result.write_csvs(tmp_path)
        for name in (
            "appc_summary.csv",
            "appc_components.csv",
            "appc_emission_equivalents.csv",
        ):
            if not (RESULTS / name).exists():
                pytest.skip(f"{name} not present")
            assert (tmp_path / name).read_bytes() == (RESULTS / name).read_bytes()

    def test_fig4_fast_run_pins(self):
        result = run_experiment("fig4", vehicles_per_area=40)
        proposed = [
            row for row in result.table("cr").rows if row[2] == "Proposed"
        ]
        assert proposed == [
            (28.0, "atlanta", "Proposed", 1.3159, 1.0939),
            (28.0, "california", "Proposed", 1.3512, 1.1044),
            (28.0, "chicago", "Proposed", 1.4763, 1.2745),
            (47.0, "atlanta", "Proposed", 1.4509, 1.2441),
            (47.0, "california", "Proposed", 1.4669, 1.2442),
            (47.0, "chicago", "Proposed", 1.582, 1.3766),
        ]
        wins = {(row[0], row[1]): row[3] for row in result.table("win counts").rows}
        assert wins == {
            (28.0, "atlanta"): 40,
            (28.0, "california"): 39,
            (28.0, "chicago"): 38,
            (47.0, "atlanta"): 38,
            (47.0, "california"): 38,
            (47.0, "chicago"): 34,
        }

    def test_table1_fast_run_pins(self):
        result = run_experiment("table1", vehicles_per_area=60)
        assert result.table("stops per day").rows == [
            ("atlanta", 60, 11.34, 9.63, 0.9333, 30.59),
            ("california", 60, 9.93, 7.86, 0.95, 25.65),
            ("chicago", 60, 14.03, 10.65, 0.9333, 35.33),
        ]
