"""Unit tests for the distribution diagnostics (Figure 3's KS claim)."""

import numpy as np
import pytest

from repro.distributions import (
    Exponential,
    LogNormal,
    MixtureDistribution,
    Pareto,
    ks_test_exponential,
    moment_summary,
    tail_weight,
)
from repro.errors import InvalidParameterError


class TestKSTest:
    def test_exponential_sample_not_rejected(self, rng):
        samples = Exponential(40.0).sample(2000, rng)
        result = ks_test_exponential(samples)
        assert not result.rejected

    def test_heavy_tail_rejected(self, rng):
        # A lognormal/Pareto mixture is what the synthetic fleets use;
        # the paper reports KS rejection for the real data.
        mix = MixtureDistribution(
            [LogNormal(3.2, 0.8), Pareto(alpha=1.6, scale=600.0)], [0.8, 0.2]
        )
        samples = mix.sample(2000, rng)
        result = ks_test_exponential(samples)
        assert result.rejected
        assert result.p_value < 0.05

    def test_small_sample_rejected(self):
        with pytest.raises(InvalidParameterError):
            ks_test_exponential(np.array([1.0, 2.0]))

    def test_invalid_alpha_rejected(self, rng):
        samples = Exponential(40.0).sample(100, rng)
        with pytest.raises(InvalidParameterError):
            ks_test_exponential(samples, alpha=1.5)

    def test_negative_samples_rejected(self):
        with pytest.raises(InvalidParameterError):
            ks_test_exponential(np.array([-1.0] * 20))


class TestTailWeight:
    def test_heavier_tail_scores_higher(self, rng):
        exp_samples = Exponential(40.0).sample(5000, rng)
        heavy_samples = Pareto(alpha=1.5, scale=20.0).sample(5000, rng)
        assert tail_weight(heavy_samples) > tail_weight(exp_samples)

    def test_small_sample_rejected(self):
        with pytest.raises(InvalidParameterError):
            tail_weight(np.arange(5, dtype=float))

    def test_invalid_quantile_rejected(self, rng):
        samples = Exponential(40.0).sample(100, rng)
        with pytest.raises(InvalidParameterError):
            tail_weight(samples, quantile=1.0)


class TestMomentSummary:
    def test_fields(self, rng):
        samples = Exponential(40.0).sample(1000, rng)
        summary = moment_summary(samples)
        assert summary["count"] == 1000
        assert summary["mean"] == pytest.approx(40.0, rel=0.2)
        assert summary["max"] >= summary["median"]

    def test_too_small_rejected(self):
        with pytest.raises(InvalidParameterError):
            moment_summary(np.array([1.0]))
