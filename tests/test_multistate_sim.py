"""Unit tests for the multistate (multislope) event-level simulation."""

import numpy as np
import pytest

from repro.core.multislope import FollowTheEnvelope, MultislopeProblem
from repro.core.multislope_game import solve_multislope_game
from repro.errors import InvalidParameterError
from repro.simulation import (
    EnvelopeController,
    RandomizedMultislopeController,
    simulate_multistate,
)

B = 28.0


class TestEnvelopeController:
    def test_matches_follow_the_envelope_costs(self, rng):
        problem = MultislopeProblem.automotive_three_state()
        policy = FollowTheEnvelope(problem)
        stops = np.array([3.0, 20.0, 50.0, 200.0])
        result = simulate_multistate(problem, stops, EnvelopeController(problem), rng)
        for record in result.records:
            assert record.cost == pytest.approx(policy.online_cost(record.stop_length))

    def test_realized_cr_at_most_two(self, rng):
        problem = MultislopeProblem.automotive_three_state()
        stops = np.linspace(0.5, 300.0, 50)
        result = simulate_multistate(problem, stops, EnvelopeController(problem), rng)
        assert 1.0 - 1e-9 <= result.realized_cr <= 2.0 + 1e-9

    def test_state_usage_tracks_stop_lengths(self, rng):
        problem = MultislopeProblem.automotive_three_state()
        t1, t2 = problem.transition_points
        stops = np.array([t1 / 2, (t1 + t2) / 2, t2 * 2])
        result = simulate_multistate(problem, stops, EnvelopeController(problem), rng)
        usage = result.state_usage()
        assert usage == {0: 1, 1: 1, 2: 1}

    def test_classic_instance_is_det(self, rng):
        problem = MultislopeProblem.classic(B)
        stops = np.array([10.0, 100.0])
        result = simulate_multistate(problem, stops, EnvelopeController(problem), rng)
        assert result.total_cost == pytest.approx(10.0 + 2 * B)


class TestRandomizedController:
    @pytest.fixture(scope="class")
    def game(self):
        problem = MultislopeProblem.classic(B)
        return problem, solve_multislope_game(problem, time_points=30)

    def test_mean_cost_near_game_value(self, game, rng):
        problem, solution = game
        controller = RandomizedMultislopeController(problem, solution)
        # Adversarial stop just past B: the randomized mixture's expected
        # ratio should be near the game value, far below DET's 2.
        stops = np.full(4000, B * 1.01)
        result = simulate_multistate(problem, stops, controller, rng)
        assert result.realized_cr == pytest.approx(solution.value, rel=0.05)
        assert result.realized_cr < 1.75

    def test_profiles_come_from_support(self, game, rng):
        problem, solution = game
        controller = RandomizedMultislopeController(problem, solution)
        support = {profile for profile, _ in solution.support(threshold=0.0)}
        stops = np.full(100, 10.0)
        result = simulate_multistate(problem, stops, controller, rng)
        for record in result.records:
            assert record.switch_times in support

    def test_arity_mismatch_rejected(self, game):
        _, solution = game
        three_state = MultislopeProblem.automotive_three_state()
        with pytest.raises(InvalidParameterError):
            RandomizedMultislopeController(three_state, solution)


class TestEnvelopeWithSkippedStates:
    def test_skipped_state_profile_matches_follow_envelope(self, rng):
        # State 1 is valid (costs increase, rates decrease) but never on
        # the envelope: the jump straight to state 2 is always better.
        problem = MultislopeProblem(
            [(0.0, 1.0), (27.0, 0.9), (28.0, 0.0)]
        )
        # Envelope: state 0 until the 0->2 crossing at 28, never state 1.
        controller = EnvelopeController(problem)
        policy = FollowTheEnvelope(problem)
        stops = np.array([5.0, 27.5, 28.0, 100.0])
        result = simulate_multistate(problem, stops, controller, rng)
        for record in result.records:
            assert record.cost == pytest.approx(
                policy.online_cost(record.stop_length)
            ), record

    def test_profile_arity_matches_states(self, rng):
        problem = MultislopeProblem([(0.0, 1.0), (27.0, 0.9), (28.0, 0.0)])
        controller = EnvelopeController(problem)
        profile = controller.profile_for_stop(rng)
        assert len(profile) == len(problem.slopes) - 1
        assert profile[0] <= profile[1]


class TestValidation:
    def test_empty_stops_rejected(self, rng):
        problem = MultislopeProblem.classic(B)
        with pytest.raises(InvalidParameterError):
            simulate_multistate(problem, np.array([]), EnvelopeController(problem), rng)

    def test_zero_offline_cr_rejected(self, rng):
        problem = MultislopeProblem.classic(B)
        result = simulate_multistate(
            problem, np.array([0.0]), EnvelopeController(problem), rng
        )
        with pytest.raises(InvalidParameterError):
            result.realized_cr
