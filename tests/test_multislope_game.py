"""Unit tests for the randomized multislope game solver."""

import numpy as np
import pytest

from repro.constants import E_RATIO
from repro.core.multislope import FollowTheEnvelope, MultislopeProblem
from repro.core.multislope_game import (
    MultislopeGameSolution,
    pure_strategy_cost,
    solve_multislope_game,
)
from repro.errors import InvalidParameterError

B = 28.0


class TestPureStrategyCost:
    def test_classic_matches_eq3(self):
        problem = MultislopeProblem.classic(B)
        # Switch at t: cost y for y < t, t + B for y >= t.
        assert pure_strategy_cost(problem, (10.0,), 5.0) == 5.0
        assert pure_strategy_cost(problem, (10.0,), 10.0) == pytest.approx(10.0 + B)
        assert pure_strategy_cost(problem, (10.0,), 500.0) == pytest.approx(10.0 + B)

    def test_three_state_sequence(self):
        problem = MultislopeProblem.automotive_three_state()
        # Switch to accessory at 10, deep off at 40.
        times = (10.0, 40.0)
        # y = 5: still idling.
        assert pure_strategy_cost(problem, times, 5.0) == 5.0
        # y = 20: idled 10 (rate 1), paid 12 switch, accessory 10 s at 0.25.
        assert pure_strategy_cost(problem, times, 20.0) == pytest.approx(
            10.0 + 12.0 + 0.25 * 10.0
        )
        # y = 100: + accessory until 40, + (28-12) switch, then rate 0.
        assert pure_strategy_cost(problem, times, 100.0) == pytest.approx(
            10.0 + 12.0 + 0.25 * 30.0 + 16.0
        )

    def test_follow_envelope_is_a_pure_strategy(self):
        # The deterministic 2-competitive policy equals the pure strategy
        # whose switch times are the offline transition points.
        problem = MultislopeProblem.automotive_three_state()
        policy = FollowTheEnvelope(problem)
        times = problem.transition_points
        for y in (3.0, 20.0, 50.0, 200.0):
            assert pure_strategy_cost(problem, times, y) == pytest.approx(
                policy.online_cost(y)
            )

    def test_validation(self):
        problem = MultislopeProblem.classic(B)
        with pytest.raises(InvalidParameterError):
            pure_strategy_cost(problem, (10.0, 20.0), 5.0)  # wrong arity
        with pytest.raises(InvalidParameterError):
            pure_strategy_cost(problem, (-1.0,), 5.0)
        three = MultislopeProblem.automotive_three_state()
        with pytest.raises(InvalidParameterError):
            pure_strategy_cost(three, (20.0, 10.0), 5.0)  # decreasing


class TestGameSolver:
    def test_classic_converges_to_e_ratio(self):
        solution = solve_multislope_game(MultislopeProblem.classic(B), time_points=80)
        # Player discretization biases upward only.
        assert solution.value >= E_RATIO - 1e-9
        assert solution.value == pytest.approx(E_RATIO, abs=0.02)

    def test_three_state_beats_two_state(self):
        # The accessory state lowers the optimal randomized CR.
        three = solve_multislope_game(
            MultislopeProblem.automotive_three_state(), time_points=18
        )
        assert three.value < E_RATIO

    def test_value_bounded_by_deterministic(self):
        for problem in (
            MultislopeProblem.classic(B),
            MultislopeProblem.automotive_three_state(),
        ):
            solution = solve_multislope_game(problem, time_points=14)
            assert 1.0 <= solution.value <= 2.0 + 1e-9

    def test_weights_normalized(self):
        solution = solve_multislope_game(MultislopeProblem.classic(B), time_points=20)
        assert solution.weights.sum() == pytest.approx(1.0)
        assert np.all(solution.weights >= 0.0)

    def test_support_filters(self):
        solution = solve_multislope_game(MultislopeProblem.classic(B), time_points=20)
        support = solution.support()
        assert 0 < len(support) <= len(solution.pure_strategies)
        assert all(weight > 1e-6 for _, weight in support)

    def test_requires_zero_final_rate(self):
        problem = MultislopeProblem([(0.0, 1.0), (10.0, 0.2)])
        with pytest.raises(InvalidParameterError):
            solve_multislope_game(problem)

    def test_tiny_grid_rejected(self):
        with pytest.raises(InvalidParameterError):
            solve_multislope_game(MultislopeProblem.classic(B), time_points=2)
