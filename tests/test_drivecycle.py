"""Unit tests for the drive-cycle substrate: signals, roads, congestion,
driver behaviour and the trip simulator."""

import numpy as np
import pytest

from repro.drivecycle import (
    CongestionModel,
    DriveCycleSimulator,
    DriverProfile,
    TrafficSignal,
    grid_network,
)
from repro.errors import InvalidParameterError, SimulationError
from repro.traces import extract_stops


class TestTrafficSignal:
    def test_green_then_red(self):
        signal = TrafficSignal(cycle_length=100.0, green_fraction=0.6, offset=0.0)
        assert signal.is_green(10.0)
        assert not signal.is_green(70.0)

    def test_wait_time_zero_in_green(self):
        signal = TrafficSignal(cycle_length=100.0, green_fraction=0.6)
        assert signal.wait_time(30.0) == 0.0

    def test_wait_time_remaining_red(self):
        signal = TrafficSignal(cycle_length=100.0, green_fraction=0.6)
        # Arrive at 70 s into the cycle: red until 100 -> wait 30 s.
        assert signal.wait_time(70.0) == pytest.approx(30.0)

    def test_offset_shifts_phase(self):
        signal = TrafficSignal(cycle_length=100.0, green_fraction=0.6, offset=70.0)
        assert signal.is_green(70.0)

    def test_expected_wait_formula(self):
        signal = TrafficSignal(cycle_length=100.0, green_fraction=0.6)
        # red = 40; expected wait = 40^2 / 200 = 8.
        assert signal.expected_wait() == pytest.approx(8.0)

    @pytest.mark.parametrize("kwargs", [
        {"cycle_length": 0.0},
        {"green_fraction": 0.0},
        {"green_fraction": 1.0},
        {"offset": np.inf},
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(InvalidParameterError):
            TrafficSignal(**kwargs)


class TestRoadNetwork:
    def test_grid_properties(self):
        network = grid_network(rows=4, cols=4, signal_density=0.5)
        assert len(network.intersections) == 16
        assert 0 < network.signalized_count() <= 16

    def test_route_is_connected_path(self):
        network = grid_network(rows=4, cols=4)
        route = network.route((0, 0), (3, 3))
        assert route[0] == (0, 0) and route[-1] == (3, 3)
        for u, v in zip(route, route[1:]):
            assert network.edge_data(u, v)["length"] > 0

    def test_random_node_pair_min_hops(self, rng):
        network = grid_network(rows=4, cols=4)
        origin, destination = network.random_node_pair(rng, min_hops=3)
        assert len(network.route(origin, destination)) >= 4

    def test_unknown_endpoint_rejected(self):
        network = grid_network(rows=3, cols=3)
        with pytest.raises(SimulationError):
            network.route((0, 0), (99, 99))

    def test_tiny_grid_rejected(self):
        with pytest.raises(InvalidParameterError):
            grid_network(rows=1, cols=5)

    def test_signal_density_bounds(self):
        with pytest.raises(InvalidParameterError):
            grid_network(signal_density=1.5)

    def test_zero_density_has_no_signals(self):
        network = grid_network(rows=3, cols=3, signal_density=0.0)
        assert network.signalized_count() == 0


class TestCongestionModel:
    def test_effective_speed_decreases_with_level(self):
        free = CongestionModel(level=0.0).effective_speed(10.0)
        jam = CongestionModel(level=1.0).effective_speed(10.0)
        assert free == 10.0
        assert jam == pytest.approx(3.0)

    def test_queue_delay_zero_at_free_flow(self, rng):
        assert CongestionModel(level=0.0).queue_delay(rng) == 0.0

    def test_queue_delay_positive_under_congestion(self, rng):
        delays = [CongestionModel(level=0.8).queue_delay(rng) for _ in range(50)]
        assert np.mean(delays) > 0.0

    def test_wave_stop_probability_scales(self, rng):
        free = sum(CongestionModel(level=0.0).wave_stop(rng) > 0 for _ in range(200))
        heavy = sum(CongestionModel(level=1.0).wave_stop(rng) > 0 for _ in range(200))
        assert free == 0
        assert heavy > 0

    def test_invalid_level_rejected(self):
        with pytest.raises(InvalidParameterError):
            CongestionModel(level=1.5)


class TestDriverProfile:
    def test_daily_trip_count_at_least_one(self, rng):
        profile = DriverProfile(trips_per_day=0.1)
        assert all(profile.daily_trip_count(rng) >= 1 for _ in range(20))

    def test_errand_duration_mean(self, rng):
        profile = DriverProfile(errand_duration_mean=300.0)
        durations = [profile.errand_duration(rng) for _ in range(5000)]
        assert np.mean(durations) == pytest.approx(300.0, rel=0.15)

    def test_wants_errand_respects_probability(self, rng):
        always = DriverProfile(errand_probability=1.0)
        never = DriverProfile(errand_probability=0.0)
        assert always.wants_errand(rng)
        assert not never.wants_errand(rng)

    def test_invalid_rejected(self):
        with pytest.raises(InvalidParameterError):
            DriverProfile(trips_per_day=0.0)
        with pytest.raises(InvalidParameterError):
            DriverProfile(acceleration=-1.0)


class TestDriveCycleSimulator:
    @pytest.fixture(scope="class")
    def simulator(self):
        return DriveCycleSimulator(
            grid_network(rows=5, cols=5, signal_density=0.7),
            CongestionModel(level=0.4),
            DriverProfile(trips_per_day=3.0),
        )

    def test_trip_ends_at_rest(self, simulator, rng):
        result = simulator.simulate_trip(rng)
        assert result.speed_trace.speeds[-1] == 0.0

    def test_trip_covers_route_distance(self, simulator, rng):
        result = simulator.simulate_trip(rng)
        hops = len(result.route_nodes) - 1
        expected = hops * 250.0
        assert result.speed_trace.distance() == pytest.approx(expected, rel=0.2)

    def test_signal_stops_visible_in_trace(self, simulator, rng):
        # Over several trips some signal stop must appear in the speeds.
        found = False
        for _ in range(10):
            result = simulator.simulate_trip(rng)
            if result.signal_stops > 0:
                stops = extract_stops(result.speed_trace)
                found = found or len(stops) > 0
        assert found

    def test_vehicle_record_structure(self, simulator, rng):
        trace = simulator.simulate_vehicle("veh", days=2, rng=rng, area="test")
        assert trace.recording_days == 2.0
        assert trace.area == "test"
        assert len(trace.trips) >= 2
        for earlier, later in zip(trace.trips, trace.trips[1:]):
            assert later.start_time >= earlier.end_time - 1e-9

    def test_stop_lengths_positive(self, simulator, rng):
        trace = simulator.simulate_vehicle("veh", days=2, rng=rng)
        lengths = trace.stop_lengths()
        if lengths.size:
            assert np.all(lengths > 0.0)

    def test_zero_days_rejected(self, simulator, rng):
        with pytest.raises(SimulationError):
            simulator.simulate_vehicle("veh", days=0, rng=rng)

    def test_nonunit_dt_rejected(self):
        with pytest.raises(SimulationError):
            DriveCycleSimulator(grid_network(rows=3, cols=3), dt=0.5)
