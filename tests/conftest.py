"""Shared fixtures and hypothesis strategies for the test suite."""

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.core.stats import StopStatistics


@pytest.fixture
def rng():
    """A deterministically seeded random generator."""
    return np.random.default_rng(12345)


def feasible_statistics(
    min_break_even: float = 1.0,
    max_break_even: float = 100.0,
    allow_degenerate: bool = False,
) -> st.SearchStrategy:
    """Hypothesis strategy producing feasible ``StopStatistics``.

    Draws ``B``, ``q_B_plus`` and a fraction of the feasible
    ``mu_B_minus`` budget ``(1 - q⁺) B``.  With ``allow_degenerate=False``
    the expected offline cost is bounded away from zero so CRs are
    well defined.
    """

    def build(break_even: float, q: float, mu_fraction: float) -> StopStatistics:
        mu = mu_fraction * (1.0 - q) * break_even
        return StopStatistics(mu_b_minus=mu, q_b_plus=q, break_even=break_even)

    q_strategy = st.floats(
        min_value=0.0 if allow_degenerate else 0.001,
        max_value=1.0 if allow_degenerate else 0.999,
        allow_nan=False,
        allow_infinity=False,
    )
    return st.builds(
        build,
        break_even=st.floats(min_value=min_break_even, max_value=max_break_even),
        q=q_strategy,
        mu_fraction=st.floats(min_value=0.0, max_value=1.0),
    )


def stop_samples(max_size: int = 200, max_length: float = 1000.0) -> st.SearchStrategy:
    """Hypothesis strategy producing non-empty stop-length arrays."""
    return st.lists(
        st.floats(min_value=0.0, max_value=max_length, allow_nan=False),
        min_size=1,
        max_size=max_size,
    ).map(np.asarray)
