"""Unit tests for the mean-variance Pareto analysis and the risk CLI."""

import numpy as np
import pytest

from repro.cli import main
from repro.errors import InvalidParameterError
from repro.evaluation import CostMoments, pareto_frontier, vehicle_pareto_report

B = 28.0


class TestParetoFrontier:
    def test_single_point_is_efficient(self):
        points = pareto_frontier({"only": CostMoments(mean=10.0, std=1.0)})
        assert points[0].efficient

    def test_dominated_point_flagged(self):
        points = pareto_frontier(
            {
                "good": CostMoments(mean=10.0, std=1.0),
                "bad": CostMoments(mean=12.0, std=2.0),
            }
        )
        flags = {p.strategy: p.efficient for p in points}
        assert flags["good"] and not flags["bad"]

    def test_tradeoff_keeps_both(self):
        points = pareto_frontier(
            {
                "low-mean": CostMoments(mean=10.0, std=3.0),
                "low-std": CostMoments(mean=12.0, std=0.0),
            }
        )
        assert all(p.efficient for p in points)

    def test_sorted_by_mean(self):
        points = pareto_frontier(
            {
                "a": CostMoments(mean=12.0, std=0.0),
                "b": CostMoments(mean=10.0, std=3.0),
            }
        )
        assert [p.strategy for p in points] == ["b", "a"]

    def test_equal_points_both_efficient(self):
        points = pareto_frontier(
            {
                "x": CostMoments(mean=10.0, std=1.0),
                "y": CostMoments(mean=10.0, std=1.0),
            }
        )
        assert all(p.efficient for p in points)

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            pareto_frontier({})


class TestVehicleReport:
    def test_proposed_always_efficient(self, rng):
        # The proposed strategy has the (weakly) smallest expected cost
        # among the six; it can only be dominated by an equal-mean,
        # lower-std point — and its delegate ties it exactly, which does
        # not count as domination.
        stops = rng.exponential(60.0, size=200)
        points = vehicle_pareto_report(stops, B)
        flags = {p.strategy: p.efficient for p in points}
        assert flags["Proposed"]

    def test_deterministic_points_zero_std(self, rng):
        stops = rng.exponential(60.0, size=100)
        points = {p.strategy: p for p in vehicle_pareto_report(stops, B)}
        for name in ("TOI", "DET", "NEV"):
            assert points[name].std == 0.0


class TestRiskCLI:
    def test_risk_report_prints(self, capsys):
        stops = "12,45,8,33,95,22,410,28,51,1260"
        assert main(["risk", "--stops", stops, "--break-even", "28"]) == 0
        out = capsys.readouterr().out
        assert "pareto-efficient" in out
        assert "Proposed" in out
        assert "NEV" in out
