"""Degenerate-statistics hardening: uniform typed errors, no NaN escapes.

The paper's statistics pair can collapse: ``mu_B_minus == 0`` and
``q_B_plus == 0`` together make the expected offline cost
``mu⁻ + q⁺B`` zero, so every competitive ratio is 0/0.  These tests pin
the contract introduced by the validation overhaul: every analytic
entry point raises :class:`~repro.errors.DegenerateStatisticsError`
(a subclass of the historical ``InvalidParameterError``) on that corner,
and no reachable input produces ``ZeroDivisionError`` or silent NaNs.
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import ConstrainedSkiRentalSolver, StopStatistics
from repro.core.brand import ImprovedConstrainedSolver
from repro.core.costs import validate_break_even
from repro.errors import DegenerateStatisticsError, InvalidParameterError
from repro.evaluation.batch import select_vertex

from .conftest import feasible_statistics, stop_samples


def degenerate_stats(break_even: float = 28.0) -> StopStatistics:
    return StopStatistics(mu_b_minus=0.0, q_b_plus=0.0, break_even=break_even)


class TestTypedError:
    def test_is_invalid_parameter_error(self):
        # Pre-existing handlers catch InvalidParameterError; the new type
        # must remain a subclass so they keep working.
        assert issubclass(DegenerateStatisticsError, InvalidParameterError)

    def test_constrained_solver_raises(self):
        with pytest.raises(DegenerateStatisticsError):
            ConstrainedSkiRentalSolver(degenerate_stats())

    def test_select_vertex_raises(self):
        with pytest.raises(DegenerateStatisticsError):
            select_vertex(degenerate_stats())

    def test_improved_solver_raises(self):
        with pytest.raises(DegenerateStatisticsError):
            ImprovedConstrainedSolver(degenerate_stats())

    def test_minimax_game_raises(self):
        from repro.core.minimax import solve_constrained_game

        with pytest.raises(DegenerateStatisticsError):
            solve_constrained_game(degenerate_stats(), grid_size=16)

    def test_batched_kernel_raises(self):
        from repro.core import TurnOffImmediately
        from repro.core.kernels import PrefixSumSample, empirical_cr_kernel

        sample = PrefixSumSample(np.zeros(5))
        with pytest.raises(DegenerateStatisticsError):
            empirical_cr_kernel(sample, TurnOffImmediately(28.0), break_even=28.0)

    def test_all_zero_sample_from_samples(self):
        stats = StopStatistics.from_samples(np.zeros(10), 28.0)
        assert stats.expected_offline_cost == 0.0
        with pytest.raises(DegenerateStatisticsError):
            select_vertex(stats)


class TestBreakEvenDomain:
    @pytest.mark.parametrize("bad", [0.0, -1.0, np.nan, np.inf])
    def test_non_positive_or_non_finite_rejected(self, bad):
        with pytest.raises(InvalidParameterError):
            validate_break_even(bad)

    @pytest.mark.parametrize("bad", [0.0, -28.0, np.nan])
    def test_stats_constructor_rejects(self, bad):
        with pytest.raises(InvalidParameterError):
            StopStatistics(mu_b_minus=1.0, q_b_plus=0.1, break_even=bad)


class TestSingleAxisDegeneracy:
    """Only one of (mu⁻, q⁺) collapsing keeps the offline cost positive."""

    def test_q_zero_mu_positive_is_defined(self):
        stats = StopStatistics(mu_b_minus=5.0, q_b_plus=0.0, break_even=28.0)
        name, b_star = select_vertex(stats)
        assert name in {"TOI", "DET", "b-DET", "N-Rand"}
        selection = ConstrainedSkiRentalSolver(stats).select()
        assert np.isfinite(selection.worst_case_cr)

    def test_mu_zero_q_positive_is_defined(self):
        stats = StopStatistics(mu_b_minus=0.0, q_b_plus=0.5, break_even=28.0)
        name, b_star = select_vertex(stats)
        if name == "b-DET":
            assert b_star is not None and b_star > 0.0
        selection = ConstrainedSkiRentalSolver(stats).select()
        assert np.isfinite(selection.worst_case_cr)
        assert selection.worst_case_cr >= 1.0


class TestNoEscapes:
    @settings(max_examples=200, deadline=None)
    @given(stats=feasible_statistics(allow_degenerate=True))
    def test_select_vertex_total_over_degenerate_domain(self, stats):
        # Either a well-defined vertex or the typed error — never
        # ZeroDivisionError, never NaN leaking out.
        try:
            name, b_star = select_vertex(stats)
        except DegenerateStatisticsError:
            assert stats.expected_offline_cost <= 0.0
            return
        assert name in {"TOI", "DET", "b-DET", "N-Rand"}
        if b_star is not None:
            assert np.isfinite(b_star) and b_star > 0.0

    @settings(max_examples=200, deadline=None)
    @given(stats=feasible_statistics(allow_degenerate=True))
    def test_solver_cr_never_nan(self, stats):
        try:
            selection = ConstrainedSkiRentalSolver(stats).select()
        except DegenerateStatisticsError:
            assert stats.expected_offline_cost <= 0.0
            return
        assert not np.isnan(selection.worst_case_cr)
        assert selection.worst_case_cr >= 1.0 - 1e-12

    @settings(max_examples=100, deadline=None)
    @given(stats=feasible_statistics(allow_degenerate=True))
    def test_solver_and_lean_selector_agree(self, stats):
        try:
            selection = ConstrainedSkiRentalSolver(stats).select()
        except DegenerateStatisticsError:
            with pytest.raises(DegenerateStatisticsError):
                select_vertex(stats)
            return
        name, _ = select_vertex(stats)
        assert name == selection.name

    @settings(max_examples=100, deadline=None)
    @given(sample=stop_samples(max_size=50))
    def test_from_samples_total(self, sample):
        stats = StopStatistics.from_samples(sample, 28.0)
        try:
            selection = ConstrainedSkiRentalSolver(stats).select()
        except DegenerateStatisticsError:
            assert np.all(sample[np.isfinite(sample)] == 0.0)
            return
        assert not np.isnan(selection.worst_case_cr)
