"""Property-based tests (hypothesis) for the core ski-rental invariants."""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.constants import E
from repro.core.analysis import empirical_cr, expected_online_cost
from repro.core.constrained import ConstrainedSkiRentalSolver, ProposedOnline
from repro.core.costs import competitive_ratio, offline_cost, online_cost
from repro.core.deterministic import (
    b_det_condition_holds,
    b_det_worst_case_cost,
    optimal_b,
)
from repro.core.lp import solve_lp
from repro.core.randomized import MOMRand, NRand
from repro.core.stats import StopStatistics
from repro.distributions import DiscreteStopDistribution

from .conftest import feasible_statistics, stop_samples

positive_b = st.floats(min_value=0.5, max_value=500.0, allow_nan=False)
lengths = st.floats(min_value=0.0, max_value=5000.0, allow_nan=False)


class TestCostInvariants:
    @given(x=lengths, y=lengths, b=positive_b)
    def test_online_dominates_offline(self, x, y, b):
        assert online_cost(x, y, b) >= offline_cost(y, b) - 1e-9

    @given(x=lengths, y=lengths, b=positive_b)
    def test_online_at_most_threshold_plus_restart(self, x, y, b):
        assert online_cost(x, y, b) <= x + b + 1e-9

    @given(y=st.floats(min_value=1e-3, max_value=5000.0), b=positive_b)
    def test_det_ratio_at_most_two(self, y, b):
        assert competitive_ratio(b, y, b) <= 2.0 + 1e-9

    @given(y=lengths, b=positive_b)
    def test_offline_capped_at_break_even(self, y, b):
        assert offline_cost(y, b) <= b


class TestNRandInvariant:
    @given(y=st.floats(min_value=1e-6, max_value=5000.0), b=positive_b)
    def test_pointwise_ratio_constant(self, y, b):
        nrand = NRand(b)
        assert nrand.expected_cost(y) / offline_cost(y, b) == pytest.approx(
            E / (E - 1), rel=1e-9
        )


class TestMOMRandInvariant:
    @given(
        y=st.floats(min_value=0.0, max_value=5000.0),
        b=positive_b,
        mu_frac=st.floats(min_value=0.0, max_value=0.83),
    )
    def test_revised_cost_closed_form_ratio(self, y, b, mu_frac):
        # In the revised regime the pointwise ratio is
        # 1 + min(y, B) / (2B(e-2)): below N-Rand's e/(e-1) for short
        # stops, above it near y = B (the trade-off that makes MOM-Rand's
        # guarantee an *expectation* bound, not a pointwise one).
        mom = MOMRand(b, mu_frac * b)
        cost = mom.expected_cost(y)
        assert cost >= offline_cost(y, b) - 1e-9
        if mom.uses_revised_pdf and y > 0:
            ratio = cost / offline_cost(y, b)
            assert ratio == pytest.approx(
                1.0 + min(y, b) / (2.0 * b * (E - 2.0)), rel=1e-9
            )
        else:
            assert cost <= NRand(b).expected_cost(y) + 1e-9


class TestStatisticsInvariants:
    @given(stops=stop_samples(), b=positive_b)
    def test_sample_statistics_always_feasible(self, stops, b):
        stats = StopStatistics.from_samples(stops, b)
        assert 0.0 <= stats.q_b_plus <= 1.0
        assert stats.mu_b_minus <= (1.0 - stats.q_b_plus) * b + 1e-9

    @given(stats=feasible_statistics())
    def test_offline_cost_at_most_break_even(self, stats):
        assert stats.expected_offline_cost <= stats.break_even + 1e-9


class TestSolverInvariants:
    @given(stats=feasible_statistics())
    @settings(max_examples=200)
    def test_proposed_cr_bounded(self, stats):
        assume(stats.expected_offline_cost > 1e-9)
        selection = ConstrainedSkiRentalSolver(stats).select()
        assert 1.0 - 1e-9 <= selection.worst_case_cr <= E / (E - 1) + 1e-9

    @given(stats=feasible_statistics())
    @settings(max_examples=200)
    def test_chosen_cost_is_min_of_vertices(self, stats):
        assume(stats.expected_offline_cost > 1e-9)
        selection = ConstrainedSkiRentalSolver(stats).select()
        finite = [
            v.worst_case_cost
            for v in selection.vertices
            if math.isfinite(v.worst_case_cost)
        ]
        assert selection.chosen.worst_case_cost == pytest.approx(min(finite))

    @given(stats=feasible_statistics())
    @settings(max_examples=100, deadline=None)
    def test_lp_agrees_with_analytic(self, stats):
        assume(stats.expected_offline_cost > 1e-9)
        selection = ConstrainedSkiRentalSolver(stats).select()
        lp_solution = solve_lp(stats)
        scale = max(1.0, selection.chosen.worst_case_cost)
        assert abs(lp_solution.cost - selection.chosen.worst_case_cost) < 1e-7 * scale

    @given(stats=feasible_statistics())
    @settings(max_examples=100)
    def test_b_star_minimizes_eq34(self, stats):
        assume(stats.q_b_plus > 1e-6 and stats.mu_b_minus > 1e-9)
        assume(b_det_condition_holds(stats))
        b_star = optimal_b(stats)
        assume(0.0 < b_star < stats.break_even)

        def eq34(b):
            return (b + stats.break_even) * (stats.mu_b_minus / b + stats.q_b_plus)

        assert eq34(b_star) == pytest.approx(b_det_worst_case_cost(stats), rel=1e-9)
        for factor in (0.5, 0.9, 1.1, 2.0):
            other = b_star * factor
            if 0.0 < other < stats.break_even:
                assert eq34(b_star) <= eq34(other) + 1e-9


class TestEndToEndInvariant:
    @given(stops=stop_samples(max_size=100), b=positive_b)
    @settings(max_examples=100, deadline=None)
    def test_proposed_cr_at_least_one_on_any_sample(self, stops, b):
        assume(float(np.minimum(stops, b).mean()) > 1e-9)
        proposed = ProposedOnline.from_samples(stops, b)
        assert empirical_cr(proposed, stops, b) >= 1.0 - 1e-9

    @given(
        short=st.floats(min_value=0.1, max_value=0.9),
        q=st.floats(min_value=0.01, max_value=0.99),
        b=positive_b,
    )
    @settings(max_examples=100, deadline=None)
    def test_proposed_never_worse_than_guarantee_on_two_point(self, short, q, b):
        # Evaluate the proposed strategy on an arbitrary two-point member
        # of Q: its realized expected CR never exceeds its guarantee.
        dist = DiscreteStopDistribution([short * b, 2.0 * b], [1.0 - q, q])
        stats = StopStatistics.from_distribution(dist, b)
        proposed = ProposedOnline(stats)
        realized = expected_online_cost(proposed, dist) / stats.expected_offline_cost
        assert realized <= proposed.worst_case_cr + 1e-9
