"""Unit tests for N-Rand (Eq. 7) and MOM-Rand (Eq. 9).

The closed forms in repro.core.randomized are checked against the generic
quadrature defaults of the base class and against the published bounds.
"""

import math

import numpy as np
import pytest
from scipy import integrate

from repro.constants import E, MOM_RAND_MU_THRESHOLD
from repro.core.randomized import (
    MOMRand,
    NRand,
    mom_rand_cr_prime_bound,
    mom_rand_uses_revised_pdf,
)
from repro.errors import InvalidParameterError

B = 28.0


class TestNRandPdf:
    def test_pdf_matches_eq7(self):
        nr = NRand(B)
        for x in (0.0, 10.0, B):
            assert nr.pdf(x) == pytest.approx(math.exp(x / B) / (B * (E - 1.0)))

    def test_pdf_zero_outside_support(self):
        nr = NRand(B)
        assert nr.pdf(-1.0) == 0.0
        assert nr.pdf(B + 1.0) == 0.0

    def test_pdf_integrates_to_one(self):
        nr = NRand(B)
        total, _ = integrate.quad(nr.pdf, 0.0, B)
        assert total == pytest.approx(1.0, rel=1e-9)

    def test_cdf_matches_quadrature(self):
        nr = NRand(B)
        for y in (5.0, 14.0, 25.0):
            numeric, _ = integrate.quad(nr.pdf, 0.0, y)
            assert nr.cdf(y) == pytest.approx(numeric, rel=1e-9)

    def test_inverse_cdf_round_trips(self):
        nr = NRand(B)
        for u in (0.0, 0.1, 0.5, 0.9, 1.0):
            assert nr.cdf(nr.inverse_cdf(u)) == pytest.approx(u, abs=1e-12)


class TestNRandExpectedCost:
    def test_pointwise_ratio_is_e_over_e_minus_one(self):
        # The defining property of N-Rand: E[cost | y] = e/(e-1) min(y, B).
        nr = NRand(B)
        for y in (0.1, 5.0, 14.0, B, 2 * B, 100 * B):
            offline = min(y, B)
            assert nr.expected_cost(y) / offline == pytest.approx(E / (E - 1.0))

    def test_closed_form_matches_quadrature(self):
        nr = NRand(B)
        for y in (3.0, 17.0, B):
            numeric, _ = integrate.quad(lambda x: (x + B) * nr.pdf(x), 0.0, y)
            numeric += y * (1.0 - nr.cdf(y))
            assert nr.expected_cost(y) == pytest.approx(numeric, rel=1e-8)

    def test_partial_cost_integral_closed_form(self):
        nr = NRand(B)
        for y in (3.0, 17.0, B):
            numeric, _ = integrate.quad(lambda x: (x + B) * nr.pdf(x), 0.0, y)
            assert nr.partial_cost_integral(y) == pytest.approx(numeric, rel=1e-9)

    def test_vectorised_matches_scalar(self):
        nr = NRand(B)
        y = np.array([0.0, 5.0, B, 100.0])
        np.testing.assert_allclose(
            nr.expected_cost_vec(y), [nr.expected_cost(v) for v in y]
        )

    def test_mean_threshold_closed_form(self):
        nr = NRand(B)
        numeric, _ = integrate.quad(lambda x: x * nr.pdf(x), 0.0, B)
        assert nr.mean_threshold() == pytest.approx(numeric, rel=1e-9)

    def test_monte_carlo_agrees(self, rng):
        nr = NRand(B)
        draws = nr.draw_thresholds(20000, rng)
        y = 15.0
        costs = np.where(y < draws, y, draws + B)
        assert costs.mean() == pytest.approx(nr.expected_cost(y), rel=0.02)


class TestMOMRandRegimes:
    def test_threshold_constant(self):
        assert MOM_RAND_MU_THRESHOLD == pytest.approx(2 * (E - 2) / (E - 1))

    def test_revised_regime_detection(self):
        assert mom_rand_uses_revised_pdf(0.5 * B, B)
        assert not mom_rand_uses_revised_pdf(0.9 * B, B)

    def test_negative_mu_rejected(self):
        with pytest.raises(InvalidParameterError):
            mom_rand_uses_revised_pdf(-1.0, B)
        with pytest.raises(InvalidParameterError):
            MOMRand(B, -1.0)

    def test_fallback_to_nrand(self):
        mom = MOMRand(B, 0.9 * B)
        nr = NRand(B)
        assert not mom.uses_revised_pdf
        for y in (5.0, 20.0, 50.0):
            assert mom.expected_cost(y) == pytest.approx(nr.expected_cost(y))
        assert mom.pdf(10.0) == pytest.approx(nr.pdf(10.0))
        assert mom.cr_prime_bound() == pytest.approx(E / (E - 1.0))


class TestMOMRandRevisedPdf:
    def test_pdf_matches_eq9(self):
        mom = MOMRand(B, 10.0)
        for x in (0.0, 10.0, B):
            assert mom.pdf(x) == pytest.approx(
                (math.exp(x / B) - 1.0) / (B * (E - 2.0))
            )

    def test_pdf_integrates_to_one(self):
        mom = MOMRand(B, 10.0)
        total, _ = integrate.quad(mom.pdf, 0.0, B)
        assert total == pytest.approx(1.0, rel=1e-9)

    def test_cdf_matches_quadrature(self):
        mom = MOMRand(B, 10.0)
        for y in (5.0, 14.0, 25.0):
            numeric, _ = integrate.quad(mom.pdf, 0.0, y)
            assert mom.cdf(y) == pytest.approx(numeric, rel=1e-9)

    def test_expected_cost_closed_form(self):
        # E[cost | y] = y + y^2 / (2B(e-2)) for y <= B.
        mom = MOMRand(B, 10.0)
        for y in (1.0, 10.0, 20.0, B):
            assert mom.expected_cost(y) == pytest.approx(
                y + y * y / (2.0 * B * (E - 2.0))
            )

    def test_expected_cost_matches_quadrature(self):
        mom = MOMRand(B, 10.0)
        for y in (4.0, 18.0):
            numeric, _ = integrate.quad(lambda x: (x + B) * mom.pdf(x), 0.0, y)
            numeric += y * (1.0 - mom.cdf(y))
            assert mom.expected_cost(y) == pytest.approx(numeric, rel=1e-8)

    def test_continuous_at_break_even(self):
        mom = MOMRand(B, 10.0)
        assert mom.expected_cost(B) == pytest.approx(mom.expected_cost(B + 100.0))

    def test_cr_prime_bound_formula(self):
        mu = 10.0
        assert mom_rand_cr_prime_bound(mu, B) == pytest.approx(
            1.0 + mu / (2.0 * B * (E - 2.0))
        )

    def test_sampling_stays_in_support(self, rng):
        mom = MOMRand(B, 10.0)
        draws = mom.draw_thresholds(500, rng)
        assert np.all((draws >= 0.0) & (draws <= B))

    def test_vectorised_matches_scalar(self):
        mom = MOMRand(B, 10.0)
        y = np.array([0.0, 5.0, B, 100.0])
        np.testing.assert_allclose(
            mom.expected_cost_vec(y), [mom.expected_cost(v) for v in y]
        )
