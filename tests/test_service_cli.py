"""CLI tests for ``serve``, ``ledger`` and the fault-claim sweep hook."""

import io
import json
import os

import pytest

from repro.cli import main
from repro.engine import RunLedger
from repro.service.soak import build_fleet_events


@pytest.fixture
def events_file(tmp_path):
    path = tmp_path / "events.jsonl"
    events = build_fleet_events(vehicles=2, stops_per_vehicle=12, seed=5)
    path.write_text("".join(json.dumps(event) + "\n" for event in events))
    return path


class TestServe:
    def test_serve_processes_a_file(self, events_file, tmp_path, capsys):
        assert main([
            "serve", str(events_file), "--state-dir", str(tmp_path / "state"),
        ]) == 0
        out = capsys.readouterr().out
        assert "fleet cost:" in out
        assert "24 received" in out

    def test_serve_reads_stdin(self, tmp_path, capsys, monkeypatch):
        event = {"id": "e-1", "vehicle": "v1", "t": 0.0, "stop": 42.0}
        monkeypatch.setattr("sys.stdin", io.StringIO(json.dumps(event) + "\n"))
        assert main(["serve", "-", "--state-dir", str(tmp_path / "state")]) == 0
        assert "v1" in capsys.readouterr().out

    def test_serve_writes_health_snapshot(self, events_file, tmp_path, capsys):
        health = tmp_path / "health.json"
        assert main([
            "serve", str(events_file),
            "--state-dir", str(tmp_path / "state"),
            "--health", str(health),
        ]) == 0
        snapshot = json.loads(health.read_text())
        assert set(snapshot) == {
            "fleet_cost", "vehicles", "ingest", "states", "durability",
        }
        assert snapshot["durability"]["suspended_sessions"] == 0
        assert len(snapshot["vehicles"]) == 2
        for info in snapshot["vehicles"].values():
            assert info["health"] in ("healthy", "degraded", "safe")
            assert "digest" in info

    def test_serve_restart_recovers_and_dedups(self, events_file, tmp_path, capsys):
        state_dir = tmp_path / "state"
        assert main(["serve", str(events_file), "--state-dir", str(state_dir)]) == 0
        first = capsys.readouterr().out
        assert main(["serve", str(events_file), "--state-dir", str(state_dir)]) == 0
        second = capsys.readouterr().out
        # Full redelivery after restart: same fleet cost, all duplicates.
        cost = [line for line in first.splitlines() if "fleet cost" in line]
        assert cost == [line for line in second.splitlines() if "fleet cost" in line]
        assert "24 duplicate(s)" in second

    def test_serve_ledger_and_summary_round_trip(self, events_file, tmp_path, capsys):
        ledger_path = tmp_path / "ledger.jsonl"
        assert main([
            "serve", str(events_file),
            "--state-dir", str(tmp_path / "state"),
            "--ledger", str(ledger_path),
        ]) == 0
        capsys.readouterr()
        assert main(["ledger", str(ledger_path)]) == 0
        assert "record(s)" in capsys.readouterr().out

    def test_serve_strict_failure_still_flushes_state(self, tmp_path, capsys):
        # A strict-policy validation error aborts the stream mid-pump;
        # service.close() must still run (finally) so the applied work
        # is compacted durably.
        events = tmp_path / "events.jsonl"
        good = {"id": "e-1", "vehicle": "v1", "t": 0.0, "stop": 42.0}
        bad = {"id": "e-2", "vehicle": "v1", "t": 1.0, "stop": -1.0}
        events.write_text(json.dumps(good) + "\n" + json.dumps(bad) + "\n")
        state_dir = tmp_path / "state"
        assert main([
            "serve", str(events),
            "--state-dir", str(state_dir),
            "--policy", "strict",
        ]) == 1
        assert "error:" in capsys.readouterr().err
        snapshots = list(state_dir.glob("vehicles/*/snapshot.json"))
        assert len(snapshots) == 1
        payload = json.loads(snapshots[0].read_text()[9:])  # skip crc prefix
        assert payload["seq"] == 1  # the good event was compacted

    def test_serve_missing_events_file_fails_cleanly(self, tmp_path, capsys):
        assert main([
            "serve", str(tmp_path / "absent.jsonl"),
            "--state-dir", str(tmp_path / "state"),
        ]) == 1
        assert "error:" in capsys.readouterr().err


class TestServeBatch:
    @pytest.mark.parametrize("value", ["0", "-3"])
    def test_bad_batch_value_is_usage_error(self, value, events_file, tmp_path, capsys):
        assert main([
            "serve", str(events_file),
            "--state-dir", str(tmp_path / "state"),
            "--batch", value,
        ]) == 2
        assert f"--batch must be >= 1, got {value}" in capsys.readouterr().err

    def test_non_integer_batch_is_rejected_by_argparse(self, events_file, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main([
                "serve", str(events_file),
                "--state-dir", str(tmp_path / "state"),
                "--batch", "many",
            ])
        assert excinfo.value.code == 2

    def _summary(self, events_file, tmp_path, capsys, extra):
        state_dir = tmp_path / "state" / ("batch-" + extra[-1] if extra else "scalar")
        assert main([
            "serve", str(events_file), "--state-dir", str(state_dir),
        ] + extra) == 0
        return capsys.readouterr().out

    def test_batch_output_matches_scalar(self, events_file, tmp_path, capsys):
        scalar = self._summary(events_file, tmp_path, capsys, [])
        batched = self._summary(events_file, tmp_path, capsys, ["--batch", "7"])
        pick = lambda text: [
            line for line in text.splitlines()
            if line.startswith(("fleet cost:", "ingestion:"))
            or line.lstrip().startswith(("v-", "veh"))
        ]
        assert pick(batched) == pick(scalar)
        assert "batched:" in batched
        assert "batched:" not in scalar

    def test_batch_of_one_prints_no_batch_line(self, events_file, tmp_path, capsys):
        scalar = self._summary(events_file, tmp_path, capsys, [])
        one = self._summary(events_file, tmp_path, capsys, ["--batch", "1"])
        assert "batched:" not in one
        assert [l for l in one.splitlines() if "fleet cost" in l] == [
            l for l in scalar.splitlines() if "fleet cost" in l
        ]

    def test_health_snapshot_reports_batch_throughput(
        self, events_file, tmp_path, capsys
    ):
        health = tmp_path / "health.json"
        assert main([
            "serve", str(events_file),
            "--state-dir", str(tmp_path / "state"),
            "--health", str(health),
            "--batch", "10",
        ]) == 0
        batch = json.loads(health.read_text())["ingest"]["batch"]
        # 24 events in chunks of 10 -> 3 chunks.
        assert batch["chunks"] == 3
        assert batch["events"] == 24
        assert batch["wall_s"] > 0.0
        assert batch["events_per_s"] > 0.0
        out = capsys.readouterr().out
        assert "batched:     3 chunk(s) of <= 10, 24 event(s)" in out

    def test_batch_mode_with_fsync_and_restart_dedups(
        self, events_file, tmp_path, capsys
    ):
        state_dir = tmp_path / "state"
        args = [
            "serve", str(events_file),
            "--state-dir", str(state_dir),
            "--fsync", "--batch", "8",
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        second = capsys.readouterr().out
        cost = [l for l in first.splitlines() if "fleet cost" in l]
        assert cost == [l for l in second.splitlines() if "fleet cost" in l]
        assert "24 duplicate(s)" in second


class TestLedgerSummary:
    def test_truncated_final_line_is_tolerated(self, tmp_path, capsys):
        path = tmp_path / "ledger.jsonl"
        ledger = RunLedger(path)
        ledger.emit("advisor-state", vehicle="v1", **{
            "from": "healthy", "to": "degraded", "reason": "drift", "applied": 20,
        })
        ledger.emit("map-start", tasks=4)
        with open(path, "a") as handle:
            handle.write('{"event": "torn')  # crash mid-write
        assert main(["ledger", str(path)]) == 0
        out = capsys.readouterr().out
        assert "2 record(s)" in out
        assert "advisor state transitions:" in out
        assert "degraded" in out

    def test_missing_ledger_fails_cleanly(self, tmp_path, capsys):
        assert main(["ledger", str(tmp_path / "absent.jsonl")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_mid_file_corruption_fails_cleanly(self, tmp_path, capsys):
        # Real corruption (not a torn tail) raises JSONDecodeError from
        # the reader; the CLI must report it, not traceback.
        path = tmp_path / "ledger.jsonl"
        ledger = RunLedger(path)
        ledger.emit("map-start", tasks=1)
        ledger.emit("map-finish")
        lines = path.read_text().splitlines()
        lines[0] = lines[0][:-2]  # corrupt a non-final line
        path.write_text("\n".join(lines) + "\n")
        assert main(["ledger", str(path)]) == 1
        assert "error:" in capsys.readouterr().err


class TestFaultClaimSweep:
    def test_cache_doctor_sweeps_dead_pid_claims(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        claims = tmp_path / "claims"
        claims.mkdir()
        (claims / "deadbeef.0").write_text("999999999")  # no such pid
        (claims / "cafebabe.0").write_text(str(os.getpid()))  # alive: keep
        assert main([
            "cache", "doctor", "--fault-claims", str(claims),
        ]) == 0
        out = capsys.readouterr().out
        assert "swept 1 stale claim(s)" in out
        assert not (claims / "deadbeef.0").exists()
        assert (claims / "cafebabe.0").exists()
