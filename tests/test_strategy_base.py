"""Unit tests for the strategy base classes, including the generic
quadrature/root-finding fall-backs of ContinuousRandomizedStrategy and the
mixed atoms+continuous form of Eq. (18)."""

import math

import numpy as np
import pytest

from repro.core.strategy import (
    Atom,
    ContinuousRandomizedStrategy,
    DeterministicThresholdStrategy,
    MixedStrategy,
)
from repro.errors import InvalidParameterError

B = 10.0


class UniformThreshold(ContinuousRandomizedStrategy):
    """Minimal subclass providing only a pdf: uniform on [0, B].

    Exercises every quadrature/Brent default of the base class.  Closed
    forms for comparison: CDF(t) = t/B and, for y <= B,
    E[cost | y] = ∫₀^y (x+B)/B dx + y (1 - y/B) = y²/(2B) + y + y - y²/B
                = 2y - y²/(2B).
    """

    name = "uniform-threshold"

    def pdf(self, threshold: float) -> float:
        return 1.0 / self.break_even if 0.0 <= threshold <= self.break_even else 0.0


class TestDeterministicThresholdStrategy:
    def test_expected_cost_matches_eq3(self):
        strategy = DeterministicThresholdStrategy(B, threshold=4.0)
        assert strategy.expected_cost(3.0) == 3.0
        assert strategy.expected_cost(4.0) == 4.0 + B
        assert strategy.expected_cost(100.0) == 4.0 + B

    def test_infinite_threshold_never_restarts(self):
        strategy = DeterministicThresholdStrategy(B, threshold=math.inf)
        assert strategy.expected_cost(1000.0) == 1000.0

    def test_vectorised_matches_scalar(self):
        strategy = DeterministicThresholdStrategy(B, threshold=4.0)
        y = np.array([0.0, 3.0, 4.0, 50.0])
        np.testing.assert_allclose(
            strategy.expected_cost_vec(y), [strategy.expected_cost(v) for v in y]
        )

    def test_draw_is_constant(self, rng):
        strategy = DeterministicThresholdStrategy(B, threshold=4.0)
        assert strategy.draw_threshold(rng) == 4.0

    def test_negative_threshold_rejected(self):
        with pytest.raises(InvalidParameterError):
            DeterministicThresholdStrategy(B, threshold=-1.0)

    def test_draw_thresholds_count_validated(self, rng):
        strategy = DeterministicThresholdStrategy(B, threshold=4.0)
        with pytest.raises(InvalidParameterError):
            strategy.draw_thresholds(-1, rng)


class TestContinuousDefaults:
    def test_default_cdf_from_pdf(self):
        strategy = UniformThreshold(B)
        assert strategy.cdf(5.0) == pytest.approx(0.5, rel=1e-8)
        assert strategy.cdf(-1.0) == 0.0
        assert strategy.cdf(B + 1.0) == 1.0

    def test_default_expected_cost_matches_closed_form(self):
        strategy = UniformThreshold(B)
        for y in (0.0, 2.0, 5.0, B):
            closed = 2.0 * y - y * y / (2.0 * B)
            assert strategy.expected_cost(y) == pytest.approx(closed, rel=1e-7)

    def test_expected_cost_constant_past_b(self):
        strategy = UniformThreshold(B)
        assert strategy.expected_cost(B + 50.0) == pytest.approx(
            strategy.expected_cost(B), rel=1e-7
        )

    def test_default_inverse_cdf_round_trips(self):
        strategy = UniformThreshold(B)
        for u in (0.0, 0.25, 0.5, 0.9, 1.0):
            assert strategy.cdf(strategy.inverse_cdf(u)) == pytest.approx(u, abs=1e-6)

    def test_inverse_cdf_rejects_bad_quantile(self):
        with pytest.raises(InvalidParameterError):
            UniformThreshold(B).inverse_cdf(1.5)

    def test_default_mean_threshold(self):
        assert UniformThreshold(B).mean_threshold() == pytest.approx(B / 2, rel=1e-8)

    def test_sampling_stays_in_support(self, rng):
        strategy = UniformThreshold(B)
        draws = strategy.draw_thresholds(200, rng)
        assert np.all(draws >= 0.0) and np.all(draws <= B)
        # Uniform draws should roughly cover the support.
        assert draws.std() > B / 6


class TestAtom:
    def test_valid_atom(self):
        atom = Atom(3.0, 0.5)
        assert atom.location == 3.0 and atom.mass == 0.5

    @pytest.mark.parametrize("loc,mass", [(-1.0, 0.5), (1.0, -0.1), (1.0, 1.5)])
    def test_invalid_atom_rejected(self, loc, mass):
        with pytest.raises(InvalidParameterError):
            Atom(loc, mass)


class TestMixedStrategy:
    def test_pure_atoms_expected_cost(self):
        # 50/50 between TOI (x=0) and DET (x=B).
        strategy = MixedStrategy(B, [Atom(0.0, 0.5), Atom(B, 0.5)])
        y = 5.0
        expected = 0.5 * B + 0.5 * y
        assert strategy.expected_cost(y) == pytest.approx(expected)

    def test_atoms_plus_continuous(self):
        continuous = UniformThreshold(B)
        strategy = MixedStrategy(B, [Atom(0.0, 0.25)], continuous=continuous)
        y = 4.0
        expected = 0.25 * B + 0.75 * continuous.expected_cost(y)
        assert strategy.expected_cost(y) == pytest.approx(expected, rel=1e-7)

    def test_vectorised_matches_scalar(self):
        continuous = UniformThreshold(B)
        strategy = MixedStrategy(B, [Atom(0.0, 0.25)], continuous=continuous)
        y = np.array([0.0, 4.0, B, 2 * B])
        np.testing.assert_allclose(
            strategy.expected_cost_vec(y),
            [strategy.expected_cost(v) for v in y],
            rtol=1e-6,
        )

    def test_draw_respects_atom_masses(self, rng):
        strategy = MixedStrategy(B, [Atom(0.0, 0.5), Atom(B, 0.5)])
        draws = strategy.draw_thresholds(400, rng)
        assert set(np.unique(draws)) <= {0.0, B}
        assert 0.3 < (draws == 0.0).mean() < 0.7

    def test_overweight_atoms_rejected(self):
        with pytest.raises(InvalidParameterError):
            MixedStrategy(B, [Atom(0.0, 0.7), Atom(B, 0.7)])

    def test_missing_continuous_rejected(self):
        with pytest.raises(InvalidParameterError):
            MixedStrategy(B, [Atom(0.0, 0.5)])

    def test_mismatched_break_even_rejected(self):
        with pytest.raises(InvalidParameterError):
            MixedStrategy(B, [Atom(0.0, 0.5)], continuous=UniformThreshold(2 * B))
