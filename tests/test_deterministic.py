"""Unit tests for NEV, TOI, DET and b-DET (Sections 2.2 and 4.4)."""

import math

import numpy as np
import pytest

from repro.core.deterministic import (
    BDet,
    Deterministic,
    NeverOff,
    TurnOffImmediately,
    b_det_condition_holds,
    b_det_worst_case_cost,
    optimal_b,
)
from repro.core.stats import StopStatistics
from repro.errors import InvalidParameterError

B = 28.0


class TestNeverOff:
    def test_cost_is_stop_length(self):
        nev = NeverOff(B)
        for y in (0.0, 10.0, B, 1000.0):
            assert nev.expected_cost(y) == y

    def test_unbounded_ratio(self):
        nev = NeverOff(B)
        assert nev.expected_cost(100 * B) / B == pytest.approx(100.0)


class TestTurnOffImmediately:
    def test_cost_is_break_even(self):
        toi = TurnOffImmediately(B)
        for y in (0.0, 1.0, B, 500.0):
            assert toi.expected_cost(y) == B

    def test_vectorised(self):
        toi = TurnOffImmediately(B)
        np.testing.assert_allclose(toi.expected_cost_vec(np.array([1.0, 99.0])), [B, B])


class TestDeterministic:
    def test_threshold_is_break_even(self):
        assert Deterministic(B).threshold == B

    def test_two_competitive(self):
        det = Deterministic(B)
        # Just past B: online pays 2B while offline pays B.
        assert det.expected_cost(B) / B == pytest.approx(2.0)

    def test_optimal_for_short_stops(self):
        det = Deterministic(B)
        assert det.expected_cost(10.0) == 10.0


class TestOptimalB:
    def test_formula(self):
        stats = StopStatistics(mu_b_minus=7.0, q_b_plus=0.25, break_even=B)
        assert optimal_b(stats) == pytest.approx(math.sqrt(7.0 * B / 0.25))

    def test_minimizes_eq34(self):
        stats = StopStatistics(mu_b_minus=0.56, q_b_plus=0.3, break_even=B)
        b_star = optimal_b(stats)

        def eq34(b):
            return (b + B) * (stats.mu_b_minus / b + stats.q_b_plus)

        for b in np.linspace(0.1, B - 0.1, 50):
            assert eq34(b_star) <= eq34(b) + 1e-9

    def test_undefined_without_long_stops(self):
        stats = StopStatistics(10.0, 0.0, B)
        with pytest.raises(InvalidParameterError):
            optimal_b(stats)


class TestCondition36:
    def test_holds_for_small_mu(self):
        stats = StopStatistics(mu_b_minus=0.02 * B, q_b_plus=0.3, break_even=B)
        assert b_det_condition_holds(stats)

    def test_fails_for_large_mu(self):
        # mu/B = 0.8 vs (1-0.5)^2/0.5 = 0.5.
        with pytest.raises(InvalidParameterError):
            # infeasible anyway: 0.8 > 1 - q = 0.5
            StopStatistics(0.8 * B, 0.5, B)
        stats = StopStatistics(0.45 * B, 0.5, B)  # 0.45 > 0.5^2/0.5 = 0.5? no: 0.45 < 0.5
        assert b_det_condition_holds(stats)
        stats2 = StopStatistics(0.45 * B, 0.55, B)  # bound = 0.45^2/0.55 ≈ 0.368 < 0.45
        assert not b_det_condition_holds(stats2)

    def test_equivalent_to_b_above_conditional_mean(self):
        for mu_frac, q in [(0.1, 0.2), (0.3, 0.4), (0.05, 0.6), (0.5, 0.3)]:
            stats = StopStatistics(mu_frac * B * (1 - q), q, B)
            if stats.q_b_plus == 0:
                continue
            holds = b_det_condition_holds(stats)
            b_star = optimal_b(stats)
            above = b_star > stats.short_stop_conditional_mean
            assert holds == above

    def test_fails_when_all_stops_long(self):
        assert not b_det_condition_holds(StopStatistics(0.0, 1.0, B))

    def test_fails_when_no_long_stops(self):
        assert not b_det_condition_holds(StopStatistics(10.0, 0.0, B))


class TestBDetWorstCaseCost:
    def test_eq35(self):
        stats = StopStatistics(0.05 * B, 0.3, B)
        expected = (math.sqrt(0.05 * B) + math.sqrt(0.3 * B)) ** 2
        assert b_det_worst_case_cost(stats) == pytest.approx(expected)

    def test_infinite_when_inadmissible(self):
        stats = StopStatistics(0.45 * B, 0.55, B)
        assert b_det_worst_case_cost(stats) == math.inf


class TestBDetStrategy:
    def test_threshold_bounds_enforced(self):
        with pytest.raises(InvalidParameterError):
            BDet(B, 0.0)
        with pytest.raises(InvalidParameterError):
            BDet(B, B)

    def test_from_statistics_uses_optimal_b(self):
        stats = StopStatistics(0.05 * B, 0.3, B)
        bdet = BDet.from_statistics(stats)
        assert bdet.threshold == pytest.approx(optimal_b(stats))

    def test_from_statistics_rejects_inadmissible(self):
        stats = StopStatistics(0.45 * B, 0.55, B)
        with pytest.raises(InvalidParameterError):
            BDet.from_statistics(stats)

    def test_cost_behaviour(self):
        bdet = BDet(B, 5.0)
        assert bdet.expected_cost(3.0) == 3.0
        assert bdet.expected_cost(5.0) == 5.0 + B
        assert bdet.expected_cost(1000.0) == 5.0 + B
