"""Property-based tests (hypothesis) for the extension modules:
b-Rand, PSK, multislope and the adaptive estimator."""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.constants import E, E_RATIO
from repro.core.adaptive import AdaptiveProposed
from repro.core.brand import BRand, ImprovedConstrainedSolver, optimal_beta
from repro.core.costs import offline_cost, online_cost
from repro.core.multislope import FollowTheEnvelope, MultislopeProblem, Slope
from repro.core.multislope_game import pure_strategy_cost
from repro.core.prediction import psk_threshold, robustness_bound
from repro.core.stats import StopStatistics

from .conftest import feasible_statistics, stop_samples

positive_b = st.floats(min_value=1.0, max_value=200.0, allow_nan=False)


class TestBRandProperties:
    @given(stats=feasible_statistics())
    @settings(max_examples=150)
    def test_improved_never_worse_than_paper(self, stats):
        assume(stats.expected_offline_cost > 1e-9)
        selection = ImprovedConstrainedSolver(stats).select()
        assert selection.worst_case_cr <= selection.paper_selection.worst_case_cr + 1e-9
        assert 1.0 - 1e-9 <= selection.worst_case_cr <= E_RATIO + 1e-9

    @given(stats=feasible_statistics())
    @settings(max_examples=100)
    def test_optimal_beta_in_range(self, stats):
        assume(stats.expected_offline_cost > 1e-9)
        beta = optimal_beta(stats)
        assert 0.0 <= beta <= stats.break_even

    @given(
        b=positive_b,
        beta_frac=st.floats(min_value=0.05, max_value=1.0),
        y=st.floats(min_value=0.0, max_value=1000.0),
    )
    def test_brand_cost_dominates_offline(self, b, beta_frac, y):
        strategy = BRand(b, beta_frac * b)
        assert strategy.expected_cost(y) >= offline_cost(y, b) - 1e-9

    @given(b=positive_b, beta_frac=st.floats(min_value=0.05, max_value=1.0))
    def test_brand_cost_concave_shape(self, b, beta_frac):
        # Linear up to beta (equal increments), constant after.
        strategy = BRand(b, beta_frac * b)
        beta = strategy.beta
        first = strategy.expected_cost(beta / 3)
        second = strategy.expected_cost(2 * beta / 3)
        third = strategy.expected_cost(beta)
        assert second - first == pytest.approx(first, rel=1e-6)
        assert third - second == pytest.approx(first, rel=1e-6)
        assert strategy.expected_cost(beta * 1.5) == pytest.approx(third, rel=1e-9)


class TestPSKProperties:
    @given(
        b=positive_b,
        trust=st.floats(min_value=0.01, max_value=1.0),
        y=st.floats(min_value=1e-3, max_value=2000.0),
        y_hat=st.floats(min_value=0.0, max_value=2000.0),
    )
    @settings(max_examples=300)
    def test_robustness_bound_universal(self, b, trust, y, y_hat):
        x = psk_threshold(y_hat, b, trust)
        ratio = online_cost(x, y, b) / offline_cost(y, b)
        assert ratio <= robustness_bound(trust) + 1e-9

    @given(
        b=positive_b,
        trust=st.floats(min_value=0.01, max_value=1.0),
        y=st.floats(min_value=1e-3, max_value=2000.0),
    )
    @settings(max_examples=300)
    def test_consistency_bound_with_perfect_prediction(self, b, trust, y):
        x = psk_threshold(y, b, trust)
        ratio = online_cost(x, y, b) / offline_cost(y, b)
        assert ratio <= 1.0 + trust + 1e-9


def multislope_problems() -> st.SearchStrategy:
    """Random valid multislope instances ending in a zero-rate state."""

    def build(raw_costs, raw_rates):
        count = min(len(raw_costs), len(raw_rates)) + 1
        costs = [0.0] + sorted(set(np.cumsum(np.asarray(raw_costs[: count - 1]) + 0.1)))
        rates = sorted(set(raw_rates[: len(costs) - 1]), reverse=True)
        rates = [1.0] + [r for r in rates if r < 1.0]
        rates = rates[: len(costs) - 1] + [0.0]
        costs = costs[: len(rates)]
        if len(costs) < 2:
            return None
        return MultislopeProblem(
            [Slope(c, r) for c, r in zip(costs, rates)]
        )

    return st.builds(
        build,
        raw_costs=st.lists(
            st.floats(min_value=0.1, max_value=50.0), min_size=1, max_size=4
        ),
        raw_rates=st.lists(
            st.floats(min_value=0.01, max_value=0.99), min_size=1, max_size=4
        ),
    ).filter(lambda p: p is not None)


class TestMultislopeProperties:
    @given(problem=multislope_problems(), y=st.floats(min_value=0.0, max_value=500.0))
    @settings(max_examples=200)
    def test_follow_envelope_two_competitive(self, problem, y):
        policy = FollowTheEnvelope(problem)
        assert policy.online_cost(y) <= 2.0 * problem.offline_cost(y) + 1e-9

    @given(
        problem=multislope_problems(),
        y=st.floats(min_value=0.0, max_value=500.0),
        anchor=st.floats(min_value=0.1, max_value=200.0),
    )
    @settings(max_examples=200)
    def test_any_pure_strategy_dominates_offline(self, problem, y, anchor):
        arity = len(problem.slopes) - 1
        times = tuple(anchor * (1.0 + j) for j in range(arity))
        assert pure_strategy_cost(problem, times, y) >= problem.offline_cost(y) - 1e-9

    @given(problem=multislope_problems())
    @settings(max_examples=100)
    def test_offline_cost_concave_nondecreasing(self, problem):
        ys = np.linspace(0.0, 300.0, 31)
        values = [problem.offline_cost(float(y)) for y in ys]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))
        # Concavity: second differences non-positive.
        diffs = np.diff(values)
        assert np.all(np.diff(diffs) <= 1e-9)


class TestAdaptiveProperties:
    @given(stops=stop_samples(max_size=80), b=positive_b)
    @settings(max_examples=100, deadline=None)
    def test_streaming_statistics_match_batch(self, stops, b):
        adaptive = AdaptiveProposed(b, min_samples=1, prior_stops=stops)
        streaming = adaptive.current_statistics()
        batch = StopStatistics.from_samples(stops, b)
        assert streaming.mu_b_minus == pytest.approx(batch.mu_b_minus, abs=1e-9)
        assert streaming.q_b_plus == pytest.approx(batch.q_b_plus, abs=1e-12)

    @given(
        stops=stop_samples(max_size=60),
        b=positive_b,
        decay=st.floats(min_value=0.5, max_value=1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_decayed_statistics_always_feasible(self, stops, b, decay):
        adaptive = AdaptiveProposed(b, min_samples=1, prior_stops=stops, decay=decay)
        stats = adaptive.current_statistics()
        assert 0.0 <= stats.q_b_plus <= 1.0
        assert stats.mu_b_minus <= (1.0 - stats.q_b_plus) * b + 1e-6 * b
