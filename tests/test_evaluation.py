"""Unit tests for the competitive-analysis harness."""

import numpy as np
import pytest

from repro.constants import E
from repro.errors import InvalidParameterError
from repro.evaluation import (
    STRATEGY_NAMES,
    FleetEvaluation,
    bootstrap_cr_interval,
    build_strategies,
    evaluate_fleet,
    evaluate_vehicle,
    monte_carlo_cr,
    sweep_analytic,
    sweep_simulated,
)
from repro.fleet import FleetGenerator, area_config
from repro.fleet.generator import VehicleRecord

B = 28.0


def make_vehicle(stop_lengths, vehicle_id="v", area="test"):
    return VehicleRecord(
        vehicle_id=vehicle_id,
        area=area,
        stop_lengths=np.asarray(stop_lengths, dtype=float),
        scale_factor=1.0,
    )


class TestBuildStrategies:
    def test_all_six_present(self):
        strategies = build_strategies(np.array([10.0, 60.0]), B)
        assert set(strategies) == set(STRATEGY_NAMES)

    def test_momrand_gets_sample_mean(self):
        strategies = build_strategies(np.array([10.0, 30.0]), B)
        assert strategies["MOM-Rand"].mean_stop_length == pytest.approx(20.0)

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            build_strategies(np.array([]), B)


class TestEvaluateVehicle:
    def test_crs_at_least_one(self):
        evaluation = evaluate_vehicle(make_vehicle([5.0, 15.0, 120.0, 40.0]), B)
        for name in STRATEGY_NAMES:
            assert evaluation.crs[name] >= 1.0 - 1e-9

    def test_proposed_cr_matches_selected_vertex(self):
        # The proposed strategy's empirical CR equals that of the vertex
        # strategy it delegates to.
        vehicle = make_vehicle([5.0, 15.0, 120.0, 40.0])
        evaluation = evaluate_vehicle(vehicle, B)
        assert evaluation.selected_vertex in {"TOI", "DET", "b-DET", "N-Rand"}
        if evaluation.selected_vertex in evaluation.crs:
            assert evaluation.crs["Proposed"] == pytest.approx(
                evaluation.crs[evaluation.selected_vertex]
            )

    def test_best_strategy_tie_goes_to_proposed(self):
        # All stops short: DET and NEV are offline-optimal; proposed picks
        # DET and ties -> counted as a Proposed win.
        evaluation = evaluate_vehicle(make_vehicle([5.0, 10.0, 15.0]), B)
        assert evaluation.crs["Proposed"] == pytest.approx(1.0)
        assert evaluation.best_strategy == "Proposed"


class TestFleetEvaluation:
    @pytest.fixture(scope="class")
    def fleet_eval(self):
        vehicles = FleetGenerator(area_config("chicago"), seed=11).generate(40)
        return evaluate_fleet(vehicles, B)

    def test_worst_at_least_mean(self, fleet_eval):
        for name in STRATEGY_NAMES:
            assert fleet_eval.worst_cr(name) >= fleet_eval.mean_cr(name) - 1e-12

    def test_win_counts_sum_to_fleet(self, fleet_eval):
        assert sum(fleet_eval.win_counts().values()) == fleet_eval.vehicle_count

    def test_proposed_wins_majority(self, fleet_eval):
        wins = fleet_eval.win_counts()
        assert wins["Proposed"] >= 0.8 * fleet_eval.vehicle_count

    def test_nrand_cr_constant(self, fleet_eval):
        crs = fleet_eval.crs_of("N-Rand")
        np.testing.assert_allclose(crs, E / (E - 1), rtol=1e-9)

    def test_vertex_selection_counts(self, fleet_eval):
        counts = fleet_eval.vertex_selection_counts()
        assert sum(counts.values()) == fleet_eval.vehicle_count
        assert set(counts) <= {"TOI", "DET", "b-DET", "N-Rand"}

    def test_summary_rows_structure(self, fleet_eval):
        rows = fleet_eval.summary_rows()
        assert [row["strategy"] for row in rows] == list(STRATEGY_NAMES)

    def test_unknown_strategy_rejected(self, fleet_eval):
        with pytest.raises(InvalidParameterError):
            fleet_eval.worst_cr("bogus")

    def test_empty_fleet_rejected(self):
        with pytest.raises(InvalidParameterError):
            FleetEvaluation(evaluations=[])


class TestSweeps:
    @pytest.fixture(scope="class")
    def base(self):
        return area_config("chicago").stop_length_distribution()

    def test_simulated_shapes(self, base):
        means = [10.0, 60.0, 200.0]
        result = sweep_simulated(base, means, B, vehicles_per_point=5, stops_per_vehicle=30)
        assert result.mode == "simulated"
        for name in STRATEGY_NAMES:
            assert result.series[name].shape == (3,)
            assert np.all(result.series[name] >= 1.0 - 1e-9)

    def test_analytic_proposed_is_minimum(self, base):
        means = [10.0, 30.0, 60.0, 150.0]
        result = sweep_analytic(base, means, B, grid_size=128)
        for name in ("TOI", "DET", "N-Rand", "MOM-Rand"):
            assert np.all(result.series["Proposed"] <= result.series[name] + 1e-6)

    def test_analytic_det_toi_crossover(self, base):
        means = np.linspace(10.0, 300.0, 12)
        result = sweep_analytic(base, means, B, grid_size=128)
        # DET best in light traffic, TOI best in heavy traffic.
        assert result.series["DET"][0] < result.series["TOI"][0]
        assert result.series["TOI"][-1] < result.series["DET"][-1]
        assert result.crossover_mean("DET", "TOI") is not None

    def test_nev_nan_in_analytic(self, base):
        result = sweep_analytic(base, [30.0], B, grid_size=64)
        assert np.isnan(result.series["NEV"][0])

    def test_invalid_means_rejected(self, base):
        with pytest.raises(InvalidParameterError):
            sweep_simulated(base, [], B)
        with pytest.raises(InvalidParameterError):
            sweep_simulated(base, [-5.0], B)

    def test_simulated_reproducible(self, base):
        a = sweep_simulated(base, [30.0], B, vehicles_per_point=3, stops_per_vehicle=20, seed=9)
        b = sweep_simulated(base, [30.0], B, vehicles_per_point=3, stops_per_vehicle=20, seed=9)
        for name in STRATEGY_NAMES:
            np.testing.assert_array_equal(a.series[name], b.series[name])


class TestMonteCarlo:
    def test_deterministic_strategy_zero_std(self, rng):
        from repro.core import Deterministic

        stops = np.array([10.0, 50.0, 100.0])
        result = monte_carlo_cr(Deterministic(B), stops, repetitions=5, rng=rng)
        assert result.std == 0.0

    def test_randomized_matches_exact(self, rng):
        from repro.core import NRand
        from repro.core.analysis import empirical_cr

        stops = rng.exponential(60.0, size=400)
        result = monte_carlo_cr(NRand(B), stops, repetitions=60, rng=rng)
        exact = empirical_cr(NRand(B), stops, B)
        assert result.mean == pytest.approx(exact, rel=0.03)

    def test_bootstrap_interval_contains_point(self, rng):
        from repro.core import Deterministic
        from repro.core.analysis import empirical_cr

        stops = rng.exponential(60.0, size=300)
        low, high = bootstrap_cr_interval(Deterministic(B), stops, rng)
        point = empirical_cr(Deterministic(B), stops, B)
        assert low - 1e-9 <= point <= high + 1e-9

    def test_invalid_parameters_rejected(self, rng):
        from repro.core import Deterministic

        with pytest.raises(InvalidParameterError):
            monte_carlo_cr(Deterministic(B), np.array([1.0]), repetitions=0, rng=rng)
        with pytest.raises(InvalidParameterError):
            bootstrap_cr_interval(Deterministic(B), np.array([1.0]), rng, n_bootstrap=1)
        with pytest.raises(InvalidParameterError):
            bootstrap_cr_interval(Deterministic(B), np.array([1.0]), rng, confidence=1.5)
