"""Unit tests for the Figure 1/2 region and slice computations."""

import numpy as np
import pytest

from repro.constants import E
from repro.core.regions import STRATEGY_CODES, compute_region_grid, cr_slice
from repro.errors import InvalidParameterError


class TestRegionGrid:
    @pytest.fixture(scope="class")
    def grid(self):
        return compute_region_grid(break_even=1.0, mu_points=31, q_points=31)

    def test_shapes(self, grid):
        assert grid.region_codes.shape == (31, 31)
        assert grid.worst_case_cr.shape == (31, 31)

    def test_infeasible_marked(self, grid):
        # Top-right corner (mu/B ~ 1, q ~ 1) is infeasible.
        assert grid.region_codes[-1, -1] == STRATEGY_CODES["infeasible"]
        assert np.isnan(grid.worst_case_cr[-1, -1])

    def test_all_four_strategies_appear(self, grid):
        # Figure 1(a): the plane is partitioned among all four vertices.
        present = set(np.unique(grid.region_codes)) - {STRATEGY_CODES["infeasible"]}
        assert present == {
            STRATEGY_CODES["TOI"],
            STRATEGY_CODES["DET"],
            STRATEGY_CODES["b-DET"],
            STRATEGY_CODES["N-Rand"],
        }

    def test_cr_bounded_by_nrand(self, grid):
        feasible = grid.region_codes >= 0
        crs = grid.worst_case_cr[feasible]
        assert np.all(crs <= E / (E - 1) + 1e-12)
        assert np.all(crs >= 1.0 - 1e-12)

    def test_det_wins_low_q(self, grid):
        # Bottom edge (q -> 0): DET approaches the offline optimum.
        assert grid.region_codes[0, 15] == STRATEGY_CODES["DET"]

    def test_toi_wins_high_q(self, grid):
        # Left edge with high q: TOI approaches the offline optimum.
        assert grid.region_codes[-1, 0] == STRATEGY_CODES["TOI"]

    def test_region_fractions_sum_to_one(self, grid):
        fractions = grid.region_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_region_name_round_trip(self, grid):
        assert grid.region_name_at(15, 0) == "DET"

    def test_bad_grid_rejected(self):
        with pytest.raises(InvalidParameterError):
            compute_region_grid(mu_points=1)
        with pytest.raises(InvalidParameterError):
            compute_region_grid(mu_max=0.0)


class TestCRSlice:
    def test_requires_exactly_one_fixed_axis(self):
        with pytest.raises(InvalidParameterError):
            cr_slice()
        with pytest.raises(InvalidParameterError):
            cr_slice(fixed_q_b_plus=0.3, fixed_normalized_mu=0.1)

    def test_fixed_q_slice_shapes(self):
        series = cr_slice(fixed_q_b_plus=0.3, points=50)
        assert series["axis_name"] == "normalized_mu"
        assert series["axis"].size == 50
        for name in ("TOI", "DET", "b-DET", "N-Rand", "Proposed"):
            assert series[name].size == 50

    def test_proposed_is_lower_envelope(self):
        # Figure 2: the proposed CR is the minimum of the vertex CRs.
        for kwargs in (
            {"fixed_q_b_plus": 0.3},
            {"fixed_normalized_mu": 0.02},
            {"fixed_normalized_mu": 0.05},
        ):
            series = cr_slice(points=60, **kwargs)
            stacked = np.vstack(
                [series[name] for name in ("TOI", "DET", "b-DET", "N-Rand")]
            )
            envelope = np.nanmin(stacked, axis=0)
            np.testing.assert_allclose(series["Proposed"], envelope, rtol=1e-12)

    def test_figure_2cd_bdet_improves(self):
        # Figs. 2(c)-(d): at mu- = 0.02B and 0.05B there is a q+ range
        # where b-DET strictly beats every other vertex.
        for mu_norm in (0.02, 0.05):
            series = cr_slice(fixed_normalized_mu=mu_norm, points=200)
            others = np.vstack([series[n] for n in ("TOI", "DET", "N-Rand")])
            strictly_better = series["b-DET"] < np.nanmin(others, axis=0) - 1e-9
            assert strictly_better.any()

    def test_nrand_slice_is_flat(self):
        series = cr_slice(fixed_q_b_plus=0.3, points=40)
        np.testing.assert_allclose(series["N-Rand"], E / (E - 1), rtol=1e-12)

    def test_invalid_fixed_values_rejected(self):
        with pytest.raises(InvalidParameterError):
            cr_slice(fixed_q_b_plus=0.0)
        with pytest.raises(InvalidParameterError):
            cr_slice(fixed_normalized_mu=1.0)
