"""End-to-end tests for ``repro-idling data doctor`` and --dataset runs.

Covers the acceptance criteria of the validation overhaul: a fixture
corrupted in six distinct ways is fully quarantined with a
ledger-visible report; experiments on the repaired dataset are
byte-identical to the same experiments on a hand-cleaned copy; and the
result cache is salted with the dataset content digest (same path,
changed bytes -> recompute).
"""

import json

import pytest

from repro.cli import main
from repro.experiments import EXPERIMENTS, ExperimentResult, cached_run, fig4
from repro.engine.cache import ResultCache
from repro.fleet import load_fleets, save_fleet_dataset

#: (line inserted into stops.csv, check it must trip).
CORRUPT_ROWS = [
    ("ca-x,100.0,nan", "non-finite-duration"),
    ("ca-x,200.0,-5", "negative-duration"),
    ("ca-x,300.0", "bad-column-count"),
    ("ca-y,oops,12.0", "unparseable-start-time"),
    (",400.0,3.0", "empty-vehicle-id"),
]


def make_corrupt_dataset(directory):
    """A small dataset corrupted in >= 6 distinct ways.

    Returns the directory; the matching hand-cleaned copy is produced by
    :func:`make_hand_cleaned`.
    """
    fleets = load_fleets(seed=11, vehicles_per_area=2)
    save_fleet_dataset(directory, fleets, seed=11)
    stops = (directory / "stops.csv").read_text().splitlines()
    for offset, (row, _check) in enumerate(CORRUPT_ROWS):
        stops.insert(2 + offset, row)
    (directory / "stops.csv").write_text("\n".join(stops) + "\n")
    manifest = json.loads((directory / "manifest.json").read_text())
    areas = sorted(manifest["areas"])
    first, second = manifest["areas"][areas[0]], manifest["areas"][areas[1]]
    # 6th corruption kind: a duplicate vehicle id across areas (plus the
    # scale-factor truncation it drags along).
    first["vehicle_ids"].append(second["vehicle_ids"][0])
    first["scale_factors"] = first["scale_factors"][:1]
    (directory / "manifest.json").write_text(json.dumps(manifest))
    return directory


def make_hand_cleaned(corrupt_dir, clean_dir):
    """What deterministic repair must produce from the corrupt fixture."""
    clean_dir.mkdir(parents=True, exist_ok=True)
    bad_rows = {row for row, _ in CORRUPT_ROWS}
    stops = (corrupt_dir / "stops.csv").read_text().splitlines()
    (clean_dir / "stops.csv").write_text(
        "\n".join(line for line in stops if line not in bad_rows) + "\n"
    )
    manifest = json.loads((corrupt_dir / "manifest.json").read_text())
    areas = sorted(manifest["areas"])
    first, second = manifest["areas"][areas[0]], manifest["areas"][areas[1]]
    # First listing wins: the duplicate stays in its original area and
    # is removed from the copier; truncated scale factors default to 1.
    dup = first["vehicle_ids"].pop()
    first["scale_factors"] = [1.0] * len(first["vehicle_ids"])
    assert dup in second["vehicle_ids"]
    (clean_dir / "manifest.json").write_text(json.dumps(manifest))
    return clean_dir


@pytest.fixture
def corrupt_dataset(tmp_path):
    return make_corrupt_dataset(tmp_path / "ds")


class TestDoctorCli:
    def test_strict_exits_nonzero_with_one_line_error(self, corrupt_dataset, capsys):
        assert main(["data", "doctor", str(corrupt_dataset), "--policy", "strict"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "line 3" in err

    def test_quarantine_diverts_every_bad_record(self, corrupt_dataset, capsys, tmp_path):
        report_path = tmp_path / "report.json"
        code = main(
            [
                "data",
                "doctor",
                str(corrupt_dataset),
                "--policy",
                "quarantine",
                "--report",
                str(report_path),
            ]
        )
        assert code == 0
        sidecar = corrupt_dataset / "stops.csv.quarantine.csv"
        body = sidecar.read_text()
        for row, check in CORRUPT_ROWS:
            assert check in body
            assert row.split(",")[-1] in body
        manifest_sidecar = corrupt_dataset / "manifest.json.quarantine.json"
        quarantined = json.loads(manifest_sidecar.read_text())
        assert any(r["check"] == "duplicate-vehicle-id" for r in quarantined)
        payload = json.loads(report_path.read_text())
        assert payload["quarantined"] >= len(CORRUPT_ROWS) + 1
        checks = set(payload["counts_by_check"])
        assert {check for _, check in CORRUPT_ROWS} <= checks
        out = capsys.readouterr().out
        assert "quarantine file:" in out

    def test_ledger_records_validation_events(self, corrupt_dataset, tmp_path):
        ledger_path = tmp_path / "ledger.jsonl"
        assert (
            main(
                [
                    "data",
                    "doctor",
                    str(corrupt_dataset),
                    "--policy",
                    "repair",
                    "--ledger",
                    str(ledger_path),
                ]
            )
            == 0
        )
        events = [json.loads(line) for line in ledger_path.read_text().splitlines()]
        validation = [e for e in events if e["event"] == "validation"]
        sources = {e["source"] for e in validation}
        assert any(s.endswith("stops.csv") for s in sources)
        assert any(s.endswith("manifest.json") for s in sources)
        by_stops = next(e for e in validation if e["source"].endswith("stops.csv"))
        assert by_stops["dropped"] >= len(CORRUPT_ROWS)

    def test_stops_csv_detected(self, tmp_path, capsys):
        path = tmp_path / "stops.csv"
        path.write_text("vehicle_id,start_time,duration\nv1,0,10\nv1,20,nan\n")
        assert main(["data", "doctor", str(path), "--policy", "repair"]) == 0
        assert "stop table:" in capsys.readouterr().out

    def test_traces_json_detected(self, tmp_path, capsys):
        path = tmp_path / "traces.json"
        path.write_text(json.dumps([{"vehicle_id": "v"}]))
        assert main(["data", "doctor", str(path), "--policy", "repair"]) == 0
        assert "trace JSON: 0 valid trace(s)" in capsys.readouterr().out

    def test_generic_csv_lint_flags_ragged_rows(self, tmp_path, capsys):
        path = tmp_path / "results.csv"
        path.write_text("a,b,c\n1,2,3\n1,2\n")
        assert main(["data", "doctor", str(path)]) == 1
        out = capsys.readouterr()
        assert "inconsistent-column-count" in out.out
        assert "unhandled error" in out.err

    def test_generic_csv_lint_accepts_inf_values(self, tmp_path):
        # Committed result tables legitimately contain 'inf'/'infeasible';
        # the lint must be structural only.
        path = tmp_path / "results.csv"
        path.write_text("region,cr\nfeasible,1.5\ninfeasible,inf\n")
        assert main(["data", "doctor", str(path)]) == 0

    def test_missing_file_exits_nonzero(self, tmp_path, capsys):
        assert main(["data", "doctor", str(tmp_path / "nope.csv")]) == 1
        assert capsys.readouterr().err.startswith("error: ")


class TestRepairedRunsMatchHandCleaned:
    def test_fig4_byte_identical(self, corrupt_dataset, tmp_path):
        cleaned = make_hand_cleaned(corrupt_dataset, tmp_path / "clean")
        repaired = fig4.run(
            dataset=str(corrupt_dataset), policy="repair", with_significance=False
        )
        by_hand = fig4.run(
            dataset=str(cleaned), policy="strict", with_significance=False
        )
        out_a, out_b = tmp_path / "out_a", tmp_path / "out_b"
        repaired.write_csvs(out_a)
        by_hand.write_csvs(out_b)
        files_a = sorted(p.name for p in out_a.iterdir())
        files_b = sorted(p.name for p in out_b.iterdir())
        assert files_a == files_b
        for name in files_a:
            assert (out_a / name).read_bytes() == (out_b / name).read_bytes()


class TestDatasetCacheSalt:
    def _stub(self, calls):
        def run(**params):
            calls.append(params)
            return ExperimentResult(
                experiment_id="stub", title="stub", tables=[], notes=[], timings=[]
            )

        return run

    def test_digest_salts_key_and_is_stripped(self, tmp_path, monkeypatch):
        calls = []
        monkeypatch.setitem(EXPERIMENTS, "stub", self._stub(calls))
        cache = ResultCache(tmp_path / "cache")
        params_v1 = {"dataset": "ds", "_dataset_digest": "aaaa"}
        cached_run("stub", params_v1, cache=cache)
        assert calls and "_dataset_digest" not in calls[0]
        assert calls[0]["dataset"] == "ds"
        # Same digest -> cache hit, no new run.
        cached_run("stub", dict(params_v1), cache=cache)
        assert len(calls) == 1
        # Same path, new bytes (different digest) -> recompute.
        cached_run("stub", {"dataset": "ds", "_dataset_digest": "bbbb"}, cache=cache)
        assert len(calls) == 2

    def test_cli_digest_tracks_file_content(self, corrupt_dataset):
        from repro.cli import _dataset_digest

        before = _dataset_digest(corrupt_dataset)
        # Quarantine sidecars must not perturb the digest.
        (corrupt_dataset / "stops.csv.quarantine.csv").write_text("line,check\n")
        assert _dataset_digest(corrupt_dataset) == before
        stops = corrupt_dataset / "stops.csv"
        stops.write_text(stops.read_text() + "v-extra,0,1\n")
        assert _dataset_digest(corrupt_dataset) != before
