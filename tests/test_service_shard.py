"""The sharded serving tier: pure-partition equivalence, routing, locks,
worker chaos, backpressure warnings and the JSONL front end.

The load-bearing property (the sharding contract): for ANY event
stream, ANY shard count and ANY chunking, the decisions and per-vehicle
``state_digest()`` values produced by :class:`ShardedAdvisorService`
are identical to the single-process :class:`AdvisorService` run —
sharding is a pure partition, never a behavior change.  Stated as a
Hypothesis property over adversarial multi-vehicle streams (malformed
records included) in inline mode, and pinned against real worker
processes by the smoke/chaos tests (SIGKILL + restart marked ``slow``).
"""

import asyncio
import json
import os
import signal
import socket
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.ledger import RunLedger, use_ledger
from repro.service import AdvisorService, SessionConfig
from repro.service.frontend import JsonlFrontend, parse_listen
from repro.service.shard import (
    SHARD_LOCK_NAME,
    HashRing,
    ShardedAdvisorService,
    ShardLockError,
    acquire_shard_lock,
    release_shard_lock,
    sweep_stale_shard_locks,
)
from repro.service.soak import build_fleet_events, run_sharded_chaos

B = 28.0

#: Aggressive knobs (as in test_service_batch): tiny warmups and low
#: drift thresholds so short Hypothesis streams cross health states.
CONFIG = SessionConfig(
    break_even=B,
    min_samples=3,
    dedup_window=512,
    snapshot_every=4,
    length_threshold=6.0,
    split_threshold=6.0,
    drift_min_count=4,
    recover_after=8,
    safe_recover_after=16,
    seed=77,
)


# -- consistent-hash ring -------------------------------------------------


def test_ring_is_deterministic_and_total():
    ring = HashRing(5)
    again = HashRing(5)
    for index in range(500):
        vehicle = f"veh-{index}"
        shard = ring.route(vehicle)
        assert 0 <= shard < 5
        assert again.route(vehicle) == shard


def test_ring_single_shard_routes_everything_to_zero():
    ring = HashRing(1)
    assert {ring.route(f"v{i}") for i in range(50)} == {0}


def test_ring_balance_within_reason():
    ring = HashRing(4)
    counts = [0, 0, 0, 0]
    for index in range(8000):
        counts[ring.route(f"veh-{index:05d}")] += 1
    # Consistent hashing with 64 virtual points per shard is not
    # perfectly uniform, but no shard may be starved or doubled.
    assert min(counts) > 8000 / 4 * 0.5
    assert max(counts) < 8000 / 4 * 2.0


def test_ring_growth_moves_a_minority_of_ids():
    before = HashRing(3)
    after = HashRing(4)
    ids = [f"veh-{i:05d}" for i in range(4000)]
    moved = sum(1 for v in ids if before.route(v) != after.route(v))
    # Consistent hashing: adding one shard reclaims ~1/(N+1) of the
    # space; rehash-everything (mod N) would move ~3/4 of ids.
    assert moved / len(ids) < 0.5


def test_ring_rejects_degenerate_parameters():
    from repro.errors import InvalidParameterError

    with pytest.raises(InvalidParameterError):
        HashRing(0)
    with pytest.raises(InvalidParameterError):
        HashRing(2, replicas=0)


# -- the pure-partition equivalence property (satellite: Hypothesis) ------


@st.composite
def sharded_fleet_stream(draw):
    """Multi-vehicle JSONL lines (malformed mixed in) + shards + chunking."""
    n = draw(st.integers(min_value=5, max_value=40))
    vehicles = ["veh-a", "veh-b", "veh-c", "veh-d"]
    clocks = dict.fromkeys(vehicles, 0.0)
    lines = []
    for index in range(n):
        vehicle = draw(st.sampled_from(vehicles))
        kind = draw(
            st.sampled_from(["ok", "ok", "ok", "ok", "missing", "badnum", "garbage"])
        )
        if kind == "garbage":
            lines.append("{not json at all")
            continue
        if kind == "missing":
            lines.append(json.dumps({"vehicle": vehicle, "t": index}))
            continue
        clocks[vehicle] += 1.0
        value = draw(st.floats(min_value=0.0, max_value=400.0))
        lines.append(
            json.dumps(
                {
                    "id": f"{vehicle}-{index:03d}",
                    "vehicle": vehicle,
                    "t": clocks[vehicle],
                    "stop": "oops" if kind == "badnum" else value,
                }
            )
        )
    shards = draw(st.integers(min_value=1, max_value=5))
    sizes = draw(
        st.lists(st.integers(min_value=1, max_value=13), min_size=1, max_size=4)
    )
    return lines, shards, sizes


def _chunks(lines, sizes):
    position, index, out = 0, 0, []
    while position < len(lines):
        size = sizes[index % len(sizes)]
        out.append(lines[position : position + size])
        position += size
        index += 1
    return out


@given(sharded_fleet_stream())
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_sharding_is_a_pure_partition(tmp_path_factory, case):
    """Any stream x any shard count x any chunking == single-process."""
    lines, shards, sizes = case
    tmp = tmp_path_factory.mktemp("shard-eq")

    single = AdvisorService(tmp / "single", CONFIG, fsync=False)
    decisions_single = []
    for chunk in _chunks(lines, sizes):
        decisions_single.extend(single.ingest_lines(chunk))
    digests_single = {
        vehicle: session.state_digest()
        for vehicle, session in sorted(single.sessions.items())
    }
    snap_single = single.health_snapshot()
    single.close()

    sharded = ShardedAdvisorService(
        tmp / "sharded", CONFIG, shards=shards, workers=False
    )
    decisions_sharded = []
    for chunk in _chunks(lines, sizes):
        decisions_sharded.extend(sharded.request_lines(chunk))
    digests_sharded = sharded.digests()
    snap_sharded = sharded.health_snapshot(include_vehicles=True)
    sharded.close()

    assert decisions_sharded == decisions_single
    assert digests_sharded == digests_single
    assert snap_sharded["fleet_cost"] == snap_single["fleet_cost"]
    for counter in ("received", "malformed", "duplicates", "rejected"):
        assert snap_sharded["ingest"][counter] == snap_single["ingest"][counter]
    assert snap_sharded["states"] == snap_single["states"]


# -- shard state-dir locks ------------------------------------------------


def test_shard_lock_blocks_live_owner_and_sweeps_dead(tmp_path):
    from repro.engine.faults import owner_record

    lock = acquire_shard_lock(tmp_path / "shard-00")
    assert lock.read_text() == owner_record()
    assert lock.read_text().split()[0] == str(os.getpid())
    with pytest.raises(ShardLockError):
        acquire_shard_lock(tmp_path / "shard-00")
    release_shard_lock(lock)
    release_shard_lock(lock)  # idempotent

    # A lock held by a dead pid is stale: silently swept on acquire.
    dead = tmp_path / "shard-01"
    dead.mkdir()
    (dead / SHARD_LOCK_NAME).write_text("999999999")
    lock = acquire_shard_lock(dead)
    assert lock.read_text() == owner_record()
    release_shard_lock(lock)

    # A torn lock (no readable pid) is also stale.
    torn = tmp_path / "shard-02"
    torn.mkdir()
    (torn / SHARD_LOCK_NAME).write_text("")
    release_shard_lock(acquire_shard_lock(torn))


def test_shard_lock_detects_pid_reuse(tmp_path):
    from repro.engine.faults import process_token

    if process_token(os.getpid()) is None:
        pytest.skip("no /proc start-time tokens on this platform")
    # Simulate pid reuse: the lock names a live pid (ours) but a
    # start-time token from a previous boot/process incarnation.  A
    # bare dead-pid check would treat it as live forever; the token
    # mismatch marks it stale.
    reused = tmp_path / "shard-00"
    reused.mkdir()
    (reused / SHARD_LOCK_NAME).write_text(f"{os.getpid()} 1")
    lock = acquire_shard_lock(reused)  # swept and re-acquired
    assert lock.read_text().split()[1] == process_token(os.getpid())
    release_shard_lock(lock)

    # sweep_stale_shard_locks applies the same discipline...
    (reused / SHARD_LOCK_NAME).write_text(f"{os.getpid()} 1")
    assert sweep_stale_shard_locks(tmp_path) == [str(reused / SHARD_LOCK_NAME)]
    # ...while a matching token (the genuine owner) still blocks.
    lock = acquire_shard_lock(reused)
    with pytest.raises(ShardLockError):
        acquire_shard_lock(reused)
    assert sweep_stale_shard_locks(tmp_path) == []
    release_shard_lock(lock)


def test_sweep_stale_shard_locks_recursive(tmp_path):
    live = tmp_path / "fleet" / "shard-00"
    stale = tmp_path / "fleet" / "shard-01"
    torn = tmp_path / "other" / "nested" / "shard-00"
    for directory in (live, stale, torn):
        directory.mkdir(parents=True)
    (live / SHARD_LOCK_NAME).write_text(str(os.getpid()))
    (stale / SHARD_LOCK_NAME).write_text("999999999")
    (torn / SHARD_LOCK_NAME).write_text("not-a-pid")
    removed = sweep_stale_shard_locks(tmp_path)
    assert sorted(removed) == sorted(
        [str(stale / SHARD_LOCK_NAME), str(torn / SHARD_LOCK_NAME)]
    )
    assert (live / SHARD_LOCK_NAME).exists()  # live owner kept
    assert sweep_stale_shard_locks(tmp_path / "missing") == []


def test_cache_doctor_sweeps_shard_locks(tmp_path, capsys):
    from repro.cli import main

    stale = tmp_path / "state" / "shard-00"
    stale.mkdir(parents=True)
    (stale / SHARD_LOCK_NAME).write_text("999999999")
    assert main(["cache", "doctor", "--fault-claims", str(tmp_path / "state")]) in (
        None,
        0,
    )
    out = capsys.readouterr().out
    assert "shard locks:     swept 1 stale lock(s)" in out
    assert not (stale / SHARD_LOCK_NAME).exists()


# -- backpressure warnings (satellite: rate-limited ledger event) ---------


def test_offer_shed_emits_rate_limited_ledger_warning(tmp_path):
    ledger = RunLedger()
    service = AdvisorService(tmp_path / "svc", CONFIG, max_queue=1)
    with use_ledger(ledger):
        service.offer({"id": "e-0", "vehicle": "v", "t": 0.0, "stop": 1.0})
        for index in range(2001):
            service.offer({"id": f"e-{index + 1}", "vehicle": "v", "t": 0.0, "stop": 1.0})
    warnings = [r for r in ledger.events if r["event"] == "advisor-backpressure"]
    # shed 2001 times: warned at shed==1, 1000 and 2000 — not 2001 times.
    assert [w["shed"] for w in warnings] == [1, 1000, 2000]
    assert all(w["tier"] == "service" for w in warnings)
    assert service.shed == 2001
    service.drain()
    service.close()


def test_sharded_offer_lines_sheds_and_warns(tmp_path):
    ledger = RunLedger()
    with use_ledger(ledger):
        service = ShardedAdvisorService(
            tmp_path / "fleet", CONFIG, shards=2, workers=True, queue_depth=1
        )
        try:
            # Saturate: a 1-deep queue with slow consumers must shed
            # some of a burst of single-line offers.
            lines = [
                json.dumps(
                    {"id": f"e-{i:04d}", "vehicle": f"v-{i % 7}", "t": float(i), "stop": 5.0}
                )
                for i in range(400)
            ]
            for line in lines:
                service.offer_lines([line])
            deadline = time.monotonic() + 60.0
            while service.shed == 0 and time.monotonic() < deadline:
                for line in lines:
                    service.offer_lines([line])
            service.drain(timeout=120.0)
        finally:
            service.close()
    assert service.shed > 0
    warnings = [r for r in ledger.events if r["event"] == "advisor-backpressure"]
    assert warnings and warnings[0]["tier"] == "shard"
    # Every warning reports the triggering shard's own count, and the
    # aggregate can never drift from the per-shard decomposition.
    assert all(w["shed"] <= w["shed_total"] for w in warnings)
    assert service.shed == sum(service.shed_by_shard)


def test_tier_shed_counts_per_shard_with_offer_warn_cadence(tmp_path):
    ledger = RunLedger()
    service = ShardedAdvisorService(
        tmp_path / "fleet", CONFIG, shards=3, workers=False
    )
    with use_ledger(ledger):
        service._note_shed(0, 1)    # first shed on shard 0 -> warn
        service._note_shed(0, 998)  # 999 total: quiet
        service._note_shed(0, 4)    # 999 -> 1003 crosses the 1000 mark -> warn
        service._note_shed(1, 2)    # first shed on shard 1 -> warn
        service._note_shed(1, 500)  # 502 total: quiet
    warnings = [r for r in ledger.events if r["event"] == "advisor-backpressure"]
    # Cadence matches AdvisorService.offer per shard (first shed, then
    # every 1000th), stated as a boundary crossing so the multi-event
    # jump over 1000 still warns; shard 1's first shed warns even
    # though the *aggregate* was already past 1000.
    assert [(w["shard"], w["shed"], w["shed_total"]) for w in warnings] == [
        (0, 1, 1),
        (0, 1003, 1003),
        (1, 2, 1005),
    ]
    assert all(w["tier"] == "shard" for w in warnings)
    assert service.shed_by_shard == [1003, 502, 0]
    assert service.shed == 1505
    snapshot = service.health_snapshot()
    assert snapshot["routing"]["shed_events"] == 1505
    assert snapshot["routing"]["shed_by_shard"] == [1003, 502, 0]
    assert sum(row["tier_shed"] for row in snapshot["shards"]) == 1505
    service.close()


# -- process-mode fleet: smoke, registry recovery, chaos ------------------


def _single_reference(tmp, lines):
    service = AdvisorService(tmp / "reference", CONFIG, fsync=False)
    decisions = service.ingest_lines(lines)
    digests = {
        vehicle: session.state_digest()
        for vehicle, session in sorted(service.sessions.items())
    }
    cost = service.fleet_cost
    service.close()
    return decisions, digests, cost


def test_process_mode_matches_single_and_recovers_warm(tmp_path):
    """Real workers: decisions/digests == single process; a cold restart
    with no traffic warm-recovers every session from vehicles.idx."""
    events = build_fleet_events(vehicles=5, stops_per_vehicle=12, seed=21)
    lines = [json.dumps(event) for event in events]
    decisions_single, digests_single, cost_single = _single_reference(
        tmp_path, lines
    )

    service = ShardedAdvisorService(tmp_path / "fleet", CONFIG, shards=2, fsync=True)
    try:
        decisions = service.request_lines(lines, timeout=120.0)
        digests = service.digests(timeout=120.0)
        snapshot = service.health_snapshot(include_vehicles=True, timeout=120.0)
    finally:
        service.close()
    assert decisions == decisions_single
    assert digests == digests_single
    assert snapshot["fleet_cost"] == cost_single
    assert snapshot["routing"]["shards"] == 2
    assert [row["restarts"] for row in snapshot["shards"]] == [0, 0]
    # Locks are released by the graceful close.
    assert not list((tmp_path / "fleet").rglob(SHARD_LOCK_NAME))

    # Cold restart, zero traffic: the per-shard vehicle registry must
    # warm-recover every session so digests come back bit-identical.
    service = ShardedAdvisorService(tmp_path / "fleet", CONFIG, shards=2, fsync=True)
    try:
        assert service.digests(timeout=120.0) == digests_single
    finally:
        service.close()


@pytest.mark.slow
def test_worker_sigkill_chaos_recovers_bit_identically(tmp_path):
    """SIGKILL a live worker mid-stream: the fleet keeps serving, the
    killed shard recovers from WAL+snapshots, digests stay exact."""
    events = build_fleet_events(vehicles=4, stops_per_vehicle=30, seed=29)
    lines = [json.dumps(event) for event in events]
    _, digests_single, cost_single = _single_reference(tmp_path, lines)

    result, restarts = run_sharded_chaos(
        events, tmp_path / "fleet", CONFIG, shards=2, kills=2, chunk=8
    )
    assert restarts == 2
    assert result["digests"] == digests_single
    assert result["fleet_cost"] == cost_single
    assert result["snapshot"]["routing"]["restarts"] == 2


# -- the JSONL front end --------------------------------------------------


def test_parse_listen_specs():
    from repro.errors import InvalidParameterError

    assert parse_listen("unix:/run/advisor.sock") == ("unix", "/run/advisor.sock")
    assert parse_listen("./advisor.sock") == ("unix", "./advisor.sock")
    assert parse_listen("tcp:0.0.0.0:9000") == ("tcp", "0.0.0.0", 9000)
    assert parse_listen("localhost:9000") == ("tcp", "localhost", 9000)
    assert parse_listen(":9000") == ("tcp", "127.0.0.1", 9000)
    for bad in ("", "unix:", "9000", "host:port"):
        with pytest.raises(InvalidParameterError):
            parse_listen(bad)


def test_frontend_socket_decisions_and_health(tmp_path):
    """JSONL in, one JSON decision per line out, /health over the same
    socket — against an inline sharded service (no worker processes)."""
    events = build_fleet_events(vehicles=3, stops_per_vehicle=6, seed=33)
    lines = [json.dumps(event) for event in events]
    decisions_single, digests_single, _cost = _single_reference(tmp_path, lines)

    service = ShardedAdvisorService(
        tmp_path / "fleet", CONFIG, shards=3, workers=False
    )
    frontend = JsonlFrontend(service)
    sock_path = str(tmp_path / "advisor.sock")

    async def scenario():
        ready = asyncio.Event()
        server = asyncio.create_task(
            frontend.serve(f"unix:{sock_path}", ready=ready, install_signals=False)
        )
        await asyncio.wait_for(ready.wait(), timeout=30)

        def stream_client():
            with socket.socket(socket.AF_UNIX) as sock:
                sock.connect(sock_path)
                handle = sock.makefile("rw")
                for line in lines:
                    handle.write(line + "\n")
                handle.flush()
                sock.shutdown(socket.SHUT_WR)
                return [json.loads(reply) for reply in handle]

        replies = await asyncio.to_thread(stream_client)

        def health_client():
            with socket.socket(socket.AF_UNIX) as sock:
                sock.connect(sock_path)
                sock.sendall(b"GET /health HTTP/1.0\r\n\r\n")
                payload = b""
                while chunk := sock.recv(65536):
                    payload += chunk
            return payload

        raw = await asyncio.to_thread(health_client)
        frontend.request_stop()
        await asyncio.wait_for(server, timeout=30)
        return replies, raw

    replies, raw = asyncio.run(scenario())
    service_digests = service.digests()
    service.close()

    assert replies == decisions_single
    assert service_digests == digests_single
    head, _, body = raw.partition(b"\r\n\r\n")
    assert b"200 OK" in head
    snapshot = json.loads(body)
    assert snapshot["routing"]["shards"] == 3
    assert snapshot["ingest"]["received"] == len(lines)


class _EchoService:
    """Minimal service shape (`request_lines`/`health_snapshot`/`close`)
    for frontend protocol tests — no advisor state involved."""

    def request_lines(self, lines):
        return [{"echo": line} for line in lines]

    def health_snapshot(self):
        return {"ok": True}

    def close(self):
        pass


def test_frontend_http_hardening(tmp_path, monkeypatch):
    """Malformed, partial and non-GET HTTP on the health socket get clean
    error responses and a closed connection — never a hung handler task,
    never a traceback, and the server keeps serving afterwards."""
    import contextlib

    from repro.service import frontend as frontend_mod

    monkeypatch.setattr(frontend_mod, "_HTTP_HEADER_TIMEOUT_S", 0.2)
    monkeypatch.setattr(frontend_mod, "_LINE_LIMIT", 1024)
    frontend = JsonlFrontend(_EchoService())
    sock_path = str(tmp_path / "advisor.sock")

    async def exchange(payload: bytes) -> bytes:
        reader, writer = await asyncio.open_unix_connection(sock_path)
        writer.write(payload)
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout=10)
        writer.close()
        with contextlib.suppress(Exception):
            await writer.wait_closed()
        return raw

    async def scenario():
        ready = asyncio.Event()
        server = asyncio.create_task(
            frontend.serve(f"unix:{sock_path}", ready=ready, install_signals=False)
        )
        await asyncio.wait_for(ready.wait(), timeout=30)
        results = {}
        results["post"] = await exchange(b"POST /health HTTP/1.0\r\n\r\n")
        results["bare"] = await exchange(b"GET\r\n")
        results["junk"] = await exchange(b"GET /health HTTP/1.0 junk\r\n\r\n")
        # Stalls mid-headers: the write side stays open, so only the
        # bounded header read can unblock the handler.
        results["stall"] = await exchange(b"GET /health HTTP/1.0\r\nx-partial: ")
        results["head"] = await exchange(b"HEAD /health HTTP/1.0\r\n\r\n")
        # One line over the stream limit: unframed from here, close.
        results["overrun"] = await exchange(b"x" * 4096)
        # The server survived all of it: a well-formed request still works.
        results["ok"] = await exchange(b"GET /health HTTP/1.0\r\n\r\n")
        frontend.request_stop()
        await asyncio.wait_for(server, timeout=30)
        return results

    results = asyncio.run(scenario())
    assert results["post"].startswith(b"HTTP/1.0 405")
    assert results["bare"].startswith(b"HTTP/1.0 400")
    assert results["junk"].startswith(b"HTTP/1.0 400")
    assert results["stall"].startswith(b"HTTP/1.0 408")
    head, _, body = results["head"].partition(b"\r\n\r\n")
    assert head.startswith(b"HTTP/1.0 200")
    assert body == b""  # HEAD: headers only
    assert results["overrun"] == b""  # closed cleanly, no response
    head, _, body = results["ok"].partition(b"\r\n\r\n")
    assert head.startswith(b"HTTP/1.0 200")
    payload = json.loads(body)
    assert payload["ok"] is True
    # The frontend annotates health with its own connection telemetry.
    assert payload["frontend"]["slow_client_disconnects"] == 0


def test_frontend_stdin_pump(tmp_path):
    events = build_fleet_events(vehicles=2, stops_per_vehicle=5, seed=41)
    lines = [json.dumps(event) for event in events]
    _, digests_single, _cost = _single_reference(tmp_path, lines)
    service = ShardedAdvisorService(
        tmp_path / "fleet", CONFIG, shards=2, workers=False
    )
    frontend = JsonlFrontend(service, batch=4)
    routed = asyncio.run(frontend.pump_stdin(iter(line + "\n" for line in lines)))
    digests = service.digests()
    service.close()
    assert routed == len(lines)
    assert digests == digests_single


# -- CLI ------------------------------------------------------------------


def test_serve_cli_sharded(tmp_path, capsys):
    from repro.cli import main

    events = build_fleet_events(vehicles=3, stops_per_vehicle=8, seed=17)
    events_path = tmp_path / "events.jsonl"
    events_path.write_text("".join(json.dumps(e) + "\n" for e in events))
    health_path = tmp_path / "health.json"
    code = main(
        [
            "serve",
            str(events_path),
            "--state-dir",
            str(tmp_path / "state"),
            "--shards",
            "2",
            "--break-even",
            str(B),
            "--health",
            str(health_path),
        ]
    )
    assert code in (None, 0)
    out = capsys.readouterr().out
    assert "sharded:     2 shard(s)" in out
    snapshot = json.loads(health_path.read_text())
    assert snapshot["routing"]["shards"] == 2
    assert snapshot["ingest"]["received"] == len(events)
    assert len(snapshot["shards"]) == 2


def test_serve_cli_sharded_usage_errors(tmp_path, capsys):
    from repro.cli import main

    events_path = tmp_path / "events.jsonl"
    events_path.write_text("")
    base = ["serve", str(events_path), "--state-dir", str(tmp_path / "state")]
    assert main(base + ["--shards", "0"]) == 2
    assert main(base + ["--listen", ":0"]) == 2
    capsys.readouterr()
