"""Unit tests for the adversarial distribution constructions."""

import pytest

from repro.core.adversary import (
    appendix_a_adversary,
    conditional_mean_adversary,
    worst_case_for_bdet,
)
from repro.core.analysis import expected_online_cost
from repro.core.deterministic import BDet, Deterministic, optimal_b
from repro.core.stats import StopStatistics
from repro.core.strategy import DeterministicThresholdStrategy
from repro.errors import InvalidParameterError

B = 28.0


def statistics_round_trip(distribution, break_even):
    return StopStatistics.from_distribution(distribution, break_even)


class TestWorstCaseForBDet:
    def test_statistics_round_trip(self):
        stats = StopStatistics(0.05 * B, 0.3, B)
        b = optimal_b(stats)
        adversary = worst_case_for_bdet(stats, b)
        recovered = statistics_round_trip(adversary, B)
        assert recovered.mu_b_minus == pytest.approx(stats.mu_b_minus)
        assert recovered.q_b_plus == pytest.approx(stats.q_b_plus)

    def test_achieves_eq34_cost(self):
        # Against its worst case, b-DET's cost is exactly
        # (b + B)(mu-/b + q+).
        stats = StopStatistics(0.05 * B, 0.3, B)
        b = optimal_b(stats)
        adversary = worst_case_for_bdet(stats, b)
        cost = expected_online_cost(BDet(B, b), adversary)
        expected = (b + B) * (stats.mu_b_minus / b + stats.q_b_plus)
        assert cost == pytest.approx(expected)

    def test_rejects_b_outside_range(self):
        stats = StopStatistics(0.05 * B, 0.3, B)
        with pytest.raises(InvalidParameterError):
            worst_case_for_bdet(stats, 0.0)
        with pytest.raises(InvalidParameterError):
            worst_case_for_bdet(stats, B)

    def test_rejects_b_below_conditional_constraint(self):
        # q2 = mu-/b must fit in the available short-stop mass.
        stats = StopStatistics(0.5 * B, 0.4, B)
        tiny_b = stats.mu_b_minus / (1.0 - stats.q_b_plus) * 0.5
        with pytest.raises(InvalidParameterError):
            worst_case_for_bdet(stats, tiny_b)

    def test_custom_long_length_validated(self):
        stats = StopStatistics(0.05 * B, 0.3, B)
        with pytest.raises(InvalidParameterError):
            worst_case_for_bdet(stats, optimal_b(stats), long_length=B / 2)


class TestConditionalMeanAdversary:
    def test_statistics_round_trip(self):
        stats = StopStatistics(0.2 * B, 0.3, B)
        adversary = conditional_mean_adversary(stats)
        recovered = statistics_round_trip(adversary, B)
        assert recovered.mu_b_minus == pytest.approx(stats.mu_b_minus)
        assert recovered.q_b_plus == pytest.approx(stats.q_b_plus)

    def test_punishes_low_b(self):
        # Any b-DET with b <= conditional mean pays b + B on every stop,
        # which is worse than TOI's B.
        stats = StopStatistics(0.2 * B, 0.3, B)
        adversary = conditional_mean_adversary(stats)
        low_b = stats.short_stop_conditional_mean
        cost = expected_online_cost(BDet(B, low_b), adversary)
        assert cost == pytest.approx(low_b + B)
        assert cost > B

    def test_rejects_all_long(self):
        with pytest.raises(InvalidParameterError):
            conditional_mean_adversary(StopStatistics(0.0, 1.0, B))


class TestAppendixAAdversary:
    def test_idling_past_b_is_dominated_by_det(self):
        # Eq. (40): cost of threshold c > B dominates DET's cost.
        stats = StopStatistics(0.2 * B, 0.3, B)
        for c in (1.2 * B, 2.0 * B, 5.0 * B):
            adversary = appendix_a_adversary(stats, c)
            cost_c = expected_online_cost(
                DeterministicThresholdStrategy(B, threshold=c), adversary
            )
            cost_det = expected_online_cost(Deterministic(B), adversary)
            assert cost_c >= cost_det - 1e-9
            expected = stats.mu_b_minus + stats.q_b_plus * (c + B)
            assert cost_c == pytest.approx(expected, rel=1e-6)

    def test_requires_c_above_b(self):
        stats = StopStatistics(0.2 * B, 0.3, B)
        with pytest.raises(InvalidParameterError):
            appendix_a_adversary(stats, B)

    def test_all_long_variant(self):
        stats = StopStatistics(0.0, 1.0, B)
        adversary = appendix_a_adversary(stats, 2.0 * B)
        recovered = statistics_round_trip(adversary, B)
        assert recovered.q_b_plus == 1.0
