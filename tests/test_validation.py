"""Unit tests for the validation layer (schemas, policies, quarantine)."""

import json

import numpy as np
import pytest

from repro.distributions import EmpiricalDistribution
from repro.distributions.fitting import moment_summary
from repro.engine import RunLedger, use_ledger
from repro.errors import DataValidationError, InvalidParameterError, TraceFormatError
from repro.fleet import load_fleet_dataset, load_fleets, save_fleet_dataset, validate_fleets
from repro.traces import read_stops_csv, read_traces_json, speed_trace_from_samples
from repro.validation import (
    Policy,
    PolicyEnforcer,
    ValidationReport,
    clean_stop_lengths,
    resolve_policy,
)

STOPS_HEADER = "vehicle_id,start_time,duration\n"


def write_stops(path, rows):
    path.write_text(STOPS_HEADER + "".join(row + "\n" for row in rows))
    return path


class TestPolicy:
    def test_resolve_accepts_names_and_members(self):
        assert resolve_policy("strict") is Policy.STRICT
        assert resolve_policy("REPAIR") is Policy.REPAIR
        assert resolve_policy(Policy.QUARANTINE) is Policy.QUARANTINE

    def test_resolve_rejects_unknown(self):
        with pytest.raises(InvalidParameterError, match="unknown validation policy"):
            resolve_policy("lenient")

    def test_strict_flag_raises_with_provenance(self):
        enforcer = PolicyEnforcer("strict", None, "data.csv")
        with pytest.raises(DataValidationError) as excinfo:
            enforcer.flag("non-finite-duration", "duration is nan", line=7)
        error = excinfo.value
        assert isinstance(error, TraceFormatError)
        assert error.check == "non-finite-duration"
        assert error.source == "data.csv"
        assert error.line == 7
        assert "data.csv, line 7" in str(error)

    def test_repair_flag_drops_and_logs(self):
        enforcer = PolicyEnforcer("repair", None, "data.csv")
        assert enforcer.flag("negative-duration", "duration is -1", line=3) is False
        issue = enforcer.report.issues[0]
        assert issue.action == "dropped"
        assert enforcer.report.dropped_count == 1

    def test_warnings_kept_under_every_policy(self):
        for policy in Policy:
            enforcer = PolicyEnforcer(policy, None, "x")
            assert enforcer.flag("empty-vehicle", "no stops", severity="warning")
            assert enforcer.report.warning_count == 1

    def test_repaired_records_are_kept(self):
        enforcer = PolicyEnforcer("repair", None, "manifest.json")
        assert enforcer.flag("bad-recording-days", "defaulted to 7", repaired=True)
        assert enforcer.report.issues[0].action == "repaired"


class TestCleanStopLengths:
    def test_strict_raises_on_nan(self):
        with pytest.raises(DataValidationError, match="index 1"):
            clean_stop_lengths([1.0, np.nan, 3.0], "strict")

    def test_repair_drops_with_index_provenance(self):
        report = ValidationReport("repair")
        cleaned = clean_stop_lengths(
            [1.0, np.nan, -2.0, np.inf, 3.0], "repair", report
        )
        np.testing.assert_array_equal(cleaned, [1.0, 3.0])
        checks = sorted(issue.check for issue in report.issues)
        assert checks == [
            "negative-duration",
            "non-finite-duration",
            "non-finite-duration",
        ]
        assert [issue.line for issue in report.issues] == [1, 2, 3]

    def test_clean_input_passes_through(self):
        cleaned = clean_stop_lengths([5.0, 0.0], "strict")
        np.testing.assert_array_equal(cleaned, [5.0, 0.0])


class TestReport:
    def test_counts_and_roundtrip(self, tmp_path):
        report = ValidationReport("repair")
        enforcer = PolicyEnforcer("repair", report, "a.csv")
        enforcer.flag("non-finite-duration", "nan", line=2)
        enforcer.flag("empty-vehicle", "gone", severity="warning")
        payload = report.to_dict()
        assert payload["errors"] == 1 and payload["warnings"] == 1
        assert payload["counts_by_check"]["non-finite-duration"] == 1
        path = report.write_json(tmp_path / "report.json")
        assert json.loads(path.read_text())["dropped"] == 1
        text = report.format()
        assert "a.csv:2" in text and "nan" in text

    def test_emit_to_ledger_uses_active_ledger(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        report = ValidationReport("repair")
        report.records_checked = 4
        with use_ledger(ledger):
            report.emit_to_ledger(source="a.csv")
        events = [json.loads(line) for line in (tmp_path / "ledger.jsonl").read_text().splitlines()]
        validation = [e for e in events if e["event"] == "validation"]
        assert validation and validation[0]["source"] == "a.csv"
        assert validation[0]["checked"] == 4

    def test_emit_without_ledger_is_noop(self):
        ValidationReport("strict").emit_to_ledger()


class TestReadStopsCsv:
    def test_strict_names_the_line(self, tmp_path):
        path = write_stops(tmp_path / "stops.csv", ["v1,0,10", "v1,20,nan"])
        with pytest.raises(DataValidationError) as excinfo:
            read_stops_csv(path)
        assert excinfo.value.line == 3
        assert "line 3" in str(excinfo.value)

    def test_repair_drops_bad_rows(self, tmp_path):
        path = write_stops(
            tmp_path / "stops.csv",
            ["v1,0,10", "v1,20,nan", "v1,40,-1", "v1,60,5", "v2,0,oops"],
        )
        report = ValidationReport("repair")
        per_vehicle = read_stops_csv(path, policy="repair", report=report)
        np.testing.assert_array_equal(per_vehicle["v1"], [10.0, 5.0])
        assert "v2" not in per_vehicle
        # v2 lost its only row -> empty-vehicle warning.
        assert any(
            issue.check == "empty-vehicle" and issue.severity == "warning"
            for issue in report.issues
        )

    def test_out_of_order_and_overlap_detected(self, tmp_path):
        path = write_stops(
            tmp_path / "stops.csv",
            ["v1,100,10", "v1,50,5", "v1,105,5", "v2,0,10"],
        )
        report = ValidationReport("repair")
        per_vehicle = read_stops_csv(path, policy="repair", report=report)
        checks = {issue.check for issue in report.issues}
        assert "out-of-order-stop" in checks
        assert "overlapping-stop" in checks
        np.testing.assert_array_equal(per_vehicle["v1"], [10.0])
        np.testing.assert_array_equal(per_vehicle["v2"], [10.0])

    def test_quarantine_writes_sidecar(self, tmp_path):
        path = write_stops(
            tmp_path / "stops.csv", ["v1,0,10", "v1,20,nan", "v1,40"]
        )
        report = ValidationReport("quarantine")
        read_stops_csv(path, policy="quarantine", report=report)
        sidecar = tmp_path / "stops.csv.quarantine.csv"
        assert sidecar.exists()
        assert report.quarantine_paths == [sidecar]
        body = sidecar.read_text().splitlines()
        assert body[0].startswith("line,check")
        assert body[1].startswith("3,non-finite-duration,v1,20,nan")
        assert body[2].startswith("4,bad-column-count,v1,40")

    def test_empty_table_flagged(self, tmp_path):
        path = write_stops(tmp_path / "stops.csv", [])
        report = ValidationReport("repair")
        read_stops_csv(path, policy="repair", report=report)
        assert any(issue.check == "empty-table" for issue in report.issues)

    def test_wrong_header_always_fatal(self, tmp_path):
        path = tmp_path / "stops.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(TraceFormatError, match="header"):
            read_stops_csv(path, policy="repair")


class TestReadTracesJson:
    def test_repair_drops_malformed_documents(self, tmp_path):
        good = {
            "vehicle_id": "v1",
            "recording_days": 7.0,
            "trips": [{"start_time": 0.0, "duration": 100.0, "stops": []}],
        }
        path = tmp_path / "traces.json"
        path.write_text(json.dumps([good, {"vehicle_id": "v2"}, "nonsense"]))
        report = ValidationReport("repair")
        traces = read_traces_json(path, policy="repair", report=report)
        assert [trace.vehicle_id for trace in traces] == ["v1"]
        assert report.error_count == 2

    def test_quarantine_writes_json_sidecar(self, tmp_path):
        path = tmp_path / "traces.json"
        path.write_text(json.dumps([{"vehicle_id": "v2"}]))
        report = ValidationReport("quarantine")
        read_traces_json(path, policy="quarantine", report=report)
        sidecar = tmp_path / "traces.json.quarantine.json"
        records = json.loads(sidecar.read_text())
        assert records[0]["index"] == 0

    def test_invalid_json_always_fatal(self, tmp_path):
        path = tmp_path / "traces.json"
        path.write_text("{not json")
        with pytest.raises(TraceFormatError, match="invalid JSON"):
            read_traces_json(path, policy="repair")


class TestFleetDataset:
    @pytest.fixture
    def dataset(self, tmp_path):
        fleets = load_fleets(seed=3, vehicles_per_area=2)
        return save_fleet_dataset(tmp_path / "ds", fleets, seed=3), fleets

    def test_roundtrip_is_clean(self, dataset):
        directory, fleets = dataset
        report = ValidationReport("strict")
        loaded = load_fleet_dataset(directory, report=report)
        assert report.ok
        assert {a: len(v) for a, v in loaded.items()} == {
            a: len(v) for a, v in fleets.items()
        }

    def test_duplicate_vehicle_id_first_wins(self, dataset):
        directory, _ = dataset
        manifest = json.loads((directory / "manifest.json").read_text())
        areas = sorted(manifest["areas"])
        dup = manifest["areas"][areas[1]]["vehicle_ids"][0]
        manifest["areas"][areas[0]]["vehicle_ids"].append(dup)
        manifest["areas"][areas[0]]["scale_factors"].append(1.0)
        manifest["areas"][areas[0]]["vehicle_count"] += 1
        (directory / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(DataValidationError, match="already listed"):
            load_fleet_dataset(directory)
        report = ValidationReport("repair")
        fleets = load_fleet_dataset(directory, policy="repair", report=report)
        # First listing in manifest order wins: the vehicle stays in its
        # original area and the copied entry is dropped.
        assert dup in {v.vehicle_id for v in fleets[areas[1]]}
        assert dup not in {v.vehicle_id for v in fleets[areas[0]]}

    def test_scale_factor_mismatch_defaults_to_one(self, dataset):
        directory, _ = dataset
        manifest = json.loads((directory / "manifest.json").read_text())
        area = sorted(manifest["areas"])[0]
        manifest["areas"][area]["scale_factors"] = [2.0]
        (directory / "manifest.json").write_text(json.dumps(manifest))
        report = ValidationReport("repair")
        fleets = load_fleet_dataset(directory, policy="repair", report=report)
        assert all(v.scale_factor == 1.0 for v in fleets[area])
        assert any(
            issue.check == "scale-factor-count-mismatch" for issue in report.issues
        )

    def test_missing_vehicle_stops_dropped(self, dataset):
        directory, _ = dataset
        manifest = json.loads((directory / "manifest.json").read_text())
        area = sorted(manifest["areas"])[0]
        manifest["areas"][area]["vehicle_ids"].append("ghost-1")
        manifest["areas"][area]["scale_factors"].append(1.0)
        (directory / "manifest.json").write_text(json.dumps(manifest))
        report = ValidationReport("repair")
        fleets = load_fleet_dataset(directory, policy="repair", report=report)
        assert "ghost-1" not in {v.vehicle_id for v in fleets[area]}
        assert any(issue.check == "missing-vehicle-stops" for issue in report.issues)

    def test_missing_manifest_always_fatal(self, tmp_path):
        with pytest.raises(TraceFormatError, match="not a fleet dataset"):
            load_fleet_dataset(tmp_path, policy="repair")


class TestValidateFleets:
    def test_in_memory_duplicate_and_bad_stops(self):
        fleets = load_fleets(seed=5, vehicles_per_area=2)
        # Iteration order decides which duplicate wins; use it explicitly.
        area, other = list(fleets)[0], list(fleets)[1]
        bad = fleets[area][0]
        broken = type(bad)(
            vehicle_id=bad.vehicle_id,  # duplicate of area's first vehicle
            area=other,
            stop_lengths=np.array([1.0, np.nan]),
            scale_factor=1.0,
            recording_days=7.0,
        )
        fleets[other] = fleets[other] + [broken]
        with pytest.raises(DataValidationError):
            validate_fleets(fleets)
        report = ValidationReport("repair")
        cleaned = validate_fleets(fleets, policy="repair", report=report)
        assert len(cleaned[other]) == len(fleets[other]) - 1
        # Input not mutated.
        assert len(fleets[other]) == 3


class TestSpeedTrace:
    def test_strict_raises_on_nan_sample(self):
        with pytest.raises(DataValidationError, match="sample 1"):
            speed_trace_from_samples(0.0, 1.0, [3.0, np.nan, 5.0])

    def test_repair_clamps_to_stationary(self):
        report = ValidationReport("repair")
        trace = speed_trace_from_samples(
            0.0, 1.0, [3.0, np.nan, -2.0, 5.0], policy="repair", report=report
        )
        np.testing.assert_array_equal(trace.speeds, [3.0, 0.0, 0.0, 5.0])
        assert all(issue.action == "repaired" for issue in report.issues)


class TestDistributionIngestion:
    def test_empirical_policy_routes_cleaning(self):
        report = ValidationReport("repair")
        dist = EmpiricalDistribution(
            [10.0, np.nan, 20.0], policy="repair", report=report
        )
        assert dist.count == 2
        assert report.dropped_count == 1

    def test_fitting_policy_routes_cleaning(self):
        values = list(np.linspace(1.0, 50.0, 30)) + [np.nan]
        summary = moment_summary(values, policy="repair")
        assert summary["count"] == 30

    def test_default_behavior_unchanged(self):
        from repro.errors import InvalidDistributionError

        with pytest.raises(InvalidDistributionError):
            EmpiricalDistribution([1.0, np.nan])
