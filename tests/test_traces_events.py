"""Unit tests for the driving-trace event model."""

import numpy as np
import pytest

from repro.errors import TraceFormatError
from repro.traces import DrivingTrace, StopEvent, Trip


class TestStopEvent:
    def test_end_time(self):
        stop = StopEvent(start_time=10.0, duration=5.0)
        assert stop.end_time == 15.0

    def test_zero_duration_allowed(self):
        assert StopEvent(0.0, 0.0).duration == 0.0

    @pytest.mark.parametrize("start,duration", [(-1.0, 5.0), (0.0, -1.0), (np.nan, 1.0)])
    def test_invalid_rejected(self, start, duration):
        with pytest.raises(TraceFormatError):
            StopEvent(start, duration)


class TestTrip:
    def test_idle_fraction(self):
        trip = Trip(
            start_time=0.0,
            duration=100.0,
            stops=(StopEvent(10.0, 10.0), StopEvent(50.0, 10.0)),
        )
        assert trip.total_stop_time == 20.0
        assert trip.idle_fraction == pytest.approx(0.2)

    def test_stop_outside_window_rejected(self):
        with pytest.raises(TraceFormatError):
            Trip(start_time=0.0, duration=10.0, stops=(StopEvent(5.0, 20.0),))

    def test_zero_duration_rejected(self):
        with pytest.raises(TraceFormatError):
            Trip(start_time=0.0, duration=0.0)


class TestDrivingTrace:
    def _trace(self):
        trips = (
            Trip(0.0, 100.0, stops=(StopEvent(10.0, 20.0),)),
            Trip(200.0, 100.0, stops=(StopEvent(210.0, 30.0), StopEvent(260.0, 5.0))),
        )
        return DrivingTrace("v1", trips, recording_days=2.0)

    def test_stop_lengths(self):
        np.testing.assert_allclose(self._trace().stop_lengths(), [20.0, 30.0, 5.0])

    def test_stops_per_day(self):
        assert self._trace().stops_per_day == pytest.approx(1.5)

    def test_idle_fraction(self):
        assert self._trace().idle_fraction == pytest.approx(55.0 / 200.0)

    def test_overlapping_trips_rejected(self):
        trips = (Trip(0.0, 100.0), Trip(50.0, 100.0))
        with pytest.raises(TraceFormatError):
            DrivingTrace("v1", trips)

    def test_from_stop_lengths_round_trip(self):
        lengths = [5.0, 60.0, 12.5]
        trace = DrivingTrace.from_stop_lengths("v2", lengths, area="chicago")
        np.testing.assert_allclose(trace.stop_lengths(), lengths)
        assert trace.area == "chicago"
        assert trace.stop_count == 3

    def test_invalid_recording_days_rejected(self):
        with pytest.raises(TraceFormatError):
            DrivingTrace("v1", (), recording_days=0.0)
