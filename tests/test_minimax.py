"""Unit tests for the numeric minimax game solver.

These tests are the library's independent validation of the theory: the
game values must reproduce (a) the classic e/(e-1) bound and (b) the
constrained solver's values wherever the paper's four-vertex solution is
actually optimal.
"""

import numpy as np
import pytest

from repro.constants import E_RATIO
from repro.core import (
    ConstrainedSkiRentalSolver,
    NRand,
    StopStatistics,
    solve_constrained_game,
    solve_unconstrained_game,
)
from repro.core.minimax import solve_first_moment_game
from repro.errors import InvalidParameterError

B = 28.0


class TestUnconstrainedGame:
    @pytest.fixture(scope="class")
    def solution(self):
        return solve_unconstrained_game(B, grid_size=100)

    def test_value_is_e_ratio(self, solution):
        # Player discretization can only raise the value slightly.
        assert solution.value == pytest.approx(E_RATIO, abs=0.01)
        assert solution.value >= E_RATIO - 1e-6

    def test_optimal_player_looks_like_nrand(self, solution):
        # The recovered mixed strategy's mean matches N-Rand's B/(e-1).
        assert solution.mean_threshold() == pytest.approx(
            NRand(B).mean_threshold(), rel=0.05
        )

    def test_player_distribution_normalized(self, solution):
        assert solution.player_distribution.sum() == pytest.approx(1.0)
        assert np.all(solution.player_distribution >= 0.0)

    def test_small_grid_rejected(self):
        with pytest.raises(InvalidParameterError):
            solve_unconstrained_game(B, grid_size=4)


class TestFirstMomentGame:
    """Numeric check of Appendix B: the first moment alone does not
    improve on N-Rand's e/(e-1)."""

    @pytest.mark.parametrize("mu", [0.5 * B, B, 2 * B, 3 * B])
    def test_value_stays_at_e_ratio(self, mu):
        solution = solve_first_moment_game(B, mu, grid_size=90)
        assert solution.value == pytest.approx(E_RATIO, abs=0.012)

    def test_mean_constraint_actually_enforced(self):
        # Sanity: an absurd mean far beyond the adversary's grid is
        # rejected; a barely-feasible one binds the adversary and can
        # only *lower* the value (less adversarial freedom).
        with pytest.raises(InvalidParameterError):
            solve_first_moment_game(B, 1000 * B)
        squeezed = solve_first_moment_game(B, 6.0 * B, grid_size=60)
        assert squeezed.value <= E_RATIO + 0.02

    def test_invalid_mean_rejected(self):
        with pytest.raises(InvalidParameterError):
            solve_first_moment_game(B, 0.0)


class TestConstrainedGame:
    @pytest.mark.parametrize(
        "mu_frac,q",
        [(0.5, 0.05), (0.3, 0.15), (0.05, 0.8), (0.02, 0.9)],
    )
    def test_matches_paper_in_det_and_toi_regions(self, mu_frac, q):
        # Where DET or TOI is optimal, the four-vertex solution is the
        # true game optimum and the numeric value must agree.
        stats = StopStatistics(mu_frac * B, q, B)
        analytic = ConstrainedSkiRentalSolver(stats).select()
        game = solve_constrained_game(stats, grid_size=150)
        assert analytic.name in {"DET", "TOI"}
        assert game.value == pytest.approx(analytic.worst_case_cr, abs=0.01)

    def test_game_never_exceeds_paper_value(self):
        # The game optimizes over a richer strategy space than the
        # paper's ansatz, so (up to discretization) its value is <= the
        # paper's optimal worst-case CR.
        for mu_frac, q in [(0.02, 0.3), (0.1, 0.2), (0.2, 0.4), (0.4, 0.1)]:
            stats = StopStatistics(mu_frac * B, q, B)
            analytic = ConstrainedSkiRentalSolver(stats).select()
            game = solve_constrained_game(stats, grid_size=150)
            assert game.value <= analytic.worst_case_cr + 0.01

    def test_documents_bdet_region_gap(self):
        # The reproduction finding: in the paper's b-DET region the true
        # game value is strictly below the paper's Eq. (38) CR.
        stats = StopStatistics(0.02 * B, 0.3, B)
        analytic = ConstrainedSkiRentalSolver(stats).select()
        assert analytic.name == "b-DET"
        game = solve_constrained_game(stats, grid_size=150)
        assert game.value < analytic.worst_case_cr - 0.1

    def test_degenerate_statistics_rejected(self):
        with pytest.raises(InvalidParameterError):
            solve_constrained_game(StopStatistics(0.0, 0.0, B))
