"""Behavioral tests for the advisor session and the multi-vehicle service.

Covers defensive ingestion (idempotency, clock monotonicity, value
guards, shed-and-count backpressure) and the acceptance degradation
pin: injected drift walks the health ladder HEALTHY -> DEGRADED ->
SAFE, every transition lands in the run ledger, and once SAFE the
realized competitive ratio respects the fallback's guarantee —
``e/(e-1)`` for N-Rand, 2 for DET.
"""

import re

import numpy as np
import pytest

from repro.constants import E
from repro.engine import RunLedger, use_ledger
from repro.errors import DataValidationError
from repro.service import AdvisorService, AdvisorSession, HealthState, SessionConfig
from repro.validation import ValidationReport

B = 28.0


def _config(**overrides) -> SessionConfig:
    return SessionConfig(break_even=B, **overrides)


class TestIdempotency:
    def test_duplicate_event_id_is_a_counted_noop(self):
        session = AdvisorSession("v1", _config())
        first = session.submit("e-1", 0.0, 40.0)
        again = session.submit("e-1", 1.0, 40.0)
        assert first is not None
        assert again is None
        assert session.duplicates == 1
        assert session.applied == 1

    def test_dedup_window_eventually_forgets(self):
        session = AdvisorSession("v1", _config(dedup_window=2))
        session.submit("e-1", 0.0, 10.0)
        session.submit("e-2", 1.0, 10.0)
        session.submit("e-3", 2.0, 10.0)  # evicts e-1 from the window
        assert session.submit("e-1", 3.0, 10.0) is not None
        assert session.duplicates == 0


class TestClockMonotonicity:
    def test_stale_timestamp_rejected_under_repair(self):
        session = AdvisorSession("v1", _config(), policy="repair")
        session.submit("e-1", 10.0, 40.0)
        assert session.submit("e-2", 5.0, 40.0) is None
        assert session.rejected == 1
        assert session.applied == 1

    def test_stale_timestamp_raises_under_strict(self):
        session = AdvisorSession("v1", _config(), policy="strict")
        session.submit("e-1", 10.0, 40.0)
        with pytest.raises(DataValidationError):
            session.submit("e-2", 5.0, 40.0)

    def test_equal_timestamp_is_allowed(self):
        # Two stops in the same second are legitimate telemetry.
        session = AdvisorSession("v1", _config())
        session.submit("e-1", 10.0, 40.0)
        assert session.submit("e-2", 10.0, 40.0) is not None


class TestValueGuards:
    @pytest.mark.parametrize("bad", [-1.0, float("nan"), float("inf")])
    def test_bad_stop_length_never_reaches_the_estimator(self, bad):
        session = AdvisorSession("v1", _config(), policy="repair")
        assert session.submit("e-1", 0.0, bad) is None
        assert session.rejected == 1
        assert session.estimator.observed_stops == 0

    def test_bad_event_streak_degrades_health(self):
        session = AdvisorSession("v1", _config(bad_event_streak=3), policy="repair")
        for index in range(3):
            session.submit(f"bad-{index}", float(index), -1.0)
        assert session.health is HealthState.DEGRADED
        assert session.transitions[-1]["reason"] == "validation-streak:negative-duration"

    def test_valid_event_resets_the_bad_streak(self):
        session = AdvisorSession("v1", _config(bad_event_streak=3), policy="repair")
        for index in range(2):
            session.submit(f"bad-{index}", float(index), -1.0)
        session.submit("good", 2.0, 40.0)
        session.submit("bad-2", 3.0, -1.0)
        assert session.health is HealthState.HEALTHY


class TestBackpressure:
    def test_shed_events_are_counted(self, tmp_path):
        service = AdvisorService(tmp_path / "state", _config(), max_queue=2)
        records = [
            {"id": f"e-{i}", "vehicle": "v1", "t": float(i), "stop": 10.0}
            for i in range(5)
        ]
        accepted = [service.offer(record) for record in records]
        assert accepted == [True, True, False, False, False]
        assert service.shed == 3
        service.drain()
        snapshot = service.health_snapshot()
        assert snapshot["ingest"]["shed"] == 3
        assert snapshot["ingest"]["received"] == 5
        assert snapshot["vehicles"]["v1"]["applied"] == 2

    def test_malformed_records_do_not_create_sessions(self, tmp_path):
        service = AdvisorService(tmp_path / "state", _config(), policy="repair")
        service.process({"vehicle": "ghost", "id": "e-1"})  # no t / stop
        assert "ghost" not in service.sessions
        assert service.malformed == 1

    def test_undecodable_line_is_quarantined(self, tmp_path):
        report = ValidationReport("quarantine")
        service = AdvisorService(
            tmp_path / "state", _config(), policy="quarantine", report=report
        )
        assert service.ingest_line("{not json") is None
        assert service.malformed == 1
        service.close()
        quarantined = list((tmp_path / "state").glob("*.quarantine.csv"))
        assert len(quarantined) == 1
        assert "{not json" in quarantined[0].read_text()


class TestVehicleDirnames:
    def test_distinct_ids_never_share_a_directory(self):
        from repro.service.advisor import _vehicle_dirname

        ids = ["Car1", "car1", "CAR1", "a/b", "a_b", "veh-" + "0" * 16]
        names = [_vehicle_dirname(vehicle_id) for vehicle_id in ids]
        assert len(set(names)) == len(ids)
        # Still collision-free on case-insensitive filesystems.
        assert len({name.lower() for name in names}) == len(ids)

    def test_names_are_filesystem_safe(self):
        from repro.service.advisor import _vehicle_dirname

        for vehicle_id in ["", ".", "..", "a/../../b", "日本語", " spaced "]:
            name = _vehicle_dirname(vehicle_id)
            assert re.fullmatch(r"[A-Za-z0-9._-]+", name)
            assert name not in (".", "..")
            assert not name.startswith(".")


def _oscillate_until_safe(session: AdvisorSession, rng) -> float:
    """Feed alternating traffic regimes until the session reaches SAFE.

    Returns the next free timestamp.  Blocks of 40 stops alternate
    between a short-stop regime (mean 10 s) and a long-stop regime
    (mean 200 s) — persistent, repeated drift, which is what the ladder
    needs: a single stable shift re-calibrates after one alarm and goes
    quiet.
    """
    t = 0.0
    for index in range(4000):
        if session.health is HealthState.SAFE:
            return t
        mean = 10.0 if (index // 40) % 2 == 0 else 200.0
        session.submit(f"osc-{index:05d}", t, abs(float(rng.normal(mean, 1.0))))
        t += 1.0
    raise AssertionError("drift injection never reached SAFE")


class TestDegradationLadder:
    def test_drift_walks_healthy_degraded_safe_and_ledger_records_it(self, rng):
        config = _config(
            drift_min_count=10,
            min_samples=5,
            recover_after=10_000,
            safe_recover_after=10_000_000,
        )
        session = AdvisorSession("v1", config)
        ledger = RunLedger()
        with use_ledger(ledger):
            _oscillate_until_safe(session, rng)
        ladder = [(t["from"], t["to"]) for t in session.transitions]
        assert ladder == [("healthy", "degraded"), ("degraded", "safe")]
        emitted = [e for e in ledger.events if e["event"] == "advisor-state"]
        assert [(e["from"], e["to"]) for e in emitted] == ladder
        assert all(e["vehicle"] == "v1" for e in emitted)

    @pytest.mark.parametrize(
        "safe_strategy,bound,tol",
        [("nrand", E / (E - 1.0), 0.05), ("det", 2.0, 1e-9)],
    )
    def test_realized_cr_in_safe_respects_the_guarantee(
        self, rng, safe_strategy, bound, tol
    ):
        config = _config(
            safe_strategy=safe_strategy,
            drift_min_count=10,
            min_samples=5,
            recover_after=10_000,
            safe_recover_after=10_000_000,
        )
        session = AdvisorSession("v1", config)
        t = _oscillate_until_safe(session, rng)
        assert session.health is HealthState.SAFE
        # Adversarial segment: every stop just over B, the worst case
        # for threshold strategies (OPT shuts off immediately, cost B).
        cost_before = session.total_cost
        offline = 0.0
        stops = 3000
        for index in range(stops):
            stop = B + 1.0
            session.submit(f"adv-{index:05d}", t, stop)
            t += 1.0
            offline += min(stop, B)
        assert session.health is HealthState.SAFE  # hysteresis held
        realized_cr = (session.total_cost - cost_before) / offline
        assert realized_cr <= bound + tol

    def test_safe_plays_the_configured_fallback(self, rng):
        for safe_strategy, name in (("nrand", "N-Rand"), ("det", "DET")):
            config = _config(
                safe_strategy=safe_strategy,
                drift_min_count=10,
                min_samples=5,
                recover_after=10_000,
                safe_recover_after=10_000_000,
            )
            session = AdvisorSession("v1", config)
            _oscillate_until_safe(session, np.random.default_rng(7))
            assert session.active_strategy_name == name

    def test_degraded_recovers_to_healthy_after_clean_streak(self, rng):
        config = _config(drift_min_count=10, min_samples=5, recover_after=30)
        session = AdvisorSession("v1", config)
        t = 0.0
        index = 0
        # One regime shift: short stops, then long stops -> DEGRADED.
        while session.health is HealthState.HEALTHY and index < 500:
            mean = 10.0 if index < 40 else 200.0
            session.submit(f"s-{index:04d}", t, abs(float(rng.normal(mean, 1.0))))
            t += 1.0
            index += 1
        assert session.health is HealthState.DEGRADED
        # The new regime is stable: a clean streak climbs back out.
        for _ in range(200):
            if session.health is HealthState.HEALTHY:
                break
            session.submit(f"r-{index:04d}", t, abs(float(rng.normal(200.0, 1.0))))
            t += 1.0
            index += 1
        assert session.health is HealthState.HEALTHY
        assert session.transitions[-1]["reason"] == "recovered"
