"""Unit tests for the synthetic fleet layer (the NREL substitution)."""

import numpy as np
import pytest

from repro.distributions import ks_test_exponential
from repro.errors import InvalidParameterError
from repro.fleet import (
    AREAS,
    FleetGenerator,
    area_config,
    load_area,
    load_fleets,
    total_vehicle_count,
)
from repro.fleet.nrel import pooled_stops


class TestAreaConfig:
    def test_lookup_case_insensitive(self):
        assert area_config("Chicago").name == "chicago"

    def test_unknown_rejected(self):
        with pytest.raises(InvalidParameterError):
            area_config("detroit")

    def test_paper_vehicle_counts(self):
        # Section 5: California 217, Chicago 312, Atlanta 653.
        assert AREAS["california"].vehicle_count == 217
        assert AREAS["chicago"].vehicle_count == 312
        assert AREAS["atlanta"].vehicle_count == 653

    def test_mixture_is_valid_distribution(self, rng):
        dist = area_config("chicago").stop_length_distribution()
        samples = dist.sample(1000, rng)
        assert np.all(samples >= 0.0)
        assert np.isfinite(dist.mean())


class TestFleetGenerator:
    def test_reproducible(self):
        config = area_config("california")
        a = FleetGenerator(config, seed=42).generate(10)
        b = FleetGenerator(config, seed=42).generate(10)
        for va, vb in zip(a, b):
            np.testing.assert_array_equal(va.stop_lengths, vb.stop_lengths)

    def test_different_seeds_differ(self):
        config = area_config("california")
        a = FleetGenerator(config, seed=1).generate(5)
        b = FleetGenerator(config, seed=2).generate(5)
        assert any(
            va.stop_lengths.size != vb.stop_lengths.size
            or not np.allclose(va.stop_lengths, vb.stop_lengths)
            for va, vb in zip(a, b)
        )

    def test_vehicle_ids_unique(self):
        vehicles = FleetGenerator(area_config("atlanta"), seed=0).generate(20)
        ids = [v.vehicle_id for v in vehicles]
        assert len(set(ids)) == 20

    def test_stop_lengths_floor(self):
        vehicles = FleetGenerator(area_config("chicago"), seed=0).generate(20)
        for vehicle in vehicles:
            assert np.all(vehicle.stop_lengths >= 1.0)

    def test_to_trace_round_trip(self):
        vehicle = FleetGenerator(area_config("chicago"), seed=0).generate(1)[0]
        trace = vehicle.to_trace()
        np.testing.assert_allclose(trace.stop_lengths(), vehicle.stop_lengths)
        assert trace.area == "chicago"

    def test_bad_count_rejected(self):
        with pytest.raises(InvalidParameterError):
            FleetGenerator(area_config("chicago")).generate(0)

    def test_stops_per_day_roughly_calibrated(self):
        config = area_config("chicago")
        vehicles = FleetGenerator(config, seed=3).generate(300)
        rates = np.array([v.stops_per_day for v in vehicles])
        assert rates.mean() == pytest.approx(config.stops_per_day_mean, rel=0.2)
        assert rates.std() == pytest.approx(config.stops_per_day_std, rel=0.35)


class TestLoadFleets:
    def test_default_counts(self):
        fleets = load_fleets(vehicles_per_area=5)
        assert set(fleets) == set(AREAS)
        assert total_vehicle_count(fleets) == 15

    def test_full_counts_match_paper(self):
        # Only check the requested sizes, not generating everything.
        assert sum(config.vehicle_count for config in AREAS.values()) == 1182

    def test_areas_are_independent_but_reproducible(self):
        a = load_area("chicago", seed=7, vehicle_count=3)
        b = load_area("chicago", seed=7, vehicle_count=3)
        c = load_area("atlanta", seed=7, vehicle_count=3)
        np.testing.assert_array_equal(a[0].stop_lengths, b[0].stop_lengths)
        assert a[0].stop_lengths.size != c[0].stop_lengths.size or not np.allclose(
            a[0].stop_lengths, c[0].stop_lengths
        )

    def test_heavy_tails_reject_exponential(self):
        # The Figure 3 claim must hold on every synthetic area.
        fleets = load_fleets(vehicles_per_area=40)
        for area, lengths in pooled_stops(fleets).items():
            assert ks_test_exponential(lengths).rejected, area

    def test_chicago_shortest_stops(self):
        # Calibration: Chicago is the signal-dominated short-stop area.
        fleets = load_fleets(vehicles_per_area=60)
        stops = pooled_stops(fleets)
        assert np.median(stops["chicago"]) < np.median(stops["california"])
        assert np.median(stops["chicago"]) < np.median(stops["atlanta"])
