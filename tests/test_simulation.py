"""Unit tests for the event-level stop-start simulation."""

import math

import numpy as np
import pytest

from repro.core import Deterministic, NeverOff, NRand, TurnOffImmediately
from repro.errors import InvalidParameterError, SimulationError
from repro.simulation import (
    CostLedger,
    OfflineController,
    StopStartController,
    realized_cr,
    simulate_stops,
    simulate_trace,
)
from repro.traces import DrivingTrace
from repro.vehicle import ssv_cost_model

B = 28.0


class TestCostLedger:
    def test_total_cost(self):
        ledger = CostLedger(break_even=B)
        ledger.record_stop(idle_seconds=10.0, restarted=False)
        ledger.record_stop(idle_seconds=5.0, restarted=True)
        assert ledger.total_cost_seconds == pytest.approx(15.0 + B)
        assert ledger.stops == 2
        assert ledger.restarts == 1

    def test_per_stop_costs(self):
        ledger = CostLedger(break_even=B)
        ledger.record_stop(10.0, False)
        ledger.record_stop(5.0, True)
        np.testing.assert_allclose(ledger.per_stop_costs, [10.0, 5.0 + B])

    def test_fuel_and_money(self):
        model = ssv_cost_model()
        ledger = CostLedger(break_even=B)
        ledger.record_stop(100.0, True)
        rate = model.engine.idle_rate_cc_per_s()
        assert ledger.fuel_cc(model) == pytest.approx(100.0 * rate + 10.0 * rate)
        expected_cents = 100.0 * model.idling_cost_cents_per_s() + model.restart_cost_cents()
        assert ledger.cost_cents(model) == pytest.approx(expected_cents)

    def test_merge(self):
        a, b_ledger = CostLedger(B), CostLedger(B)
        a.record_stop(10.0, True)
        b_ledger.record_stop(20.0, False)
        merged = a.merge(b_ledger)
        assert merged.stops == 2
        assert merged.total_cost_seconds == pytest.approx(30.0 + B)

    def test_merge_mismatched_b_rejected(self):
        with pytest.raises(InvalidParameterError):
            CostLedger(B).merge(CostLedger(47.0))

    def test_negative_idle_rejected(self):
        with pytest.raises(InvalidParameterError):
            CostLedger(B).record_stop(-1.0, False)


class TestControllers:
    def test_online_short_stop_no_restart(self):
        controller = StopStartController(Deterministic(B))
        decision = controller.decide(10.0)
        assert not decision.restarted
        assert decision.idle_seconds == 10.0

    def test_online_long_stop_restarts(self):
        controller = StopStartController(Deterministic(B))
        decision = controller.decide(100.0)
        assert decision.restarted
        assert decision.idle_seconds == B

    def test_toi_always_restarts(self):
        controller = StopStartController(TurnOffImmediately(B))
        decision = controller.decide(1.0)
        assert decision.restarted
        assert decision.idle_seconds == 0.0

    def test_nev_never_restarts(self):
        controller = StopStartController(NeverOff(B))
        decision = controller.decide(10000.0)
        assert not decision.restarted
        assert decision.idle_seconds == 10000.0

    def test_offline_matches_eq2(self):
        offline = OfflineController(B)
        short = offline.decide(10.0)
        assert not short.restarted and short.idle_seconds == 10.0
        long = offline.decide(100.0)
        assert long.restarted and long.idle_seconds == 0.0
        boundary = offline.decide(B)
        assert boundary.restarted

    def test_randomized_draws_vary(self):
        controller = StopStartController(NRand(B), rng=np.random.default_rng(1))
        thresholds = {controller.decide(100.0).threshold for _ in range(20)}
        assert len(thresholds) > 1


class TestSimulateStops:
    def test_offline_total_is_sum_of_offline_costs(self):
        stops = np.array([10.0, 50.0, 100.0])
        result = simulate_stops(stops, break_even=B)
        assert result.total_cost_seconds == pytest.approx(10.0 + B + B)

    def test_deterministic_online_total(self):
        stops = np.array([10.0, 50.0])
        result = simulate_stops(stops, strategy=Deterministic(B))
        assert result.total_cost_seconds == pytest.approx(10.0 + 2 * B)

    def test_realized_cr_det(self):
        stops = np.array([10.0, 50.0])
        online = simulate_stops(stops, strategy=Deterministic(B))
        offline = simulate_stops(stops, break_even=B)
        assert realized_cr(online, offline) == pytest.approx((10 + 2 * B) / (10 + B))

    def test_realized_cr_converges_to_expected(self, rng):
        # N-Rand realized over many stops -> e/(e-1) within a few percent.
        stops = rng.exponential(60.0, size=20000)
        online = simulate_stops(stops, strategy=NRand(B), rng=rng)
        offline = simulate_stops(stops, break_even=B)
        assert realized_cr(online, offline) == pytest.approx(
            math.e / (math.e - 1), rel=0.02
        )

    def test_simulate_trace_uses_all_stops(self):
        trace = DrivingTrace.from_stop_lengths("v", [10.0, 50.0, 5.0])
        result = simulate_trace(trace, break_even=B)
        assert result.ledger.stops == 3

    def test_mismatched_b_rejected(self):
        stops = np.array([10.0])
        online = simulate_stops(stops, strategy=Deterministic(B))
        offline = simulate_stops(stops, break_even=47.0)
        with pytest.raises(InvalidParameterError):
            realized_cr(online, offline)

    def test_zero_offline_rejected(self):
        stops = np.array([0.0])
        online = simulate_stops(stops, strategy=Deterministic(B))
        offline = simulate_stops(stops, break_even=B)
        with pytest.raises(InvalidParameterError):
            realized_cr(online, offline)

    def test_empty_stops_rejected(self):
        with pytest.raises(InvalidParameterError):
            simulate_stops(np.array([]), break_even=B)

    def test_offline_requires_break_even(self):
        with pytest.raises(InvalidParameterError):
            simulate_stops(np.array([1.0]))

    def test_mean_cost(self):
        stops = np.array([10.0, 50.0])
        result = simulate_stops(stops, strategy=Deterministic(B))
        assert result.mean_cost_seconds == pytest.approx((10.0 + 2 * B) / 2)

    def test_money_accounting_ordering(self):
        # Online cost in cents always >= offline cost in cents.
        model = ssv_cost_model()
        stops = np.array([10.0, 50.0, 200.0, 3.0])
        online = simulate_stops(stops, strategy=TurnOffImmediately(B))
        offline = simulate_stops(stops, break_even=B)
        assert online.cost_cents(model) >= offline.cost_cents(model) - 1e-9
