"""Unit tests for the Appendix C vehicle cost model."""

import pytest

from repro.errors import InvalidParameterError
from repro.vehicle import (
    ARGONNE_MEASUREMENTS,
    CONVENTIONAL_STARTER,
    FORD_FUSION_2011,
    SSV_STARTER,
    STOP_START_BATTERY,
    SWEDEN_NOX_PRICING,
    BatteryModel,
    EngineSpec,
    StarterModel,
    conventional_cost_model,
    ssv_cost_model,
)


class TestEngineSpec:
    def test_eq45_regression(self):
        # 2.5 L: 0.3644 * 2.5 + 0.5188 = 1.4298 L/h.
        engine = EngineSpec(displacement_liters=2.5)
        assert engine.regression_idle_rate_l_per_h() == pytest.approx(1.4298)

    def test_measured_rate_overrides_regression(self):
        assert FORD_FUSION_2011.idle_rate_cc_per_s() == pytest.approx(0.279)

    def test_regression_rate_in_cc_per_s(self):
        engine = EngineSpec(displacement_liters=2.5)
        assert engine.idle_rate_cc_per_s() == pytest.approx(1.4298 * 1000 / 3600)

    def test_paper_idling_cost(self):
        # 0.279 cc/s at $3.5/gallon -> ~0.0258 cents/s (Eq. 46).
        cents = FORD_FUSION_2011.idling_cost_cents_per_s(3.5)
        assert cents == pytest.approx(0.0258, abs=0.0001)

    def test_invalid_displacement_rejected(self):
        with pytest.raises(InvalidParameterError):
            EngineSpec(displacement_liters=0.0)

    def test_invalid_fuel_price_rejected(self):
        with pytest.raises(InvalidParameterError):
            FORD_FUSION_2011.idling_cost_cents_per_s(0.0)


class TestStarterModel:
    def test_paper_range_low_end(self):
        # $55 + $115 over 34,000 starts -> 0.5 cents/start.
        assert CONVENTIONAL_STARTER.cost_per_start_cents() == pytest.approx(0.5)

    def test_paper_range_high_end(self):
        expensive = StarterModel(400.0, 225.0, 20000.0)
        # Paper's upper bound: ~4 cents per start ->
        # 155 seconds at 0.0258 cents/s.
        assert expensive.cost_per_start_cents() == pytest.approx(3.125)
        seconds = expensive.equivalent_idling_seconds(0.0258)
        assert 100.0 < seconds < 160.0

    def test_conventional_equivalent_seconds(self):
        # Paper: 0.5 cents -> 19.38 s of idling.
        seconds = CONVENTIONAL_STARTER.equivalent_idling_seconds(0.0258)
        assert seconds == pytest.approx(19.38, abs=0.05)

    def test_ssv_starter_negligible(self):
        assert SSV_STARTER.equivalent_idling_seconds(0.0258) == pytest.approx(0.0)

    def test_invalid_rejected(self):
        with pytest.raises(InvalidParameterError):
            StarterModel(-1.0, 0.0, 1000.0)
        with pytest.raises(InvalidParameterError):
            StarterModel(1.0, 1.0, 0.0)


class TestBatteryModel:
    def test_paper_cost_range(self):
        # $230 over 2-4 years at 32.43 stops/day -> 0.9713 to 0.4841 cents.
        short = BatteryModel(230.0, warranty_years=2.0)
        long = BatteryModel(230.0, warranty_years=4.0)
        assert short.cost_per_start_cents() == pytest.approx(0.9713, abs=0.001)
        assert long.cost_per_start_cents() == pytest.approx(0.4857, abs=0.001)

    def test_paper_minimum_equivalent_seconds(self):
        # Paper: at least 18.76 s of idling per start.
        seconds = STOP_START_BATTERY.equivalent_idling_seconds(0.0258)
        assert seconds == pytest.approx(18.8, abs=0.2)

    def test_lifetime_starts(self):
        battery = BatteryModel(230.0, warranty_years=1.0, stops_per_day=10.0)
        assert battery.lifetime_starts() == pytest.approx(3650.0)

    def test_invalid_rejected(self):
        with pytest.raises(InvalidParameterError):
            BatteryModel(0.0, 2.0)


class TestEmissions:
    def test_restart_equivalents(self):
        # THC: 44 / 0.266 ~ 165 s; NOx: 6 / 0.0097 ~ 619 s; CO huge.
        assert ARGONNE_MEASUREMENTS.restart_equivalent_idle_seconds("thc") == pytest.approx(165.4, abs=0.5)
        assert ARGONNE_MEASUREMENTS.restart_equivalent_idle_seconds("nox") == pytest.approx(618.6, abs=1.0)
        assert ARGONNE_MEASUREMENTS.restart_equivalent_idle_seconds("co") > 10000

    def test_unknown_species_rejected(self):
        with pytest.raises(InvalidParameterError):
            ARGONNE_MEASUREMENTS.restart_equivalent_idle_seconds("co2")

    def test_sweden_nox_restart_cost_tiny(self):
        cents = SWEDEN_NOX_PRICING.restart_cost_cents(ARGONNE_MEASUREMENTS)
        # Paper: ~0.0035 cents per restart (~0.14 s of idling).
        assert cents == pytest.approx(0.0035, abs=0.0005)


class TestCostModels:
    def test_ssv_break_even_near_28(self):
        b = ssv_cost_model().break_even_seconds()
        assert 28.0 <= b <= 30.0  # paper floors 28.96 -> 28

    def test_conventional_break_even_near_47(self):
        b = conventional_cost_model().break_even_seconds()
        assert 47.0 <= b <= 49.5  # paper floors 48.34 -> 47

    def test_conventional_exceeds_ssv(self):
        assert (
            conventional_cost_model().break_even_seconds()
            > ssv_cost_model().break_even_seconds()
        )

    def test_breakdown_sums(self):
        breakdown = ssv_cost_model().breakdown()
        assert breakdown.total_seconds == pytest.approx(
            breakdown.fuel_seconds
            + breakdown.starter_seconds
            + breakdown.battery_seconds
            + breakdown.emission_seconds
        )

    def test_restart_cost_consistency(self):
        model = ssv_cost_model()
        assert model.restart_cost_cents() == pytest.approx(
            model.break_even_seconds() * model.idling_cost_cents_per_s()
        )

    def test_breakdown_rows(self):
        rows = ssv_cost_model().breakdown().as_rows()
        assert [name for name, _ in rows] == [
            "fuel",
            "starter wear",
            "battery wear",
            "emissions",
            "total (B)",
        ]
