"""Unit tests for the contextual selector and worst-case CR' analysis."""

import numpy as np
import pytest

from repro.constants import E_RATIO
from repro.core import (
    BDet,
    ContextualProposed,
    Deterministic,
    MOMRand,
    NeverOff,
    NRand,
    StopStatistics,
    TurnOffImmediately,
    hour_of_day_context,
    worst_case_cr_prime,
)
from repro.errors import InvalidParameterError

B = 28.0


class TestHourContext:
    def test_buckets(self):
        assert hour_of_day_context(0.0) == 0
        assert hour_of_day_context(3600.0 * 7 + 12) == 7
        assert hour_of_day_context(86400.0 + 3600.0 * 7) == 7  # next day wraps


class TestContextualProposed:
    def test_contexts_created_on_demand(self, rng):
        contextual = ContextualProposed(B, min_samples=2)
        contextual.observe(0.0, 5.0)
        contextual.observe(3600.0 * 12, 100.0)
        assert contextual.context_count == 2

    def test_per_context_selection_diverges(self, rng):
        # Morning: all short stops -> DET; evening: all long stops -> TOI.
        contextual = ContextualProposed(B, min_samples=3)
        for _ in range(10):
            contextual.observe(3600.0 * 8, 5.0)     # hour 8, short
            contextual.observe(3600.0 * 20, 150.0)  # hour 20, long
        names = contextual.selected_names()
        assert names[8] == "DET"
        assert names[20] == "TOI"

    def test_contextual_beats_pooled_on_bimodal_workload(self, rng):
        # Context A: deterministic 10 s stops; context B: 150 s stops.
        # Pooled statistics blur them; per-context selection is near
        # offline-optimal.
        from repro.core import ProposedOnline
        from repro.core.analysis import empirical_offline_cost, empirical_online_cost

        n = 400
        tokens = np.concatenate([np.full(n, 3600.0 * 8), np.full(n, 3600.0 * 20)])
        stops = np.concatenate([np.full(n, 10.0), np.full(n, 150.0)])
        order = rng.permutation(stops.size)
        tokens, stops = tokens[order], stops[order]
        contextual = ContextualProposed(B, min_samples=5)
        contextual_cost = contextual.run_online(tokens, stops, rng).mean()
        pooled = ProposedOnline.from_samples(stops, B)
        pooled_cost = empirical_online_cost(pooled, stops)
        assert contextual_cost < pooled_cost
        offline = empirical_offline_cost(stops, B)
        assert contextual_cost / offline < 1.1  # near-optimal after warmup

    def test_run_online_validates_shapes(self, rng):
        contextual = ContextualProposed(B)
        with pytest.raises(InvalidParameterError):
            contextual.run_online(np.array([1.0]), np.array([1.0, 2.0]), rng)

    def test_custom_context_function(self, rng):
        contextual = ContextualProposed(B, context_of=lambda token: token > 0)
        contextual.observe(-1.0, 5.0)
        contextual.observe(1.0, 5.0)
        assert contextual.context_count == 2

    def test_non_callable_context_rejected(self):
        with pytest.raises(InvalidParameterError):
            ContextualProposed(B, context_of="hour")


class TestWorstCaseCRPrime:
    def test_det_closed_form(self):
        # DET: per-stop ratio 1 on short stops, 2 on long -> CR' over Q
        # is (1 - q+) + 2 q+.
        stats = StopStatistics(0.2 * B, 0.3, B)
        value = worst_case_cr_prime(Deterministic(B), stats)
        assert value == pytest.approx((1 - 0.3) + 2 * 0.3, rel=1e-6)

    def test_nrand_constant(self):
        stats = StopStatistics(0.2 * B, 0.3, B)
        assert worst_case_cr_prime(NRand(B), stats) == pytest.approx(
            E_RATIO, rel=1e-6
        )

    def test_momrand_bounded_by_its_flat_max(self):
        # Revised MOM-Rand's per-stop ratio is 1 + min(y,B)/(2B(e-2)),
        # maximized at y = B.
        stats = StopStatistics(0.2 * B, 0.3, B)
        mom = MOMRand(B, 10.0)
        value = worst_case_cr_prime(mom, stats)
        flat_max = 1.0 + 1.0 / (2.0 * (np.e - 2.0))
        assert value <= flat_max + 1e-6

    def test_toi_diverges_with_grid(self):
        # TOI's per-stop ratio blows up on tiny stops; the worst-case
        # CR' grows without bound as the grid refines.
        stats = StopStatistics(0.2 * B, 0.3, B)
        coarse = worst_case_cr_prime(TurnOffImmediately(B), stats, grid_size=64)
        fine = worst_case_cr_prime(TurnOffImmediately(B), stats, grid_size=1024)
        assert fine > coarse > 1.0

    def test_nev_unbounded_with_long_stops(self):
        stats = StopStatistics(0.2 * B, 0.3, B)
        assert worst_case_cr_prime(NeverOff(B), stats) == np.inf

    def test_nev_trivial_without_long_stops(self):
        stats = StopStatistics(0.2 * B, 0.0, B)
        assert worst_case_cr_prime(NeverOff(B), stats) == 1.0

    def test_all_long_stops(self):
        stats = StopStatistics(0.0, 1.0, B)
        value = worst_case_cr_prime(BDet(B, 10.0), stats)
        assert value == pytest.approx((10.0 + B) / B)

    def test_small_grid_rejected(self):
        stats = StopStatistics(0.2 * B, 0.3, B)
        with pytest.raises(InvalidParameterError):
            worst_case_cr_prime(Deterministic(B), stats, grid_size=2)
