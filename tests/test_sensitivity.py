"""Unit tests for statistics-misspecification sensitivity."""

import numpy as np
import pytest

from repro.constants import E_RATIO
from repro.core import StopStatistics
from repro.core.sensitivity import (
    misspecified_worst_case_cr,
    perturbed_statistics,
    robustness_margin,
)
from repro.errors import InvalidParameterError

B = 28.0


class TestPerturbedStatistics:
    def test_identity_factors(self):
        stats = StopStatistics(0.2 * B, 0.3, B)
        same = perturbed_statistics(stats, 1.0, 1.0)
        assert same.mu_b_minus == stats.mu_b_minus
        assert same.q_b_plus == stats.q_b_plus

    def test_q_clipped_to_one(self):
        stats = StopStatistics(0.0, 0.8, B)
        perturbed = perturbed_statistics(stats, 1.0, 2.0)
        assert perturbed.q_b_plus == 1.0

    def test_mu_clipped_to_feasible(self):
        stats = StopStatistics(0.5 * B, 0.4, B)
        perturbed = perturbed_statistics(stats, 3.0, 1.0)
        assert perturbed.mu_b_minus <= (1 - perturbed.q_b_plus) * B + 1e-12

    def test_negative_factors_rejected(self):
        stats = StopStatistics(0.2 * B, 0.3, B)
        with pytest.raises(InvalidParameterError):
            perturbed_statistics(stats, -1.0, 1.0)


class TestMisspecifiedCR:
    def test_exact_statistics_recover_guarantee(self):
        from repro.core import ConstrainedSkiRentalSolver

        stats = StopStatistics(0.2 * B, 0.3, B)
        value = misspecified_worst_case_cr(stats, stats, grid_size=512)
        guarantee = ConstrainedSkiRentalSolver(stats).select().worst_case_cr
        assert value == pytest.approx(guarantee, rel=1e-3)

    def test_misspecification_never_helps(self):
        # Evaluated against the true ambiguity set, a strategy built from
        # wrong statistics is at best as good as the correctly-built one.
        true_stats = StopStatistics(0.2 * B, 0.3, B)
        correct = misspecified_worst_case_cr(true_stats, true_stats, grid_size=256)
        for mu_factor, q_factor in [(0.5, 1.0), (2.0, 1.0), (1.0, 0.5), (1.0, 2.0)]:
            estimated = perturbed_statistics(true_stats, mu_factor, q_factor)
            value = misspecified_worst_case_cr(true_stats, estimated, grid_size=256)
            assert value >= correct - 1e-6

    def test_wild_misspecification_can_break_guarantee(self):
        # True: long-stop heavy (TOI territory).  Estimated: almost no
        # long stops -> selector picks DET, which the true adversary
        # punishes with CR near 2 > e/(e-1).
        true_stats = StopStatistics(0.02 * B, 0.9, B)
        estimated = StopStatistics(0.6 * B, 0.01, B)
        value = misspecified_worst_case_cr(true_stats, estimated, grid_size=256)
        assert value > E_RATIO

    def test_break_even_mismatch_rejected(self):
        with pytest.raises(InvalidParameterError):
            misspecified_worst_case_cr(
                StopStatistics(1.0, 0.3, B), StopStatistics(1.0, 0.3, 47.0)
            )


class TestRobustnessMargin:
    def test_interior_point_tolerates_some_error(self):
        # Deep in the TOI region, even sizeable misestimates still pick
        # TOI (or something beating N-Rand).
        stats = StopStatistics(0.02 * B, 0.8, B)
        margin = robustness_margin(stats, factors=(1.1, 1.5, 2.0), grid_size=128)
        assert margin >= 1.5

    def test_returns_at_most_largest_factor(self):
        stats = StopStatistics(0.2 * B, 0.3, B)
        margin = robustness_margin(stats, factors=(1.05, 1.1), grid_size=128)
        assert margin <= 1.1

    def test_degenerate_rejected(self):
        with pytest.raises(InvalidParameterError):
            robustness_margin(StopStatistics(0.0, 0.0, B))
