"""Unit tests for the self-scaling Page-Hinkley drift detectors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.service.drift import DriftDetector, PageHinkley

DELTA = 0.25
THRESHOLD = 50.0


def _feed(detector: PageHinkley, values) -> int | None:
    """Index (0-based) of the first alarm, or None."""
    for index, value in enumerate(values):
        if detector.update(float(value)):
            return index
    return None


class TestParameters:
    def test_negative_delta_rejected(self):
        with pytest.raises(InvalidParameterError):
            PageHinkley(-0.1, THRESHOLD)

    def test_nonpositive_threshold_rejected(self):
        with pytest.raises(InvalidParameterError):
            PageHinkley(DELTA, 0.0)

    def test_nonpositive_clip_rejected(self):
        with pytest.raises(InvalidParameterError):
            PageHinkley(DELTA, THRESHOLD, clip=0.0)

    def test_min_count_rejected(self):
        with pytest.raises(InvalidParameterError):
            PageHinkley(DELTA, THRESHOLD, min_count=0)


class TestStationary:
    def test_no_alarm_on_stationary_heavy_tail(self, rng):
        # Lognormal with sigma=1 has brutal tails; the winsorized
        # self-scaled statistic must still ride through quietly.
        for _ in range(10):
            data = rng.lognormal(4.0, 1.0, size=2000)
            assert _feed(PageHinkley(DELTA, THRESHOLD), data) is None

    def test_no_alarm_on_constant_stream(self):
        assert _feed(PageHinkley(DELTA, THRESHOLD), [42.0] * 500) is None

    def test_no_alarm_during_calibration(self, rng):
        # Even a violent shift cannot alarm inside the first min_count
        # observations — they only feed the mean/scale estimates.
        detector = PageHinkley(DELTA, THRESHOLD, min_count=50)
        data = np.concatenate([rng.normal(10, 1, 20), rng.normal(1000, 1, 30)])
        assert _feed(detector, data) is None

    def test_scale_invariance(self, rng):
        # The normalized statistic must not care about units: the same
        # stream in seconds and in milliseconds alarms at the same index.
        base = np.concatenate(
            [rng.lognormal(3.0, 0.5, 300), rng.lognormal(4.5, 0.5, 300)]
        )
        a = _feed(PageHinkley(DELTA, THRESHOLD), base)
        b = _feed(PageHinkley(DELTA, THRESHOLD), base * 1000.0)
        assert a == b
        assert a is not None


class TestDetection:
    def test_detects_upward_mean_shift(self, rng):
        data = np.concatenate([rng.normal(30, 5, 300), rng.normal(60, 5, 300)])
        index = _feed(PageHinkley(DELTA, THRESHOLD), data)
        assert index is not None
        assert 300 <= index < 400  # after the shift, within ~100 stops

    def test_detects_downward_mean_shift(self, rng):
        data = np.concatenate([rng.normal(60, 5, 300), rng.normal(30, 5, 300)])
        index = _feed(PageHinkley(DELTA, THRESHOLD), data)
        assert index is not None
        assert 300 <= index < 400

    def test_single_outlier_does_not_alarm(self, rng):
        data = list(rng.normal(30, 5, 300))
        data[150] = 1e6  # one parked-overnight stop
        assert _feed(PageHinkley(DELTA, THRESHOLD), data) is None

    def test_reset_forgets_history(self, rng):
        detector = PageHinkley(DELTA, THRESHOLD)
        shifted = np.concatenate([rng.normal(30, 5, 300), rng.normal(90, 5, 100)])
        assert _feed(detector, shifted) is not None
        detector.reset()
        assert _feed(detector, rng.normal(90, 5, 500)) is None


class TestSerialization:
    def test_state_round_trip_is_bit_identical(self, rng):
        data = rng.lognormal(4.0, 1.0, size=500)
        live = PageHinkley(DELTA, THRESHOLD)
        for value in data[:250]:
            live.update(float(value))
        restored = PageHinkley.from_state(live.to_state())
        for value in data[250:]:
            assert live.update(float(value)) == restored.update(float(value))
        assert live.to_state() == restored.to_state()

    def test_drift_detector_round_trip(self, rng):
        detector = DriftDetector(
            length_delta=DELTA,
            length_threshold=THRESHOLD,
            split_delta=DELTA,
            split_threshold=THRESHOLD,
        )
        for value in rng.lognormal(3.0, 1.0, 100):
            detector.update(float(value), value >= 28.0)
        restored = DriftDetector.from_state(detector.to_state())
        assert restored.to_state() == detector.to_state()


class TestBatchedUpdates:
    """Regression: the min_count calibration window counts OBSERVATIONS,
    so verdicts and detector state must be invariant to how the stream
    is split into batches — including splits that land inside the
    calibration window (the original bug's trigger)."""

    @st.composite
    def _stream_and_splits(draw):
        seed = draw(st.integers(min_value=0, max_value=2**16))
        n = draw(st.integers(min_value=1, max_value=120))
        rng = np.random.default_rng(seed)
        # A mid-stream shift so alarms actually fire in-range.
        values = np.concatenate(
            [rng.normal(30, 5, n), rng.normal(90, 5, n)]
        ).tolist()
        sizes = draw(
            st.lists(st.integers(min_value=1, max_value=23), min_size=1, max_size=6)
        )
        return values, sizes

    @staticmethod
    def _batches(values, sizes):
        position = 0
        index = 0
        while position < len(values):
            size = sizes[index % len(sizes)]
            yield values[position : position + size]
            position += size
            index += 1

    @given(_stream_and_splits())
    @settings(max_examples=50, deadline=None)
    def test_update_many_is_split_invariant(self, case):
        values, sizes = case
        scalar = PageHinkley(DELTA, THRESHOLD, min_count=7)
        scalar_alarms = [scalar.update(float(v)) for v in values]
        batched = PageHinkley(DELTA, THRESHOLD, min_count=7)
        batched_alarms = []
        for batch in self._batches(values, sizes):
            batched_alarms.extend(batched.update_many(batch).tolist())
        assert batched_alarms == scalar_alarms
        assert batched.to_state() == scalar.to_state()

    @given(_stream_and_splits())
    @settings(max_examples=30, deadline=None)
    def test_drift_detector_update_many_is_split_invariant(self, case):
        values, sizes = case
        kwargs = dict(
            length_delta=DELTA,
            length_threshold=THRESHOLD,
            split_delta=DELTA,
            split_threshold=THRESHOLD,
            min_count=5,
        )
        scalar = DriftDetector(**kwargs)
        scalar_alarms = [scalar.update(float(v), v >= 28.0) for v in values]
        batched = DriftDetector(**kwargs)
        batched_alarms = []
        for batch in self._batches(values, sizes):
            batched_alarms.extend(
                batched.update_many(batch, [v >= 28.0 for v in batch]).tolist()
            )
        assert batched_alarms == scalar_alarms
        assert batched.to_state() == scalar.to_state()

    def test_split_inside_calibration_window_counts_identically(self):
        # The pointed regression: batch boundaries straddling min_count.
        values = [float(v) for v in range(1, 30)]
        for split in range(len(values) + 1):
            scalar = PageHinkley(DELTA, THRESHOLD, min_count=10)
            expected = [scalar.update(v) for v in values]
            batched = PageHinkley(DELTA, THRESHOLD, min_count=10)
            got = batched.update_many(values[:split]).tolist()
            got += batched.update_many(values[split:]).tolist()
            assert got == expected
            assert batched.to_state() == scalar.to_state()

    def test_update_many_empty_batch_is_a_no_op(self):
        detector = PageHinkley(DELTA, THRESHOLD)
        before = detector.to_state()
        assert detector.update_many([]).tolist() == []
        assert detector.to_state() == before


class TestSplitDetector:
    def test_split_shift_detected_when_mean_barely_moves(self, rng):
        # Stops concentrated just under vs just over B: the mean hardly
        # moves but q_B_plus flips — exactly what the split test is for.
        detector = DriftDetector(
            length_delta=DELTA,
            length_threshold=THRESHOLD,
            split_delta=DELTA,
            split_threshold=THRESHOLD,
        )
        before = rng.normal(26.0, 0.5, 300)  # almost all short
        after = rng.normal(30.0, 0.5, 300)  # almost all long
        alarmed_at = None
        for index, value in enumerate(np.concatenate([before, after])):
            if detector.update(float(value), value >= 28.0):
                alarmed_at = index
                break
        assert alarmed_at is not None
        assert alarmed_at >= 300
