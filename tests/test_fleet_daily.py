"""Unit tests for the diurnal (time-of-day structured) fleet generator."""

import numpy as np
import pytest

from repro.constants import B_SSV
from repro.core import ContextualProposed, ProposedOnline
from repro.core.analysis import empirical_offline_cost, empirical_online_cost
from repro.errors import InvalidParameterError
from repro.fleet import (
    DailyFleetGenerator,
    DailyPattern,
    area_config,
    default_daily_pattern,
)


class TestDailyPattern:
    def test_default_pattern_valid(self):
        pattern = default_daily_pattern(area_config("chicago"))
        assert pattern.hourly_intensity.shape == (24,)
        assert len(pattern.hourly_weights) == 24
        probabilities = pattern.hour_probabilities()
        assert probabilities.sum() == pytest.approx(1.0)

    def test_peaks_more_intense_than_night(self):
        pattern = default_daily_pattern(area_config("chicago"))
        assert pattern.hourly_intensity[8] > pattern.hourly_intensity[3]

    def test_peak_hours_signal_heavy(self):
        pattern = default_daily_pattern(area_config("chicago"))
        peak_signal = pattern.hourly_weights[8][0] / sum(pattern.hourly_weights[8])
        night_signal = pattern.hourly_weights[2][0] / sum(pattern.hourly_weights[2])
        assert peak_signal > night_signal

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            DailyPattern(np.zeros(24), tuple([(1.0, 1.0, 1.0)] * 24))
        with pytest.raises(InvalidParameterError):
            DailyPattern(np.ones(10), tuple([(1.0, 1.0, 1.0)] * 24))
        with pytest.raises(InvalidParameterError):
            DailyPattern(np.ones(24), tuple([(1.0, -1.0, 1.0)] * 24))


class TestDailyFleetGenerator:
    @pytest.fixture(scope="class")
    def vehicle(self):
        return DailyFleetGenerator("chicago", seed=5).generate(1)[0]

    def test_start_times_sorted_and_in_window(self, vehicle):
        assert np.all(np.diff(vehicle.start_times) >= 0.0)
        assert vehicle.start_times.min() >= 0.0
        assert vehicle.start_times.max() < vehicle.recording_days * 86400.0

    def test_hours_of_day_in_range(self, vehicle):
        hours = vehicle.hours_of_day()
        assert hours.min() >= 0 and hours.max() <= 23

    def test_diurnal_intensity_visible(self):
        # Pool many vehicles: peak hours collect far more stops than 3am.
        vehicles = DailyFleetGenerator("chicago", seed=6).generate(60)
        hours = np.concatenate([v.hours_of_day() for v in vehicles])
        counts = np.bincount(hours, minlength=24)
        assert counts[8] > 4 * max(counts[3], 1)

    def test_night_stops_longer(self):
        # The night tail weight is tripled: median night stop exceeds
        # median peak stop.
        vehicles = DailyFleetGenerator("chicago", seed=7).generate(80)
        hours = np.concatenate([v.hours_of_day() for v in vehicles])
        lengths = np.concatenate([v.stop_lengths for v in vehicles])
        night = lengths[(hours < 6) | (hours >= 22)]
        peak = lengths[(hours == 8) | (hours == 17)]
        assert np.median(night) > np.median(peak)

    def test_to_trace_round_trip(self, vehicle):
        trace = vehicle.to_trace()
        assert trace.stop_count == vehicle.stop_lengths.size
        np.testing.assert_allclose(
            np.sort(trace.stop_lengths()), np.sort(vehicle.stop_lengths)
        )

    def test_reproducible(self):
        a = DailyFleetGenerator("chicago", seed=9).generate(2)
        b = DailyFleetGenerator("chicago", seed=9).generate(2)
        np.testing.assert_array_equal(a[0].stop_lengths, b[0].stop_lengths)
        np.testing.assert_array_equal(a[0].start_times, b[0].start_times)

    def test_bad_count_rejected(self):
        with pytest.raises(InvalidParameterError):
            DailyFleetGenerator("chicago").generate(0)


class TestContextualOnDailyFleet:
    def test_contextual_at_least_matches_pooled(self):
        # On diurnally structured stops, per-hour selection should do at
        # least as well as the pooled selector (and usually better),
        # once warm.
        rng = np.random.default_rng(11)
        generator = DailyFleetGenerator("chicago", seed=12)
        # One long synthetic record: 20 vehicles' weeks concatenated as a
        # warm-up + evaluation stream for a single controller.
        vehicles = generator.generate(20)
        tokens = np.concatenate([v.start_times for v in vehicles])
        stops = np.concatenate([v.stop_lengths for v in vehicles])
        contextual = ContextualProposed(B_SSV, min_samples=8)
        contextual_costs = contextual.run_online(tokens, stops, rng)
        pooled = ProposedOnline.from_samples(stops, B_SSV)
        pooled_cost = empirical_online_cost(pooled, stops)
        # Evaluate on the post-warmup half.
        half = stops.size // 2
        offline = empirical_offline_cost(stops[half:], B_SSV)
        contextual_cr = contextual_costs[half:].mean() / offline
        pooled_cr = pooled.expected_cost_vec(stops[half:]).mean() / offline
        assert contextual_cr <= pooled_cr * 1.05  # never meaningfully worse
