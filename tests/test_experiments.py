"""Integration tests: every paper experiment runs and reproduces its
headline shape facts (at reduced sizes for speed)."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments.report import ExperimentResult, Table, format_table


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(("a", "bb"), [(1, 2.5), (10, 0.123456)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]

    def test_table_validates_row_width(self):
        with pytest.raises(InvalidParameterError):
            Table(name="t", headers=("a", "b"), rows=[(1,)])

    def test_write_csv_round_trip(self, tmp_path):
        table = Table(name="t", headers=("a", "b"), rows=[(1, 2.0)])
        path = tmp_path / "t.csv"
        table.write_csv(path)
        assert path.read_text().splitlines() == ["a,b", "1,2.0"]

    def test_experiment_result_lookup(self):
        result = ExperimentResult(
            experiment_id="x", title="t", tables=[Table("one", ("a",), [(1,)])]
        )
        assert result.table("one").rows == [(1,)]
        with pytest.raises(InvalidParameterError):
            result.table("missing")

    def test_write_csvs_names_files(self, tmp_path):
        result = ExperimentResult(
            experiment_id="x", title="t", tables=[Table("my table", ("a",), [(1,)])]
        )
        paths = result.write_csvs(tmp_path)
        assert paths[0].name == "x_my_table.csv"


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {
            "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "table1", "appc",
            "improved", "holdout", "seeds",
        }

    def test_unknown_experiment_rejected(self):
        with pytest.raises(InvalidParameterError):
            run_experiment("fig99")


class TestFig1:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("fig1", mu_points=25, q_points=25)

    def test_all_regions_present(self, result):
        regions = {row[2] for row in result.table("grid").rows}
        assert {"TOI", "DET", "b-DET", "N-Rand"} <= regions

    def test_fractions_sum_to_one(self, result):
        total = sum(row[1] for row in result.table("region fractions").rows)
        assert total == pytest.approx(1.0, abs=0.01)

    def test_cr_bounds(self, result):
        crs = [row[3] for row in result.table("grid").rows if row[3] != ""]
        assert min(crs) >= 1.0 - 1e-9
        # Grid rows are rounded to 6 decimals, so allow that much slack.
        assert max(crs) <= np.e / (np.e - 1) + 1e-6


class TestFig2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("fig2", points=50)

    def test_four_panels(self, result):
        assert len(result.tables) == 4

    def test_envelope_notes_confirm(self, result):
        for note in result.notes:
            assert "proposed == lower envelope: True" in note

    def test_bdet_strictly_wins_in_cd(self, result):
        # Panels (c) and (d) are the paper's b-DET showcase.
        for note in result.notes[2:]:
            count = int(note.rsplit(":", 1)[1])
            assert count > 0


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("fig3", vehicles_per_area=30)

    def test_every_area_rejects_exponential(self, result):
        diagnostics = result.table("diagnostics")
        rejected_index = diagnostics.headers.index("exponential_rejected")
        for row in diagnostics.rows:
            assert row[rejected_index] is True or row[rejected_index] == True  # noqa: E712

    def test_histogram_masses_sum_to_one(self, result):
        histogram = result.table("histogram")
        for column in range(2, len(histogram.headers)):
            total = sum(row[column] for row in histogram.rows)
            assert total == pytest.approx(1.0, abs=0.01)


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("fig4", vehicles_per_area=30)

    def test_proposed_has_smallest_worst_cr(self, result):
        rows = result.table("cr").rows
        by_group = {}
        for break_even, area, name, worst, _mean in rows:
            by_group.setdefault((break_even, area), {})[name] = worst
        for group, values in by_group.items():
            others = {k: v for k, v in values.items() if k != "Proposed"}
            assert values["Proposed"] <= min(others.values()) + 1e-9, group

    def test_proposed_wins_most_vehicles(self, result):
        win_table = result.table("win counts")
        proposed_index = win_table.headers.index("Proposed")
        vehicles_index = win_table.headers.index("vehicles")
        for row in win_table.rows:
            assert row[proposed_index] >= 0.7 * row[vehicles_index]

    def test_b47_rows_present(self, result):
        break_evens = {row[0] for row in result.table("cr").rows}
        assert break_evens == {28.0, 47.0}


class TestSweepExperiments:
    @pytest.mark.parametrize("experiment_id", ["fig5", "fig6"])
    def test_proposed_lowest_analytic_curve(self, experiment_id):
        result = run_experiment(
            experiment_id,
            means=(10.0, 40.0, 120.0),
            vehicles_per_point=4,
            stops_per_vehicle=25,
            grid_size=64,
        )
        analytic = result.table("worst-case CR (analytic)")
        proposed_index = analytic.headers.index("Proposed")
        for row in analytic.rows:
            others = [
                row[i]
                for i, name in enumerate(analytic.headers)
                if name in {"TOI", "DET", "N-Rand", "MOM-Rand"} and row[i] != ""
            ]
            assert row[proposed_index] <= min(others) + 1e-6
        assert not any("WARNING" in note for note in result.notes)


class TestTable1:
    def test_moments_close_to_paper(self):
        result = run_experiment("table1", vehicles_per_area=150)
        from repro.experiments.table1 import PAPER_TABLE1

        table = result.table("stops per day")
        for row in table.rows:
            area = row[0]
            assert row[2] == pytest.approx(PAPER_TABLE1[area]["mean"], rel=0.25)
            assert row[4] > 0.85  # P{X <= mu + 2 sigma}


class TestImprovedRegions:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("improved", mu_points=25, q_points=25)

    def test_improvement_never_negative(self, result):
        grid = result.table("grid")
        improvement_index = grid.headers.index("improvement")
        assert all(row[improvement_index] >= -1e-9 for row in grid.rows)

    def test_brand_replaces_nrand_and_bdet(self, result):
        # The corrected map contains b-Rand but neither N-Rand nor b-DET
        # (truncation strictly improves both everywhere on this grid).
        counts = {row[0]: row[1] for row in result.table("region counts").rows}
        assert counts.get("b-Rand", 0) > 0
        assert counts.get("N-Rand", 0) == 0

    def test_det_toi_regions_unchanged(self, result):
        grid = result.table("grid")
        idx = {name: i for i, name in enumerate(grid.headers)}
        for row in grid.rows:
            if row[idx["paper_choice"]] in {"DET", "TOI"}:
                # Where the paper's deterministic vertices are optimal,
                # the corrected solver agrees (they match the game value).
                assert row[idx["improved_choice"]] == row[idx["paper_choice"]] or (
                    row[idx["improvement"]] > 0
                )

    def test_headline_gap_present(self, result):
        grid = result.table("grid")
        improvement_index = grid.headers.index("improvement")
        assert max(row[improvement_index] for row in grid.rows) > 0.1

    def test_corrected_slices_lower_envelope(self, result):
        for mu in ("0.02", "0.05"):
            table = result.table(f"corrected slice (mu={mu}B)")
            idx = {name: i for i, name in enumerate(table.headers)}
            for row in table.rows:
                candidates = [
                    row[idx[name]]
                    for name in ("TOI", "DET", "b-DET", "N-Rand", "b-Rand")
                    if row[idx[name]] != ""
                ]
                assert row[idx["Corrected"]] <= min(candidates) + 1e-6


class TestHoldoutExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("holdout", vehicles_per_area=25)

    def test_covers_both_break_evens(self, result):
        table = result.table("comparison")
        assert {row[0] for row in table.rows} == {28.0, 47.0}

    def test_proposed_optimism_small(self, result):
        table = result.table("comparison")
        idx = {name: i for i, name in enumerate(table.headers)}
        for row in table.rows:
            if row[idx["strategy"]] == "Proposed":
                assert abs(row[idx["optimism"]]) < 0.1

    def test_nrand_protocol_invariant(self, result):
        table = result.table("comparison")
        idx = {name: i for i, name in enumerate(table.headers)}
        for row in table.rows:
            if row[idx["strategy"]] == "N-Rand":
                assert row[idx["optimism"]] == pytest.approx(0.0, abs=1e-3)


class TestSeedsExperiment:
    def test_headline_stable_across_seeds(self):
        result = run_experiment("seeds", seeds=(1, 2, 3), vehicles_per_area=30)
        table = result.table("per seed")
        per_seed_rows = table.rows[:-1]
        win_rates = [row[3] for row in per_seed_rows]
        assert min(win_rates) > 0.85
        mean_crs = [row[4] for row in per_seed_rows]
        assert max(mean_crs) - min(mean_crs) < 0.1


class TestAppendixC:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("appc")

    def test_break_even_matches_paper(self, result):
        summary = result.table("summary")
        values = {row[0]: (row[2], row[3]) for row in summary.rows}
        computed_ssv, paper_ssv = values["SSV"]
        computed_conv, paper_conv = values["conventional"]
        assert computed_ssv == pytest.approx(paper_ssv, abs=1.5)
        assert computed_conv == pytest.approx(paper_conv, abs=1.5)

    def test_idling_cost_matches_eq46(self, result):
        summary = result.table("summary")
        for row in summary.rows:
            assert row[1] == pytest.approx(0.0258, abs=0.0002)
