"""Unit tests for the CRC-framed WAL and atomic snapshot store."""

import json
import zlib

import pytest

from repro.service.wal import (
    SnapshotStore,
    WalCorruptionError,
    WriteAheadLog,
    _frame,
    _unframe,
)


class TestFraming:
    def test_frame_round_trip(self):
        payload = {"seq": 3, "id": "v-00003", "t": 12.5, "y": 87.25}
        assert _unframe(_frame(payload)) == payload

    def test_floats_round_trip_bit_exactly(self):
        value = 0.1 + 0.2  # not representable "nicely"; repr must survive
        assert _unframe(_frame({"y": value}))["y"] == value

    def test_bad_crc_rejected(self):
        line = _frame({"seq": 1})
        tampered = ("0" if line[0] != "0" else "1") + line[1:]
        assert _unframe(tampered) is None

    def test_tampered_body_rejected(self):
        line = _frame({"seq": 1})
        assert _unframe(line[:-1] + "X") is None

    def test_non_dict_payload_rejected(self):
        body = json.dumps([1, 2, 3])
        line = f"{zlib.crc32(body.encode()):08x} {body}"
        assert _unframe(line) is None


class TestWriteAheadLog:
    def test_append_replay_round_trip(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.jsonl")
        records = [{"seq": i, "y": float(i) * 1.5} for i in range(1, 6)]
        for record in records:
            wal.append(record)
        assert wal.replay() == records

    def test_missing_file_replays_empty(self, tmp_path):
        assert WriteAheadLog(tmp_path / "absent.jsonl").replay() == []

    def test_torn_final_frame_is_dropped(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path)
        wal.append({"seq": 1})
        wal.append({"seq": 2})
        # Simulate a kill mid-append: half a frame at the tail.
        with open(path, "a") as handle:
            handle.write(_frame({"seq": 3})[:12])
        assert wal.replay() == [{"seq": 1}, {"seq": 2}]

    def test_replay_reports_a_torn_tail(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path)
        wal.append({"seq": 1})
        assert wal.replay() == [{"seq": 1}]
        assert wal.tail_torn is False
        with open(path, "a") as handle:
            handle.write(_frame({"seq": 2})[:12])
        assert wal.replay() == [{"seq": 1}]
        assert wal.tail_torn is True

    def test_append_after_torn_tail_does_not_merge(self, tmp_path):
        # A new frame written after a torn tail must not land on the
        # same line: the partial frame is truncated away first.
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path)
        wal.append({"seq": 1})
        with open(path, "a") as handle:
            handle.write(_frame({"seq": 2})[:12])
        wal.append({"seq": 3})
        assert wal.replay() == [{"seq": 1}, {"seq": 3}]
        wal.append({"seq": 4})
        assert wal.replay() == [{"seq": 1}, {"seq": 3}, {"seq": 4}]

    def test_append_completes_a_frame_missing_only_its_newline(self, tmp_path):
        # The kill can land between the frame bytes and the newline; the
        # frame is complete and must be preserved, not truncated.
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path)
        wal.append({"seq": 1})
        with open(path, "a") as handle:
            handle.write(_frame({"seq": 2}))
        wal.append({"seq": 3})
        assert wal.replay() == [{"seq": 1}, {"seq": 2}, {"seq": 3}]

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path)
        for seq in range(1, 4):
            wal.append({"seq": seq})
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:-1] + "X"  # corrupt a non-final record
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(WalCorruptionError, match="line 2"):
            wal.replay()

    def test_reset_truncates_atomically(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path)
        wal.append({"seq": 1})
        wal.reset()
        assert path.exists()
        assert wal.replay() == []
        # No temp litter left behind.
        assert list(tmp_path.glob("*.tmp*")) == []

    def test_fsync_mode_appends_identically(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.jsonl", fsync=True)
        wal.append({"seq": 1, "y": 2.5})
        assert wal.replay() == [{"seq": 1, "y": 2.5}]


class TestSnapshotStore:
    def test_save_load_round_trip(self, tmp_path):
        store = SnapshotStore(tmp_path / "snapshot.json")
        state = {"applied": 7, "total_cost": 123.456, "nested": {"a": [1, 2]}}
        store.save(7, state)
        assert store.load() == (7, state)

    def test_missing_snapshot_is_none(self, tmp_path):
        assert SnapshotStore(tmp_path / "absent.json").load() is None

    def test_save_overwrites_atomically(self, tmp_path):
        store = SnapshotStore(tmp_path / "snapshot.json")
        store.save(1, {"applied": 1})
        store.save(2, {"applied": 2})
        assert store.load() == (2, {"applied": 2})
        assert list(tmp_path.glob("*.tmp*")) == []

    def test_corrupted_snapshot_always_raises(self, tmp_path):
        # Publication is atomic, so a bad frame is never a torn write:
        # unlike the WAL tail, it must hard-fail.
        path = tmp_path / "snapshot.json"
        store = SnapshotStore(path)
        store.save(3, {"applied": 3})
        path.write_text(path.read_text()[:-5])
        with pytest.raises(WalCorruptionError, match="CRC"):
            store.load()
