"""Unit tests for the CRC-framed WAL and atomic snapshot store."""

import json
import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.wal import (
    SnapshotStore,
    WalCorruptionError,
    WriteAheadLog,
    _event_body,
    _frame,
    _unframe,
)


class TestFraming:
    def test_frame_round_trip(self):
        payload = {"seq": 3, "id": "v-00003", "t": 12.5, "y": 87.25}
        assert _unframe(_frame(payload)) == payload

    def test_floats_round_trip_bit_exactly(self):
        value = 0.1 + 0.2  # not representable "nicely"; repr must survive
        assert _unframe(_frame({"y": value}))["y"] == value

    def test_bad_crc_rejected(self):
        line = _frame({"seq": 1})
        tampered = ("0" if line[0] != "0" else "1") + line[1:]
        assert _unframe(tampered) is None

    def test_tampered_body_rejected(self):
        line = _frame({"seq": 1})
        assert _unframe(line[:-1] + "X") is None

    def test_non_dict_payload_rejected(self):
        body = json.dumps([1, 2, 3])
        line = f"{zlib.crc32(body.encode()):08x} {body}"
        assert _unframe(line) is None

    @given(
        st.text(min_size=1, max_size=40),
        st.integers(min_value=0, max_value=2**62),
        st.floats(allow_nan=False, allow_infinity=False),
        st.floats(allow_nan=False, allow_infinity=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_event_body_matches_json_dumps_byte_for_byte(
        self, event_id, seq, timestamp, stop_length
    ):
        # The hot-path serializer must be indistinguishable from the
        # general encoder for the stop-event frame shape — including
        # ids needing escaping and floats with awkward reprs.
        payload = {"id": event_id, "seq": seq, "t": timestamp, "y": stop_length}
        assert _event_body(payload) == json.dumps(payload, sort_keys=True)

    def test_event_body_defers_other_shapes(self):
        base = {"id": "e-1", "seq": 2, "t": 1.5, "y": 2.5}
        assert _event_body(base) is not None
        for bad in (
            {**base, "extra": 1},  # wrong arity
            {**base, "t": 1},  # int where scalar path stored float
            {**base, "y": float("inf")},  # non-finite
            {**base, "id": 7},  # non-str id
            {"a": 1, "b": 2, "c": 3, "d": 4},  # wrong keys
        ):
            assert _event_body(bad) is None
            # ...and the frame still encodes them via the fallback.
            if bad != {**base, "y": float("inf")}:
                assert _unframe(_frame(bad)) == bad


class TestWriteAheadLog:
    def test_append_replay_round_trip(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.jsonl")
        records = [{"seq": i, "y": float(i) * 1.5} for i in range(1, 6)]
        for record in records:
            wal.append(record)
        assert wal.replay() == records

    def test_missing_file_replays_empty(self, tmp_path):
        assert WriteAheadLog(tmp_path / "absent.jsonl").replay() == []

    def test_torn_final_frame_is_dropped(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path)
        wal.append({"seq": 1})
        wal.append({"seq": 2})
        # Simulate a kill mid-append: half a frame at the tail.
        with open(path, "a") as handle:
            handle.write(_frame({"seq": 3})[:12])
        assert wal.replay() == [{"seq": 1}, {"seq": 2}]

    def test_replay_reports_a_torn_tail(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path)
        wal.append({"seq": 1})
        assert wal.replay() == [{"seq": 1}]
        assert wal.tail_torn is False
        with open(path, "a") as handle:
            handle.write(_frame({"seq": 2})[:12])
        assert wal.replay() == [{"seq": 1}]
        assert wal.tail_torn is True

    def test_append_after_torn_tail_does_not_merge(self, tmp_path):
        # A new frame written after a torn tail must not land on the
        # same line: the partial frame is truncated away first.
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path)
        wal.append({"seq": 1})
        with open(path, "a") as handle:
            handle.write(_frame({"seq": 2})[:12])
        wal.append({"seq": 3})
        assert wal.replay() == [{"seq": 1}, {"seq": 3}]
        wal.append({"seq": 4})
        assert wal.replay() == [{"seq": 1}, {"seq": 3}, {"seq": 4}]

    def test_append_completes_a_frame_missing_only_its_newline(self, tmp_path):
        # The kill can land between the frame bytes and the newline; the
        # frame is complete and must be preserved, not truncated.
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path)
        wal.append({"seq": 1})
        with open(path, "a") as handle:
            handle.write(_frame({"seq": 2}))
        wal.append({"seq": 3})
        assert wal.replay() == [{"seq": 1}, {"seq": 2}, {"seq": 3}]

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path)
        for seq in range(1, 4):
            wal.append({"seq": seq})
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:-1] + "X"  # corrupt a non-final record
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(WalCorruptionError, match="line 2"):
            wal.replay()

    def test_reset_truncates_atomically(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path)
        wal.append({"seq": 1})
        wal.reset()
        assert path.exists()
        assert wal.replay() == []
        # No temp litter left behind.
        assert list(tmp_path.glob("*.tmp*")) == []

    def test_fsync_mode_appends_identically(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.jsonl", fsync=True)
        wal.append({"seq": 1, "y": 2.5})
        assert wal.replay() == [{"seq": 1, "y": 2.5}]


class TestGroupCommit:
    def test_append_many_round_trip(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.jsonl")
        records = [
            {"id": f"e-{i}", "seq": i, "t": float(i), "y": i * 1.5}
            for i in range(1, 9)
        ]
        wal.append_many(records)
        assert wal.replay() == records

    def test_append_many_empty_is_a_no_op(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        WriteAheadLog(path).append_many([])
        assert not path.exists()

    def test_append_many_matches_append_byte_for_byte(self, tmp_path):
        records = [{"id": f"e-{i}", "seq": i, "t": float(i), "y": 2.0} for i in range(5)]
        one = WriteAheadLog(tmp_path / "one.jsonl")
        for record in records:
            one.append(record)
        many = WriteAheadLog(tmp_path / "many.jsonl")
        many.append_many(records)
        assert (tmp_path / "many.jsonl").read_bytes() == (
            tmp_path / "one.jsonl"
        ).read_bytes()

    def test_append_many_heals_a_torn_tail_first(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path)
        wal.append({"seq": 1})
        with open(path, "a") as handle:
            handle.write(_frame({"seq": 2})[:12])
        wal.append_many([{"seq": 3}, {"seq": 4}])
        assert wal.replay() == [{"seq": 1}, {"seq": 3}, {"seq": 4}]

    @given(
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=120, deadline=None)
    def test_torn_anywhere_recovers_a_prefix(self, n, cut_seed, preexisting):
        # Satellite guarantee: a kill at ANY byte offset of a group
        # commit leaves the log replaying to a PREFIX of (prior records
        # + the batch) — never a mid-batch record without its
        # predecessors, never garbage.  The next append then heals the
        # torn bytes.
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "wal.jsonl"
            wal = WriteAheadLog(path)
            prior = [{"id": f"p-{i}", "seq": i, "t": float(i), "y": 1.0}
                     for i in range(preexisting)]
            if prior:
                wal.append_many(prior)
            base = path.read_bytes() if path.exists() else b""
            batch = [
                {"id": f"b-{i}", "seq": preexisting + i, "t": float(i), "y": 2.0}
                for i in range(n)
            ]
            wal.append_many(batch)
            full = path.read_bytes()
            appended = full[len(base):]
            cut = cut_seed % (len(appended) + 1)
            path.write_bytes(base + appended[:cut])

            recovered = wal.replay()
            expected_full = prior + batch
            assert recovered == expected_full[: len(recovered)]
            assert len(recovered) >= len(prior)

            wal.append({"id": "after", "seq": 10**7, "t": 0.0, "y": 0.0})
            assert wal.replay() == recovered + [
                {"id": "after", "seq": 10**7, "t": 0.0, "y": 0.0}
            ]


class TestSnapshotStore:
    def test_save_load_round_trip(self, tmp_path):
        store = SnapshotStore(tmp_path / "snapshot.json")
        state = {"applied": 7, "total_cost": 123.456, "nested": {"a": [1, 2]}}
        store.save(7, state)
        assert store.load() == (7, state)

    def test_missing_snapshot_is_none(self, tmp_path):
        assert SnapshotStore(tmp_path / "absent.json").load() is None

    def test_save_overwrites_atomically(self, tmp_path):
        store = SnapshotStore(tmp_path / "snapshot.json")
        store.save(1, {"applied": 1})
        store.save(2, {"applied": 2})
        assert store.load() == (2, {"applied": 2})
        assert list(tmp_path.glob("*.tmp*")) == []

    def test_corrupted_snapshot_always_raises(self, tmp_path):
        # Publication is atomic, so a bad frame is never a torn write:
        # unlike the WAL tail, it must hard-fail.
        path = tmp_path / "snapshot.json"
        store = SnapshotStore(path)
        store.save(3, {"applied": 3})
        path.write_text(path.read_text()[:-5])
        with pytest.raises(WalCorruptionError, match="CRC"):
            store.load()


class TestSnapshotDeltas:
    def test_delta_merges_over_its_base(self, tmp_path):
        store = SnapshotStore(tmp_path / "snapshot.json")
        store.save(10, {"applied": 10, "cost": 1.0, "recent": [1, 2]})
        store.save_delta(13, 10, {"applied": 13, "cost": 4.5}, {"recent": [3, 4]})
        assert store.load() == (
            13,
            {"applied": 13, "cost": 4.5, "recent": [1, 2, 3, 4]},
        )

    def test_delta_is_cumulative_not_chained(self, tmp_path):
        # Rewriting the sidecar supersedes the previous delta entirely.
        store = SnapshotStore(tmp_path / "snapshot.json")
        store.save(10, {"applied": 10, "recent": [1]})
        store.save_delta(12, 10, {"applied": 12}, {"recent": [2, 3]})
        store.save_delta(15, 10, {"applied": 15}, {"recent": [2, 3, 4, 5]})
        assert store.load() == (15, {"applied": 15, "recent": [1, 2, 3, 4, 5]})

    def test_stale_delta_is_ignored(self, tmp_path):
        # A crash between full-save and delta-unlink leaves a delta
        # whose base_seq no longer matches: it must not be applied.
        store = SnapshotStore(tmp_path / "snapshot.json")
        store.save(10, {"applied": 10, "recent": []})
        store.save_delta(12, 10, {"applied": 12}, {"recent": [1]})
        delta_bytes = store.delta_path.read_bytes()
        store.save(20, {"applied": 20, "recent": [9]})
        store.delta_path.write_bytes(delta_bytes)  # resurrect the stale delta
        assert store.load() == (20, {"applied": 20, "recent": [9]})

    def test_full_save_unlinks_the_delta(self, tmp_path):
        store = SnapshotStore(tmp_path / "snapshot.json")
        store.save(10, {"applied": 10})
        store.save_delta(12, 10, {"applied": 12}, {})
        assert store.delta_path.exists()
        store.save(12, {"applied": 12})
        assert not store.delta_path.exists()
        assert store.load() == (12, {"applied": 12})

    def test_corrupt_delta_raises(self, tmp_path):
        store = SnapshotStore(tmp_path / "snapshot.json")
        store.save(10, {"applied": 10})
        store.save_delta(12, 10, {"applied": 12}, {})
        store.delta_path.write_text(store.delta_path.read_text()[:-3])
        with pytest.raises(WalCorruptionError, match="delta"):
            store.load()
