"""Unit tests for the learning-augmented (PSK) strategy."""

import numpy as np
import pytest

from repro.core.costs import offline_cost, online_cost
from repro.core.prediction import (
    NoisyOracle,
    PSKStrategy,
    consistency_bound,
    psk_threshold,
    robustness_bound,
)
from repro.errors import InvalidParameterError

B = 28.0


class TestThresholdRule:
    def test_long_prediction_commits_early(self):
        assert psk_threshold(100.0, B, trust=0.5) == pytest.approx(0.5 * B)

    def test_short_prediction_holds_out(self):
        assert psk_threshold(5.0, B, trust=0.5) == pytest.approx(2.0 * B)

    def test_trust_one_recovers_det(self):
        assert psk_threshold(100.0, B, trust=1.0) == B
        assert psk_threshold(5.0, B, trust=1.0) == B

    def test_invalid_trust_rejected(self):
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(InvalidParameterError):
                psk_threshold(10.0, B, trust=bad)


class TestGuarantees:
    @pytest.mark.parametrize("trust", [0.1, 0.25, 0.5, 0.9, 1.0])
    def test_consistency_with_perfect_prediction(self, trust):
        # With y_hat == y the per-stop ratio never exceeds 1 + trust.
        bound = consistency_bound(trust)
        for y in np.linspace(0.1, 5 * B, 200):
            x = psk_threshold(y, B, trust)
            ratio = online_cost(x, y, B) / offline_cost(y, B)
            assert ratio <= bound + 1e-9

    @pytest.mark.parametrize("trust", [0.1, 0.25, 0.5, 0.9, 1.0])
    def test_robustness_against_adversarial_prediction(self, trust):
        # Even the worst prediction cannot push the ratio past 1 + 1/trust.
        bound = robustness_bound(trust)
        for y in np.linspace(0.1, 5 * B, 60):
            for y_hat in (0.0, 1.0, B - 1e-6, B, 10 * B):
                x = psk_threshold(y_hat, B, trust)
                ratio = online_cost(x, y, B) / offline_cost(y, B)
                assert ratio <= bound + 1e-9

    def test_consistency_bound_tight_somewhere(self):
        # The 1 + trust bound is attained by a perfectly-predicted long
        # stop: pay trust*B of idling plus the restart, offline pays B.
        trust = 0.5
        y = 2 * B
        x = psk_threshold(y, B, trust)  # perfect long prediction -> x = 0.5 B
        ratio = online_cost(x, y, B) / offline_cost(y, B)
        assert ratio == pytest.approx(consistency_bound(trust))

    def test_bounds_monotone_in_trust(self):
        trusts = [0.1, 0.3, 0.6, 1.0]
        consistencies = [consistency_bound(t) for t in trusts]
        robustnesses = [robustness_bound(t) for t in trusts]
        assert consistencies == sorted(consistencies)
        assert robustnesses == sorted(robustnesses, reverse=True)


class TestPSKStrategy:
    def test_decide_sequence_uses_per_stop_predictions(self, rng):
        stops = np.array([5.0, 100.0, 40.0])
        oracle = NoisyOracle(stops, sigma=0.0, rng=rng)
        strategy = PSKStrategy(B, trust=0.5, predictor=oracle)
        decisions = strategy.decide_sequence(stops)
        assert decisions[0].threshold == pytest.approx(2 * B)   # short
        assert decisions[1].threshold == pytest.approx(0.5 * B)  # long
        assert decisions[2].threshold == pytest.approx(0.5 * B)  # long

    def test_realized_costs_follow_eq3(self, rng):
        stops = np.array([5.0, 100.0])
        oracle = NoisyOracle(stops, sigma=0.0, rng=rng)
        strategy = PSKStrategy(B, trust=0.5, predictor=oracle)
        costs = strategy.realized_costs(stops)
        np.testing.assert_allclose(costs, [5.0, 0.5 * B + B])

    def test_perfect_oracle_beats_det_on_mixed_stream(self, rng):
        stops = np.concatenate([np.full(50, 5.0), np.full(50, 4 * B)])
        oracle = NoisyOracle(stops, sigma=0.0, rng=rng)
        psk = PSKStrategy(B, trust=0.3, predictor=oracle)
        psk_cost = psk.realized_costs(stops).sum()
        det_cost = sum(online_cost(B, y, B) for y in stops)
        assert psk_cost < det_cost

    def test_strategy_interface(self, rng):
        stops = np.array([50.0])
        oracle = NoisyOracle(stops, sigma=0.0, rng=rng)
        strategy = PSKStrategy(B, trust=0.5, predictor=oracle)
        assert strategy.draw_threshold(rng) == pytest.approx(0.5 * B)
        assert strategy.expected_cost(100.0) == pytest.approx(0.5 * B + B)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            PSKStrategy(B, trust=0.0, predictor=lambda i: 1.0)
        with pytest.raises(InvalidParameterError):
            PSKStrategy(B, trust=0.5, predictor="not callable")


class TestNoisyOracle:
    def test_zero_noise_is_exact(self, rng):
        stops = np.array([10.0, 20.0])
        oracle = NoisyOracle(stops, sigma=0.0, rng=rng)
        assert oracle(0) == 10.0
        assert oracle(1) == 20.0

    def test_noise_perturbs(self, rng):
        stops = np.full(100, 50.0)
        oracle = NoisyOracle(stops, sigma=0.5, rng=rng)
        assert np.std(oracle.predictions) > 0.0
        assert np.all(oracle.predictions > 0.0)

    def test_validation(self, rng):
        with pytest.raises(InvalidParameterError):
            NoisyOracle([], sigma=0.1, rng=rng)
        with pytest.raises(InvalidParameterError):
            NoisyOracle([1.0], sigma=-0.1, rng=rng)
