"""Unit tests for b-Rand (the truncated-exponential improvement) and the
five-candidate improved solver."""

import math

import numpy as np
import pytest
from scipy import integrate

from repro.constants import E, E_RATIO
from repro.core import (
    BRand,
    ConstrainedSkiRentalSolver,
    ImprovedConstrainedSolver,
    NRand,
    StopStatistics,
    b_rand_worst_case_cost,
    optimal_beta,
)
from repro.core.analysis import worst_case_cr
from repro.errors import InvalidParameterError

B = 28.0


class TestBRandDistribution:
    def test_pdf_integrates_to_one(self):
        for beta in (5.0, 14.0, B):
            strategy = BRand(B, beta)
            total, _ = integrate.quad(strategy.pdf, 0.0, beta)
            assert total == pytest.approx(1.0, rel=1e-9)

    def test_reduces_to_nrand_at_full_support(self):
        brand = BRand(B, B)
        nrand = NRand(B)
        for x in (0.0, 10.0, B):
            assert brand.pdf(x) == pytest.approx(nrand.pdf(x))
        for y in (5.0, B, 100.0):
            assert brand.expected_cost(y) == pytest.approx(nrand.expected_cost(y))

    def test_cdf_matches_quadrature(self):
        strategy = BRand(B, 10.0)
        for x in (2.0, 5.0, 9.0):
            numeric, _ = integrate.quad(strategy.pdf, 0.0, x)
            assert strategy.cdf(x) == pytest.approx(numeric, rel=1e-9)

    def test_inverse_cdf_round_trips(self):
        strategy = BRand(B, 10.0)
        for u in (0.0, 0.3, 0.7, 1.0):
            assert strategy.cdf(strategy.inverse_cdf(u)) == pytest.approx(u, abs=1e-12)

    def test_invalid_beta_rejected(self):
        with pytest.raises(InvalidParameterError):
            BRand(B, 0.0)
        with pytest.raises(InvalidParameterError):
            BRand(B, B + 1.0)

    def test_sampling_stays_in_support(self, rng):
        strategy = BRand(B, 9.0)
        draws = strategy.draw_thresholds(300, rng)
        assert np.all((draws >= 0.0) & (draws <= 9.0))


class TestBRandCost:
    def test_linear_then_flat(self):
        strategy = BRand(B, 10.0)
        slope = strategy.expected_cost(1.0)
        for y in (2.0, 5.0, 10.0):
            assert strategy.expected_cost(y) == pytest.approx(slope * y, rel=1e-12)
        flat = strategy.expected_cost(10.0)
        for y in (11.0, B, 500.0):
            assert strategy.expected_cost(y) == pytest.approx(flat, rel=1e-12)

    def test_expected_cost_matches_quadrature(self):
        strategy = BRand(B, 10.0)
        for y in (4.0, 9.0, 15.0):
            numeric, _ = integrate.quad(
                lambda x: (x + B) * strategy.pdf(x), 0.0, min(y, 10.0)
            )
            numeric += y * (1.0 - strategy.cdf(y))
            assert strategy.expected_cost(y) == pytest.approx(numeric, rel=1e-8)

    def test_vectorised_matches_scalar(self):
        strategy = BRand(B, 10.0)
        y = np.array([0.0, 5.0, 10.0, B, 100.0])
        np.testing.assert_allclose(
            strategy.expected_cost_vec(y), [strategy.expected_cost(v) for v in y]
        )


class TestOptimalBeta:
    def test_stationarity_condition(self):
        # e^t - 1 - t = mu- / (q+ B) at the optimum.
        stats = StopStatistics(0.02 * B, 0.3, B)
        t = optimal_beta(stats) / B
        assert math.expm1(t) - t == pytest.approx(
            stats.mu_b_minus / (stats.q_b_plus * B), rel=1e-9
        )

    def test_full_support_beyond_threshold(self):
        # mu- > (e-2) q+ B -> beta* = B (N-Rand).
        # Construct directly: ratio = mu-/(q+B) > e-2.
        stats = StopStatistics((E - 2.0) * 0.3 * B * 1.2, 0.3, B)
        assert optimal_beta(stats) == B

    def test_beta_minimizes_cost(self):
        stats = StopStatistics(0.02 * B, 0.3, B)
        beta_star = optimal_beta(stats)
        best = b_rand_worst_case_cost(stats)
        for factor in (0.5, 0.8, 1.2, 2.0):
            other = beta_star * factor
            if 0.0 < other <= B:
                cost = worst_case_cr(BRand(B, other), stats, grid_size=1024)
                assert best / stats.expected_offline_cost <= cost + 1e-4

    def test_no_long_stops_gives_full_support(self):
        assert optimal_beta(StopStatistics(10.0, 0.0, B)) == B


class TestWorstCaseCost:
    def test_matches_moment_lp(self):
        # The concavity argument vs the general-purpose adversary LP.
        for mu_frac, q in [(0.02, 0.3), (0.1, 0.2), (0.3, 0.3)]:
            stats = StopStatistics(mu_frac * B, q, B)
            beta = optimal_beta(stats)
            analytic = b_rand_worst_case_cost(stats) / stats.expected_offline_cost
            numeric = worst_case_cr(BRand(B, max(beta, 1e-9 * B)), stats, grid_size=4096)
            assert analytic == pytest.approx(numeric, rel=2e-3)

    def test_never_exceeds_nrand(self):
        for mu_frac in (0.01, 0.1, 0.3, 0.6):
            for q in (0.05, 0.2, 0.5, 0.9):
                if mu_frac > 1 - q:
                    continue
                stats = StopStatistics(mu_frac * B, q, B)
                cr = b_rand_worst_case_cost(stats) / stats.expected_offline_cost
                assert cr <= E_RATIO + 1e-9


class TestImprovedSolver:
    def test_never_worse_than_paper(self):
        for mu_frac in (0.0, 0.02, 0.1, 0.3, 0.6, 0.9):
            for q in (0.01, 0.1, 0.3, 0.6, 0.95):
                if mu_frac > 1 - q:
                    continue
                stats = StopStatistics(mu_frac * B, q, B)
                improved = ImprovedConstrainedSolver(stats).select()
                assert improved.worst_case_cr <= (
                    improved.paper_selection.worst_case_cr + 1e-9
                )
                assert improved.improvement_over_paper >= -1e-9

    def test_strictly_better_in_bdet_region(self):
        stats = StopStatistics(0.02 * B, 0.3, B)
        improved = ImprovedConstrainedSolver(stats).select()
        assert improved.chosen_name == "b-Rand"
        assert improved.paper_selection.name == "b-DET"
        assert improved.improvement_over_paper > 0.1

    def test_agrees_with_paper_in_det_toi_regions(self):
        for mu_frac, q, expected in [(0.5, 0.05, "DET"), (0.05, 0.8, "TOI")]:
            improved = ImprovedConstrainedSolver(
                StopStatistics(mu_frac * B, q, B)
            ).select()
            assert improved.chosen_name == expected
            assert improved.improvement_over_paper == pytest.approx(0.0, abs=1e-12)

    def test_build_strategy_matches_choice(self):
        stats = StopStatistics(0.02 * B, 0.3, B)
        improved = ImprovedConstrainedSolver(stats).select()
        strategy = improved.build_strategy()
        assert strategy.name == "b-Rand"
        # The built strategy achieves the reported worst case (moment LP).
        numeric = worst_case_cr(strategy, stats, grid_size=4096)
        assert numeric == pytest.approx(improved.worst_case_cr, rel=2e-3)

    def test_degenerate_rejected(self):
        with pytest.raises(InvalidParameterError):
            ImprovedConstrainedSolver(StopStatistics(0.0, 0.0, B))
