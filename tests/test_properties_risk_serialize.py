"""Property-based tests (hypothesis) for variance, serialization and
censoring invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BDet,
    BRand,
    Deterministic,
    MOMRand,
    NRand,
    TurnOffImmediately,
)
from repro.core.serialize import strategy_from_dict, strategy_to_dict
from repro.distributions import CensoredDistribution, Exponential

positive_b = st.floats(min_value=1.0, max_value=200.0, allow_nan=False)
lengths = st.floats(min_value=0.0, max_value=2000.0, allow_nan=False)


def random_strategies(b: float, fraction: float, mu_fraction: float):
    """A representative spread of serializable strategies."""
    inner = min(max(fraction * b, 1e-6), b * (1 - 1e-9))
    return [
        TurnOffImmediately(b),
        Deterministic(b),
        NRand(b),
        BDet(b, inner),
        BRand(b, max(inner, 1e-6)),
        MOMRand(b, mu_fraction * b),
    ]


class TestVarianceProperties:
    @given(
        b=positive_b,
        fraction=st.floats(min_value=0.01, max_value=0.99),
        mu_fraction=st.floats(min_value=0.0, max_value=2.0),
        y=lengths,
    )
    @settings(max_examples=150, deadline=None)
    def test_second_moment_dominates_square_of_mean(self, b, fraction, mu_fraction, y):
        for strategy in random_strategies(b, fraction, mu_fraction):
            mean = strategy.expected_cost(y)
            second = strategy.expected_cost_squared(y)
            assert second >= mean * mean - 1e-6 * max(1.0, mean * mean)
            assert strategy.cost_variance(y) >= 0.0

    @given(b=positive_b, y=lengths)
    @settings(max_examples=100)
    def test_deterministic_variance_zero(self, b, y):
        for strategy in (TurnOffImmediately(b), Deterministic(b)):
            assert strategy.cost_variance(y) == 0.0


class TestSerializationProperties:
    @given(
        b=positive_b,
        fraction=st.floats(min_value=0.01, max_value=0.99),
        mu_fraction=st.floats(min_value=0.0, max_value=2.0),
        y=lengths,
    )
    @settings(max_examples=100, deadline=None)
    def test_round_trip_preserves_expected_cost(self, b, fraction, mu_fraction, y):
        for strategy in random_strategies(b, fraction, mu_fraction):
            restored = strategy_from_dict(strategy_to_dict(strategy))
            assert restored.expected_cost(y) == pytest.approx(
                strategy.expected_cost(y), rel=1e-9, abs=1e-9
            )


class TestCensoringProperties:
    @given(
        mean=st.floats(min_value=1.0, max_value=500.0),
        ceiling=st.floats(min_value=1.0, max_value=2000.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_censored_mean_never_exceeds_base(self, mean, ceiling):
        base = Exponential(mean)
        censored = CensoredDistribution(base, ceiling)
        assert censored.mean() <= base.mean() + 1e-9

    @given(
        mean=st.floats(min_value=1.0, max_value=500.0),
        ceiling=st.floats(min_value=1.0, max_value=2000.0),
        b=positive_b,
    )
    @settings(max_examples=100, deadline=None)
    def test_statistics_unbiased_when_ceiling_above_b(self, mean, ceiling, b):
        if ceiling < b:
            ceiling = b + ceiling  # force the valid regime
        base = Exponential(mean)
        censored = CensoredDistribution(base, ceiling)
        assert censored.partial_expectation(b) == pytest.approx(
            base.partial_expectation(b), rel=1e-9, abs=1e-12
        )
        assert censored.survival(b) == pytest.approx(base.survival(b), rel=1e-9)

    @given(
        mean=st.floats(min_value=1.0, max_value=500.0),
        ceiling=st.floats(min_value=1.0, max_value=2000.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_sampled_observations_respect_ceiling(self, mean, ceiling):
        rng = np.random.default_rng(0)
        censored = CensoredDistribution(Exponential(mean), ceiling)
        samples = censored.sample(200, rng)
        assert samples.max() <= ceiling + 1e-12
