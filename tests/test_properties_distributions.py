"""Property-based tests (hypothesis) for the distribution toolkit."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.stats import StopStatistics
from repro.distributions import (
    DiscreteStopDistribution,
    EmpiricalDistribution,
    Exponential,
    LogNormal,
    MixtureDistribution,
    ScaledDistribution,
    Uniform,
)

from .conftest import stop_samples

positive = st.floats(min_value=0.01, max_value=1000.0, allow_nan=False)


def discrete_distributions() -> st.SearchStrategy:
    """Random finite-support stop distributions."""

    def build(values, raw_weights):
        values = sorted(set(values))
        raw = np.asarray(raw_weights[: len(values)], dtype=float) + 1e-6
        if len(raw) < len(values):
            values = values[: len(raw)]
        probs = raw / raw.sum()
        return DiscreteStopDistribution(values, probs)

    return st.builds(
        build,
        values=st.lists(
            st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
            min_size=1,
            max_size=8,
            unique=True,
        ),
        raw_weights=st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=8,
            max_size=8,
        ),
    )


class TestDiscreteInvariants:
    @given(dist=discrete_distributions(), point=st.floats(min_value=0.0, max_value=600.0))
    def test_cdf_plus_strict_survival(self, dist, point):
        # cdf (closed below) + survival (closed above) double-counts only
        # the atom at the point itself.
        atom = float(dist.probabilities[dist.values == point].sum())
        assert dist.cdf(point) + dist.survival(point) == pytest.approx(1.0 + atom)

    @given(dist=discrete_distributions(), b=positive)
    def test_statistics_feasible(self, dist, b):
        stats = StopStatistics.from_distribution(dist, b)
        assert 0.0 <= stats.q_b_plus <= 1.0
        assert stats.mu_b_minus <= (1.0 - stats.q_b_plus) * b + 1e-9

    @given(dist=discrete_distributions())
    def test_partial_expectation_monotone(self, dist):
        values = np.linspace(0.0, 600.0, 13)
        partials = [dist.partial_expectation(v) for v in values]
        assert all(a <= b_ + 1e-12 for a, b_ in zip(partials, partials[1:]))
        assert partials[-1] <= dist.mean() + 1e-9

    @given(dist=discrete_distributions(), scale=st.floats(min_value=0.1, max_value=10.0))
    def test_scaling_commutes_with_moments(self, dist, scale):
        scaled = ScaledDistribution(dist, scale)
        assert scaled.mean() == pytest.approx(scale * dist.mean(), rel=1e-9)
        for b in (1.0, 50.0):
            assert scaled.partial_expectation(b) == pytest.approx(
                scale * dist.partial_expectation(b / scale), rel=1e-9
            )


class TestEmpiricalInvariants:
    @given(stops=stop_samples(max_size=100))
    def test_empirical_matches_sample_statistics(self, stops):
        dist = EmpiricalDistribution(stops)
        assert dist.mean() == pytest.approx(float(np.mean(stops)))
        for b in (1.0, 28.0, 500.0):
            stats = StopStatistics.from_distribution(dist, b)
            batch = StopStatistics.from_samples(stops, b)
            assert stats.mu_b_minus == pytest.approx(batch.mu_b_minus)
            assert stats.q_b_plus == pytest.approx(batch.q_b_plus)

    @given(stops=stop_samples(max_size=50), q=st.floats(min_value=0.0, max_value=1.0))
    def test_quantile_within_range(self, stops, q):
        dist = EmpiricalDistribution(stops)
        value = dist.quantile(q)
        assert stops.min() - 1e-12 <= value <= stops.max() + 1e-12


class TestMixtureInvariants:
    @given(
        mean_a=st.floats(min_value=1.0, max_value=100.0),
        mean_b=st.floats(min_value=1.0, max_value=1000.0),
        weight=st.floats(min_value=0.01, max_value=0.99),
        b=st.floats(min_value=1.0, max_value=200.0),
    )
    @settings(max_examples=50)
    def test_mixture_moments_are_convex_combinations(self, mean_a, mean_b, weight, b):
        components = [Exponential(mean_a), Exponential(mean_b)]
        mix = MixtureDistribution(components, [weight, 1.0 - weight])
        assert mix.mean() == pytest.approx(
            weight * mean_a + (1 - weight) * mean_b, rel=1e-9
        )
        expected_pe = weight * components[0].partial_expectation(b) + (
            1 - weight
        ) * components[1].partial_expectation(b)
        assert mix.partial_expectation(b) == pytest.approx(expected_pe, rel=1e-9)
        expected_sf = weight * components[0].survival(b) + (1 - weight) * components[
            1
        ].survival(b)
        assert mix.survival(b) == pytest.approx(expected_sf, rel=1e-9)


class TestParametricInvariants:
    @given(mean=st.floats(min_value=0.5, max_value=500.0), b=positive)
    def test_exponential_offline_identity(self, mean, b):
        # E[min(y, B)] = m (1 - e^{-B/m}) for exponential stops.
        dist = Exponential(mean)
        offline = dist.partial_expectation(b) + dist.survival(b) * b
        assert offline == pytest.approx(mean * (1 - np.exp(-b / mean)), rel=1e-9)

    @given(
        mu=st.floats(min_value=0.0, max_value=5.0),
        sigma=st.floats(min_value=0.1, max_value=2.0),
    )
    @settings(max_examples=30)
    def test_lognormal_partial_expectation_converges(self, mu, sigma):
        dist = LogNormal(mu, sigma)
        assert dist.partial_expectation(1e12) == pytest.approx(dist.mean(), rel=1e-6)

    @given(
        low=st.floats(min_value=0.0, max_value=50.0),
        width=st.floats(min_value=1.0, max_value=100.0),
    )
    def test_uniform_mean(self, low, width):
        dist = Uniform(low, low + width)
        assert dist.mean() == pytest.approx(low + width / 2, rel=1e-9)
