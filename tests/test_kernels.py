"""Property tests: the batched kernels agree with the scalar reference path.

Every kernel of the performance layer is pinned to the scalar code it
replaces (the 1e-9 agreement contract of :mod:`repro.core.kernels`):

* closed-form ``strategy_cost`` vs a per-element ``expected_cost`` loop,
  for every strategy family including MixedStrategy with edge atoms at
  0 and ``B``;
* prefix-sum ``empirical_cr_kernel`` / ``StrategyPlan.crs_on`` vs
  ``empirical_cr``;
* the lean ``select_vertex`` vs the full ``ConstrainedSkiRentalSolver``;
* the vectorised bootstrap vs a same-stream per-replicate loop under a
  fixed seed;
* batched ``draw_thresholds`` vs scalar draws — identical generator
  consumption, bit-equal values for deterministic strategies, 1-ulp for
  continuous inverse CDFs (``np.log1p`` vs ``math.log1p``);
* ``quantile_pair`` vs two ``np.quantile`` calls (bit-equal).
"""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.analysis import empirical_cr
from repro.core.brand import BRand
from repro.core.constrained import ConstrainedSkiRentalSolver
from repro.core.kernels import (
    VERTEX_NAMES,
    PrefixSumSample,
    bootstrap_cr_samples,
    bootstrap_resample_indices,
    empirical_cr_kernel,
    quantile_pair,
    select_vertices,
    strategy_cost,
)
from repro.core.stats import StopStatistics
from repro.errors import DegenerateStatisticsError
from repro.core.randomized import MOMRand, NRand
from repro.core.strategy import Atom, MixedStrategy
from repro.evaluation.batch import StrategyPlan, select_vertex
from repro.evaluation.competitive import STRATEGY_NAMES, build_strategies

from .conftest import feasible_statistics, stop_samples

break_evens = st.floats(min_value=1.0, max_value=100.0, allow_nan=False)
samples = stop_samples(max_size=80, max_length=300.0)


def _scalar_mean_cost(strategy, stop_lengths) -> float:
    """The scalar reference: one ``expected_cost`` call per stop."""
    return float(np.mean([strategy.expected_cost(float(y)) for y in stop_lengths]))


class TestStrategyCostClosedForms:
    @given(y=samples, b=break_evens)
    @settings(max_examples=60, deadline=None)
    def test_all_figure4_strategies_match_scalar_loop(self, y, b):
        assume(float(np.max(y)) > 0.0)  # Proposed needs a non-degenerate sample
        sample = PrefixSumSample(y)
        for strategy in build_strategies(y, b).values():
            kernel = strategy_cost(sample, strategy)
            scalar = _scalar_mean_cost(strategy, y)
            assert kernel == pytest.approx(scalar, rel=1e-9, abs=1e-9)

    @given(y=samples, b=break_evens, beta_fraction=st.floats(min_value=0.01, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_brand_matches_scalar_loop(self, y, b, beta_fraction):
        strategy = BRand(b, beta_fraction * b)
        kernel = strategy_cost(PrefixSumSample(y), strategy)
        assert kernel == pytest.approx(_scalar_mean_cost(strategy, y), rel=1e-9, abs=1e-9)

    @given(y=samples, b=break_evens, mu_fraction=st.floats(min_value=0.0, max_value=2.0))
    @settings(max_examples=60, deadline=None)
    def test_momrand_both_regimes_match_scalar_loop(self, y, b, mu_fraction):
        # mu_fraction spans the revised regime (mu <= ~0.836 B) and the
        # N-Rand fallback regime (mu above it).
        strategy = MOMRand(b, mu_fraction * b)
        kernel = strategy_cost(PrefixSumSample(y), strategy)
        assert kernel == pytest.approx(_scalar_mean_cost(strategy, y), rel=1e-9, abs=1e-9)

    @given(
        y=samples,
        b=break_evens,
        mass_zero=st.floats(min_value=0.0, max_value=0.5),
        mass_b=st.floats(min_value=0.0, max_value=0.5),
    )
    @settings(max_examples=60, deadline=None)
    def test_mixed_strategy_edge_atoms_match_scalar_loop(self, y, b, mass_zero, mass_b):
        # Atoms exactly at the support edges 0 and B: the strict y < x
        # atom convention must match the prefix-sum side="left" search.
        strategy = MixedStrategy(
            b,
            [Atom(0.0, mass_zero), Atom(b, mass_b)],
            continuous=NRand(b),
        )
        kernel = strategy_cost(PrefixSumSample(y), strategy)
        assert kernel == pytest.approx(_scalar_mean_cost(strategy, y), rel=1e-9, abs=1e-9)

    @given(y=samples, b=break_evens)
    @settings(max_examples=30, deadline=None)
    def test_pure_atom_mixture_matches_scalar_loop(self, y, b):
        strategy = MixedStrategy(b, [Atom(0.0, 0.25), Atom(0.5 * b, 0.25), Atom(b, 0.5)])
        kernel = strategy_cost(PrefixSumSample(y), strategy)
        assert kernel == pytest.approx(_scalar_mean_cost(strategy, y), rel=1e-9, abs=1e-9)


class TestPrefixSumCR:
    @given(y=samples, b=break_evens)
    @settings(max_examples=60, deadline=None)
    def test_empirical_cr_kernel_matches_empirical_cr(self, y, b):
        assume(float(np.max(y)) > 0.0)
        sample = PrefixSumSample(y)
        for strategy in build_strategies(y, b).values():
            kernel = empirical_cr_kernel(sample, strategy, b)
            assert kernel == pytest.approx(empirical_cr(strategy, y, b), rel=1e-9)

    @given(y=samples, b=break_evens)
    @settings(max_examples=60, deadline=None)
    def test_strategy_plan_matches_scalar_path(self, y, b):
        assume(float(np.max(y)) > 0.0)
        sample = PrefixSumSample(y)
        plan = StrategyPlan.from_sample(sample, b)
        crs = plan.crs_on(sample)
        strategies = build_strategies(y, b)
        assert set(crs) == set(STRATEGY_NAMES)
        for name in STRATEGY_NAMES:
            assert crs[name] == pytest.approx(
                empirical_cr(strategies[name], y, b), rel=1e-9
            ), name
        # Exact-tie discipline: Proposed reuses its delegate's float.
        if plan.selected_vertex != "b-DET":
            vertex_key = "TOI" if plan.selected_vertex == "TOI" else plan.selected_vertex
            assert crs["Proposed"] == crs[vertex_key]

    @given(stats=feasible_statistics())
    @settings(max_examples=100, deadline=None)
    def test_select_vertex_matches_constrained_solver(self, stats):
        vertex, b_star = select_vertex(stats)
        selection = ConstrainedSkiRentalSolver(stats).select()
        assert vertex == selection.name
        if vertex == "b-DET":
            assert b_star == pytest.approx(selection.chosen.parameters["b"], rel=1e-12)
        else:
            assert b_star is None


class TestSelectVerticesBatched:
    """The array-shaped ``select_vertices`` vs the scalar solver —
    choices AND produced floats, including the degenerate fallback the
    batched serving path leans on."""

    @staticmethod
    def _scalar(mu, q, b):
        """(code, threshold) the scalar session path would produce."""
        try:
            selection = ConstrainedSkiRentalSolver(
                StopStatistics(mu_b_minus=mu, q_b_plus=q, break_even=b)
            ).select()
        except DegenerateStatisticsError:
            return 3, math.nan  # estimator falls back to NRand(B)
        code = VERTEX_NAMES.index(selection.name)
        if selection.name == "TOI":
            return code, 0.0
        if selection.name == "DET":
            return code, b
        if selection.name == "b-DET":
            return code, selection.chosen.parameters["b"]
        return code, math.nan

    @given(stats=feasible_statistics(allow_degenerate=True))
    @settings(max_examples=150, deadline=None)
    def test_matches_solver_bit_exactly(self, stats):
        codes, thresholds = select_vertices(
            [stats.mu_b_minus], [stats.q_b_plus], stats.break_even
        )
        expected_code, expected_threshold = self._scalar(
            stats.mu_b_minus, stats.q_b_plus, stats.break_even
        )
        assert int(codes[0]) == expected_code
        if math.isnan(expected_threshold):
            assert math.isnan(thresholds[0])
        else:
            # Bit-exact, not approx: the batched serving path replays
            # these floats through the same downstream arithmetic.
            assert float(thresholds[0]) == expected_threshold

    @given(
        b=break_evens,
        rows=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1.0),  # mu fraction
                st.floats(min_value=0.0, max_value=1.0),  # q
            ),
            min_size=1,
            max_size=30,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_whole_array_matches_elementwise(self, b, rows):
        mu = np.array([fraction * (1.0 - q) * b for fraction, q in rows])
        q = np.array([q for _, q in rows])
        codes, thresholds = select_vertices(mu, q, b)
        for index in range(len(rows)):
            expected_code, expected_threshold = self._scalar(
                float(mu[index]), float(q[index]), b
            )
            assert int(codes[index]) == expected_code, index
            if math.isnan(expected_threshold):
                assert math.isnan(thresholds[index]), index
            else:
                assert float(thresholds[index]) == expected_threshold, index

    def test_invalid_break_even_rejected(self):
        from repro.errors import InvalidParameterError

        for bad in (0.0, -1.0, math.inf, math.nan):
            with pytest.raises(InvalidParameterError):
                select_vertices([1.0], [0.5], bad)


class TestBootstrapSameStream:
    @given(
        y=stop_samples(max_size=40, max_length=300.0),
        b=break_evens,
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        n_bootstrap=st.integers(min_value=2, max_value=12),
    )
    @settings(max_examples=40, deadline=None)
    def test_vectorised_bootstrap_replays_index_loop(self, y, b, seed, n_bootstrap):
        assume(float(np.max(y)) > 0.0)
        strategy = NRand(b)
        indices = bootstrap_resample_indices(
            np.random.default_rng(seed), n_bootstrap, y.size
        )
        vectorised = bootstrap_cr_samples(strategy, y, indices, b)

        loop_rng = np.random.default_rng(seed)
        reference = []
        for _ in range(n_bootstrap):
            row = loop_rng.integers(0, y.size, size=y.size)
            resampled = y[row]
            offline = float(np.minimum(resampled, b).sum())
            if offline > 0.0:
                online = float(strategy.expected_cost_vec(resampled).sum())
                reference.append(online / offline)
        assume(reference)  # every replicate may hit the all-zero corner
        np.testing.assert_allclose(vectorised, np.asarray(reference), rtol=1e-12, atol=0.0)

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_index_matrix_is_row_major_stream(self, seed):
        # One (m, n) integers call == m successive size-n calls.
        matrix = bootstrap_resample_indices(np.random.default_rng(seed), 7, 13)
        loop_rng = np.random.default_rng(seed)
        rows = [loop_rng.integers(0, 13, size=13) for _ in range(7)]
        assert np.array_equal(matrix, np.stack(rows))


class TestDrawThresholdsBatched:
    @given(y=samples, b=break_evens, seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_batched_draws_match_scalar_loop(self, y, b, seed):
        assume(float(np.max(y)) > 0.0)  # Proposed needs a non-degenerate sample
        count = 64
        for strategy in build_strategies(y, b).values():
            batched_rng = np.random.default_rng(seed)
            loop_rng = np.random.default_rng(seed)
            batched = strategy.draw_thresholds(count, batched_rng)
            loop = np.array([strategy.draw_threshold(loop_rng) for _ in range(count)])
            finite = np.isfinite(loop)
            assert np.array_equal(np.isfinite(batched), finite), strategy.name
            # Continuous inverse CDFs use np.log1p where the scalar path
            # uses math.log1p: values agree to 1 ulp, not bitwise.
            np.testing.assert_allclose(
                batched[finite], loop[finite], rtol=1e-12, atol=1e-12
            )
            # Same stream consumption: the generators stay in lockstep.
            assert batched_rng.uniform() == loop_rng.uniform(), strategy.name

    @given(
        b=break_evens,
        beta_fraction=st.floats(min_value=0.01, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_brand_batched_draws_match_scalar_loop(self, b, beta_fraction, seed):
        strategy = BRand(b, beta_fraction * b)
        batched = strategy.draw_thresholds(64, np.random.default_rng(seed))
        loop_rng = np.random.default_rng(seed)
        loop = np.array([strategy.draw_threshold(loop_rng) for _ in range(64)])
        np.testing.assert_allclose(batched, loop, rtol=1e-12, atol=1e-12)

    @given(b=break_evens, seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_deterministic_strategies_are_bit_exact(self, b, seed):
        for strategy in build_strategies(np.array([0.5 * b]), b).values():
            if not hasattr(strategy, "threshold"):
                continue
            batched = strategy.draw_thresholds(32, np.random.default_rng(seed))
            loop_rng = np.random.default_rng(seed)
            loop = np.array([strategy.draw_threshold(loop_rng) for _ in range(32)])
            assert np.array_equal(batched, loop, equal_nan=True)


class TestQuantilePair:
    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=300,
        ),
        confidence=st.floats(min_value=0.01, max_value=0.999),
    )
    @settings(max_examples=100, deadline=None)
    def test_bit_identical_to_np_quantile(self, values, confidence):
        arr = np.asarray(values)
        tail = (1.0 - confidence) / 2.0
        lo, hi = quantile_pair(arr, tail, 1.0 - tail)
        assert lo == float(np.quantile(arr, tail))
        assert hi == float(np.quantile(arr, 1.0 - tail))

    def test_rejects_empty_and_out_of_range(self):
        from repro.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            quantile_pair(np.array([]), 0.1, 0.9)
        with pytest.raises(InvalidParameterError):
            quantile_pair(np.array([1.0]), -0.1, 0.9)
        with pytest.raises(InvalidParameterError):
            quantile_pair(np.array([1.0]), 0.1, 1.5)


class TestPrefixSumSampleValidation:
    def test_rejects_negative_and_non_finite(self):
        from repro.errors import InvalidParameterError

        for bad in ([-1.0, 2.0], [1.0, math.nan], [1.0, math.inf], []):
            with pytest.raises(InvalidParameterError):
                PrefixSumSample(np.array(bad))

    @given(y=samples, b=break_evens)
    @settings(max_examples=40, deadline=None)
    def test_moment_queries_match_direct_scans(self, y, b):
        sample = PrefixSumSample(y)
        assert sample.partial_expectation(b) == pytest.approx(
            float(y[y < b].sum() / y.size), rel=1e-12, abs=1e-12
        )
        assert sample.survival(b) == pytest.approx(float((y >= b).mean()), abs=0.0)
        assert sample.expected_min(b) == pytest.approx(
            float(np.minimum(y, b).mean()), rel=1e-12, abs=1e-12
        )
