"""Unit tests for the statistical-significance helpers."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.evaluation import (
    compare_strategies,
    evaluate_fleet,
    paired_bootstrap_mean_difference,
    win_rate_interval,
)
from repro.fleet import FleetGenerator, area_config


class TestPairedBootstrap:
    def test_identical_arrays_zero_difference(self, rng):
        crs = np.array([1.1, 1.2, 1.3, 1.4])
        point, low, high = paired_bootstrap_mean_difference(crs, crs, rng)
        assert point == 0.0
        assert low == 0.0 and high == 0.0

    def test_constant_offset_detected(self, rng):
        reference = np.full(50, 1.2)
        other = reference + 0.1
        point, low, high = paired_bootstrap_mean_difference(reference, other, rng)
        assert point == pytest.approx(0.1)
        assert low > 0.0  # significantly worse than reference

    def test_noisy_but_better_reference(self, rng):
        reference = 1.1 + 0.05 * rng.standard_normal(300)
        other = reference + 0.2 + 0.05 * rng.standard_normal(300)
        point, low, high = paired_bootstrap_mean_difference(reference, other, rng)
        assert low > 0.0

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(InvalidParameterError):
            paired_bootstrap_mean_difference(np.ones(3), np.ones(4), rng)

    def test_parameters_validated(self, rng):
        crs = np.ones(5)
        with pytest.raises(InvalidParameterError):
            paired_bootstrap_mean_difference(crs, crs, rng, n_bootstrap=10)
        with pytest.raises(InvalidParameterError):
            paired_bootstrap_mean_difference(crs, crs, rng, confidence=1.5)


class TestWinRateInterval:
    def test_point_estimate(self):
        p, low, high = win_rate_interval(90, 100)
        assert p == pytest.approx(0.9)
        assert low < 0.9 < high

    def test_interval_narrows_with_n(self):
        _, low_small, high_small = win_rate_interval(9, 10)
        _, low_large, high_large = win_rate_interval(900, 1000)
        assert (high_large - low_large) < (high_small - low_small)

    def test_bounds_clamped(self):
        _, low, high = win_rate_interval(0, 10)
        assert low == 0.0
        _, low, high = win_rate_interval(10, 10)
        assert high == pytest.approx(1.0, abs=1e-12)
        assert high <= 1.0

    def test_paper_win_count_significantly_above_half(self):
        # 1169/1182 wins: the CI floor is far above 50%.
        _, low, _ = win_rate_interval(1169, 1182)
        assert low > 0.97

    def test_invalid_counts_rejected(self):
        with pytest.raises(InvalidParameterError):
            win_rate_interval(5, 0)
        with pytest.raises(InvalidParameterError):
            win_rate_interval(11, 10)


class TestCompareStrategies:
    @pytest.fixture(scope="class")
    def evaluation(self):
        vehicles = FleetGenerator(area_config("california"), seed=13).generate(60)
        return evaluate_fleet(vehicles, 28.0)

    def test_proposed_significantly_beats_nev_and_det(self, evaluation):
        results = {r.other: r for r in compare_strategies(evaluation)}
        assert results["NEV"].mean_difference > 0.0
        assert results["NEV"].significant
        assert results["DET"].significant
        assert results["DET"].mean_difference > 0.0

    def test_all_differences_nonnegative(self, evaluation):
        # Proposed has the best mean CR, so every paired difference
        # (other - proposed) is >= 0 in expectation.
        for result in compare_strategies(evaluation):
            assert result.mean_difference >= -1e-9

    def test_unknown_reference_rejected(self, evaluation):
        with pytest.raises(InvalidParameterError):
            compare_strategies(evaluation, reference="bogus")
