"""Property-based tests (hypothesis) tying the event-level simulation to
the analytic layer: what the controller pays must equal what the math
predicts."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import BDet, Deterministic, NeverOff, TurnOffImmediately
from repro.core.analysis import empirical_offline_cost, empirical_online_cost
from repro.core.costs import offline_cost_vec
from repro.simulation import realized_cr, simulate_stops

from .conftest import stop_samples

positive_b = st.floats(min_value=1.0, max_value=200.0, allow_nan=False)


def deterministic_strategies(b: float):
    return [
        TurnOffImmediately(b),
        Deterministic(b),
        BDet(b, b / 2),
        NeverOff(b),
    ]


class TestSimulationMatchesAnalysis:
    @given(stops=stop_samples(max_size=60), b=positive_b)
    @settings(max_examples=100, deadline=None)
    def test_deterministic_simulation_equals_expected_cost(self, stops, b):
        for strategy in deterministic_strategies(b):
            result = simulate_stops(stops, strategy=strategy)
            expected = empirical_online_cost(strategy, stops) * stops.size
            assert result.total_cost_seconds == pytest.approx(expected, rel=1e-9)

    @given(stops=stop_samples(max_size=60), b=positive_b)
    @settings(max_examples=100, deadline=None)
    def test_offline_simulation_equals_eq2(self, stops, b):
        result = simulate_stops(stops, break_even=b)
        assert result.total_cost_seconds == pytest.approx(
            float(offline_cost_vec(stops, b).sum()), rel=1e-9
        )

    @given(stops=stop_samples(max_size=60), b=positive_b)
    @settings(max_examples=100, deadline=None)
    def test_realized_cr_at_least_one(self, stops, b):
        assume(float(np.minimum(stops, b).sum()) > 1e-9)
        offline = simulate_stops(stops, break_even=b)
        for strategy in deterministic_strategies(b):
            online = simulate_stops(stops, strategy=strategy)
            assert realized_cr(online, offline) >= 1.0 - 1e-9

    @given(stops=stop_samples(max_size=60), b=positive_b)
    @settings(max_examples=50, deadline=None)
    def test_ledger_restart_accounting(self, stops, b):
        strategy = Deterministic(b)
        result = simulate_stops(stops, strategy=strategy)
        # DET restarts exactly on stops with y >= B.
        assert result.ledger.restarts == int((stops >= b).sum())
        assert result.ledger.idle_seconds == pytest.approx(
            float(np.minimum(stops, b).sum())
        )

    @given(stops=stop_samples(max_size=40), b=positive_b)
    @settings(max_examples=50, deadline=None)
    def test_per_stop_costs_sum_to_total(self, stops, b):
        result = simulate_stops(stops, strategy=TurnOffImmediately(b))
        assert result.ledger.per_stop_costs.sum() == pytest.approx(
            result.total_cost_seconds
        )

    @given(stops=stop_samples(max_size=40), b=positive_b)
    @settings(max_examples=50, deadline=None)
    def test_offline_cost_function_agreement(self, stops, b):
        assert empirical_offline_cost(stops, b) * stops.size == pytest.approx(
            simulate_stops(stops, break_even=b).total_cost_seconds, rel=1e-9
        )
