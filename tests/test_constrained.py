"""Unit tests for the constrained ski-rental solver (Section 4)."""

import math

import numpy as np
import pytest

from repro.constants import E
from repro.core.constrained import (
    ConstrainedSkiRentalSolver,
    ProposedOnline,
    worst_case_cost_bdet,
    worst_case_cost_det,
    worst_case_cost_nrand,
    worst_case_cost_toi,
)
from repro.core.stats import StopStatistics
from repro.errors import InvalidParameterError

B = 28.0


class TestVertexCosts:
    def test_nrand_cost(self):
        stats = StopStatistics(7.0, 0.25, B)
        assert worst_case_cost_nrand(stats) == pytest.approx(
            E / (E - 1) * (7.0 + 0.25 * B)
        )

    def test_toi_cost_is_b(self):
        assert worst_case_cost_toi(StopStatistics(7.0, 0.25, B)) == B

    def test_det_cost_eq14(self):
        stats = StopStatistics(7.0, 0.25, B)
        assert worst_case_cost_det(stats) == pytest.approx(7.0 + 2 * 0.25 * B)

    def test_bdet_cost_eq35(self):
        stats = StopStatistics(0.05 * B, 0.3, B)
        expected = (math.sqrt(0.05 * B) + math.sqrt(0.3 * B)) ** 2
        assert worst_case_cost_bdet(stats) == pytest.approx(expected)

    def test_bdet_inadmissible_is_inf(self):
        assert worst_case_cost_bdet(StopStatistics(10.0, 0.0, B)) == math.inf

    def test_bdet_degenerate_zero_mu(self):
        stats = StopStatistics(0.0, 0.4, B)
        assert worst_case_cost_bdet(stats) == pytest.approx(0.4 * B)


class TestSolverSelection:
    def test_degenerate_statistics_rejected(self):
        with pytest.raises(InvalidParameterError):
            ConstrainedSkiRentalSolver(StopStatistics(0.0, 0.0, B))

    def test_no_long_stops_selects_det(self):
        # With q+ = 0, DET matches the offline optimum exactly (CR = 1).
        selection = ConstrainedSkiRentalSolver(StopStatistics(10.0, 0.0, B)).select()
        assert selection.name == "DET"
        assert selection.worst_case_cr == pytest.approx(1.0)

    def test_all_long_stops_selects_toi(self):
        # With q+ = 1, TOI matches the offline optimum exactly (CR = 1).
        selection = ConstrainedSkiRentalSolver(StopStatistics(0.0, 1.0, B)).select()
        assert selection.name == "TOI"
        assert selection.worst_case_cr == pytest.approx(1.0)

    def test_bdet_region_exists(self):
        # Fig. 2(c): mu- = 0.02B with moderate q+ is b-DET territory.
        selection = ConstrainedSkiRentalSolver(StopStatistics(0.02 * B, 0.3, B)).select()
        assert selection.name == "b-DET"
        assert "b" in selection.chosen.parameters

    def test_nrand_region_exists(self):
        # Balanced statistics: randomization wins.
        selection = ConstrainedSkiRentalSolver(StopStatistics(0.2 * B, 0.4, B)).select()
        assert selection.name == "N-Rand"
        assert selection.worst_case_cr == pytest.approx(E / (E - 1))

    def test_chosen_is_minimum_over_vertices(self):
        for mu_frac, q in [(0.02, 0.3), (0.3, 0.3), (0.05, 0.05), (0.1, 0.9), (0.6, 0.2)]:
            stats = StopStatistics(mu_frac * B, q, B)
            selection = ConstrainedSkiRentalSolver(stats).select()
            finite = [v.worst_case_cost for v in selection.vertices if math.isfinite(v.worst_case_cost)]
            assert selection.chosen.worst_case_cost == pytest.approx(min(finite))

    def test_worst_case_cr_below_nrand_bound(self):
        for mu_frac in (0.01, 0.1, 0.4, 0.8):
            for q in (0.01, 0.2, 0.5, 0.9):
                if mu_frac > 1 - q:
                    continue
                stats = StopStatistics(mu_frac * B, q, B)
                selection = ConstrainedSkiRentalSolver(stats).select()
                assert selection.worst_case_cr <= E / (E - 1) + 1e-12
                assert selection.worst_case_cr >= 1.0 - 1e-12

    def test_build_strategy_matches_name(self):
        stats = StopStatistics(0.02 * B, 0.3, B)
        selection = ConstrainedSkiRentalSolver(stats).select()
        strategy = selection.build_strategy()
        assert strategy.name == selection.name


class TestProposedOnline:
    def test_delegates_to_winner(self, rng):
        stats = StopStatistics(0.02 * B, 0.3, B)
        proposed = ProposedOnline(stats)
        assert proposed.selected_name == "b-DET"
        delegate = proposed.delegate
        assert proposed.expected_cost(10.0) == delegate.expected_cost(10.0)
        assert proposed.draw_threshold(rng) == delegate.threshold

    def test_from_samples_end_to_end(self):
        stops = np.array([5.0, 8.0, 12.0, 100.0, 200.0, 3.0, 7.0, 40.0])
        proposed = ProposedOnline.from_samples(stops, B)
        assert proposed.selected_name in {"TOI", "DET", "b-DET", "N-Rand"}
        assert 1.0 <= proposed.worst_case_cr <= E / (E - 1) + 1e-12

    def test_expected_cost_vec_consistent(self):
        proposed = ProposedOnline(StopStatistics(0.3 * B, 0.3, B))
        y = np.array([1.0, 10.0, B, 100.0])
        np.testing.assert_allclose(
            proposed.expected_cost_vec(y), [proposed.expected_cost(v) for v in y]
        )

    def test_degenerate_bdet_threshold_positive(self):
        proposed = ProposedOnline(StopStatistics(0.0, 0.4, B))
        assert proposed.selected_name == "b-DET"
        assert 0.0 < proposed.delegate.threshold < B
        # Cost approaches the infimum q+ * B.
        assert proposed.worst_case_cr == pytest.approx(1.0, rel=1e-6)
