"""Unit tests for trace serialization (CSV and JSON round trips)."""

import numpy as np
import pytest

from repro.errors import TraceFormatError
from repro.traces import (
    DrivingTrace,
    read_stops_csv,
    read_traces_json,
    trace_from_dict,
    trace_to_dict,
    write_stops_csv,
    write_traces_json,
)


@pytest.fixture
def traces():
    return [
        DrivingTrace.from_stop_lengths("v1", [10.0, 60.0], area="chicago"),
        DrivingTrace.from_stop_lengths("v2", [5.0], area="atlanta"),
    ]


class TestStopsCSV:
    def test_round_trip(self, tmp_path, traces):
        path = tmp_path / "stops.csv"
        write_stops_csv(path, traces)
        loaded = read_stops_csv(path)
        np.testing.assert_allclose(loaded["v1"], [10.0, 60.0])
        np.testing.assert_allclose(loaded["v2"], [5.0])

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(TraceFormatError):
            read_stops_csv(path)

    def test_bad_duration_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("vehicle_id,start_time,duration\nv1,0,notanumber\n")
        with pytest.raises(TraceFormatError):
            read_stops_csv(path)

    def test_wrong_column_count_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("vehicle_id,start_time,duration\nv1,0\n")
        with pytest.raises(TraceFormatError):
            read_stops_csv(path)


class TestTraceJSON:
    def test_dict_round_trip(self, traces):
        document = trace_to_dict(traces[0])
        restored = trace_from_dict(document)
        assert restored.vehicle_id == "v1"
        assert restored.area == "chicago"
        np.testing.assert_allclose(restored.stop_lengths(), [10.0, 60.0])

    def test_file_round_trip(self, tmp_path, traces):
        path = tmp_path / "traces.json"
        write_traces_json(path, traces)
        restored = read_traces_json(path)
        assert [t.vehicle_id for t in restored] == ["v1", "v2"]
        np.testing.assert_allclose(restored[0].stop_lengths(), [10.0, 60.0])

    def test_malformed_document_rejected(self):
        with pytest.raises(TraceFormatError):
            trace_from_dict({"vehicle_id": "v1"})  # missing trips

    def test_non_array_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"not": "an array"}')
        with pytest.raises(TraceFormatError):
            read_traces_json(path)
