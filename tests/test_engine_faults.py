"""Fault-injection tests for every ParallelMap recovery path.

The contract under test (docs/engine.md, "Failure semantics"): injected
faults — transient exceptions, hung workers, SIGKILLed workers — may
cost retries, pool rebuilds, or a serial fallback, but the returned
results are bit-identical to an unfaulted serial run, completed task
results are never recomputed or lost, and every recovery step leaves a
ledger event.  All faults are deterministic (claim files shared across
worker processes), so nothing here is timing-flaky.
"""

import json
import os

import numpy as np
import pytest

from repro.engine import (
    MapCheckpoint,
    ParallelMap,
    ParallelTaskError,
    ParallelTimeoutError,
    ResultCache,
    RunLedger,
    active_ledger,
    read_ledger,
    use_ledger,
)
from repro.engine.faults import Fault, FaultInjector, InjectedFault, sweep_stale_claims
from repro.errors import InvalidParameterError
from repro.evaluation import sweep_simulated
from repro.fleet.areas import area_config


def _seeded_value(index: int) -> float:
    """Pure, deterministic task: index -> a float only the index decides."""
    return float(np.random.default_rng(index).random())


def _pmap(jobs, tmp_path=None, **kwargs) -> ParallelMap:
    kwargs.setdefault("backoff", 0.0)
    return ParallelMap(jobs, **kwargs)


def _injector(tmp_path, faults: dict) -> FaultInjector:
    return FaultInjector(_seeded_value, faults, tmp_path / "fault-state")


class TestRetry:
    def test_retry_then_succeed(self, tmp_path):
        ledger = RunLedger()
        fn = _injector(tmp_path, {3: Fault("raise", times=1)})
        result = _pmap(2, retries=1, ledger=ledger).map(fn, range(8))
        assert result == [_seeded_value(i) for i in range(8)]
        assert ledger.count("task-retry") == 1
        assert ledger.count("task-finish") == 8

    def test_retries_exhausted_reraises_with_context(self, tmp_path):
        fn = _injector(tmp_path, {3: Fault("raise", times=3)})
        with pytest.raises(InjectedFault) as excinfo:
            _pmap(2, retries=1).map(fn, range(8))
        cause = excinfo.value.__cause__
        assert isinstance(cause, ParallelTaskError)
        assert cause.task_index == 3
        assert "InjectedFault" in cause.traceback_text

    def test_serial_backend_retries_too(self, tmp_path):
        ledger = RunLedger()
        fn = _injector(tmp_path, {2: Fault("raise", times=2)})
        result = _pmap(1, retries=2, ledger=ledger).map(fn, range(4))
        assert result == [_seeded_value(i) for i in range(4)]
        assert ledger.count("task-retry") == 2


class TestTimeout:
    def test_hung_task_restarts_and_recovers(self, tmp_path):
        ledger = RunLedger()
        fn = _injector(tmp_path, {2: Fault("hang", hang_seconds=20.0)})
        result = _pmap(2, timeout=1.0, retries=1, ledger=ledger).map(fn, range(6))
        assert result == [_seeded_value(i) for i in range(6)]
        assert ledger.count("task-timeout") == 1
        # Every task still finished exactly once.
        finished = [e["task"] for e in ledger.events if e["event"] == "task-finish"]
        assert sorted(finished) == list(range(6))

    def test_timeout_exhausted_raises(self, tmp_path):
        fn = _injector(tmp_path, {1: Fault("hang", times=2, hang_seconds=20.0)})
        with pytest.raises(ParallelTimeoutError) as excinfo:
            _pmap(2, timeout=1.0, retries=0).map(fn, range(4))
        assert excinfo.value.task_index == 1


class TestPoolCrash:
    def test_sigkilled_worker_mid_map_64_tasks(self, tmp_path):
        """The acceptance scenario: 64 tasks, one worker SIGKILLed
        mid-run — bit-identical to unfaulted serial, pool-crash event
        in the ledger, zero completed results lost or recomputed."""
        ledger = RunLedger()
        fn = _injector(tmp_path, {17: Fault("kill")})
        jobs = 4
        result = _pmap(jobs, retries=1, ledger=ledger).map(fn, range(64))
        assert result == [_seeded_value(i) for i in range(64)]
        assert ledger.count("pool-crash") == 1
        assert ledger.count("serial-fallback") == 0
        # Zero previously-completed results lost: each task finished
        # exactly once...
        finished = [e["task"] for e in ledger.events if e["event"] == "task-finish"]
        assert sorted(finished) == list(range(64))
        # ... and only tasks in flight at the crash (at most the window
        # of `jobs`) were ever re-dispatched.
        assert ledger.count("task-start") <= 64 + jobs
        # Nothing that finished before the crash started again after it.
        crash_seq = next(
            e["seq"] for e in ledger.events if e["event"] == "pool-crash"
        )
        done_before = {
            e["task"] for e in ledger.events
            if e["event"] == "task-finish" and e["seq"] < crash_seq
        }
        restarted_after = {
            e["task"] for e in ledger.events
            if e["event"] == "task-start" and e["seq"] > crash_seq
        }
        assert done_before.isdisjoint(restarted_after)

    def test_repeated_crashes_fall_back_to_serial(self, tmp_path):
        ledger = RunLedger()
        fn = _injector(tmp_path, {4: Fault("kill", times=2)})
        result = _pmap(
            2, retries=1, max_pool_failures=2, ledger=ledger
        ).map(fn, range(10))
        assert result == [_seeded_value(i) for i in range(10)]
        assert ledger.count("pool-crash") == 2
        assert ledger.count("serial-fallback") == 1
        finished = [e["task"] for e in ledger.events if e["event"] == "task-finish"]
        assert sorted(finished) == list(range(10))

    def test_kill_fault_downgrades_in_parent_process(self, tmp_path):
        # Safety net: a "kill" fault firing in the creating process
        # (e.g. during a serial fallback) raises instead of SIGKILLing
        # the test/CLI process itself.
        fn = _injector(tmp_path, {0: Fault("kill")})
        with pytest.raises(InjectedFault, match="downgraded in parent"):
            fn(0)


class TestFaultDeterminism:
    def test_faulted_parallel_run_is_bit_identical_to_serial(self, tmp_path):
        reference = [_seeded_value(i) for i in range(24)]
        fn = _injector(
            tmp_path,
            {
                5: Fault("raise", times=1),
                11: Fault("kill"),
                19: Fault("raise", times=2),
            },
        )
        result = _pmap(3, retries=2).map(fn, range(24))
        assert result == reference  # exact float equality, not approx


class TestCheckpoint:
    def test_rerun_resumes_entirely_from_checkpoint(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        checkpoint = MapCheckpoint(cache=cache, scope="resume-test")
        first = _pmap(2).map(_seeded_value, range(6), checkpoint=checkpoint)
        ledger = RunLedger()
        second = _pmap(2, ledger=ledger).map(
            _seeded_value, range(6), checkpoint=checkpoint
        )
        assert second == first
        assert ledger.count("checkpoint-hit") == 6
        assert ledger.count("task-start") == 0

    def test_failed_run_resumes_from_completed_prefix(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        checkpoint = MapCheckpoint(cache=cache, scope="partial-test")
        ledger_first = RunLedger()
        fn = _injector(tmp_path, {7: Fault("raise", times=1)})
        with pytest.raises(InjectedFault):
            _pmap(2, retries=0, ledger=ledger_first).map(
                fn, range(8), checkpoint=checkpoint
            )
        completed_first = ledger_first.count("task-finish")
        ledger_second = RunLedger()
        result = _pmap(2, retries=0, ledger=ledger_second).map(
            fn, range(8), checkpoint=checkpoint
        )
        assert result == [_seeded_value(i) for i in range(8)]
        # Everything spilled before the failure is served from the
        # checkpoint, not recomputed.
        assert ledger_second.count("checkpoint-hit") == completed_first
        started = [e["task"] for e in ledger_second.events if e["event"] == "task-start"]
        assert len(set(started)) == 8 - completed_first

    def test_checkpoint_distinguishes_scopes(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        _pmap(1).map(
            _seeded_value, range(3), checkpoint=MapCheckpoint(cache=cache, scope="a")
        )
        ledger = RunLedger()
        _pmap(1, ledger=ledger).map(
            _seeded_value, range(3), checkpoint=MapCheckpoint(cache=cache, scope="b")
        )
        assert ledger.count("checkpoint-hit") == 0

    def test_sweep_checkpoint_round_trip(self, tmp_path):
        base = area_config("chicago").stop_length_distribution()
        cache = ResultCache(tmp_path / "cache")
        kwargs = dict(
            mean_stop_lengths=(10.0, 30.0, 90.0),
            break_even=28.0,
            vehicles_per_point=2,
            stops_per_vehicle=5,
            seed=1,
        )
        first = sweep_simulated(base, jobs=1, checkpoint_cache=cache, **kwargs)
        ledger = RunLedger()
        with use_ledger(ledger):
            second = sweep_simulated(base, jobs=2, checkpoint_cache=cache, **kwargs)
        assert ledger.count("checkpoint-hit") == 3
        for name in first.series:
            assert np.array_equal(first.series[name], second.series[name])


class TestLedger:
    def test_events_are_ordered_and_monotonic(self, tmp_path):
        ledger = RunLedger()
        _pmap(2, ledger=ledger).map(_seeded_value, range(6))
        assert [e["seq"] for e in ledger.events] == list(range(len(ledger.events)))
        times = [e["t"] for e in ledger.events]
        assert times == sorted(times)
        assert ledger.events[0]["event"] == "map-start"
        assert ledger.events[-1]["event"] == "map-finish"

    def test_jsonl_file_mirrors_events(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = RunLedger(path)
        _pmap(1, ledger=ledger).map(_seeded_value, range(3))
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines == ledger.events

    def test_use_ledger_installs_ambient_ledger(self):
        ledger = RunLedger()
        assert active_ledger() is None
        with use_ledger(ledger):
            assert active_ledger() is ledger
            _pmap(1).map(_seeded_value, range(2))
        assert active_ledger() is None
        assert ledger.count("task-finish") == 2

    def test_map_start_carries_label_and_backend(self):
        ledger = RunLedger()
        ParallelMap(2, ledger=ledger, label="unit-test", backoff=0.0).map(
            _seeded_value, range(4)
        )
        start = ledger.events[0]
        assert start["label"] == "unit-test"
        assert start["backend"] == "process"
        assert start["tasks"] == 4


class TestLedgerCrashTolerance:
    def test_read_ledger_skips_torn_final_line(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = RunLedger(path)
        ledger.emit("map-start", tasks=2)
        ledger.emit("map-finish")
        with open(path, "a") as handle:
            handle.write('{"seq": 2, "event": "tor')  # killed mid-write
        assert read_ledger(path) == ledger.events

    def test_read_ledger_raises_on_mid_file_corruption(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = RunLedger(path)
        for _ in range(3):
            ledger.emit("tick")
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:20]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(json.JSONDecodeError):
            read_ledger(path)

    def test_load_is_detached_and_torn_tolerant(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        RunLedger(path).emit("map-start", tasks=1)
        with open(path, "a") as handle:
            handle.write("garbage")
        before = path.read_text()
        loaded = RunLedger.load(path)
        assert loaded.count("map-start") == 1
        assert loaded.path is None
        loaded.emit("extra")  # must not touch the file it read
        assert path.read_text() == before

    def test_append_mode_continues_seq_across_restarts(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        first = RunLedger(path)
        first.emit("map-start", tasks=1)
        first.emit("map-finish")
        second = RunLedger(path, append=True)  # the restarted service
        record = second.emit("map-start", tasks=1)
        assert record["seq"] == 2
        assert [r["seq"] for r in read_ledger(path)] == [0, 1, 2]

    def test_append_mode_repairs_a_torn_final_line(self, tmp_path):
        # A kill mid-emit leaves a partial line; appending blindly would
        # merge the next record into it and corrupt the ledger for every
        # later reader.  Append mode must drop the torn tail first.
        path = tmp_path / "ledger.jsonl"
        RunLedger(path).emit("map-start", tasks=1)
        with open(path, "a") as handle:
            handle.write('{"seq": 1, "t": 0.1, "event": "task-')
        second = RunLedger(path, append=True)
        record = second.emit("map-finish")
        assert record["seq"] == 1
        assert [r["event"] for r in read_ledger(path)] == ["map-start", "map-finish"]
        # A third restart (the merged-line JSONDecodeError crash path).
        third = RunLedger(path, append=True)
        third.emit("map-start", tasks=2)
        assert [r["seq"] for r in read_ledger(path)] == [0, 1, 2]

    def test_append_mode_completes_a_record_missing_its_newline(self, tmp_path):
        # The kill can land right before the newline: the record was
        # fully emitted and must be kept, only the newline restored.
        path = tmp_path / "ledger.jsonl"
        RunLedger(path).emit("map-start", tasks=1)
        path.write_text(path.read_text()[:-1])
        second = RunLedger(path, append=True)
        second.emit("map-finish")
        assert [r["event"] for r in read_ledger(path)] == ["map-start", "map-finish"]
        assert [r["seq"] for r in read_ledger(path)] == [0, 1]

    def test_fsync_mode_emits_identical_records(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = RunLedger(path, fsync=True)
        ledger.emit("map-start", tasks=1)
        assert read_ledger(path) == ledger.events


class TestStaleClaimSweep:
    def test_claims_record_the_claiming_pid(self, tmp_path):
        fn = _injector(tmp_path, {0: Fault("raise")})
        with pytest.raises(InjectedFault):
            fn(0)
        claims = list((tmp_path / "fault-state").iterdir())
        assert len(claims) == 1
        from repro.engine.faults import owner_record

        assert claims[0].read_text() == owner_record()
        assert claims[0].read_text().split()[0] == str(os.getpid())

    def test_sweep_removes_dead_pid_claims_only(self, tmp_path):
        state = tmp_path / "fault-state"
        state.mkdir()
        (state / "dead.0").write_text("999999999")
        (state / "alive.0").write_text(str(os.getpid()))
        (state / "empty.0").write_text("")  # unreadable owner: stale
        removed = sweep_stale_claims(state)
        assert sorted(os.path.basename(p) for p in removed) == ["dead.0", "empty.0"]
        assert (state / "alive.0").exists()

    def test_sweep_missing_directory_is_a_noop(self, tmp_path):
        assert sweep_stale_claims(tmp_path / "absent") == []

    def test_sweep_detects_pid_reuse_via_start_time_token(self, tmp_path):
        from repro.engine.faults import owner_record, process_token

        if process_token(os.getpid()) is None:
            pytest.skip("no /proc start-time tokens on this platform")
        state = tmp_path / "fault-state"
        state.mkdir()
        # Live pid, stale token: the pid was recycled — claim is dead.
        (state / "reused.0").write_text(f"{os.getpid()} 1")
        # Live pid, matching token: the genuine owner — claim is live.
        (state / "genuine.0").write_text(owner_record())
        removed = sweep_stale_claims(state)
        assert [os.path.basename(p) for p in removed] == ["reused.0"]
        assert (state / "genuine.0").exists()

    def test_sweep_unblocks_a_rerun_after_abnormal_exit(self, tmp_path):
        # A claim left by a "previous run" (dead pid) would make the
        # rerun see the fault as already fired; sweeping restores it.
        fn = _injector(tmp_path, {0: Fault("raise")})
        state = tmp_path / "fault-state"
        state.mkdir()
        digest = next(iter(fn.faults))
        (state / f"{digest}.0").write_text("999999999")
        assert fn(0) == _seeded_value(0)  # claim already taken: no fault
        assert len(fn.sweep_stale()) == 1
        with pytest.raises(InjectedFault):
            fn(0)  # fault restored after the sweep


class TestFaultHarness:
    def test_invalid_fault_kind_rejected(self):
        with pytest.raises(InvalidParameterError):
            Fault("explode")

    def test_fault_fires_exactly_times_attempts(self, tmp_path):
        fn = _injector(tmp_path, {0: Fault("raise", times=2)})
        for _ in range(2):
            with pytest.raises(InjectedFault):
                fn(0)
        assert fn(0) == _seeded_value(0)  # exhausted: passes through

    def test_unfaulted_items_pass_through(self, tmp_path):
        fn = _injector(tmp_path, {0: Fault("raise")})
        assert fn(1) == _seeded_value(1)
