"""Unit tests for the ski-rental cost primitives (Eqs. 2-4)."""

import math

import numpy as np
import pytest

from repro.core.costs import (
    competitive_ratio,
    competitive_ratio_vec,
    offline_cost,
    offline_cost_vec,
    online_cost,
    online_cost_vec,
    validate_break_even,
    validate_stop_length,
)
from repro.errors import InvalidParameterError

B = 28.0


class TestValidation:
    def test_break_even_accepts_positive(self):
        assert validate_break_even(28) == 28.0

    @pytest.mark.parametrize("bad", [0.0, -1.0, math.inf, math.nan])
    def test_break_even_rejects_nonpositive(self, bad):
        with pytest.raises(InvalidParameterError):
            validate_break_even(bad)

    def test_stop_length_accepts_zero(self):
        assert validate_stop_length(0) == 0.0

    @pytest.mark.parametrize("bad", [-0.1, math.inf, math.nan])
    def test_stop_length_rejects_invalid(self, bad):
        with pytest.raises(InvalidParameterError):
            validate_stop_length(bad)


class TestOfflineCost:
    def test_short_stop_costs_its_length(self):
        assert offline_cost(10.0, B) == 10.0

    def test_long_stop_costs_break_even(self):
        assert offline_cost(100.0, B) == B

    def test_boundary_stop_costs_break_even(self):
        # Eq. (2): y >= B is the long branch.
        assert offline_cost(B, B) == B

    def test_zero_stop_is_free(self):
        assert offline_cost(0.0, B) == 0.0


class TestOnlineCost:
    def test_stop_shorter_than_threshold_costs_stop(self):
        assert online_cost(20.0, 5.0, B) == 5.0

    def test_stop_at_threshold_pays_restart(self):
        # Eq. (3): the y >= x branch.
        assert online_cost(20.0, 20.0, B) == 20.0 + B

    def test_stop_longer_than_threshold_pays_threshold_plus_restart(self):
        assert online_cost(20.0, 500.0, B) == 20.0 + B

    def test_toi_threshold_zero_always_pays_restart(self):
        assert online_cost(0.0, 3.0, B) == B

    def test_online_never_cheaper_than_offline(self):
        for x in (0.0, 5.0, B, 2 * B):
            for y in (0.0, 1.0, 10.0, B, 3 * B):
                assert online_cost(x, y, B) >= offline_cost(y, B) - 1e-12


class TestCompetitiveRatio:
    def test_det_worst_case_is_two(self):
        # The classic result (Eq. 6): the adversary stops just past B.
        assert competitive_ratio(B, B, B) == pytest.approx(2.0)

    def test_short_stop_under_det_is_optimal(self):
        assert competitive_ratio(B, 10.0, B) == pytest.approx(1.0)

    def test_zero_stop_with_positive_threshold(self):
        assert competitive_ratio(10.0, 0.0, B) == 1.0

    def test_zero_stop_with_toi_is_infinite(self):
        assert competitive_ratio(0.0, 0.0, B) == math.inf

    def test_ratio_at_least_one(self):
        for x in (0.0, 1.0, 14.0, B):
            for y in (0.5, 13.0, B, 100.0):
                assert competitive_ratio(x, y, B) >= 1.0 - 1e-12


class TestVectorised:
    def test_offline_matches_scalar(self):
        y = np.array([0.0, 5.0, B, 40.0, 200.0])
        expected = [offline_cost(v, B) for v in y]
        np.testing.assert_allclose(offline_cost_vec(y, B), expected)

    def test_online_matches_scalar_with_scalar_threshold(self):
        y = np.array([0.0, 5.0, 20.0, B, 40.0])
        expected = [online_cost(20.0, v, B) for v in y]
        np.testing.assert_allclose(online_cost_vec(20.0, y, B), expected)

    def test_online_broadcasts_per_stop_thresholds(self):
        y = np.array([10.0, 10.0, 10.0])
        x = np.array([5.0, 15.0, 10.0])
        np.testing.assert_allclose(online_cost_vec(x, y, B), [5.0 + B, 10.0, 10.0 + B])

    def test_ratio_matches_scalar(self):
        y = np.array([0.5, 13.0, B, 100.0])
        expected = [competitive_ratio(14.0, v, B) for v in y]
        np.testing.assert_allclose(competitive_ratio_vec(14.0, y, B), expected)

    def test_ratio_zero_stop_conventions(self):
        y = np.array([0.0, 0.0])
        x = np.array([5.0, 0.0])
        result = competitive_ratio_vec(x, y, B)
        assert result[0] == 1.0
        assert result[1] == math.inf

    def test_rejects_negative_stops(self):
        with pytest.raises(InvalidParameterError):
            offline_cost_vec(np.array([1.0, -2.0]), B)

    def test_rejects_negative_thresholds(self):
        with pytest.raises(InvalidParameterError):
            online_cost_vec(np.array([-1.0]), np.array([1.0]), B)

    def test_empty_arrays_pass_through(self):
        assert offline_cost_vec(np.array([]), B).size == 0
