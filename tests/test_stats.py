"""Unit tests for the (mu_B_minus, q_B_plus) statistics (Eqs. 10-13)."""

import numpy as np
import pytest

from repro.core.stats import (
    StopStatistics,
    mu_b_minus_from_samples,
    q_b_plus_from_samples,
)
from repro.distributions import Exponential, Uniform
from repro.errors import InvalidParameterError

B = 28.0


class TestSampleEstimators:
    def test_mu_b_minus_counts_only_short_stops(self):
        stops = np.array([10.0, 20.0, 100.0, 200.0])
        # (10 + 20) / 4: long stops contribute zero mass-weighted length.
        assert mu_b_minus_from_samples(stops, B) == pytest.approx(7.5)

    def test_stop_exactly_at_b_is_long(self):
        stops = np.array([B, 10.0])
        assert mu_b_minus_from_samples(stops, B) == pytest.approx(5.0)
        assert q_b_plus_from_samples(stops, B) == pytest.approx(0.5)

    def test_q_b_plus_fraction(self):
        stops = np.array([1.0, 2.0, 30.0, 40.0, 50.0])
        assert q_b_plus_from_samples(stops, B) == pytest.approx(3 / 5)

    def test_all_short(self):
        stops = np.array([1.0, 2.0, 3.0])
        assert q_b_plus_from_samples(stops, B) == 0.0

    def test_empty_sample_rejected(self):
        with pytest.raises(InvalidParameterError):
            mu_b_minus_from_samples(np.array([]), B)
        with pytest.raises(InvalidParameterError):
            q_b_plus_from_samples(np.array([]), B)

    def test_negative_sample_rejected(self):
        with pytest.raises(InvalidParameterError):
            mu_b_minus_from_samples(np.array([-1.0]), B)


class TestStopStatistics:
    def test_expected_offline_cost_eq13(self):
        stats = StopStatistics(mu_b_minus=10.0, q_b_plus=0.25, break_even=B)
        assert stats.expected_offline_cost == pytest.approx(10.0 + 0.25 * B)

    def test_from_samples_round_trip(self):
        stops = np.array([5.0, 15.0, 60.0, 90.0])
        stats = StopStatistics.from_samples(stops, B)
        assert stats.mu_b_minus == pytest.approx(5.0)
        assert stats.q_b_plus == pytest.approx(0.5)

    def test_from_distribution_exponential(self):
        dist = Exponential(mean=40.0)
        stats = StopStatistics.from_distribution(dist, B)
        # Closed forms: q+ = e^{-B/m}, mu- = m - (B + m) e^{-B/m}.
        q_expected = np.exp(-B / 40.0)
        mu_expected = 40.0 - (B + 40.0) * q_expected
        assert stats.q_b_plus == pytest.approx(q_expected, rel=1e-9)
        assert stats.mu_b_minus == pytest.approx(mu_expected, rel=1e-9)

    def test_from_distribution_uniform_all_short(self):
        dist = Uniform(0.0, 20.0)
        stats = StopStatistics.from_distribution(dist, B)
        assert stats.q_b_plus == 0.0
        assert stats.mu_b_minus == pytest.approx(10.0)

    def test_normalized_mu(self):
        stats = StopStatistics(14.0, 0.1, B)
        assert stats.normalized_mu == pytest.approx(0.5)

    def test_conditional_mean(self):
        stats = StopStatistics(10.0, 0.5, B)
        assert stats.short_stop_conditional_mean == pytest.approx(20.0)

    def test_conditional_mean_no_short_stops(self):
        stats = StopStatistics(0.0, 1.0, B)
        assert stats.short_stop_conditional_mean == 0.0

    def test_infeasible_statistics_rejected(self):
        # mu_B_minus cannot exceed (1 - q) * B.
        with pytest.raises(InvalidParameterError):
            StopStatistics(mu_b_minus=20.0, q_b_plus=0.5, break_even=B)

    def test_feasibility_boundary_allowed(self):
        stats = StopStatistics(mu_b_minus=(1 - 0.5) * B, q_b_plus=0.5, break_even=B)
        assert stats.mu_b_minus == pytest.approx(14.0)

    @pytest.mark.parametrize("mu,q", [(-1.0, 0.5), (1.0, -0.1), (1.0, 1.1)])
    def test_out_of_domain_rejected(self, mu, q):
        with pytest.raises(InvalidParameterError):
            StopStatistics(mu, q, B)

    def test_rescaled_keeps_values(self):
        stats = StopStatistics(5.0, 0.2, B)
        rescaled = stats.rescaled(47.0)
        assert rescaled.break_even == 47.0
        assert rescaled.mu_b_minus == stats.mu_b_minus
        assert rescaled.q_b_plus == stats.q_b_plus
