"""Unit tests for the average-case (known-distribution) analysis [10]."""

import math

import numpy as np
import pytest

from repro.core.averagecase import (
    expected_cost_of_threshold,
    exponential_expected_cost,
    exponential_optimal_threshold,
    optimal_threshold,
)
from repro.distributions import DiscreteStopDistribution, Exponential, Uniform
from repro.errors import InvalidParameterError

B = 28.0


class TestExponentialClosedForm:
    def test_matches_generic_evaluator(self):
        dist = Exponential(40.0)
        for x in (0.0, 10.0, B, 2 * B):
            assert exponential_expected_cost(x, 40.0, B) == pytest.approx(
                expected_cost_of_threshold(x, dist, B), rel=1e-9
            )

    def test_infinite_threshold_is_mean(self):
        assert exponential_expected_cost(math.inf, 40.0, B) == 40.0

    def test_monotone_decreasing_when_mean_below_b(self):
        costs = [exponential_expected_cost(x, 20.0, B) for x in (0.0, 10.0, 50.0)]
        assert costs[0] > costs[1] > costs[2]

    def test_monotone_increasing_when_mean_above_b(self):
        costs = [exponential_expected_cost(x, 60.0, B) for x in (0.0, 10.0, 50.0)]
        assert costs[0] < costs[1] < costs[2]

    def test_invalid_inputs_rejected(self):
        with pytest.raises(InvalidParameterError):
            exponential_expected_cost(10.0, -1.0, B)
        with pytest.raises(InvalidParameterError):
            exponential_expected_cost(-1.0, 10.0, B)


class TestExponentialBangBang:
    def test_short_mean_prefers_nev(self):
        result = exponential_optimal_threshold(20.0, B)
        assert math.isinf(result.threshold)
        assert result.expected_cost == 20.0

    def test_long_mean_prefers_toi(self):
        result = exponential_optimal_threshold(60.0, B)
        assert result.threshold == 0.0
        assert result.expected_cost == B

    def test_numeric_search_agrees(self):
        for mean in (15.0, 80.0):
            closed = exponential_optimal_threshold(mean, B)
            numeric = optimal_threshold(Exponential(mean), B, grid_size=64)
            assert numeric.expected_cost == pytest.approx(closed.expected_cost, rel=0.01)


class TestNumericSearch:
    def test_interior_optimum_for_bimodal(self):
        # Short stops at 5 s (80%) and long at 200 s (20%): the optimum
        # waits out the short stops then shuts off -> interior threshold.
        dist = DiscreteStopDistribution([5.0, 200.0], [0.8, 0.2])
        result = optimal_threshold(dist, B)
        assert 5.0 <= result.threshold < 200.0
        assert not math.isinf(result.threshold)
        # Expected cost at the optimum: 0.8*5 + 0.2*(x + B) minimized at
        # any x in (5, 200]... actually just above 5: ~ 4 + 0.2*(5+28).
        assert result.expected_cost == pytest.approx(0.8 * 5 + 0.2 * (5 + B), rel=0.05)

    def test_never_worse_than_standard_thresholds(self):
        for dist in (Exponential(40.0), Uniform(0.0, 120.0)):
            best = optimal_threshold(dist, B)
            for x in (0.0, B / 2, B, 2 * B):
                assert best.expected_cost <= expected_cost_of_threshold(x, dist, B) + 1e-6

    def test_never_worse_than_offline_bound(self):
        from repro.core.analysis import expected_offline_cost

        dist = Uniform(0.0, 120.0)
        best = optimal_threshold(dist, B)
        assert best.expected_cost >= expected_offline_cost(dist, B) - 1e-9

    def test_tiny_grid_rejected(self):
        with pytest.raises(InvalidParameterError):
            optimal_threshold(Exponential(40.0), B, grid_size=4)
