"""Benchmark: in-sample vs out-of-sample Figure 4.

The paper's Figure 4 estimates each vehicle's statistics and evaluates
on the *same* stops.  This benchmark runs the honest train/test split on
the full synthetic fleets and quantifies the estimation optimism — which
turns out to be small (a week of stops is plenty for two robust
statistics), supporting the validity of the paper's protocol.
"""

from repro.constants import B_SSV
from repro.evaluation import compare_in_vs_out_of_sample
from repro.fleet import load_fleets

from .conftest import RESULTS_DIR


def test_holdout_vs_in_sample(benchmark, results_dir):
    def run():
        fleets = load_fleets(vehicles_per_area=150)
        rows = {}
        for area, vehicles in fleets.items():
            rows[area] = compare_in_vs_out_of_sample(vehicles, B_SSV)
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    lines = ["area,strategy,in_sample_mean_cr,out_of_sample_mean_cr,optimism,in_wins,out_wins"]
    for area, comparisons in sorted(rows.items()):
        by_name = {c.strategy: c for c in comparisons}
        proposed = by_name["Proposed"]
        # Honest protocol: the proposed strategy still wins the majority
        # and its optimism (out - in mean CR) stays small.
        assert proposed.out_of_sample_wins >= 0.7 * sum(
            c.out_of_sample_wins for c in comparisons
        )
        assert abs(proposed.optimism) < 0.06
        # Statistics-free N-Rand's mean CR is protocol-invariant.
        assert abs(by_name["N-Rand"].optimism) < 1e-9
        for comparison in comparisons:
            lines.append(
                f"{area},{comparison.strategy},{comparison.in_sample_mean_cr:.4f},"
                f"{comparison.out_of_sample_mean_cr:.4f},{comparison.optimism:+.4f},"
                f"{comparison.in_sample_wins},{comparison.out_of_sample_wins}"
            )
    (results_dir / "holdout_vs_in_sample.csv").write_text("\n".join(lines) + "\n")
