"""Benchmark: the b-Rand improvement over the paper's four-vertex optimum.

Quantifies the reproduction finding (see EXPERIMENTS.md "Discrepancy
found"): the paper's Eq. (18) ansatz misses truncated-exponential
strategies, and including them (the five-candidate
:class:`~repro.core.brand.ImprovedConstrainedSolver`) strictly lowers
the worst-case CR over a sizeable part of the feasible plane — by up to
~0.17 CR in the paper's b-DET region — while matching it exactly in the
DET/TOI regions, where the four-vertex solution is genuinely optimal
(confirmed against the numeric minimax game).
"""

import numpy as np

from repro.constants import B_SSV
from repro.core import (
    ImprovedConstrainedSolver,
    StopStatistics,
    solve_constrained_game,
)

from .conftest import RESULTS_DIR


def test_improved_solver_over_plane(benchmark, results_dir):
    mu_fracs = np.linspace(0.01, 0.95, 24)
    qs = np.linspace(0.02, 0.97, 24)

    def sweep():
        rows = []
        for mu_frac in mu_fracs:
            for q in qs:
                if mu_frac > 1.0 - q:
                    continue
                stats = StopStatistics(mu_frac * B_SSV, q, B_SSV)
                improved = ImprovedConstrainedSolver(stats).select()
                rows.append(
                    (
                        mu_frac,
                        q,
                        improved.paper_selection.name,
                        improved.chosen_name,
                        improved.paper_selection.worst_case_cr,
                        improved.worst_case_cr,
                        improved.improvement_over_paper,
                    )
                )
        return rows

    rows = benchmark(sweep)
    improvements = np.array([row[6] for row in rows])
    assert np.all(improvements >= -1e-9)
    # Strict improvement on a substantial region; headline gap > 0.1 CR.
    assert (improvements > 1e-6).mean() > 0.2
    assert improvements.max() > 0.1
    # Every cell where the paper picked b-DET improves strictly (the
    # degenerate mu- ~ 0 boundary is the only place they can tie, and the
    # grid starts at mu- = 0.01 (1-q) B > 0).
    for row in rows:
        if row[2] == "b-DET":
            assert row[6] > 1e-9, row
    # Persist the improvement map.
    out = results_dir / "improved_vs_paper.csv"
    with open(out, "w") as handle:
        handle.write("normalized_mu,q_b_plus,paper_choice,improved_choice,paper_cr,improved_cr,improvement\n")
        for row in rows:
            handle.write(",".join(f"{v:.6g}" if isinstance(v, float) else str(v) for v in row) + "\n")


def test_improved_matches_minimax_game(benchmark):
    """Spot-check: the five-candidate optimum equals the numeric game
    value (within player-discretization slack) at mixed-region points."""
    points = [(0.02, 0.3), (0.1, 0.2), (0.3, 0.15), (0.05, 0.8)]

    def run():
        out = []
        for mu_frac, q in points:
            stats = StopStatistics(mu_frac * B_SSV, q, B_SSV)
            improved = ImprovedConstrainedSolver(stats).select()
            game = solve_constrained_game(stats, grid_size=150)
            out.append((improved.worst_case_cr, game.value))
        return out

    pairs = benchmark.pedantic(run, iterations=1, rounds=1)
    for improved_cr, game_value in pairs:
        assert improved_cr <= game_value + 1e-6  # game can only be higher
        assert abs(improved_cr - game_value) < 0.01
