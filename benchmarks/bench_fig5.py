"""Benchmark: Figure 5 — worst-case CR vs mean stop length, B = 28."""

import numpy as np

from repro.experiments import run_experiment

from .conftest import emit


def test_fig5_sweep(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: run_experiment("fig5"), iterations=1, rounds=1
    )
    emit(result, results_dir)
    analytic = result.table("worst-case CR (analytic)")
    idx = {name: i for i, name in enumerate(analytic.headers)}
    rows = analytic.rows
    # Shape facts of the paper's Figure 5:
    # DET functions well only in light traffic; TOI only in heavy traffic.
    assert rows[0][idx["DET"]] < rows[0][idx["TOI"]]
    assert rows[-1][idx["TOI"]] < rows[-1][idx["DET"]]
    # N-Rand is flat at e/(e-1).
    nrand = [row[idx["N-Rand"]] for row in rows]
    assert np.allclose(nrand, np.e / (np.e - 1), atol=1e-3)
    # The proposed curve lower-bounds every other strategy at every mean.
    for row in rows:
        others = [row[idx[n]] for n in ("TOI", "DET", "N-Rand", "MOM-Rand")]
        assert row[idx["Proposed"]] <= min(others) + 1e-6
    assert not any("WARNING" in note for note in result.notes)
