"""Benchmark: Figure 2 — projected worst-case CR views."""

import numpy as np

from repro.experiments import run_experiment

from .conftest import emit


def test_fig2_projected_views(benchmark, results_dir):
    result = benchmark(run_experiment, "fig2", points=150)
    emit(result, results_dir)
    # Every panel: proposed is the lower envelope of the four vertices.
    for note in result.notes:
        assert "proposed == lower envelope: True" in note
    # Panels (c)/(d) (mu- = 0.02B / 0.05B): b-DET strictly improves
    # somewhere — the improvement the paper highlights.
    for note in result.notes[2:]:
        assert int(note.rsplit(":", 1)[1]) > 0


def test_fig2_panel_c_bdet_window(benchmark, results_dir):
    """The b-DET win region of panel (c) sits at moderate q_B_plus."""
    result = benchmark(run_experiment, "fig2", points=200)
    table = result.table("panel c (normalized_mu=0.02)")
    idx = {name: i for i, name in enumerate(table.headers)}
    win_axis = [
        row[idx["q_b_plus"]]
        for row in table.rows
        if row[idx["b-DET"]] != ""
        and all(row[idx[n]] != "" for n in ("TOI", "DET", "N-Rand"))
        and row[idx["b-DET"]]
        < min(row[idx["TOI"]], row[idx["DET"]], row[idx["N-Rand"]]) - 1e-9
    ]
    assert win_axis, "b-DET never strictly won on panel (c)"
    assert 0.05 < min(win_axis) and max(win_axis) < 0.95
