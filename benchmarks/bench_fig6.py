"""Benchmark: Figure 6 — worst-case CR vs mean stop length, B = 47."""

import numpy as np

from repro.experiments import run_experiment

from .conftest import emit


def test_fig6_sweep(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: run_experiment("fig6"), iterations=1, rounds=1
    )
    emit(result, results_dir)
    analytic = result.table("worst-case CR (analytic)")
    idx = {name: i for i, name in enumerate(analytic.headers)}
    rows = analytic.rows
    assert rows[0][idx["DET"]] < rows[0][idx["TOI"]]
    assert rows[-1][idx["TOI"]] < rows[-1][idx["DET"]]
    for row in rows:
        others = [row[idx[n]] for n in ("TOI", "DET", "N-Rand", "MOM-Rand")]
        assert row[idx["Proposed"]] <= min(others) + 1e-6
    assert not any("WARNING" in note for note in result.notes)


def test_fig5_fig6_crossover_shifts_right(benchmark, results_dir):
    """With the larger break-even (47 vs 28), the traffic level at which
    TOI overtakes DET moves to longer mean stops — stop-start pays off
    later when restarts are more expensive."""
    from repro.evaluation import sweep_analytic
    from repro.fleet.areas import area_config

    base = area_config("chicago").stop_length_distribution()
    means = np.linspace(10.0, 300.0, 25)

    def both():
        return (
            sweep_analytic(base, means, 28.0, grid_size=128),
            sweep_analytic(base, means, 47.0, grid_size=128),
        )

    sweep28, sweep47 = benchmark.pedantic(both, iterations=1, rounds=1)
    cross28 = sweep28.crossover_mean("DET", "TOI")
    cross47 = sweep47.crossover_mean("DET", "TOI")
    assert cross28 is not None and cross47 is not None
    assert cross47 > cross28
