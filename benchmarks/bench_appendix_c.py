"""Benchmark: Appendix C — break-even interval derivation."""

from repro.experiments import run_experiment

from .conftest import emit


def test_appendix_c_break_even(benchmark, results_dir):
    result = benchmark(run_experiment, "appc")
    emit(result, results_dir)
    summary = result.table("summary")
    idx = {name: i for i, name in enumerate(summary.headers)}
    values = {row[idx["vehicle"]]: row for row in summary.rows}
    # Eq. 46 idling cost and the headline break-even estimates.
    for row in summary.rows:
        assert abs(row[idx["idling_cost_cents_per_s"]] - 0.0258) < 2e-4
    assert abs(values["SSV"][idx["computed_B_s"]] - 28.0) < 1.5
    assert abs(values["conventional"][idx["computed_B_s"]] - 47.0) < 1.5
    # Component sanity: fuel is exactly 10 s; SSV starter free;
    # conventional starter ~19.4 s; battery ~18.8 s.
    components = {
        (row[0], row[1]): row[2] for row in result.table("components").rows
    }
    assert components[("SSV", "fuel")] == 10.0
    assert components[("SSV", "starter wear")] == 0.0
    assert abs(components[("conventional", "starter wear")] - 19.38) < 0.1
    assert abs(components[("SSV", "battery wear")] - 18.8) < 0.2
