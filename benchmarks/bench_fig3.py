"""Benchmark: Figure 3 — stop-length distributions of the three areas."""

from repro.experiments import run_experiment

from .conftest import emit


def test_fig3_distributions(benchmark, results_dir):
    result = benchmark(run_experiment, "fig3", vehicles_per_area=120)
    emit(result, results_dir)
    diagnostics = result.table("diagnostics")
    idx = {name: i for i, name in enumerate(diagnostics.headers)}
    means = {}
    for row in diagnostics.rows:
        # Paper claim: every area rejects the exponential fit.
        assert row[idx["exponential_rejected"]]
        means[row[idx["area"]]] = row[idx["mean_s"]]
    # Areas share shape but differ in mean; Chicago is the short-stop,
    # signal-dominated area in our calibration.
    assert means["chicago"] < means["california"]
    assert means["chicago"] < means["atlanta"]
