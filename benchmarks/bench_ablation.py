"""Ablation benchmarks for the design choices DESIGN.md calls out.

These are not paper artifacts; they probe *why* the design is what it is:

1. **Statistic choice** — Appendix B argues the plain first moment adds
   nothing (mu-only collapses to N-Rand); the (mu_B_minus, q_B_plus) pair
   strictly improves the guarantee over most of the plane.
2. **b-DET threshold choice** — the closed-form ``b*`` versus naive
   alternatives, judged by worst-case expected cost over Q.
3. **Estimation noise** — how many observed stops the proposed selector
   needs before it reliably beats the statistics-free N-Rand.
4. **Stop-extraction sensitivity** — how the speed threshold / merge gap
   of the extraction pipeline shifts the extracted distribution.
"""

import numpy as np

from repro.constants import B_SSV, E_RATIO
from repro.core import (
    BDet,
    ConstrainedSkiRentalSolver,
    NRand,
    ProposedOnline,
    StopStatistics,
    empirical_cr,
    optimal_b,
)
from repro.core.analysis import worst_case_expected_cost
from repro.drivecycle import CongestionModel, DriveCycleSimulator, grid_network
from repro.fleet import area_config
from repro.traces import extract_stops


def test_ablation_statistic_choice(benchmark):
    """(mu-, q+) vs mu-only: the proposed guarantee improves on N-Rand
    (the best mu-only guarantee, per Appendix B) over most of the plane."""

    def sweep():
        improvements = []
        for mu_frac in np.linspace(0.02, 0.9, 15):
            for q in np.linspace(0.02, 0.95, 15):
                if mu_frac > 1 - q:
                    continue
                stats = StopStatistics(mu_frac * B_SSV, q, B_SSV)
                cr = ConstrainedSkiRentalSolver(stats).select().worst_case_cr
                improvements.append(E_RATIO - cr)
        return np.asarray(improvements)

    improvements = benchmark(sweep)
    assert np.all(improvements >= -1e-9)  # never worse than mu-only
    # Strict improvement on a substantial share of the plane.
    assert (improvements > 1e-6).mean() > 0.5


def test_ablation_bdet_threshold_choice(benchmark):
    """b* versus naive b choices, by worst-case expected cost over Q."""
    stats = StopStatistics(0.02 * B_SSV, 0.3, B_SSV)
    b_star = optimal_b(stats)
    conditional = stats.short_stop_conditional_mean
    naive_choices = {
        "half_B": B_SSV / 2.0,
        "just_above_conditional_mean": min(conditional * 1.5 + 0.5, B_SSV * 0.99),
        "quarter_B": B_SSV / 4.0,
    }

    def evaluate():
        costs = {"b_star": worst_case_expected_cost(BDet(B_SSV, b_star), stats, 1024)}
        for name, b in naive_choices.items():
            costs[name] = worst_case_expected_cost(BDet(B_SSV, b), stats, 1024)
        return costs

    costs = benchmark(evaluate)
    for name, cost in costs.items():
        assert costs["b_star"] <= cost + 1e-3 * B_SSV, name


def test_ablation_estimation_noise(benchmark):
    """The selector's edge over N-Rand as a function of sample size."""
    distribution = area_config("california").stop_length_distribution()
    rng = np.random.default_rng(99)
    eval_stops = distribution.sample(4000, rng)

    def edge_for(sample_size: int, trials: int = 12) -> float:
        wins = 0
        for _ in range(trials):
            training = distribution.sample(sample_size, rng)
            proposed = ProposedOnline.from_samples(training, B_SSV)
            cr_proposed = empirical_cr(proposed, eval_stops, B_SSV)
            cr_nrand = empirical_cr(NRand(B_SSV), eval_stops, B_SSV)
            wins += cr_proposed <= cr_nrand + 1e-9
        return wins / trials

    def sweep():
        return {size: edge_for(size) for size in (5, 20, 80, 320)}

    edges = benchmark.pedantic(sweep, iterations=1, rounds=1)
    # With a week of stops (tens to hundreds) the selector beats N-Rand
    # essentially always; even small samples do well on this fleet.
    assert edges[320] >= 0.95
    assert edges[80] >= 0.9
    assert edges[320] >= edges[5] - 1e-9


def test_ablation_break_even_sensitivity(benchmark):
    """Appendix C sensitivity: how fuel price moves the break-even
    interval and, through it, the policy landscape.

    Wear costs are fixed in cents while the idling cost scales with fuel
    price, so B falls toward the 10-second fuel floor as fuel gets
    expensive — cheap fuel makes shutting off *less* attractive.
    """
    from repro.core import StopStatistics
    from repro.vehicle import conventional_cost_model, ssv_cost_model
    from repro.vehicle.costmodel import VehicleCostModel
    from repro.vehicle.engine import FORD_FUSION_2011
    from repro.vehicle.battery import STOP_START_BATTERY
    from repro.vehicle.starter import CONVENTIONAL_STARTER, SSV_STARTER

    prices = (2.0, 3.0, 3.5, 4.5, 6.0)

    def sweep():
        table = {}
        for ssv in (True, False):
            bs = []
            for price in prices:
                model = VehicleCostModel(
                    engine=FORD_FUSION_2011,
                    starter=SSV_STARTER if ssv else CONVENTIONAL_STARTER,
                    battery=STOP_START_BATTERY,
                    fuel_price_per_gallon=price,
                )
                bs.append(model.break_even_seconds())
            table["ssv" if ssv else "conventional"] = bs
        return table

    table = benchmark(sweep)
    for kind, bs in table.items():
        # Monotone decreasing in fuel price, floored by the 10 s of
        # restart fuel (which scales with fuel price and so never drops
        # out of the ratio).
        assert all(b1 > b2 for b1, b2 in zip(bs, bs[1:])), (kind, bs)
        assert all(b > 10.0 for b in bs), (kind, bs)
    # The paper's $3.5 reference points are in the table.
    assert abs(table["ssv"][2] - 28.96) < 0.1
    assert abs(table["conventional"][2] - 48.34) < 0.1


def test_ablation_stop_extraction(benchmark):
    """Extraction thresholds move the stop-length distribution: a laxer
    speed threshold counts queue creep as stopped (more stop mass), a
    larger merge gap fuses adjacent stops (fewer, longer stops)."""
    simulator = DriveCycleSimulator(
        grid_network(rows=6, cols=6, signal_density=0.8),
        CongestionModel(level=0.6),
    )
    rng = np.random.default_rng(3)
    trips = [simulator.simulate_trip(rng) for _ in range(25)]

    def extract_all(threshold: float, merge_gap: float):
        stops = []
        for trip in trips:
            stops.extend(
                stop.duration
                for stop in extract_stops(
                    trip.speed_trace, speed_threshold=threshold, merge_gap=merge_gap
                )
            )
        return np.asarray(stops)

    def sweep():
        return {
            "baseline": extract_all(0.5, 3.0),
            "lax_speed": extract_all(2.0, 3.0),
            "wide_merge": extract_all(0.5, 30.0),
        }

    extracted = benchmark.pedantic(sweep, iterations=1, rounds=1)
    baseline = extracted["baseline"]
    assert baseline.size > 0
    # Lax speed threshold: at least as much total stopped time.
    assert extracted["lax_speed"].sum() >= baseline.sum() - 1e-9
    # Wide merge gap: no more stops than the baseline, each at least as
    # long on average.
    assert extracted["wide_merge"].size <= baseline.size
    if extracted["wide_merge"].size:
        assert extracted["wide_merge"].mean() >= baseline.mean() - 1e-9
