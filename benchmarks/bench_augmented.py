"""Benchmark: learning-augmented advising vs the plain adaptive session.

Two regimes over the same synthetic day/night fleet trace (short stops
by day, long stops by night — the time-of-day structure every stop
event already carries):

* ``augmented_good`` — the contextual predictor learns the structure
  online; the realized competitive ratio must beat the plain adaptive
  session's on the identical trace (the acceptance gate);
* ``augmented_corrupted`` — an adversarial :class:`ConstantPredictor`
  always claims the stop is about to end (so the session idles up to
  ``B/λ`` on every long night stop); the realized CR must stay within
  the PSK ``1 + 1/λ`` robustness bound no matter how wrong the advice
  is.

Both regimes also report the CVaR tail of the per-stop cost ratio (the
mean of the worst 5% of ``cost/opt`` outcomes) — the quantity the
serving tier's ``--cvar-alpha`` knob caps during warm-up.  Drift
detection is disabled (huge Page-Hinkley thresholds) so the comparison
isolates prediction quality from ladder dynamics.  The module writes
``results/BENCH_augmented.json`` on teardown — see
``docs/performance.md``.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.service import (
    AdvisorSession,
    AugmentedAdvisorSession,
    AugmentedSessionConfig,
    SessionConfig,
)

from .conftest import emit_bench_json

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
BREAK_EVEN = 28.0  # the paper's vehicle class 1
N_EVENTS = 960 if QUICK else 4800  # 20 / 100 simulated days at 2 stops/h
TAIL_ALPHA = 0.05
CORRUPTED_TRUST = 0.4

#: Shared session knobs; Page-Hinkley effectively off (see module doc).
BASE = dict(
    break_even=BREAK_EVEN,
    min_samples=3,
    dedup_window=4096,
    length_threshold=1e9,
    split_threshold=1e9,
    seed=3,
)

_RECORDS: list[dict] = []


@pytest.fixture(scope="module")
def bench_records(results_dir):
    yield _RECORDS
    emit_bench_json(_RECORDS, results_dir, filename="BENCH_augmented.json")


def _trace() -> list[tuple[str, float, float]]:
    rng = np.random.default_rng(3)
    events = []
    for index in range(N_EVENTS):
        timestamp = index * 1800.0  # two stops per hour
        hour = int((timestamp % 86400.0) // 3600.0)
        mean = 5.0 if hour < 12 else 200.0
        stop = float(mean * rng.lognormal(0.0, 0.1))
        events.append((f"e-{index:05d}", timestamp, stop))
    return events


def _run(session, events) -> dict:
    """Ingest the trace; realized CR and the per-stop cost-ratio tail."""
    ratios = np.empty(len(events))
    total_cost = 0.0
    offline = 0.0
    t0 = time.perf_counter()
    for index, (event_id, timestamp, stop) in enumerate(events):
        decision = session.submit(event_id, timestamp, stop)
        opt = min(stop, BREAK_EVEN)
        ratios[index] = decision["cost"] / opt
        total_cost += decision["cost"]
        offline += opt
    elapsed = time.perf_counter() - t0
    k = max(1, int(round(TAIL_ALPHA * ratios.size)))
    return {
        "realized_cr": total_cost / offline,
        "cvar_tail_ratio": float(np.sort(ratios)[-k:].mean()),
        "max_ratio": float(ratios.max()),
        "wall_time_s": elapsed,
    }


def test_augmented_good_and_corrupted(benchmark, bench_records):
    events = _trace()

    plain = _run(AdvisorSession("bench", SessionConfig(**BASE)), events)

    good_config = AugmentedSessionConfig(
        **BASE, predictor="contextual", predictor_min_samples=4, cvar_alpha=0.1
    )
    good = benchmark.pedantic(
        _run,
        args=(AugmentedAdvisorSession("bench", good_config), events),
        iterations=1,
        rounds=1,
    )

    corrupted_config = AugmentedSessionConfig(
        **BASE, predictor="constant:0", trust=CORRUPTED_TRUST
    )
    corrupted = _run(AugmentedAdvisorSession("bench", corrupted_config), events)
    bound = corrupted_config.robustness_guarantee

    # Acceptance gates: good predictions must beat plain adaptive on
    # the identical trace; corrupted ones may never breach 1 + 1/λ.
    assert good["realized_cr"] < plain["realized_cr"]
    assert corrupted["realized_cr"] <= bound + 1e-9
    assert corrupted["max_ratio"] <= bound + 1e-9

    bench_records.append(
        {
            "op": "augmented_good",
            "n": len(events),
            "predictor": "contextual",
            "realized_cr": good["realized_cr"],
            "realized_cr_plain": plain["realized_cr"],
            "cvar_tail_ratio": good["cvar_tail_ratio"],
            "cvar_tail_ratio_plain": plain["cvar_tail_ratio"],
            "tail_alpha": TAIL_ALPHA,
            "wall_time_s": good["wall_time_s"],
        }
    )
    bench_records.append(
        {
            "op": "augmented_corrupted",
            "n": len(events),
            "predictor": "constant:0",
            "trust": CORRUPTED_TRUST,
            "robustness_bound": bound,
            "realized_cr": corrupted["realized_cr"],
            "realized_cr_plain": plain["realized_cr"],
            "cvar_tail_ratio": corrupted["cvar_tail_ratio"],
            "cvar_tail_ratio_plain": plain["cvar_tail_ratio"],
            "max_ratio": corrupted["max_ratio"],
            "tail_alpha": TAIL_ALPHA,
            "wall_time_s": corrupted["wall_time_s"],
        }
    )
