"""Shared helpers for the benchmark suite.

Each benchmark regenerates one paper artifact (timed with
pytest-benchmark) and writes the reproduced tables to ``results/`` at the
repository root, so the rows the paper reports are inspectable after a
``pytest benchmarks/ --benchmark-only`` run.

``emit_bench_json`` additionally writes the machine-readable perf
trajectory (``BENCH_*.json``): op name, problem size, wall time, speedup
versus the scalar reference path measured in the same run, and the git
SHA the numbers were taken at — so every PR has a comparable baseline.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


def emit(result, results_dir: Path) -> None:
    """Write an ExperimentResult's tables as CSV and its report as text.

    Timings are elided from the stored report so the committed
    ``results/`` files stay byte-stable across machines and runs.
    """
    result.write_csvs(results_dir)
    report_path = results_dir / f"{result.experiment_id}_report.txt"
    report_path.write_text(result.to_ascii(include_timings=False) + "\n")


def _git_sha() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            check=True,
            timeout=10,
        ).stdout.strip()
    except Exception:  # detached tarballs, missing git, ...
        return "unknown"


def host_metadata() -> dict:
    """The host facts that make cross-machine BENCH numbers interpretable.

    ``cpu_count`` is the *usable* core count (cgroup/affinity-aware
    where the platform exposes it) — the number that decides whether a
    multi-process scaling figure was physically achievable on the host
    that produced it.
    """
    try:
        usable = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        usable = os.cpu_count() or 1
    return {
        "cpu_count": usable,
        "cpu_count_physical_hint": os.cpu_count(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
    }


def emit_bench_json(
    records: list[dict], results_dir: Path, filename: str = "BENCH_kernels.json"
) -> Path:
    """Write the perf-trajectory JSON for a benchmark module.

    ``records`` entries carry ``op`` (kernel name), ``n`` (problem
    size), ``wall_time_s`` / ``scalar_wall_time_s`` (best-of-rounds
    seconds for the kernel and the scalar reference measured in the
    same run), ``speedup`` and ``max_abs_diff`` (the kernel-vs-scalar
    agreement actually observed).  Layout is stable so files from
    successive PRs can be diffed mechanically.
    """
    payload = {
        "schema": "repro-bench-v1",
        "git_sha": _git_sha(),
        "quick_mode": bool(os.environ.get("REPRO_BENCH_QUICK")),
        "host": host_metadata(),
        "benchmarks": sorted(records, key=lambda record: record["op"]),
    }
    path = results_dir / filename
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path
