"""Shared helpers for the benchmark suite.

Each benchmark regenerates one paper artifact (timed with
pytest-benchmark) and writes the reproduced tables to ``results/`` at the
repository root, so the rows the paper reports are inspectable after a
``pytest benchmarks/ --benchmark-only`` run.
"""

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


def emit(result, results_dir: Path) -> None:
    """Write an ExperimentResult's tables as CSV and its report as text.

    Timings are elided from the stored report so the committed
    ``results/`` files stay byte-stable across machines and runs.
    """
    result.write_csvs(results_dir)
    report_path = results_dir / f"{result.experiment_id}_report.txt"
    report_path.write_text(result.to_ascii(include_timings=False) + "\n")
