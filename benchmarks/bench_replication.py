"""Benchmark: WAL shipping, promotion and backup/restore throughput.

Three ops over the same populated primary (a registered fleet state
dir whose WAL still holds its tail — a crash-consistent primary, the
shape a standby actually ships from):

* ``ship_full`` — one cold catch-up pass (``sync_once`` into an empty
  local standby): frames/s and shipped MB/s;
* ``promote`` — lock-fenced standby promotion (the failover moment):
  wall time to a serving-ready, bit-identical fleet;
* ``backup_restore`` — cold archive round trip under the content
  manifest, hash verification included.

Correctness gates before any timing is reported: the promoted
standby's per-vehicle digests must be bit-identical to a clean run of
the same stream, the incremental pass after a catch-up must ship zero
frames, and the restored archive must pass ``fleet_doctor`` with
``verify_restore`` and promote to the same digests.

The module writes ``results/BENCH_replication.json`` on teardown —
see ``docs/performance.md``.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.service import SessionConfig
from repro.service.advisor import RegisteredAdvisorService
from repro.service.replica import (
    LocalReplicaTarget,
    backup,
    fleet_doctor,
    promote,
    restore,
    sync_once,
)
from repro.service.soak import build_fleet_events

from .conftest import emit_bench_json

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
BREAK_EVEN = 28.0  # the paper's vehicle class 1
VEHICLES = 4 if QUICK else 8
STOPS = 150 if QUICK else 1_000
#: Compaction cadence: large enough that the WAL carries a real tail
#: to ship, small enough that snapshots + deltas are in play too.
SNAPSHOT_EVERY = 64
_RECORDS: list[dict] = []


@pytest.fixture(scope="module")
def bench_records(results_dir):
    yield _RECORDS
    emit_bench_json(_RECORDS, results_dir, filename="BENCH_replication.json")


def _config() -> SessionConfig:
    return SessionConfig(
        break_even=BREAK_EVEN,
        snapshot_every=SNAPSHOT_EVERY,
        dedup_window=256,
        seed=3,
    )


def _populate(state_dir, events) -> dict:
    """Serve the stream as a registered primary; abandon without close
    (a clean close compacts the WAL away — nothing left to ship)."""
    service = RegisteredAdvisorService(state_dir, _config(), policy="repair")
    for record in events:
        service.process(record)
    snapshot = service.health_snapshot()
    digests = {
        vehicle: info["digest"] for vehicle, info in snapshot["vehicles"].items()
    }
    del service  # crash-abandon: keep the WAL tail
    return digests


def _dir_bytes(root) -> int:
    return sum(p.stat().st_size for p in root.rglob("*") if p.is_file())


def test_replication_throughput(benchmark, bench_records, tmp_path):
    events = build_fleet_events(vehicles=VEHICLES, stops_per_vehicle=STOPS, seed=3)
    primary = tmp_path / "primary"
    reference = _populate(primary, events)
    primary_bytes = _dir_bytes(primary)

    # -- ship_full: cold catch-up into an empty standby --------------------
    def ship(standby):
        target = LocalReplicaTarget(standby)
        stats = sync_once(primary, target)
        target.close()
        return stats

    t0 = time.perf_counter()
    stats = ship(tmp_path / "standby-warm")
    ship_s = time.perf_counter() - t0
    assert stats["frames"] > 0, "primary WAL tail is empty — nothing was shipped"
    # Incremental gate: a second pass over an up-to-date standby is a no-op.
    quiet = ship(tmp_path / "standby-warm")
    assert quiet["frames"] == 0 and quiet["snapshots"] == 0

    standby = tmp_path / "standby"
    benchmark.pedantic(ship, args=(standby,), iterations=1, rounds=1)

    # -- promote: the failover moment --------------------------------------
    t0 = time.perf_counter()
    promoted = promote(standby, _config(), fence=primary)
    promote_s = time.perf_counter() - t0
    # Digest gate: failover is bit-identical to the primary's live state.
    assert promoted["digests"] == reference, "promoted standby diverged"

    # -- backup_restore: cold archive round trip ----------------------------
    archive = tmp_path / "archive"
    restored = tmp_path / "restored"
    t0 = time.perf_counter()
    manifest = backup(standby, archive)
    restore(archive, restored)
    roundtrip_s = time.perf_counter() - t0
    doctor = fleet_doctor(restored, archive_dir=archive, verify_restore=True)
    assert doctor["ok"], doctor["problems"]
    assert promote(restored, _config())["digests"] == reference

    archive_bytes = _dir_bytes(archive)
    _RECORDS.extend(
        [
            {
                "op": "ship_full",
                "n": len(events),
                "vehicles": VEHICLES,
                "wall_time_s": ship_s,
                "frames": stats["frames"],
                "frames_per_s": stats["frames"] / ship_s,
                "mb_per_s": primary_bytes / ship_s / 1e6,
            },
            {
                "op": "promote",
                "n": len(events),
                "vehicles": VEHICLES,
                "wall_time_s": promote_s,
                "sessions_per_s": len(promoted["vehicles"]) / promote_s,
            },
            {
                "op": "backup_restore",
                "n": len(events),
                "vehicles": VEHICLES,
                "wall_time_s": roundtrip_s,
                "files": len(manifest["files"]),
                "archive_mb": archive_bytes / 1e6,
                "mb_per_s": 2 * archive_bytes / roundtrip_s / 1e6,
            },
        ]
    )
