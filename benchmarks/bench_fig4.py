"""Benchmark: Figure 4 — per-vehicle CR comparison (the paper's headline
evaluation, full 1182-vehicle fleets)."""

from repro.experiments import run_experiment

from .conftest import emit


def test_fig4_full_fleet(benchmark, results_dir):
    # Full paper-scale fleets: 217 + 312 + 653 vehicles, both break-evens.
    result = benchmark.pedantic(
        lambda: run_experiment("fig4"), iterations=1, rounds=1
    )
    emit(result, results_dir)
    cr_table = result.table("cr")
    by_group: dict = {}
    for break_even, area, name, worst, mean in cr_table.rows:
        by_group.setdefault((break_even, area), {})[name] = (worst, mean)
    for (break_even, area), values in by_group.items():
        worst_proposed = values["Proposed"][0]
        # Headline: the proposed strategy has the smallest worst-case CR
        # in every area, for both vehicle classes.
        for name, (worst, _mean) in values.items():
            if name != "Proposed":
                assert worst_proposed <= worst + 1e-9, (break_even, area, name)
    # Win counts: proposed best on the large majority (paper: 1169/1182
    # for B=28, 977/1182 for B=47), with B=28 dominating B=47.
    win_table = result.table("win counts")
    idx = {name: i for i, name in enumerate(win_table.headers)}
    wins = {28.0: 0, 47.0: 0}
    totals = {28.0: 0, 47.0: 0}
    for row in win_table.rows:
        wins[row[idx["break_even"]]] += row[idx["Proposed"]]
        totals[row[idx["break_even"]]] += row[idx["vehicles"]]
    assert totals[28.0] == totals[47.0] == 1182
    assert wins[28.0] >= 0.9 * 1182
    assert wins[47.0] >= 0.75 * 1182
    assert wins[28.0] >= wins[47.0]
