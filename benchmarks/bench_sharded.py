"""Benchmark: sharded multi-process serving vs a single-shard fleet.

One op, ``serve_sharded``: a synthetic fleet-scale traffic stream —
configurable vehicle count, sliding active-set arrival process and
malformed-record rate — routed through
:class:`repro.service.shard.ShardedAdvisorService` at each shard count
in ``SHARD_COUNTS``, every worker running the durable columnar path
(``fsync=True``).  Reported per shard count: events/s and the p50/p99
dispatch-to-ack latency (the worst case an event in a chunk waited for
its decision, queueing included).

Correctness gates before any timing is reported:

* **digest gate** — the per-vehicle ``state_digest()`` map must be
  bit-identical across every shard count (sharding is a pure
  partition, never a behavior change);
* **scaling gate** — events/s at the highest shard count must be
  >= 2.5x the 1-shard run in full mode (>= 1.8x at 2 shards in quick
  mode).  The gate is *enforced* only when the host has at least as
  many usable cores as shards (``parallel_headroom()``): N workers
  time-slicing fewer cores cannot scale, and a wall-clock assertion
  there would only measure the scheduler.  The measured ratio and the
  enforcement decision are recorded in the artifact either way, next
  to the host metadata that explains them.

The module writes ``results/BENCH_sharded.json`` on teardown — see
``docs/performance.md``.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.service import SessionConfig
from repro.service.shard import ShardedAdvisorService, parallel_headroom

from .conftest import emit_bench_json

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
BREAK_EVEN = 28.0  # the paper's vehicle class 1
#: Shard counts measured (first entry is the baseline).
SHARD_COUNTS = (1, 2) if QUICK else (1, 4)
#: Distinct vehicles in the synthetic stream (the acceptance criterion
#: asks for p99 at >= 100k vehicles in full mode).
VEHICLES = 2_000 if QUICK else 100_000
#: Total events routed per shard count.
EVENTS = 24_000 if QUICK else 200_000
#: Vehicles concurrently active (the arrival process's working set).
ACTIVE = 256 if QUICK else 1_024
#: Fraction of lines that are malformed (garbage JSON / bad fields).
MALFORMED_RATE = 0.002
#: Lines routed per parent-side chunk.
CHUNK = 1_024 if QUICK else 8_192
#: Scaling floor at the highest shard count (enforced only when the
#: host has the cores — see module docstring).
FLOOR = 1.8 if QUICK else 2.5
_RECORDS: list[dict] = []


@pytest.fixture(scope="module")
def bench_records(results_dir):
    yield _RECORDS
    emit_bench_json(_RECORDS, results_dir, filename="BENCH_sharded.json")


def synthetic_traffic(
    vehicles: int = VEHICLES,
    events: int = EVENTS,
    *,
    seed: int = 3,
    active: int = ACTIVE,
    malformed_rate: float = MALFORMED_RATE,
) -> tuple[list[str], int]:
    """The load generator: a JSONL fleet stream; returns (lines, malformed).

    Arrival process: a sliding window of ``active`` concurrently-active
    vehicles; every ``events // vehicles`` events the oldest vehicle
    retires and the next unseen one joins (its first event is emitted at
    the join, so every one of the ``vehicles`` ids is guaranteed to
    appear), the rest of the stream picks uniformly from the window —
    clustered per-vehicle runs, what a real depot feed looks like and
    what gives the columnar path per-vehicle runs to amortize.  Stop lengths are lognormal (the NREL shape);
    timestamps are the global event index, so every vehicle's clock is
    strictly monotone.  ``malformed_rate`` of lines are corrupted —
    garbage JSON, a missing field, or a non-numeric stop — exercising
    the defensive-ingestion path at fleet scale.  Deterministic in
    ``seed``.
    """
    rng = np.random.default_rng(seed)
    window = list(range(min(active, vehicles)))
    next_vehicle = len(window)
    rotate_every = max(1, events // vehicles)
    counters = np.zeros(vehicles, dtype=np.int64)
    picks = rng.integers(0, len(window), size=events)
    stops = np.exp(rng.normal(np.log(60.0), 1.0, size=events))
    corrupt = rng.random(size=events) < malformed_rate
    corrupt_kind = rng.integers(0, 3, size=events)
    lines: list[str] = []
    malformed = 0
    for index in range(events):
        if index < len(window):
            vehicle = window[index]  # seed every initial member's first event
        elif index % rotate_every == 0 and next_vehicle < vehicles:
            window[next_vehicle % len(window)] = next_vehicle
            vehicle = next_vehicle  # the joiner's guaranteed first event
            next_vehicle += 1
        else:
            vehicle = window[picks[index] % len(window)]
        vehicle_id = f"veh-{vehicle:06d}"
        record = {
            "id": f"{vehicle_id}-{counters[vehicle]:06d}",
            "vehicle": vehicle_id,
            "t": float(index),
            "stop": float(stops[index]),
        }
        counters[vehicle] += 1
        line = json.dumps(record)
        # Never corrupt a vehicle's first event: every id must open a
        # session, so the full run really serves `vehicles` sessions.
        if corrupt[index] and counters[vehicle] > 1:
            malformed += 1
            kind = int(corrupt_kind[index])
            if kind == 0:
                line = line[: len(line) // 2]  # garbage: truncated JSON
            elif kind == 1:
                record.pop("stop")  # missing field
                line = json.dumps(record)
            else:
                record["stop"] = "not-a-number"  # bad type
                line = json.dumps(record)
        lines.append(line)
    return lines, malformed


def _config() -> SessionConfig:
    # A lean dedup window: at 100k sessions per worker the per-session
    # history is the memory budget, and the stream never redelivers.
    return SessionConfig(break_even=BREAK_EVEN, dedup_window=256, seed=3)


def _run_fleet(state_dir, lines: list[str], shards: int) -> dict:
    """One timed pass: route the whole stream, drain, collect digests."""
    service = ShardedAdvisorService(
        state_dir,
        _config(),
        shards=shards,
        fsync=True,
        queue_depth=16,
    )
    try:
        t0 = time.perf_counter()
        for offset in range(0, len(lines), CHUNK):
            service.submit_lines(lines[offset : offset + CHUNK])
        service.drain(timeout=3600.0)
        elapsed = time.perf_counter() - t0
        latencies = np.asarray(
            [sample for sample, _events in service.take_latencies()]
        )
        digests = service.digests(timeout=600.0)
        snapshot = service.health_snapshot(timeout=600.0)
    finally:
        service.close()
    return {
        "shards": shards,
        "wall_time_s": elapsed,
        "events_per_s": len(lines) / elapsed,
        "p50_latency_s": float(np.percentile(latencies, 50)),
        "p99_latency_s": float(np.percentile(latencies, 99)),
        "digests": digests,
        "malformed": snapshot["ingest"]["malformed"],
        "vehicles": len(digests),
    }


def test_sharded_serving_scaling(benchmark, bench_records, tmp_path, results_dir):
    """Sharded fleet: digest-identical at every shard count, near-linear
    events/s where the host has the cores."""
    lines, malformed = synthetic_traffic()
    headroom = parallel_headroom()

    runs = {}
    for shards in SHARD_COUNTS[:-1]:
        runs[shards] = _run_fleet(tmp_path / f"fleet-{shards}", lines, shards)
    top = SHARD_COUNTS[-1]
    runs[top] = benchmark.pedantic(
        _run_fleet,
        args=(tmp_path / f"fleet-{top}", lines, top),
        iterations=1,
        rounds=1,
    )

    baseline = runs[SHARD_COUNTS[0]]
    # Digest gate: every shard count produces the identical fleet state.
    for shards, run in runs.items():
        assert run["vehicles"] == VEHICLES, (
            f"{shards}-shard run served {run['vehicles']} sessions, "
            f"traffic has {VEHICLES} vehicles"
        )
        assert run["malformed"] == malformed, (
            f"{shards}-shard run flagged {run['malformed']} malformed lines, "
            f"generator produced {malformed}"
        )
        assert run["digests"] == baseline["digests"], (
            f"{shards}-shard digests diverged from the "
            f"{SHARD_COUNTS[0]}-shard baseline"
        )

    speedup = runs[top]["events_per_s"] / baseline["events_per_s"]
    gate_enforced = headroom >= top
    entry = {
        "op": "serve_sharded",
        "n": len(lines),
        "vehicles": baseline["vehicles"],
        "malformed": malformed,
        "chunk": CHUNK,
        "fsync": True,
        "wall_time_s": runs[top]["wall_time_s"],
        "scalar_wall_time_s": baseline["wall_time_s"],
        "speedup": speedup,
        "max_abs_diff": 0.0,  # digest equality asserted above — exact
        "events_per_s": runs[top]["events_per_s"],
        "scalar_events_per_s": baseline["events_per_s"],
        "per_shard_count": [
            {key: run[key] for key in run if key != "digests"}
            for _shards, run in sorted(runs.items())
        ],
        "p50_latency_s": runs[top]["p50_latency_s"],
        "p99_latency_s": runs[top]["p99_latency_s"],
        "scaling_gate": {
            "floor": FLOOR,
            "at_shards": top,
            "enforced": gate_enforced,
            "parallel_headroom": headroom,
        },
    }
    _RECORDS.append(entry)
    if gate_enforced:
        assert speedup >= FLOOR, (
            f"sharded serving scaled {speedup:.2f}x at {top} shards "
            f"(floor {FLOOR:g}x; {runs[top]['events_per_s']:,.0f} vs "
            f"{baseline['events_per_s']:,.0f} events/s)"
        )
