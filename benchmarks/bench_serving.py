"""Benchmark: columnar batched serving vs the scalar event loop.

One op, ``serve_ingest``: the full durable serving path — JSONL decode,
validation, per-vehicle routing, vectorized apply, WAL group-commit
with fsync — against the per-event scalar loop in the *same* durable
configuration (``fsync=True``; durability is where group-commit earns
its keep: one fsync per chunk instead of one per event).

Correctness gates before any timing is reported:

* the batched run's per-vehicle ``state_digest()`` values must be
  bit-identical to an uninterrupted scalar run over the same trace
  (digest equality is exact — ``max_abs_diff`` is 0 by construction or
  the test fails);
* batched events/s must be >= 3x scalar in every mode (the CI smoke
  gate) and >= 10x in full mode on the 100k-event synthetic trace (the
  acceptance floor).

Latency is reported as the p99 *advise latency*: for the scalar loop
the per-event wall time; for the batched loop the per-chunk commit wall
time, which is the worst case an event waits for its decision under
group-commit.  The module writes ``results/BENCH_serving.json`` on
teardown — see ``docs/performance.md``.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.service import AdvisorService, SessionConfig
from repro.service.soak import build_fleet_events

from .conftest import emit_bench_json

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
BREAK_EVEN = 28.0  # the paper's vehicle class 1
#: Chunk size for the batched path: large enough that one fsync and one
#: delta compaction per vehicle-run amortize over hundreds of events.
CHUNK = 4096
#: Scalar events measured with fsync on (the full trace would take
#: minutes at per-event fsync rates; throughput is steady-state, so a
#: prefix measures it fairly).
SCALAR_EVENTS = 2_000 if QUICK else 10_000
_RECORDS: list[dict] = []


@pytest.fixture(scope="module")
def bench_records(results_dir):
    yield _RECORDS
    emit_bench_json(_RECORDS, results_dir, filename="BENCH_serving.json")


def _config() -> SessionConfig:
    return SessionConfig(break_even=BREAK_EVEN, dedup_window=4096, seed=3)


def _trace() -> list[str]:
    vehicles, stops = (5, 1_000) if QUICK else (10, 10_000)
    events = build_fleet_events(vehicles, stops, seed=3)
    return [json.dumps(event) for event in events]


def _digests(service: AdvisorService) -> dict:
    snapshot = service.health_snapshot()
    return {v: info["digest"] for v, info in snapshot["vehicles"].items()}


def test_batched_serving_throughput(benchmark, bench_records, tmp_path, results_dir):
    """Batched ingest: bit-identical to scalar, order-of-magnitude faster."""
    lines = _trace()

    # Reference digests: uninterrupted scalar run over the full trace.
    # fsync off — durability mode cannot change session state, and the
    # full 100k trace at per-event fsync rates would take minutes.
    reference = AdvisorService(tmp_path / "reference", _config(), fsync=False)
    for line in lines:
        reference.ingest_line(line)
    reference.close()
    reference_digests = _digests(reference)

    # fsync wall time is the noisiest part of either path, so both are
    # measured best-of-rounds (fresh state directory per round — the
    # paths are stateful) exactly as bench_kernels does.
    rounds = 1 if QUICK else 3

    # Scalar timing: the durable per-event loop on a trace prefix.
    def scalar_run(tag: int) -> tuple[float, np.ndarray]:
        service = AdvisorService(tmp_path / f"scalar-{tag}", _config(), fsync=True)
        walls = np.empty(min(SCALAR_EVENTS, len(lines)))
        t0 = time.perf_counter()
        for index in range(walls.size):
            e0 = time.perf_counter()
            service.ingest_line(lines[index])
            walls[index] = time.perf_counter() - e0
        elapsed = time.perf_counter() - t0
        service.close()
        return elapsed, walls

    scalar_seconds, latencies = min(
        (scalar_run(tag) for tag in range(rounds)), key=lambda r: r[0]
    )
    scalar_evps = latencies.size / scalar_seconds
    scalar_p99 = float(np.percentile(latencies, 99))

    # Batched timing: the columnar group-commit loop on the full trace.
    def batched_run(tag: int) -> tuple[float, list[float], dict]:
        service = AdvisorService(tmp_path / f"batch-{tag}", _config(), fsync=True)
        chunk_walls = []
        t0 = time.perf_counter()
        for offset in range(0, len(lines), CHUNK):
            c0 = time.perf_counter()
            service.ingest_lines(lines[offset : offset + CHUNK])
            chunk_walls.append(time.perf_counter() - c0)
        elapsed = time.perf_counter() - t0
        service.close()
        return elapsed, chunk_walls, _digests(service)

    batch_rounds = [batched_run(tag) for tag in range(rounds - 1)]
    batch_rounds.append(
        benchmark.pedantic(batched_run, args=(rounds - 1,), iterations=1, rounds=1)
    )
    for _, _, digests in batch_rounds:
        assert digests == reference_digests, (
            "batched serving diverged from the scalar loop"
        )
    batch_seconds, chunk_walls, _ = min(batch_rounds, key=lambda r: r[0])
    batch_evps = len(lines) / batch_seconds
    batch_p99 = float(np.percentile(np.asarray(chunk_walls), 99))

    speedup = batch_evps / scalar_evps
    entry = {
        "op": "serve_ingest",
        "n": len(lines),
        "wall_time_s": batch_seconds,
        "scalar_wall_time_s": scalar_seconds,
        "speedup": speedup,
        "max_abs_diff": 0.0,  # digest equality asserted above — exact
        "events_per_s": batch_evps,
        "scalar_events_per_s": scalar_evps,
        "scalar_n": int(latencies.size),
        "p99_advise_latency_s": batch_p99,
        "scalar_p99_advise_latency_s": scalar_p99,
        "batch_size": CHUNK,
        "fsync": True,
    }
    _RECORDS.append(entry)
    # The CI smoke gate: even on shared runners in quick mode the
    # batched path must hold a 3x margin, and the acceptance floor is
    # an order of magnitude on the full 100k-event trace.
    floor = 3.0 if QUICK else 10.0
    assert speedup >= floor, (
        f"batched serving speedup {speedup:.2f}x < {floor:g}x "
        f"({batch_evps:,.0f} vs {scalar_evps:,.0f} events/s)"
    )
