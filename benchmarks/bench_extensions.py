"""Benchmarks for the extension features (beyond the paper's artifacts).

* **Adaptive selector regret** — how fast the online-estimating selector
  closes the gap to the omniscient static selector.
* **Average-case oracle** — how much the (mu-, q+)-only proposed
  strategy gives up against the full-distribution optimum of [10], and
  how both compare to N-Rand.
* **Multislope engine states** — the value of an intermediate
  accessory-off state over the classic on/off pair.
"""

import numpy as np

from repro.constants import B_SSV, E_RATIO
from repro.core import (
    AdaptiveProposed,
    FollowTheEnvelope,
    MultislopeProblem,
    NRand,
    ProposedOnline,
    optimal_threshold,
)
from repro.core.analysis import (
    empirical_offline_cost,
    empirical_online_cost,
    expected_cr,
    expected_online_cost,
)
from repro.core.strategy import DeterministicThresholdStrategy
from repro.fleet import area_config


def test_extension_adaptive_regret(benchmark):
    """Adaptive controller's realized CR approaches the static selector's
    CR as stops accumulate (and stays within the N-Rand guarantee)."""
    distribution = area_config("chicago").stop_length_distribution()

    def run():
        rng = np.random.default_rng(17)
        stops = distribution.sample(2000, rng)
        adaptive = AdaptiveProposed(B_SSV, min_samples=15)
        costs = adaptive.run_online(stops, rng)
        offline = empirical_offline_cost(stops, B_SSV)
        realized_cr_total = costs.mean() / offline
        static = ProposedOnline.from_samples(stops, B_SSV)
        static_cr = empirical_online_cost(static, stops) / offline
        # CR over the last quarter only (post-convergence window).
        tail = stops.size * 3 // 4
        tail_cr = costs[tail:].mean() / empirical_offline_cost(stops[tail:], B_SSV)
        return realized_cr_total, tail_cr, static_cr

    total_cr, tail_cr, static_cr = benchmark.pedantic(run, iterations=1, rounds=1)
    assert total_cr <= E_RATIO + 0.1  # never meaningfully worse than N-Rand
    assert abs(tail_cr - static_cr) < 0.12  # converged to the static choice


def test_extension_average_case_oracle_gap(benchmark):
    """Price of partial information: full-distribution optimum <=
    proposed (mu-, q+) <= N-Rand, in expected CR on the true
    distribution."""
    distribution = area_config("california").stop_length_distribution()

    def run():
        rng = np.random.default_rng(23)
        stops = distribution.sample(3000, rng)
        proposed = ProposedOnline.from_samples(stops, B_SSV)
        oracle = optimal_threshold(distribution, B_SSV, grid_size=96)
        oracle_strategy = DeterministicThresholdStrategy(B_SSV, oracle.threshold)
        return {
            "oracle": expected_cr(oracle_strategy, distribution, B_SSV),
            "proposed": expected_cr(proposed, distribution, B_SSV),
            "nrand": expected_cr(NRand(B_SSV), distribution, B_SSV),
        }

    crs = benchmark.pedantic(run, iterations=1, rounds=1)
    assert crs["oracle"] <= crs["proposed"] + 1e-6
    assert crs["proposed"] <= crs["nrand"] + 1e-6


def test_extension_psk_prediction_tradeoff(benchmark):
    """Learning-augmented PSK: with accurate predictions (V2I signal
    phase, navigation) it beats the best prediction-free strategy; as
    prediction noise grows its cost degrades but stays within the
    1 + 1/trust robustness bound."""
    from repro.core import NoisyOracle, PSKStrategy
    from repro.core.analysis import empirical_offline_cost

    distribution = area_config("chicago").stop_length_distribution()
    trust = 0.15  # high trust: the regime where good predictions pay off

    def run():
        rng = np.random.default_rng(31)
        stops = distribution.sample(2500, rng)
        offline = empirical_offline_cost(stops, B_SSV)
        crs = {}
        for sigma in (0.0, 0.3, 1.0, 3.0):
            oracle = NoisyOracle(stops, sigma=sigma, rng=rng)
            psk = PSKStrategy(B_SSV, trust=trust, predictor=oracle)
            crs[sigma] = psk.realized_costs(stops).mean() / offline
        proposed = ProposedOnline.from_samples(stops, B_SSV)
        crs["proposed"] = empirical_online_cost(proposed, stops) / offline
        return crs

    crs = benchmark.pedantic(run, iterations=1, rounds=1)
    # Perfect predictions beat the distribution-only proposed strategy.
    assert crs[0.0] < crs["proposed"]
    # Degradation is monotone-ish in noise and bounded by robustness.
    assert crs[0.0] <= crs[1.0] <= crs[3.0] + 0.05
    for sigma in (0.0, 0.3, 1.0, 3.0):
        assert crs[sigma] <= 1.0 + 1.0 / trust + 1e-9


def test_extension_multislope_value_of_accessory_state(benchmark):
    """The accessory state enriches the *offline* optimum everywhere and
    lets the online follower win decisively on stops past the classic
    break-even (it pays 0.25-rate instead of a full restart), at the
    price of a small premium on stops that end just after its early
    switch.  The follower stays 2-competitive against its own (richer,
    cheaper) offline optimum."""
    three_problem = MultislopeProblem.automotive_three_state()
    two_problem = MultislopeProblem.classic(B_SSV)
    three = FollowTheEnvelope(three_problem)
    two = FollowTheEnvelope(two_problem)

    def run():
        lengths = np.linspace(0.5, 300.0, 200)
        return {
            "lengths": lengths,
            "three_online": np.array([three.online_cost(float(y)) for y in lengths]),
            "two_online": np.array([two.online_cost(float(y)) for y in lengths]),
            "three_offline": np.array(
                [three_problem.offline_cost(float(y)) for y in lengths]
            ),
            "two_offline": np.array(
                [two_problem.offline_cost(float(y)) for y in lengths]
            ),
            "ratios": np.array([three.competitive_ratio(float(y)) for y in lengths]),
        }

    data = benchmark(run)
    # Offline: more states never hurt.
    assert np.all(data["three_offline"] <= data["two_offline"] + 1e-9)
    # Online: strictly cheaper on every stop past the classic break-even.
    past_b = data["lengths"] >= B_SSV
    assert np.all(data["three_online"][past_b] <= data["two_online"][past_b] + 1e-9)
    assert (data["three_online"][past_b] < data["two_online"][past_b] - 1e-9).any()
    # 2-competitiveness against the richer optimum.
    assert np.all(data["ratios"] <= 2.0 + 1e-9)
