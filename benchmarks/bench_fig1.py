"""Benchmark: Figure 1 — strategy regions and worst-case CR surface."""

import numpy as np

from repro.experiments import run_experiment

from .conftest import emit


def test_fig1_region_grid(benchmark, results_dir):
    result = benchmark(run_experiment, "fig1", mu_points=81, q_points=81)
    emit(result, results_dir)
    fractions = dict(result.table("region fractions").rows)
    # Figure 1(a): every vertex strategy owns part of the plane.
    for name in ("TOI", "DET", "b-DET", "N-Rand"):
        assert fractions[name] > 0.0
    # Figure 1(b): the surface is bounded by [1, e/(e-1)].
    crs = [row[3] for row in result.table("grid").rows if row[3] != ""]
    assert min(crs) >= 1.0 - 1e-9
    assert max(crs) <= np.e / (np.e - 1) + 1e-6
