"""Benchmark: batched analytic kernels vs the scalar reference path.

Four ops, each measured against its scalar counterpart in the same run
(same machine, same process) and checked for numerical agreement before
any timing is reported:

* ``fleet_eval`` — the Figure 4 per-vehicle path: prefix-sum
  :class:`~repro.evaluation.batch.StrategyPlan` vs six strategy objects
  + ``empirical_cr`` scans (target >= 5x);
* ``bootstrap`` — the vectorised index-matrix bootstrap vs the
  per-replicate resampling loop at ``n_bootstrap=200`` (target >= 20x);
* ``continuous_quadrature`` — the cached Gauss-Legendre
  ``expected_cost_vec`` vs per-element adaptive ``integrate.quad``;
* ``draw_thresholds`` — one batched inverse-CDF call vs a scalar draw
  loop.

Agreement failures always fail the test (1e-9, the kernel contract).
Speedup floors are asserted only in full mode; with ``REPRO_BENCH_QUICK``
set (CI smoke) the sizes shrink and perf numbers are informational.
The module writes ``results/BENCH_kernels.json`` on teardown — see
``docs/performance.md`` for how to read it.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core.kernels import bootstrap_cr_samples, bootstrap_resample_indices
from repro.core.randomized import NRand
from repro.core.strategy import ContinuousRandomizedStrategy
from repro.evaluation.competitive import (
    STRATEGY_NAMES,
    _evaluate_vehicle_scalar,
    build_strategies,
    evaluate_vehicle,
)
from repro.evaluation.montecarlo import bootstrap_cr_interval
from repro.fleet import DEFAULT_SEED, load_fleets

from .conftest import emit_bench_json

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
BREAK_EVEN = 28.0  # the paper's vehicle class 1
_RECORDS: list[dict] = []


@pytest.fixture(scope="module")
def bench_records(results_dir):
    yield _RECORDS
    emit_bench_json(_RECORDS, results_dir)


@pytest.fixture(scope="module")
def fleet_vehicles():
    per_area = 10 if QUICK else 40
    fleets = load_fleets(seed=DEFAULT_SEED, vehicles_per_area=per_area, jobs=None)
    return [vehicle for vehicles in fleets.values() for vehicle in vehicles]


def _best_seconds(fn, rounds: int) -> float:
    fn()  # warm-up (JIT-free, but primes caches and lazy imports)
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _record(op: str, n: int, kernel_s: float, scalar_s: float, diff: float) -> dict:
    entry = {
        "op": op,
        "n": n,
        "wall_time_s": kernel_s,
        "scalar_wall_time_s": scalar_s,
        "speedup": scalar_s / kernel_s,
        "max_abs_diff": diff,
    }
    _RECORDS.append(entry)
    return entry


def test_fleet_evaluation_kernel(benchmark, bench_records, fleet_vehicles):
    """Figure 4 fleet path: StrategyPlan kernels vs scalar strategy objects."""
    kernel = lambda: [evaluate_vehicle(v, BREAK_EVEN) for v in fleet_vehicles]
    scalar = lambda: [_evaluate_vehicle_scalar(v, BREAK_EVEN) for v in fleet_vehicles]

    diff = 0.0
    for k, s in zip(kernel(), scalar()):
        assert k.best_strategy == s.best_strategy
        assert k.selected_vertex == s.selected_vertex
        for name in STRATEGY_NAMES:
            diff = max(diff, abs(k.crs[name] - s.crs[name]))
    assert diff < 1e-9, f"kernel/scalar CR disagreement: {diff}"

    rounds = 1 if QUICK else 5
    kernel_s = _best_seconds(kernel, rounds)
    scalar_s = _best_seconds(scalar, rounds)
    benchmark.pedantic(kernel, iterations=1, rounds=rounds)
    entry = _record("fleet_eval", len(fleet_vehicles), kernel_s, scalar_s, diff)
    if not QUICK:
        assert entry["speedup"] >= 5.0, f"fleet_eval speedup {entry['speedup']:.2f}x < 5x"


def test_bootstrap_kernel(benchmark, bench_records, fleet_vehicles):
    """Vectorised bootstrap vs the per-replicate loop at n_bootstrap=200."""
    stops = fleet_vehicles[0].stop_lengths
    strategy = build_strategies(stops, BREAK_EVEN)["Proposed"]
    n_bootstrap = 50 if QUICK else 200

    # Agreement: the vectorised path must replay a same-stream index loop
    # exactly (the documented rng.integers row-major stream).
    indices = bootstrap_resample_indices(np.random.default_rng(11), n_bootstrap, stops.size)
    vectorised = bootstrap_cr_samples(strategy, stops, indices, BREAK_EVEN)
    loop_rng = np.random.default_rng(11)
    reference = []
    for _ in range(n_bootstrap):
        resampled = stops[loop_rng.integers(0, stops.size, size=stops.size)]
        offline = float(np.minimum(resampled, BREAK_EVEN).sum())
        if offline > 0.0:
            reference.append(float(strategy.expected_cost_vec(resampled).sum()) / offline)
    diff = float(np.abs(vectorised - np.asarray(reference)).max())
    assert diff < 1e-9, f"bootstrap kernel/loop disagreement: {diff}"

    kernel = lambda: bootstrap_cr_interval(
        strategy, stops, np.random.default_rng(11), n_bootstrap=n_bootstrap
    )
    scalar = lambda: bootstrap_cr_interval(
        strategy, stops, np.random.default_rng(11), n_bootstrap=n_bootstrap,
        use_kernels=False,
    )
    rounds = 1 if QUICK else 5
    kernel_s = _best_seconds(kernel, rounds)
    scalar_s = _best_seconds(scalar, rounds)
    benchmark.pedantic(kernel, iterations=1, rounds=rounds)
    entry = _record("bootstrap", n_bootstrap, kernel_s, scalar_s, diff)
    if not QUICK:
        assert entry["speedup"] >= 20.0, f"bootstrap speedup {entry['speedup']:.2f}x < 20x"


class _PdfOnlyUniform(ContinuousRandomizedStrategy):
    """A uniform-density strategy with no closed-form expected cost.

    Supplies ``pdf_vec`` (the kernel-layer contract for perf-sensitive
    densities) so the Gauss-Legendre path evaluates the whole node grid
    in one vectorised call; ``expected_cost`` still goes through
    per-element adaptive quadrature, which is what the benchmark
    compares against.
    """

    name = "uniform-threshold"

    def pdf(self, threshold: float) -> float:
        t = float(threshold)
        return 1.0 / self.break_even if 0.0 <= t <= self.break_even else 0.0

    def pdf_vec(self, thresholds: np.ndarray) -> np.ndarray:
        t = np.asarray(thresholds, dtype=float)
        inside = (t >= 0.0) & (t <= self.break_even)
        return np.where(inside, 1.0 / self.break_even, 0.0)


def test_continuous_quadrature_kernel(benchmark, bench_records):
    """Cached Gauss-Legendre expected_cost_vec vs per-element quad."""
    strategy = _PdfOnlyUniform(BREAK_EVEN)
    count = 50 if QUICK else 200
    stops = np.linspace(0.0, 2.0 * BREAK_EVEN, count)

    vectorised = strategy.expected_cost_vec(stops)
    scalar_values = np.array([strategy.expected_cost(y) for y in stops])
    diff = float(np.abs(vectorised - scalar_values).max())
    assert diff < 1e-9, f"quadrature kernel/scalar disagreement: {diff}"

    kernel = lambda: strategy.expected_cost_vec(stops)
    scalar = lambda: np.array([strategy.expected_cost(y) for y in stops])
    rounds = 1 if QUICK else 5
    kernel_s = _best_seconds(kernel, rounds)
    scalar_s = _best_seconds(scalar, rounds)
    benchmark.pedantic(kernel, iterations=1, rounds=rounds)
    _record("continuous_quadrature", count, kernel_s, scalar_s, diff)


def test_draw_thresholds_kernel(benchmark, bench_records):
    """Batched inverse-CDF sampling vs the scalar draw loop (same stream)."""
    strategy = NRand(BREAK_EVEN)
    count = 1_000 if QUICK else 10_000

    batched = strategy.draw_thresholds(count, np.random.default_rng(5))
    loop_rng = np.random.default_rng(5)
    loop = np.array([strategy.draw_threshold(loop_rng) for _ in range(count)])
    diff = float(np.abs(batched - loop).max())
    assert diff < 1e-9, f"draw_thresholds batched/loop disagreement: {diff}"

    kernel = lambda: strategy.draw_thresholds(count, np.random.default_rng(5))

    def scalar():
        rng = np.random.default_rng(5)
        return np.array([strategy.draw_threshold(rng) for _ in range(count)])

    rounds = 1 if QUICK else 5
    kernel_s = _best_seconds(kernel, rounds)
    scalar_s = _best_seconds(scalar, rounds)
    benchmark.pedantic(kernel, iterations=1, rounds=rounds)
    _record("draw_thresholds", count, kernel_s, scalar_s, diff)
