"""Benchmark: Table 1 — stops per day in the three locations."""

from repro.experiments import run_experiment
from repro.experiments.table1 import PAPER_TABLE1

from .conftest import emit


def test_table1_stops_per_day(benchmark, results_dir):
    result = benchmark.pedantic(
        lambda: run_experiment("table1"), iterations=1, rounds=1
    )
    emit(result, results_dir)
    table = result.table("stops per day")
    idx = {name: i for i, name in enumerate(table.headers)}
    by_area = {row[idx["location"]]: row for row in table.rows}
    # Moments within 20% of the paper's Table 1, ordering preserved
    # (Chicago stops most often), and the mu+2sigma coverage near the
    # paper's 0.91-0.96 range.
    for area, paper in PAPER_TABLE1.items():
        row = by_area[area]
        assert abs(row[idx["mean"]] - paper["mean"]) / paper["mean"] < 0.2
        assert abs(row[idx["std"]] - paper["std"]) / paper["std"] < 0.35
        assert 0.88 <= row[idx["p_within_2_sigma"]] <= 1.0
    assert by_area["chicago"][idx["mean"]] > by_area["california"][idx["mean"]]
    assert by_area["chicago"][idx["mean"]] > by_area["atlanta"][idx["mean"]]
