"""Benchmark: contextual (time-of-day) selection on diurnal fleets.

Quantifies the value of context on a workload where it genuinely
matters — a "suburban" area whose rush hours are dominated by short
residential signal stops (DET territory: almost no stop outlasts B)
while nights are parking-heavy (TOI territory).  A pooled selector must
compromise; the per-bucket contextual selector plays DET at the peaks
and TOI at night and wins decisively.
"""

import numpy as np

from repro.constants import B_SSV
from repro.core import ContextualProposed, ProposedOnline
from repro.core.analysis import empirical_offline_cost
from repro.fleet import DailyFleetGenerator, DailyPattern
from repro.fleet.areas import AreaConfig

#: Contrast-heavy synthetic area: short signal stops, heavy parking tail.
SUBURBAN = AreaConfig(
    name="suburban",
    vehicle_count=40,
    stops_per_day_mean=11.0,
    stops_per_day_std=8.0,
    signal_mu=2.3,
    signal_sigma=0.4,
    congestion_mu=3.4,
    congestion_sigma=0.5,
    tail_alpha=1.6,
    tail_scale=600.0,
    weights=(0.6, 0.25, 0.15),
)


def _suburban_pattern() -> DailyPattern:
    weights = []
    for hour in range(24):
        peak = hour in (7, 8, 16, 17, 18)
        night = hour < 6 or hour >= 22
        if peak:
            weights.append((0.92, 0.07, 0.01))
        elif night:
            weights.append((0.05, 0.1, 0.85))
        else:
            weights.append((0.5, 0.3, 0.2))
    intensity = np.array(
        [0.2, 0.1, 0.1, 0.1, 0.2, 0.5, 1.2, 2.2, 2.4, 1.4, 1.0, 1.1,
         1.3, 1.1, 1.0, 1.2, 2.0, 2.4, 2.2, 1.4, 1.0, 0.8, 0.5, 0.3]
    )
    return DailyPattern(intensity, tuple(weights))


def _bucket(token) -> str:
    hour = int((float(token) % 86400.0) // 3600.0)
    if hour < 6 or hour >= 22:
        return "night"
    if hour in (7, 8, 16, 17, 18):
        return "peak"
    return "offpeak"


def test_contextual_vs_pooled_on_diurnal_traffic(benchmark, results_dir):
    def run():
        rng = np.random.default_rng(2024)
        generator = DailyFleetGenerator(SUBURBAN, pattern=_suburban_pattern(), seed=2024)
        vehicles = generator.generate(40)
        tokens = np.concatenate([v.start_times for v in vehicles])
        stops = np.concatenate([v.stop_lengths for v in vehicles])
        contextual = ContextualProposed(B_SSV, min_samples=10, context_of=_bucket)
        contextual_costs = contextual.run_online(tokens, stops, rng)
        pooled = ProposedOnline.from_samples(stops, B_SSV)
        half = stops.size // 2
        offline = empirical_offline_cost(stops[half:], B_SSV)
        return {
            "contextual_cr": contextual_costs[half:].mean() / offline,
            "pooled_cr": pooled.expected_cost_vec(stops[half:]).mean() / offline,
            "selections": contextual.selected_names(),
            "pooled_choice": pooled.selected_name,
        }

    result = benchmark.pedantic(run, iterations=1, rounds=1)
    # Context wins decisively on this workload.
    assert result["contextual_cr"] < result["pooled_cr"] - 0.05
    # ...because the buckets genuinely want different vertices.
    assert result["selections"]["peak"] == "DET"
    assert result["selections"]["night"] == "TOI"
    out = results_dir / "contextual_vs_pooled.txt"
    out.write_text(
        f"contextual CR (post-warmup): {result['contextual_cr']:.4f}\n"
        f"pooled CR:                  {result['pooled_cr']:.4f} "
        f"(pooled choice: {result['pooled_choice']})\n"
        + "\n".join(
            f"  {bucket}: {name}"
            for bucket, name in sorted(result["selections"].items())
        )
        + "\n"
    )
