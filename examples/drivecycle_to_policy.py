"""End-to-end pipeline: drive-cycle simulation to executed policy.

Run:  python examples/drivecycle_to_policy.py

This walks the full stack a production deployment would use:

1. simulate two weeks of urban driving over a signalized grid network
   (second-resolution speed traces);
2. extract stop events from the speed traces — the same extraction a
   telematics pipeline applies to measured speeds;
3. estimate (mu_B_minus, q_B_plus) from week 1 and select the policy;
4. execute the policy over week 2 with the event-level stop-start
   simulator and account fuel and money against the Appendix C cost
   model, comparing with the clairvoyant optimum and the factory default
   (turn off immediately).
"""

import numpy as np

from repro.constants import B_SSV
from repro.core import ProposedOnline, TurnOffImmediately
from repro.drivecycle import (
    CongestionModel,
    DriveCycleSimulator,
    DriverProfile,
    grid_network,
)
from repro.simulation import realized_cr, simulate_trace
from repro.vehicle import ssv_cost_model


def main() -> None:
    rng = np.random.default_rng(42)
    network = grid_network(rows=7, cols=7, signal_density=0.7, rng=rng)
    simulator = DriveCycleSimulator(
        network,
        congestion=CongestionModel(level=0.3),
        driver=DriverProfile(trips_per_day=5.0, errand_probability=0.1),
    )
    print(f"road network: {len(network.intersections)} intersections, "
          f"{network.signalized_count()} signalized")

    week1 = simulator.simulate_vehicle("veh-week1", days=7, rng=rng)
    week2 = simulator.simulate_vehicle("veh-week2", days=7, rng=rng)
    print(f"week 1: {week1.stop_count} stops extracted, "
          f"idle fraction {week1.idle_fraction:.1%}")
    print(f"week 2: {week2.stop_count} stops extracted")

    # Train on week 1, deploy on week 2.
    policy = ProposedOnline.from_samples(week1.stop_lengths(), B_SSV)
    print(f"\npolicy learned from week 1: {policy.selected_name} "
          f"(guaranteed worst-case CR {policy.worst_case_cr:.3f})")

    model = ssv_cost_model()
    offline = simulate_trace(week2, break_even=B_SSV)
    deployed = simulate_trace(week2, strategy=policy, rng=rng)
    factory = simulate_trace(week2, strategy=TurnOffImmediately(B_SSV), rng=rng)

    print("\nweek 2 outcomes (vs clairvoyant offline optimum):")
    header = f"{'controller':<22}{'cost (idle-s)':>14}{'restarts':>10}{'fuel (cc)':>12}{'money (cents)':>15}{'CR':>8}"
    print(header)
    print("-" * len(header))
    for name, result in (
        ("offline optimum", offline),
        (f"proposed ({policy.selected_name})", deployed),
        ("factory TOI", factory),
    ):
        cr = realized_cr(result, offline) if result is not offline else 1.0
        print(
            f"{name:<22}{result.total_cost_seconds:>14.0f}{result.ledger.restarts:>10}"
            f"{result.fuel_cc(model):>12.0f}{result.cost_cents(model):>15.2f}{cr:>8.3f}"
        )

    saved = factory.cost_cents(model) - deployed.cost_cents(model)
    print(f"\nproposed policy saves {saved:.1f} cents/week over the factory "
          f"default on this vehicle ({saved * 52 / 100:.2f} $/year)")


if __name__ == "__main__":
    main()
