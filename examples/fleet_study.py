"""Fleet study: the paper's Figure 4 evaluation on a synthetic area.

Run:  python examples/fleet_study.py [vehicles_per_area]

Synthesizes the three NREL-like fleets, evaluates the six strategies on
every vehicle for both vehicle classes (SSV B=28, conventional B=47), and
prints worst/mean CRs, win counts and which vertex the proposed selector
chose per vehicle.
"""

import sys

from repro.constants import B_CONVENTIONAL, B_SSV
from repro.evaluation import STRATEGY_NAMES, evaluate_fleet
from repro.experiments import format_table
from repro.fleet import load_fleets, total_vehicle_count


def main(vehicles_per_area: int | None = None) -> None:
    fleets = load_fleets(vehicles_per_area=vehicles_per_area)
    total = total_vehicle_count(fleets)
    print(f"synthesized {total} vehicles "
          f"({', '.join(f'{name}: {len(v)}' for name, v in sorted(fleets.items()))})")
    for break_even, label in ((B_SSV, "stop-start vehicles"), (B_CONVENTIONAL, "no SSS")):
        print(f"\n=== B = {break_even:g} s ({label}) ===")
        rows = []
        proposed_wins = 0
        for area in sorted(fleets):
            evaluation = evaluate_fleet(fleets[area], break_even)
            wins = evaluation.win_counts()
            proposed_wins += wins["Proposed"]
            for name in STRATEGY_NAMES:
                rows.append(
                    (
                        area,
                        name,
                        round(evaluation.worst_cr(name), 3),
                        round(evaluation.mean_cr(name), 3),
                        wins[name],
                    )
                )
            vertices = evaluation.vertex_selection_counts()
            print(f"{area}: proposed selector chose "
                  + ", ".join(f"{k} x{v}" for k, v in sorted(vertices.items())))
        print()
        print(format_table(("area", "strategy", "worst CR", "mean CR", "wins"), rows))
        print(f"\nproposed is best on {proposed_wins}/{total} vehicles")


if __name__ == "__main__":
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 80
    main(count)
