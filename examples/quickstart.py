"""Quickstart: pick the optimal stop-start policy from observed stops.

Run:  python examples/quickstart.py

The whole public API in one page:

1. you observed a week of vehicle stops (seconds each);
2. compute the constrained ski-rental statistics (mu_B_minus, q_B_plus);
3. let the solver pick the optimal vertex strategy and its guarantee;
4. evaluate everything against the baselines.
"""

import numpy as np

from repro import (
    B_SSV,
    Deterministic,
    MOMRand,
    NeverOff,
    NRand,
    ProposedOnline,
    StopStatistics,
    TurnOffImmediately,
    empirical_cr,
)


def main() -> None:
    # A week of stops: signal waits, queue crawls, two long errands.
    stops = np.array(
        [12.0, 45.0, 8.0, 33.0, 95.0, 22.0, 17.0, 410.0, 28.0, 51.0,
         9.0, 38.0, 26.0, 1260.0, 44.0, 19.0, 31.0, 72.0, 15.0, 55.0]
    )

    stats = StopStatistics.from_samples(stops, break_even=B_SSV)
    print(f"break-even interval B = {B_SSV:g} s (stop-start vehicle)")
    print(f"mu_B_minus = {stats.mu_b_minus:.2f} s   (mean length of short stops)")
    print(f"q_B_plus   = {stats.q_b_plus:.3f}     (probability of a long stop)")
    print()

    proposed = ProposedOnline(stats)
    print(f"selected strategy: {proposed.selected_name}")
    print(f"guaranteed worst-case expected CR: {proposed.worst_case_cr:.4f}")
    print()

    print("expected CR on this week's stops, per strategy:")
    strategies = {
        "Proposed": proposed,
        "TOI (shut off immediately)": TurnOffImmediately(B_SSV),
        "NEV (never shut off)": NeverOff(B_SSV),
        "DET (idle until B)": Deterministic(B_SSV),
        "N-Rand": NRand(B_SSV),
        "MOM-Rand": MOMRand(B_SSV, float(stops.mean())),
    }
    for name, strategy in strategies.items():
        cr = empirical_cr(strategy, stops, B_SSV)
        marker = "  <-- proposed" if name == "Proposed" else ""
        print(f"  {name:<28} CR = {cr:.4f}{marker}")
    print()

    # The decision the controller would actually execute:
    rng = np.random.default_rng(0)
    threshold = proposed.draw_threshold(rng)
    if np.isinf(threshold):
        print("policy: keep idling for the whole stop")
    elif threshold == 0.0:
        print("policy: shut the engine off the moment the vehicle stops")
    else:
        print(f"policy: idle up to {threshold:.1f} s, then shut the engine off")


if __name__ == "__main__":
    main()
