"""Smart commuter: time-of-day-aware stop-start control.

Run:  python examples/smart_commuter.py

A commuter's stops are not i.i.d.: rush hours are short signal waits,
nights are long parking-with-engine-on events.  This example synthesizes
a month of diurnally structured driving (repro.fleet.daily) and compares:

1. the pooled proposed selector (one statistics pair for everything);
2. the contextual selector (repro.core.contextual): one adaptive
   constrained selector per time-of-day bucket;
3. the clairvoyant offline optimum.

It also reports the misspecification robustness margin of the pooled
choice — how wrong the global statistics could be before the selection
stops beating N-Rand.
"""

import numpy as np

from repro.constants import B_SSV
from repro.core import ContextualProposed, ProposedOnline, robustness_margin
from repro.core.analysis import empirical_offline_cost
from repro.fleet import DailyFleetGenerator, DailyPattern
from repro.fleet.areas import AreaConfig

SUBURBAN = AreaConfig(
    name="suburban",
    vehicle_count=1,
    stops_per_day_mean=12.0,
    stops_per_day_std=8.0,
    signal_mu=2.3,
    signal_sigma=0.4,
    congestion_mu=3.4,
    congestion_sigma=0.5,
    tail_alpha=1.6,
    tail_scale=600.0,
    weights=(0.6, 0.25, 0.15),
    recording_days=28.0,
)


def commuter_pattern() -> DailyPattern:
    weights = []
    for hour in range(24):
        if hour in (7, 8, 16, 17, 18):
            weights.append((0.92, 0.07, 0.01))  # signal-dominated peaks
        elif hour < 6 or hour >= 22:
            weights.append((0.05, 0.1, 0.85))   # parking-heavy nights
        else:
            weights.append((0.5, 0.3, 0.2))
    intensity = np.array(
        [0.2, 0.1, 0.1, 0.1, 0.2, 0.5, 1.2, 2.2, 2.4, 1.4, 1.0, 1.1,
         1.3, 1.1, 1.0, 1.2, 2.0, 2.4, 2.2, 1.4, 1.0, 0.8, 0.5, 0.3]
    )
    return DailyPattern(intensity, tuple(weights))


def bucket(token) -> str:
    hour = int((float(token) % 86400.0) // 3600.0)
    if hour < 6 or hour >= 22:
        return "night"
    if hour in (7, 8, 16, 17, 18):
        return "peak"
    return "offpeak"


def main() -> None:
    rng = np.random.default_rng(33)
    generator = DailyFleetGenerator(SUBURBAN, pattern=commuter_pattern(), seed=33)
    vehicle = generator.generate(1)[0]
    tokens, stops = vehicle.start_times, vehicle.stop_lengths
    print(f"one month of driving: {stops.size} stops")
    for name in ("peak", "offpeak", "night"):
        mask = np.array([bucket(t) == name for t in tokens])
        y = stops[mask]
        print(f"  {name:<8} {y.size:>4} stops, median {np.median(y):6.1f} s, "
              f"P(y >= B) = {(y >= B_SSV).mean():.2f}")

    pooled = ProposedOnline.from_samples(stops, B_SSV)
    contextual = ContextualProposed(B_SSV, min_samples=8, context_of=bucket)
    contextual_costs = contextual.run_online(tokens, stops, rng)

    offline = empirical_offline_cost(stops, B_SSV)
    pooled_cr = pooled.expected_cost_vec(stops).mean() / offline
    contextual_cr = contextual_costs.mean() / offline
    print(f"\npooled selector:     {pooled.selected_name:<7} CR {pooled_cr:.3f}")
    print("contextual selector:", {k: v for k, v in sorted(contextual.selected_names().items())})
    print(f"                     CR {contextual_cr:.3f} (includes cold-start)")

    margin = robustness_margin(pooled.stats, factors=(1.1, 1.5, 2.0), grid_size=128)
    print(f"\npooled choice survives statistics misspecification up to "
          f"x{margin:g} before losing to N-Rand's guarantee")


if __name__ == "__main__":
    main()
