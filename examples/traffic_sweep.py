"""Traffic sweep: how each strategy degrades with traffic (Figures 5-6).

Run:  python examples/traffic_sweep.py

Sweeps the mean stop length of a Chicago-shaped distribution and prints
the worst-case CR of every strategy, both the analytic guarantee over the
ambiguity set Q and a simulated fleet's realized worst case, plus an
ASCII sketch of the curves.
"""

import numpy as np

from repro.constants import B_SSV
from repro.evaluation import STRATEGY_NAMES, sweep_analytic, sweep_simulated
from repro.experiments import format_table
from repro.fleet import area_config


def ascii_curve(values, lo=1.0, hi=2.0, width=40) -> str:
    """One-line bar per value in [lo, hi]."""
    out = []
    for value in values:
        if not np.isfinite(value):
            out.append("?")
            continue
        clipped = min(max(value, lo), hi)
        out.append("#" * int(round((clipped - lo) / (hi - lo) * width)))
    return out


def main() -> None:
    means = np.array([5, 10, 15, 20, 30, 45, 60, 90, 120, 180, 300], dtype=float)
    base = area_config("chicago").stop_length_distribution()

    analytic = sweep_analytic(base, means, B_SSV)
    print("analytic worst-case CR over Q (B = 28):\n")
    rows = []
    for index, mean in enumerate(means):
        rows.append(
            (
                int(mean),
                *(
                    round(float(analytic.series[name][index]), 3)
                    if np.isfinite(analytic.series[name][index])
                    else "unbounded"
                    for name in STRATEGY_NAMES
                ),
            )
        )
    print(format_table(("mean stop (s)", *STRATEGY_NAMES), rows))

    crossover = analytic.crossover_mean("DET", "TOI")
    print(f"\nDET/TOI crossover at mean stop length ~ {crossover:.0f} s")

    print("\nproposed vs DET vs TOI (bar = CR - 1, full bar = CR 2):")
    for name in ("Proposed", "DET", "TOI"):
        bars = ascii_curve(analytic.series[name])
        print(f"\n  {name}:")
        for mean, bar in zip(means, bars):
            print(f"   {int(mean):>4} s |{bar}")

    simulated = sweep_simulated(
        base, means, B_SSV, vehicles_per_point=30, stops_per_vehicle=60, seed=7
    )
    print("\nsimulated fleet worst-case CR (30 vehicles x 60 stops per point):")
    rows = [
        (
            int(mean),
            *(round(float(simulated.series[name][i]), 3) for name in STRATEGY_NAMES),
        )
        for i, mean in enumerate(means)
    ]
    print(format_table(("mean stop (s)", *STRATEGY_NAMES), rows))


if __name__ == "__main__":
    main()
