"""V2I predictions: learning-augmented shutoff with signal-phase data.

Run:  python examples/v2i_predictions.py

Vehicles increasingly receive signal phase & timing (SPaT) broadcasts:
when stopped at a red light, the remaining red time is *known*.  This
example wires that prediction into the PSK learning-augmented strategy
(repro.core.prediction) and sweeps prediction quality:

* perfect SPaT (sigma = 0) — near-offline cost;
* degraded predictions (queue discharge uncertainty, sigma up) — cost
  decays gracefully;
* garbage predictions — still bounded by the 1 + 1/trust robustness
  guarantee, unlike naive "trust the prediction" control.
"""

import numpy as np

from repro.constants import B_SSV
from repro.core import NoisyOracle, ProposedOnline, PSKStrategy
from repro.core.analysis import empirical_offline_cost, empirical_online_cost
from repro.core.prediction import robustness_bound
from repro.fleet import area_config


def naive_trust_costs(predictions, stops, break_even):
    """The no-safety-net controller: shut off iff the prediction says
    the stop is long (threshold 0 or infinity)."""
    costs = np.where(
        predictions >= break_even,
        break_even,          # shut off immediately, pay the restart
        stops,               # trust "short": idle it out, whatever happens
    )
    return costs


def main() -> None:
    rng = np.random.default_rng(44)
    stops = area_config("chicago").stop_length_distribution().sample(4000, rng)
    offline = empirical_offline_cost(stops, B_SSV)
    proposed = ProposedOnline.from_samples(stops, B_SSV)
    proposed_cr = empirical_online_cost(proposed, stops) / offline
    trust = 0.2

    print(f"{stops.size} stops, mean {stops.mean():.0f} s; B = {B_SSV:g} s")
    print(f"distribution-only baseline (proposed, {proposed.selected_name}): "
          f"CR {proposed_cr:.3f}")
    print(f"PSK trust parameter: {trust} "
          f"(robustness bound {robustness_bound(trust):.2f})\n")
    print(f"{'prediction quality':<28}{'PSK CR':>8}{'naive-trust CR':>16}")
    for sigma, label in (
        (0.0, "perfect SPaT"),
        (0.2, "good (queue noise)"),
        (0.6, "mediocre"),
        (1.5, "poor"),
        (4.0, "garbage"),
    ):
        oracle = NoisyOracle(stops, sigma=sigma, rng=rng)
        psk = PSKStrategy(B_SSV, trust=trust, predictor=oracle)
        psk_cr = psk.realized_costs(stops).mean() / offline
        naive_cr = naive_trust_costs(oracle.predictions, stops, B_SSV).mean() / offline
        print(f"{label:<28}{psk_cr:>8.3f}{naive_cr:>16.3f}")
    print("\nPSK degrades gracefully and never exceeds its robustness bound;")
    print("naive trust has no guarantee once predictions go bad.")


if __name__ == "__main__":
    main()
