"""Commuter what-if: annual fuel and money impact of each idling policy.

Run:  python examples/commuter_costs.py

Uses the Appendix C cost model to translate competitive ratios into
dollars and gallons for a typical commuter profile, for both a stop-start
vehicle and a conventional vehicle (where restarts wear the starter) —
the cost framing the paper's introduction motivates ("6 billion gallons
of fuel at a cost of more than $20 billion each year").
"""

import numpy as np

from repro.core import ProposedOnline, NeverOff, TurnOffImmediately
from repro.fleet import area_config
from repro.simulation import simulate_stops
from repro.vehicle import conventional_cost_model, ssv_cost_model

WEEKS_PER_YEAR = 50
CC_PER_GALLON = 3785.0


def main() -> None:
    rng = np.random.default_rng(2014)
    # A commuter in Chicago-like traffic: ~12 stops/day, 6 days/week.
    distribution = area_config("chicago").stop_length_distribution()
    weekly_stops = distribution.sample(72, rng)
    print(f"commuter profile: {weekly_stops.size} stops/week, "
          f"mean stop {weekly_stops.mean():.0f} s, "
          f"longest {weekly_stops.max():.0f} s")

    for label, model in (
        ("stop-start vehicle", ssv_cost_model()),
        ("conventional vehicle", conventional_cost_model()),
    ):
        b = model.break_even_seconds()
        print(f"\n=== {label} (break-even {b:.1f} s) ===")
        policy = ProposedOnline.from_samples(weekly_stops, b)
        strategies = {
            "never turn off (NEV)": NeverOff(b),
            "turn off immediately": TurnOffImmediately(b),
            f"proposed ({policy.selected_name})": policy,
        }
        offline = simulate_stops(weekly_stops, break_even=b)
        rows = []
        for name, strategy in strategies.items():
            result = simulate_stops(weekly_stops, strategy=strategy, rng=rng)
            annual_cents = result.cost_cents(model) * WEEKS_PER_YEAR
            annual_gallons = result.fuel_cc(model) * WEEKS_PER_YEAR / CC_PER_GALLON
            rows.append((name, annual_cents / 100.0, annual_gallons,
                         result.total_cost_seconds / offline.total_cost_seconds))
        clairvoyant_cents = offline.cost_cents(model) * WEEKS_PER_YEAR
        print(f"{'policy':<26}{'$/year':>10}{'gal/year':>10}{'CR':>8}")
        for name, dollars, gallons, cr in rows:
            print(f"{name:<26}{dollars:>10.2f}{gallons:>10.2f}{cr:>8.3f}")
        print(f"{'clairvoyant optimum':<26}{clairvoyant_cents / 100:>10.2f}"
              f"{offline.fuel_cc(model) * WEEKS_PER_YEAR / CC_PER_GALLON:>10.2f}"
              f"{1.0:>8.3f}")


if __name__ == "__main__":
    main()
