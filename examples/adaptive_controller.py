"""Adaptive controller: learn the statistics while driving.

Run:  python examples/adaptive_controller.py

The paper assumes (mu_B_minus, q_B_plus) are known.  A deployed
stop-start controller has to *estimate* them from the stops it has seen.
This example streams a month of stops through the adaptive selector and
shows:

* which vertex strategy it plays over time (it starts at N-Rand, the
  best distribution-free choice, then locks onto the right vertex);
* its cumulative realized CR converging to the omniscient static
  selector's CR;
* what happens when traffic regime-shifts mid-month (construction season
  starts: mean stop length doubles) — the estimator tracks the change.
"""

import numpy as np

from repro.constants import B_SSV
from repro.core import AdaptiveProposed, ProposedOnline
from repro.core.analysis import empirical_offline_cost, empirical_online_cost
from repro.distributions import ScaledDistribution
from repro.fleet import area_config


def cumulative_cr(costs: np.ndarray, stops: np.ndarray, break_even: float) -> np.ndarray:
    online = np.cumsum(costs)
    offline = np.cumsum(np.minimum(stops, break_even))
    return online / offline


def main() -> None:
    rng = np.random.default_rng(11)
    base = area_config("california").stop_length_distribution()

    # Month 1-2: normal traffic.  Month 3-4: construction (stops double).
    normal = base.sample(600, rng)
    congested = ScaledDistribution(base, 2.0).sample(600, rng)
    stops = np.concatenate([normal, congested])

    adaptive = AdaptiveProposed(B_SSV, min_samples=15)
    selections = []
    costs = np.empty(stops.size)
    for index, stop in enumerate(stops):
        threshold = adaptive.draw_threshold(rng)
        costs[index] = stop if stop < threshold else threshold + B_SSV
        adaptive.observe(float(stop))
        selections.append(adaptive.selected_name)

    crs = cumulative_cr(costs, stops, B_SSV)
    print("stop#  playing    cumulative CR")
    for checkpoint in (15, 50, 150, 400, 599, 700, 900, 1199):
        print(f"{checkpoint + 1:>5}  {selections[checkpoint]:<9}  {crs[checkpoint]:.4f}")

    static = ProposedOnline.from_samples(stops, B_SSV)
    static_cr = empirical_online_cost(static, stops) / empirical_offline_cost(
        stops, B_SSV
    )
    print(f"\nomniscient static selector: {static.selected_name} "
          f"(expected CR {static_cr:.4f} over the full month)")
    print(f"adaptive final cumulative CR: {crs[-1]:.4f}")

    switches = [
        (index, name)
        for index, name in enumerate(selections)
        if index == 0 or name != selections[index - 1]
    ]
    print("\nstrategy switches (stop#, strategy):")
    for index, name in switches[:12]:
        print(f"  {index + 1:>5}  {name}")
    if len(switches) > 12:
        print(f"  ... {len(switches) - 12} more")


if __name__ == "__main__":
    main()
