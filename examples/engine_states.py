"""Engine states beyond on/off: multislope ski rental in action.

Run:  python examples/engine_states.py

Compares three controllers on the same traffic:

1. classic two-state DET (idle until B, then full shutdown);
2. deterministic three-state follow-the-envelope (idle → accessory-off →
   deep-off), still 2-competitive but against a *cheaper* optimum;
3. the LP-optimal *randomized* three-state mixture
   (repro.core.multislope_game) — the Lotker et al. [14] setting solved
   numerically.
"""

import numpy as np

from repro.core.multislope import FollowTheEnvelope, MultislopeProblem
from repro.core.multislope_game import solve_multislope_game
from repro.fleet import area_config
from repro.simulation import (
    EnvelopeController,
    RandomizedMultislopeController,
    simulate_multistate,
)


def main() -> None:
    rng = np.random.default_rng(8)
    two_state = MultislopeProblem.classic(28.0)
    three_state = MultislopeProblem.automotive_three_state()
    print("three-state instance (costs in idle-seconds):")
    for index, slope in enumerate(three_state.slopes):
        print(f"  state {index}: entry cost {slope.switch_cost:5.1f}, "
              f"idle rate {slope.rate:.2f}")
    t1, t2 = three_state.transition_points
    print(f"offline transitions at {t1:.0f} s (accessory) and {t2:.0f} s (deep off)")

    stops = area_config("chicago").stop_length_distribution().sample(4000, rng)
    print(f"\ntraffic: {stops.size} Chicago-like stops, mean {stops.mean():.0f} s")

    print("\nsolving the randomized three-state game...")
    game = solve_multislope_game(three_state, time_points=16)
    print(f"optimal randomized worst-case CR: {game.value:.3f} "
          f"(vs 2.0 deterministic, {np.e/(np.e-1):.3f} classic randomized)")
    print("mixture support (switch-to-accessory, switch-to-off) -> probability:")
    for profile, weight in sorted(game.support(1e-3), key=lambda p: -p[1])[:8]:
        print(f"  ({profile[0]:6.1f} s, {profile[1]:6.1f} s) -> {weight:.3f}")

    controllers = {
        "two-state DET": (two_state, EnvelopeController(two_state)),
        "three-state envelope": (three_state, EnvelopeController(three_state)),
        "three-state randomized": (
            three_state,
            RandomizedMultislopeController(three_state, game),
        ),
    }
    print(f"\n{'controller':<26}{'total cost':>12}{'vs own OPT':>12}{'vs 2-state OPT':>16}")
    two_state_opt = sum(two_state.offline_cost(float(y)) for y in stops)
    for name, (problem, controller) in controllers.items():
        result = simulate_multistate(problem, stops, controller, rng)
        print(f"{name:<26}{result.total_cost:>12.0f}"
              f"{result.realized_cr:>12.3f}"
              f"{result.total_cost / two_state_opt:>16.3f}")
    print("\n(the accessory state shrinks both the optimum and the online cost;")
    print(" randomization buys the usual worst-case improvement on top)")


if __name__ == "__main__":
    main()
