"""Learning-augmented advisor sessions: predictions, trust, tail risk.

:class:`AugmentedAdvisorSession` promotes the offline
prediction-augmented analysis (:mod:`repro.core.prediction`) and the
CVaR-constrained strategy (:mod:`repro.core.tailrisk`) into the live
serving path.  Three pieces compose:

* a pluggable **stop-length predictor** — :class:`ContextualPredictor`
  learns per-hour-of-day decayed running means from the event stream
  itself (the time-of-day feature every stop event already carries);
  :class:`ConstantPredictor` serves tests and adversarial benchmarks;
* a **trust learner** — the PSK interpolation weight ``λ ∈ (0, 1]`` is
  fitted online from the predictor's decayed *wrong-side* rate ``p``
  (prediction and outcome on opposite sides of the break-even):
  minimizing the PSK bound mixture ``(1-p)(1+λ) + p(1+1/λ)`` gives
  ``λ* = sqrt(p/(1-p))``, clipped to ``[trust_floor, 1]`` so the
  unconditional robustness guarantee ``1 + 1/λ`` never degenerates;
* the **degradation ladder** of the base session arbitrates: HEALTHY
  plays PSK at the learned ``λ``, DEGRADED shrinks ``λ`` toward the
  robust end (``λ ← 1 - (1-λ)·degraded_trust``), and SAFE ignores the
  predictor entirely — bit-identical to the plain session's
  distribution-free ``e/(e-1)`` (or DET 2) fallback.

When no prediction is available (cold predictor) the session falls back
to the configured CVaR-α tail-risk strategy
(:class:`~repro.core.tailrisk.TailRiskRand`) if one is set, else to the
plain adaptive estimator — so the tail-cost cap also governs the
warm-up period.

Everything the augmented layer learns — predictor tables, trust
accumulators — rides in the session snapshot/WAL state and restores
bit-identically after a crash, exactly like the estimator and the RNG
stream (the recovery pins in ``tests/test_augmented.py`` enforce it).
The batched ingest path stages augmented runs per event (predictions
are per-event functions of the timestamp, so the HEALTHY columnar
staging does not apply) while keeping the group WAL commit and batched
threshold draws, and stays bit-identical to the scalar loop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.prediction import psk_threshold
from ..core.tailrisk import TailRiskRand, max_nrand_weight
from ..errors import InvalidParameterError
from .session import AdvisorSession, HealthState, SessionConfig

__all__ = [
    "ContextualPredictor",
    "ConstantPredictor",
    "TrustLearner",
    "AugmentedSessionConfig",
    "AugmentedAdvisorSession",
    "build_predictor",
]

#: Hour-of-day buckets of the contextual predictor.
_HOURS = 24


class ContextualPredictor:
    """Per-hour-of-day decayed running mean of observed stop lengths.

    ``predict(t)`` answers from the event's hour bucket once that
    bucket has seen ``min_samples`` stops, falls back to the global
    running mean once *it* has ``min_samples``, and returns ``None``
    while cold — the session then plays its robust strategy instead of
    trusting a prediction that does not exist yet.

    The state is a pure fold over ``observe(t, y)`` calls in stream
    order (ints and IEEE floats, no clocks), so WAL replay rebuilds it
    bit-identically.
    """

    kind = "contextual"

    def __init__(self, min_samples: int = 5, decay: float = 1.0) -> None:
        if min_samples < 1:
            raise InvalidParameterError(
                f"predictor min_samples must be >= 1, got {min_samples}"
            )
        if not 0.0 < decay <= 1.0:
            raise InvalidParameterError(
                f"predictor decay must lie in (0, 1], got {decay!r}"
            )
        self.min_samples = int(min_samples)
        self.decay = float(decay)
        self._counts = [0] * _HOURS
        self._weights = [0.0] * _HOURS
        self._sums = [0.0] * _HOURS
        self._global_count = 0
        self._global_weight = 0.0
        self._global_sum = 0.0

    @staticmethod
    def bucket(timestamp: float) -> int:
        """Hour-of-day of an epoch timestamp (matches
        :func:`repro.core.contextual.hour_of_day_context`)."""
        return int((float(timestamp) % 86400.0) // 3600.0) % _HOURS

    def observe(self, timestamp: float, stop_length: float) -> None:
        b = self.bucket(timestamp)
        y = float(stop_length)
        decay = self.decay
        self._counts[b] += 1
        self._weights[b] = self._weights[b] * decay + 1.0
        self._sums[b] = self._sums[b] * decay + y
        self._global_count += 1
        self._global_weight = self._global_weight * decay + 1.0
        self._global_sum = self._global_sum * decay + y

    def predict(self, timestamp: float) -> float | None:
        b = self.bucket(timestamp)
        if self._counts[b] >= self.min_samples:
            return self._sums[b] / self._weights[b]
        if self._global_count >= self.min_samples:
            return self._global_sum / self._global_weight
        return None

    def to_state(self) -> dict:
        return {
            "kind": self.kind,
            "counts": list(self._counts),
            "weights": list(self._weights),
            "sums": list(self._sums),
            "global": [self._global_count, self._global_weight, self._global_sum],
        }

    def load_state(self, state: dict) -> None:
        self._counts = [int(c) for c in state["counts"]]
        self._weights = [float(w) for w in state["weights"]]
        self._sums = [float(s) for s in state["sums"]]
        count, weight, total = state["global"]
        self._global_count = int(count)
        self._global_weight = float(weight)
        self._global_sum = float(total)


class ConstantPredictor:
    """Always predicts the same stop length; learns nothing.

    The degenerate predictor the adversarial benchmarks and robustness
    tests use: pin it to the wrong side of the break-even and the
    session must still honor the ``1 + 1/λ`` PSK robustness bound.
    """

    kind = "constant"

    def __init__(self, value: float) -> None:
        value = float(value)
        if not math.isfinite(value) or value < 0.0:
            raise InvalidParameterError(
                f"constant prediction must be a finite length >= 0, got {value!r}"
            )
        self.value = value

    def observe(self, timestamp: float, stop_length: float) -> None:
        pass

    def predict(self, timestamp: float) -> float | None:
        return self.value

    def to_state(self) -> dict:
        return {"kind": self.kind, "value": self.value}

    def load_state(self, state: dict) -> None:
        self.value = float(state["value"])


def build_predictor(spec: str, *, min_samples: int = 5, decay: float = 1.0):
    """Predictor factory from a config/CLI spec string.

    ``"none"`` → no predictor; ``"contextual"`` →
    :class:`ContextualPredictor` with the keyword defaults (the config's
    ``predictor_min_samples``/``predictor_decay``), or
    ``"contextual:MIN:DECAY"`` to inline them; ``"constant:VALUE"`` →
    :class:`ConstantPredictor`.
    """
    spec = str(spec).strip()
    if spec == "none":
        return None
    if spec == "contextual":
        return ContextualPredictor(min_samples, decay)
    if spec.startswith("contextual:"):
        parts = spec.split(":")[1:]
        if len(parts) != 2:
            raise InvalidParameterError(
                f"contextual predictor spec must be contextual:MIN:DECAY, got {spec!r}"
            )
        return ContextualPredictor(int(parts[0]), float(parts[1]))
    if spec.startswith("constant:"):
        try:
            value = float(spec.split(":", 1)[1])
        except ValueError:
            raise InvalidParameterError(f"bad constant predictor spec {spec!r}")
        return ConstantPredictor(value)
    raise InvalidParameterError(
        f"unknown predictor {spec!r}: expected none, contextual, "
        "contextual:MIN:DECAY or constant:VALUE"
    )


class TrustLearner:
    """Online PSK trust weight from the decayed wrong-side rate.

    A prediction is *wrong-sided* when it and the realized stop land on
    opposite sides of the break-even — the only error PSK's threshold
    choice actually cares about.  With wrong-side rate ``p``, the
    expected PSK bound ``(1-p)(1+λ) + p(1+1/λ)`` is minimized at
    ``λ* = sqrt(p/(1-p))``; clipping to ``[floor, 1]`` keeps the
    per-stop robustness guarantee at ``1 + 1/floor`` no matter how the
    rate estimate wanders.  Before the first update the learner is
    fully robust (``λ = 1``, i.e. DET).
    """

    def __init__(self, decay: float = 0.95, floor: float = 0.1) -> None:
        if not 0.0 < decay <= 1.0:
            raise InvalidParameterError(f"trust decay must lie in (0, 1], got {decay!r}")
        if not 0.0 < floor <= 1.0:
            raise InvalidParameterError(f"trust floor must lie in (0, 1], got {floor!r}")
        self.decay = float(decay)
        self.floor = float(floor)
        self._count = 0
        self._weight = 0.0
        self._wrong = 0.0

    def update(self, prediction: float, stop_length: float, break_even: float) -> None:
        wrong = (float(prediction) >= break_even) != (float(stop_length) >= break_even)
        self._count += 1
        self._weight = self._weight * self.decay + 1.0
        self._wrong = self._wrong * self.decay + (1.0 if wrong else 0.0)

    @property
    def wrong_rate(self) -> float:
        if self._count == 0:
            return 0.5  # uninformed prior: fully robust
        return min(1.0, max(0.0, self._wrong / self._weight))

    @property
    def trust(self) -> float:
        p = self.wrong_rate
        if p >= 0.5:
            return 1.0  # worse than a coin: play DET
        lam = math.sqrt(p / (1.0 - p))
        return min(1.0, max(self.floor, lam))

    def to_state(self) -> dict:
        return {"count": self._count, "weight": self._weight, "wrong": self._wrong}

    def load_state(self, state: dict) -> None:
        self._count = int(state["count"])
        self._weight = float(state["weight"])
        self._wrong = float(state["wrong"])


@dataclass(frozen=True)
class AugmentedSessionConfig(SessionConfig):
    """Session config with the learning-augmented knobs.

    ``trust=None`` learns λ online (:class:`TrustLearner`); a float in
    ``(0, 1]`` pins it.  ``cvar_alpha`` enables the CVaR-α-capped
    robust strategy for stops with no usable prediction; ``cvar_cap``
    is its tail-cost multiple τ.  Everything else inherits
    :class:`SessionConfig` — in particular the SAFE fallback, which the
    augmented session leaves byte-identical to the plain one.
    """

    predictor: str = "contextual"
    trust: float | None = None
    trust_floor: float = 0.1
    trust_decay: float = 0.95
    degraded_trust: float = 0.5
    predictor_min_samples: int = 5
    predictor_decay: float = 1.0
    cvar_alpha: float | None = None
    cvar_cap: float = 2.0

    def __post_init__(self) -> None:
        super().__post_init__()
        # Raises on a bad spec or bad predictor knobs.
        build_predictor(
            self.predictor,
            min_samples=self.predictor_min_samples,
            decay=self.predictor_decay,
        )
        if self.trust is not None and not 0.0 < self.trust <= 1.0:
            raise InvalidParameterError(
                f"trust must lie in (0, 1] (or None to learn), got {self.trust!r}"
            )
        if not 0.0 < self.trust_floor <= 1.0:
            raise InvalidParameterError(
                f"trust_floor must lie in (0, 1], got {self.trust_floor!r}"
            )
        if not 0.0 <= self.degraded_trust <= 1.0:
            raise InvalidParameterError(
                f"degraded_trust must lie in [0, 1], got {self.degraded_trust!r}"
            )
        if not 0.0 < self.trust_decay <= 1.0:
            raise InvalidParameterError(
                f"trust_decay must lie in (0, 1], got {self.trust_decay!r}"
            )
        if self.cvar_alpha is not None:
            # Raises when (alpha, cap) is infeasible for the mixture.
            max_nrand_weight(self.cvar_alpha, self.cvar_cap)

    @property
    def robustness_guarantee(self) -> float:
        """Per-stop bound against arbitrary predictions: ``1 + 1/λ_min``
        with ``λ_min`` the pinned trust or the learner's floor."""
        lam = self.trust if self.trust is not None else self.trust_floor
        return 1.0 + 1.0 / lam

    def build_session(self, vehicle_id: str, state_dir=None, **kwargs):
        return AugmentedAdvisorSession(vehicle_id, self, state_dir, **kwargs)


class AugmentedAdvisorSession(AdvisorSession):
    """Advisor session that consumes predictions (module docstring)."""

    config: AugmentedSessionConfig

    def _init_fresh_state(self) -> None:
        config = self.config
        self.predictor = build_predictor(
            config.predictor,
            min_samples=config.predictor_min_samples,
            decay=config.predictor_decay,
        )
        self.trust_learner = TrustLearner(config.trust_decay, config.trust_floor)
        self.tail_strategy = (
            TailRiskRand(config.break_even, config.cvar_alpha, config.cvar_cap)
            if config.cvar_alpha is not None
            else None
        )
        self._spec_label: str | None = None
        super()._init_fresh_state()

    # -- trust -------------------------------------------------------------

    def effective_trust(self) -> float:
        """The λ the *next* PSK decision plays, after ladder shaping."""
        config = self.config
        lam = config.trust if config.trust is not None else self.trust_learner.trust
        if self.health is HealthState.DEGRADED:
            # Shrink toward the robust end: keep only degraded_trust of
            # the distance from DET (λ=1).
            lam = 1.0 - (1.0 - lam) * config.degraded_trust
        return min(1.0, max(config.trust_floor, lam))

    # -- the apply path ----------------------------------------------------

    def _decision_spec(self, record: dict | None = None):
        if self.health is HealthState.SAFE:
            # SAFE is the plain session's unconditional guarantee,
            # bit-identical: same strategy, same RNG consumption.
            self._spec_label = None
            return super()._decision_spec(record)
        prediction = None
        if record is not None and self.predictor is not None:
            prediction = self.predictor.predict(float(record["t"]))
        if prediction is not None:
            lam = self.effective_trust()
            self._spec_label = "PSK"
            return (
                "fixed",
                psk_threshold(prediction, self.config.break_even, lam),
            )
        if self.tail_strategy is not None:
            self._spec_label = self.tail_strategy.name
            return ("generic", self.tail_strategy)
        self._spec_label = None
        return super()._decision_spec(record)

    def _stage(self, record: dict) -> dict:
        staged = super()._stage(record)
        if self._spec_label is not None:
            # Label the decision with the strategy actually drawn from
            # (the base labels describe the estimator, which did not
            # choose this threshold).
            staged["strategy"] = self._spec_label
            self._spec_label = None
        if self.predictor is not None:
            timestamp = float(record["t"])
            stop_length = float(record["y"])
            # predict() is pure, so this is the same value the decision
            # spec saw before the event's mutations.
            prediction = self.predictor.predict(timestamp)
            if prediction is not None:
                self.trust_learner.update(
                    prediction, stop_length, self.config.break_even
                )
            self.predictor.observe(timestamp, stop_length)
        return staged

    def _stage_run(self, frames: list) -> list:
        # Predictions are per-event functions of the timestamp, so the
        # HEALTHY columnar staging does not apply; runs keep the group
        # WAL commit, and _finish_run still batches the draws.
        return [self._stage(frame) for frame in frames]

    # -- durability --------------------------------------------------------

    def _augmented_state(self) -> dict:
        return {
            "predictor": None if self.predictor is None else self.predictor.to_state(),
            "trust": self.trust_learner.to_state(),
        }

    def to_state(self) -> dict:
        state = super().to_state()
        state["augmented"] = self._augmented_state()
        return state

    def _delta_changed_fields(self) -> dict:
        changed = super()._delta_changed_fields()
        changed["augmented"] = self._augmented_state()
        return changed

    def _load_state(self, state: dict) -> None:
        super()._load_state(state)
        augmented = state.get("augmented")
        if not augmented:
            return  # snapshot from a plain session: learners start cold
        predictor_state = augmented.get("predictor")
        if self.predictor is not None and predictor_state is not None:
            if predictor_state.get("kind") != self.predictor.kind:
                raise InvalidParameterError(
                    f"snapshot predictor kind {predictor_state.get('kind')!r} "
                    f"does not match configured {self.predictor.kind!r}"
                )
            self.predictor.load_state(predictor_state)
        self.trust_learner.load_state(augmented["trust"])

    # -- observability -----------------------------------------------------

    def health_snapshot(self) -> dict:
        snapshot = super().health_snapshot()
        config = self.config
        snapshot["augmented"] = {
            "predictor": "none" if self.predictor is None else self.predictor.kind,
            "trust": self.trust_learner.trust if config.trust is None else config.trust,
            "effective_trust": self.effective_trust(),
            "wrong_rate": self.trust_learner.wrong_rate,
            "trust_updates": self.trust_learner._count,
            "cvar_alpha": config.cvar_alpha,
            "cvar_cap": config.cvar_cap,
            "robustness_guarantee": config.robustness_guarantee,
        }
        return snapshot
