"""Asyncio JSONL front end for the sharded advisor fleet.

:class:`JsonlFrontend` puts a network face on
:class:`~repro.service.shard.ShardedAdvisorService`: clients stream
JSONL stop events over a Unix or TCP socket (or the process's stdin)
and receive one JSON decision — or ``null`` for malformed/dropped
records — per line, in input order.  The same socket speaks just enough
HTTP for ``GET /health`` and ``GET /ready``: a plain ``curl`` gets the
aggregated fleet snapshot as JSON, no extra port or dependency.
``/health`` is liveness ("the parent answers"; always 200 with the
snapshot); ``/ready`` is the serving gate — 200 only when every shard's
worker is alive, no circuit breaker is open, and no session is
durability-suspended, 503 with the reasons otherwise.

The event loop only routes bytes; all advisor work happens in the shard
worker processes (reached through ``asyncio.to_thread`` so a slow fleet
never blocks accepting connections).  Reads are micro-batched: lines
already buffered on a connection — plus anything arriving within a
short linger — are routed as one chunk, so a client that streams fast
gets the columnar batch path for free while a drip-feeding client still
sees per-event latency close to the linger bound.

``SIGTERM``/``SIGINT`` trigger graceful drain: stop accepting, let
in-flight requests finish, then ``service.close()`` — every shard
flushes WAL + final snapshots before the process exits.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal
import sys

from ..errors import InvalidParameterError

__all__ = ["JsonlFrontend", "parse_listen"]

#: Seconds to wait for more buffered lines before routing a chunk.
_LINGER_S = 0.005
#: Max lines routed as one chunk (bounds per-request latency and memory).
_MICRO_BATCH = 256
#: Bound on one JSONL line / HTTP request line.
_LINE_LIMIT = 1 << 20
#: Seconds an HTTP client has to finish sending its request headers.  A
#: client that sends ``GET /health HTTP/1.0`` and then stalls (partial
#: read, half-open connection) must not pin the handler task forever.
_HTTP_HEADER_TIMEOUT_S = 5.0
#: Request methods that mark a connection as speaking HTTP rather than
#: JSONL.  Only GET/HEAD are *served*; the rest get a clean 405 instead
#: of being misparsed as (malformed) JSONL event lines.
_HTTP_METHODS = frozenset(
    {"GET", "HEAD", "POST", "PUT", "DELETE", "PATCH", "OPTIONS", "TRACE", "CONNECT"}
)
#: High-water mark on a connection's kernel-side write buffer.  Without
#: a bound, a client that sends events but stops reading decisions lets
#: the transport buffer the entire response stream in process memory.
_WRITE_BUFFER_HIGH = 1 << 20
#: Seconds a drain may stall before the client is declared slow and
#: disconnected.  Generous — this trips on clients that stopped reading
#: entirely, not on ordinary TCP backpressure.
_DRAIN_TIMEOUT_S = 10.0


def parse_listen(address: str) -> tuple:
    """Parse a ``--listen`` spec into ``("unix", path)`` or ``("tcp", host, port)``.

    Accepted forms::

        unix:/run/advisor.sock      explicit unix socket
        ./advisor.sock              bare path (contains a '/')
        tcp:127.0.0.1:8765          explicit tcp
        127.0.0.1:8765              host:port
        :8765                       all-defaults host (127.0.0.1)
    """
    address = address.strip()
    if not address:
        raise InvalidParameterError("empty --listen address")
    if address.startswith("unix:"):
        path = address[len("unix:"):]
        if not path:
            raise InvalidParameterError(f"no socket path in {address!r}")
        return ("unix", path)
    if address.startswith("tcp:"):
        address = address[len("tcp:"):]
    elif "/" in address:
        return ("unix", address)
    host, separator, port = address.rpartition(":")
    if not separator or not port.isdigit():
        raise InvalidParameterError(
            f"cannot parse listen address {address!r}: expected "
            "unix:PATH, a socket path, HOST:PORT or :PORT"
        )
    return ("tcp", host or "127.0.0.1", int(port))


class JsonlFrontend:
    """Socket/stdin front end over a sharded advisor (see module docstring).

    ``service`` needs only ``request_lines``/``health_snapshot``/
    ``close`` — a plain in-process service satisfying that shape works
    too (the tests use both).
    """

    def __init__(self, service, *, batch: int = _MICRO_BATCH) -> None:
        self.service = service
        self.batch = max(1, int(batch))
        self.connections = 0
        self.requests = 0
        #: Connections force-closed because their drain stalled past
        #: `_DRAIN_TIMEOUT_S` — the client stopped reading decisions.
        self.slow_client_disconnects = 0
        self._stop = None  # asyncio.Event, created inside the loop

    # -- protocol ---------------------------------------------------------

    async def _drain(self, writer) -> None:
        """Bounded drain: disconnect (and count) a client that stopped
        reading instead of waiting on its buffer forever.

        With the transport's write buffer capped at `_WRITE_BUFFER_HIGH`,
        ``drain()`` blocks once a slow client is a buffer behind; a stall
        past `_DRAIN_TIMEOUT_S` means it stopped reading entirely, so the
        connection is aborted — freeing the handler task and the buffered
        bytes — and surfaces as ``slow_client_disconnects`` in
        ``/health``.  The raised reset follows the normal client-went-
        away path in ``_handle``.
        """
        try:
            await asyncio.wait_for(writer.drain(), timeout=_DRAIN_TIMEOUT_S)
        except asyncio.TimeoutError:
            self.slow_client_disconnects += 1
            if writer.transport is not None:
                writer.transport.abort()
            raise ConnectionResetError(
                f"slow client: write buffer not drained within {_DRAIN_TIMEOUT_S}s"
            ) from None

    async def _route(self, lines: list[str]) -> list:
        self.requests += len(lines)
        return await asyncio.to_thread(self.service.request_lines, lines)

    async def _read_chunk(self, reader) -> list[str]:
        """One micro-batch: first line blocking, the rest within the linger."""
        first = await reader.readline()
        if not first:
            return []
        lines = [first]
        while len(lines) < self.batch:
            try:
                line = await asyncio.wait_for(reader.readline(), timeout=_LINGER_S)
            except asyncio.TimeoutError:
                break
            if not line:
                break
            lines.append(line)
        return [line.decode("utf-8", "replace").rstrip("\r\n") for line in lines]

    async def _consume_headers(self, reader) -> None:
        while True:  # consume request headers up to the blank line
            header = await reader.readline()
            if not header or header in (b"\r\n", b"\n"):
                return

    async def _serve_health(self, first_line: str, reader, writer) -> None:
        # Just enough HTTP/1.0 for `curl http://host:port/health`.
        # Every response closes the connection (HTTP/1.0 semantics), so
        # each branch below is terminal for the handler task.
        parts = first_line.split(" ")
        method = parts[0]
        target = parts[1] if len(parts) > 1 else ""
        malformed = (
            not target
            or len(parts) > 3
            or (len(parts) == 3 and not parts[2].startswith("HTTP/"))
        )
        if malformed:
            # A truncated or mangled request line ("GET", "GET /health
            # junk extra"): answer 400 and close — never fall through to
            # the JSONL parser or hang waiting for more of it.
            writer.write(
                b"HTTP/1.0 400 Bad Request\r\ncontent-type: text/plain\r\n"
                b"connection: close\r\n\r\nmalformed request line\n"
            )
            await self._drain(writer)
            return
        if method not in ("GET", "HEAD"):
            writer.write(
                b"HTTP/1.0 405 Method Not Allowed\r\nallow: GET, HEAD\r\n"
                b"content-type: text/plain\r\nconnection: close\r\n\r\n"
                b"only GET/HEAD /health and /ready are served here\n"
            )
            await self._drain(writer)
            return
        try:
            # Bounded: a client that stalls mid-headers (partial read)
            # must not pin this task forever.
            await asyncio.wait_for(
                self._consume_headers(reader), timeout=_HTTP_HEADER_TIMEOUT_S
            )
        except asyncio.TimeoutError:
            writer.write(
                b"HTTP/1.0 408 Request Timeout\r\ncontent-type: text/plain\r\n"
                b"connection: close\r\n\r\nrequest headers never completed\n"
            )
            await self._drain(writer)
            return
        path = target.split("?")[0]
        if path in ("/ready", "/readyz"):
            verdict = await asyncio.to_thread(self._readiness)
            body = json.dumps(verdict, indent=2).encode() + b"\n"
            status = b"200 OK" if verdict["ready"] else b"503 Service Unavailable"
            head = (
                b"HTTP/1.0 " + status + b"\r\ncontent-type: application/json\r\n"
                + f"content-length: {len(body)}\r\n\r\n".encode()
            )
            writer.write(head if method == "HEAD" else head + body)
        elif path not in ("/health", "/healthz"):
            writer.write(
                b"HTTP/1.0 404 Not Found\r\ncontent-type: text/plain\r\n\r\n"
                b"only /health and /ready are served here\n"
            )
        else:
            snapshot = dict(await asyncio.to_thread(self.service.health_snapshot))
            snapshot["frontend"] = {
                "connections": self.connections,
                "requests": self.requests,
                "slow_client_disconnects": self.slow_client_disconnects,
            }
            body = json.dumps(snapshot, indent=2).encode() + b"\n"
            head = (
                b"HTTP/1.0 200 OK\r\ncontent-type: application/json\r\n"
                + f"content-length: {len(body)}\r\n\r\n".encode()
            )
            writer.write(head if method == "HEAD" else head + body)
        await self._drain(writer)

    def _readiness(self) -> dict:
        """The service's readiness verdict, never raising.

        A service without a ``readiness`` method (plain stand-ins in
        tests) is ready whenever it answers; a probe that *raises* is a
        not-ready with the error as the reason — a readiness endpoint
        that can 500 defeats its purpose.
        """
        probe = getattr(self.service, "readiness", None)
        if probe is None:
            return {"ready": True, "reasons": []}
        try:
            return probe()
        except Exception as exc:
            return {"ready": False, "reasons": [f"readiness probe failed: {exc!r}"]}

    async def _handle(self, reader, writer) -> None:
        self.connections += 1
        if writer.transport is not None:
            # Cap the kernel-side buffer so drain() exerts backpressure
            # as soon as a client falls one buffer behind (see _drain).
            writer.transport.set_write_buffer_limits(high=_WRITE_BUFFER_HIGH)
        try:
            first = await reader.readline()
            if not first:
                return
            text = first.decode("utf-8", "replace").rstrip("\r\n")
            if text.split(" ", 1)[0] in _HTTP_METHODS:
                await self._serve_health(text, reader, writer)
                return
            pending = [text]
            while True:
                decisions = await self._route(pending)
                out = b"".join(
                    json.dumps(decision).encode() + b"\n" for decision in decisions
                )
                writer.write(out)
                await self._drain(writer)
                pending = await self._read_chunk(reader)
                if not pending:
                    return
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-stream; shard state is unaffected
        except (ValueError, asyncio.LimitOverrunError):
            # A line over _LINE_LIMIT (StreamReader.readline surfaces the
            # overrun as ValueError): the stream is unframed from here,
            # so close cleanly instead of crashing the handler task.
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    # -- stdin pump -------------------------------------------------------

    async def pump_stdin(self, stream=None, out=None) -> int:
        """Route a JSONL stream from ``stream`` (default stdin); returns events routed."""
        stream = stream if stream is not None else sys.stdin
        routed = 0
        pending: list[str] = []

        async def flush() -> None:
            nonlocal routed
            if pending:
                decisions = await self._route(pending)
                routed += len(pending)
                pending.clear()
                if out is not None:
                    for decision in decisions:
                        out.write(json.dumps(decision) + "\n")

        for line in stream:
            line = line.rstrip("\r\n")
            if not line.strip():
                continue
            pending.append(line)
            if len(pending) >= self.batch:
                await flush()
            if self._stop is not None and self._stop.is_set():
                break
        await flush()
        return routed

    # -- lifecycle --------------------------------------------------------

    async def serve(
        self,
        listen: str | None = None,
        *,
        stdin=None,
        stdin_out=None,
        ready=None,
        install_signals: bool = True,
    ) -> None:
        """Run until SIGTERM/SIGINT (or stdin EOF when socket-less).

        ``listen`` is a :func:`parse_listen` spec; ``stdin`` (a line
        iterable) additionally pumps a JSONL stream through the fleet.
        ``ready`` (an ``asyncio.Event``) is set once the socket accepts
        — the tests use it instead of polling.  Closing the service —
        the graceful fleet drain — is the caller's job, so a CLI can
        print the final fleet summary after ``serve`` returns.
        """
        loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        if install_signals:
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, self._stop.set)
                except (NotImplementedError, RuntimeError):  # pragma: no cover
                    pass
        server = None
        if listen is not None:
            spec = parse_listen(listen)
            if spec[0] == "unix":
                server = await asyncio.start_unix_server(
                    self._handle, path=spec[1], limit=_LINE_LIMIT
                )
            else:
                server = await asyncio.start_server(
                    self._handle, host=spec[1], port=spec[2], limit=_LINE_LIMIT
                )
        try:
            if ready is not None:
                ready.set()
            if stdin is not None:
                await self.pump_stdin(stdin, stdin_out)
                if server is None:
                    return  # pure pipe mode: EOF is shutdown
            await self._stop.wait()
        finally:
            if server is not None:
                server.close()
                await server.wait_closed()

    def request_stop(self) -> None:
        """Thread-safe shutdown trigger (what the signal handlers call)."""
        if self._stop is not None:
            self._stop.set()
