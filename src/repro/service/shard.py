"""Sharded multi-process serving tier: consistent-hash fleet routing.

One :class:`~repro.service.advisor.AdvisorService` process tops out at
one core's worth of batched ingest.  :class:`ShardedAdvisorService`
turns that per-core path into fleet throughput by partitioning the
vehicle-id space across N worker processes with a consistent-hash ring:

* every vehicle id is owned by exactly one shard, so per-vehicle event
  order — the thing session state depends on — is preserved without any
  cross-process coordination;
* each worker owns its shard's state directory (WAL, snapshots,
  quarantine sidecar, per-shard ledger) and serves it with the stock
  ``AdvisorService``/``AdvisorSession`` machinery, *unchanged* — the
  sharding layer routes lines, it never touches decision logic;
* sharding is therefore a **pure partition**: for any stream and any
  shard count, the multiset of per-vehicle decisions and
  ``state_digest()`` values equals the single-process run
  (``tests/test_service_shard.py`` pins this as a Hypothesis property).

Delivery is **at-least-once**: the parent keeps every dispatched chunk
in flight until the owning worker acknowledges it.  A worker that dies
(SIGKILL, OOM) is respawned — recovering its shard bit-identically from
the WAL + snapshots — and the unacknowledged chunks are redelivered in
their original dispatch order; the sessions' idempotent event ids
absorb anything the dead worker had already applied.  ``SIGTERM`` is
the graceful path: the worker finishes what is already queued, flushes
WAL + final snapshots (``service.close()``) and exits, and the parent
spawns a fresh worker for the handoff.

Supervision is self-healing (see ``docs/serving.md``, "Failure-mode
matrix"): a worker that goes silent while holding work — no ack, reply,
or idle heartbeat for ``hang_timeout`` — is SIGKILLed and recovered
like any crash; a chunk at the head of the redelivery queue across
``poison_budget`` consecutive crashes is quarantined with provenance to
``poison.quarantine.jsonl`` and skipped; a shard that crashes
``restart_budget`` times consecutively (backing off exponentially
between respawns) trips a circuit breaker — it stays down and its
traffic is shed with count instead of burning respawns forever.

Each worker guards its state directory with a ``shard.lock`` file
recording its pid plus a ``/proc`` start-time token (``O_CREAT |
O_EXCL`` — the same owner discipline as :mod:`repro.engine.faults`
claim files, immune to pid reuse).  A stale lock left by a
SIGKILLed worker is swept automatically on the next acquire, and
``repro-idling cache doctor --fault-claims DIR`` sweeps them explicitly
via :func:`sweep_stale_shard_locks`.

See ``docs/serving.md`` ("Sharded serving") for the topology diagram,
the routing rule, and the health endpoint schema.
"""

from __future__ import annotations

import bisect
import hashlib
import json
import multiprocessing
import os
import pickle
import queue as queue_module
import signal
import threading
import time
import traceback
from multiprocessing.connection import wait as _connection_wait
from pathlib import Path

from ..engine.ledger import RunLedger, active_ledger, use_ledger
from ..errors import InvalidParameterError, ReproError
from .advisor import (
    REGISTRY_NAME,
    AdvisorService,
    RegisteredAdvisorService,
    gate_on_replication,
)

__all__ = [
    "HashRing",
    "POISON_SIDECAR_NAME",
    "SHARD_LOCK_NAME",
    "ShardLockError",
    "ShardedAdvisorService",
    "acquire_shard_lock",
    "parallel_headroom",
    "release_shard_lock",
    "sweep_stale_shard_locks",
]

SHARD_LOCK_NAME = "shard.lock"
# Per-shard vehicle registry; the implementation (and the canonical
# REGISTRY_NAME constant) moved to advisor.py when standby promotion
# started needing the same warm-recovery machinery.
_REGISTRY_NAME = REGISTRY_NAME
#: Rate limit for shard-tier backpressure ledger warnings (mirrors the
#: per-process ``AdvisorService.offer`` policy).
_SHED_WARN_EVERY = 1000
#: Crash-loop backoff: the first crash respawns immediately (the common
#: SIGKILL/OOM case must not add latency), the second waits this long,
#: doubling per consecutive crash up to the cap — a tight crash loop
#: burns backoff instead of CPU while containment decides what to do.
_BACKOFF_BASE_S = 0.1
_BACKOFF_CAP_S = 5.0
#: Poison-chunk quarantine sidecar (JSONL, parent-side, with provenance
#: — the shard-tier mirror of the validation layer's quarantine files).
POISON_SIDECAR_NAME = "poison.quarantine.jsonl"
#: Sentinel returned by ``_dispatch`` when the target shard's circuit
#: breaker is open — distinct from ``None`` (= queue-full shed) so
#: callers can count breaker sheds separately from backpressure sheds.
_BREAKER = object()


def parallel_headroom() -> int:
    """CPUs actually usable by this process (affinity-aware).

    The sharded bench's scaling gate is meaningful only up to this
    number: N workers on fewer than N cores time-slice one another and
    honest near-linear scaling is physically unavailable.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


class HashRing:
    """Consistent-hash ring mapping vehicle ids to shard indices.

    Each shard owns ``replicas`` virtual points on a 64-bit ring
    (``sha256`` of a stable per-replica key); an id is owned by the
    first point clockwise from its own hash.  Properties the serving
    tier relies on:

    * **deterministic** — the mapping is a pure function of
      ``(shards, replicas, id)``: every parent restart routes
      identically, so a vehicle's events always reach the shard holding
      its durable state;
    * **balanced** — virtual points smooth the per-shard load to within
      a few percent at the default 64 replicas;
    * **stable under growth** — adding a shard only claims arcs from
      existing shards, so roughly ``1/(N+1)`` of ids move (a future
      resharding migration touches only those).
    """

    def __init__(self, shards: int, replicas: int = 64) -> None:
        if shards < 1:
            raise InvalidParameterError(f"shards must be >= 1, got {shards}")
        if replicas < 1:
            raise InvalidParameterError(f"replicas must be >= 1, got {replicas}")
        self.shards = int(shards)
        self.replicas = int(replicas)
        points = sorted(
            (self._point(f"shard-{shard:05d}/{replica:05d}"), shard)
            for shard in range(self.shards)
            for replica in range(self.replicas)
        )
        self._hashes = [point for point, _ in points]
        self._owners = [owner for _, owner in points]

    @staticmethod
    def _point(key: str) -> int:
        return int.from_bytes(hashlib.sha256(key.encode()).digest()[:8], "big")

    def route(self, vehicle_id: str) -> int:
        """The shard index owning ``vehicle_id``."""
        if self.shards == 1:
            return 0
        index = bisect.bisect_right(self._hashes, self._point(str(vehicle_id)))
        if index == len(self._hashes):
            index = 0
        return self._owners[index]


# -- shard state-dir locks -------------------------------------------------


class ShardLockError(ReproError):
    """A shard state directory is already locked by a live process."""


def _lock_record(path) -> str:
    try:
        return Path(path).read_text().strip()
    except OSError:
        return ""


def acquire_shard_lock(state_dir: str | Path) -> Path:
    """Take exclusive ownership of a shard state directory.

    The lock file records the owning pid plus its start-time token
    (``O_CREAT | O_EXCL`` — atomic everywhere; see
    :func:`repro.engine.faults.owner_record`).  A lock whose owner is
    **dead** — dead pid, unreadable record, or a live pid whose token
    mismatches (the pid was recycled by an unrelated process) — is
    swept and re-acquired; a lock held by a live owner raises
    :class:`ShardLockError` — two workers must never share a WAL.
    """
    from ..engine.faults import owner_alive, owner_record

    state_dir = Path(state_dir)
    state_dir.mkdir(parents=True, exist_ok=True)
    path = state_dir / SHARD_LOCK_NAME
    for _attempt in range(3):
        try:
            handle = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            record = _lock_record(path)
            if owner_alive(record):
                raise ShardLockError(
                    f"shard state dir {state_dir} is locked by live pid "
                    f"{record.split()[0]}"
                )
            try:
                os.unlink(path)
            except FileNotFoundError:
                pass
            continue
        try:
            os.write(handle, owner_record().encode())
        finally:
            os.close(handle)
        return path
    raise ShardLockError(f"could not acquire shard lock {path}")


def release_shard_lock(path: str | Path) -> None:
    """Drop a lock taken by :func:`acquire_shard_lock` (idempotent)."""
    try:
        os.unlink(path)
    except FileNotFoundError:
        pass


def sweep_stale_shard_locks(root: str | Path) -> list[str]:
    """Remove ``shard.lock`` files (recursively) whose owner pid is dead.

    The shard-lock counterpart of
    :func:`repro.engine.faults.sweep_stale_claims`: a SIGKILLed worker
    leaves its lock behind, and while a *running*
    :class:`ShardedAdvisorService` sweeps it automatically on respawn,
    an operator restarting a torn-down fleet wants the explicit
    doctor-style cleanup (``cache doctor --fault-claims DIR`` runs
    both sweeps).  Locks held by live owners are kept; a live pid
    whose start-time token mismatches the record is a recycled pid —
    stale, swept.
    """
    from ..engine.faults import owner_alive

    removed: list[str] = []
    root = Path(root)
    if not root.exists():
        return removed
    candidates = sorted(root.rglob(SHARD_LOCK_NAME))
    if root.name == SHARD_LOCK_NAME and root.is_file():
        candidates.insert(0, root)
    for path in candidates:
        if not path.is_file():
            continue
        if owner_alive(_lock_record(path)):
            continue
        try:
            path.unlink()
        except FileNotFoundError:
            continue
        removed.append(str(path))
    return removed


# -- worker process --------------------------------------------------------


# Kept under its historical private name for the worker below; the
# class itself now lives in advisor.py (promotion reuses it).
_RegisteredAdvisorService = RegisteredAdvisorService


def _execute_command(
    shard: int, service: AdvisorService, command, conn, injector=None
) -> None:
    kind = command[0]
    if kind == "chunk":
        _, chunk_id, lines, want_decisions = command
        if injector is not None:
            # Chaos hook: every line is offered to the fault injector
            # *before* any line of the chunk is applied, so a "kill"
            # fault can never leave a partially ingested chunk behind —
            # redelivery after the crash replays the whole chunk.
            for line in lines:
                injector(line)
        decisions = service.ingest_lines(lines)
        # The ack timestamp is CLOCK_MONOTONIC, comparable with the
        # parent's dispatch stamp on the same host — it is the p50/p99
        # chunk-latency sample.
        conn.send(
            (
                "ack",
                shard,
                chunk_id,
                time.monotonic(),
                len(lines),
                decisions if want_decisions else None,
            )
        )
    elif kind == "health":
        _, request_id, include_vehicles = command
        snapshot = service.health_snapshot(include_vehicles=include_vehicles)
        snapshot["vehicle_count"] = len(service.sessions)
        conn.send(("reply", shard, request_id, snapshot))
    elif kind == "digests":
        _, request_id = command
        digests = {
            vehicle_id: session.state_digest()
            for vehicle_id, session in sorted(service.sessions.items())
        }
        conn.send(("reply", shard, request_id, digests))


def _worker_loop(
    shard, service, commands, conn, stopping, injector=None, beat_every=0.0
) -> None:
    last_sent = time.monotonic()
    while True:
        if stopping.is_set():
            # SIGTERM drain: finish what is already queued, take nothing
            # new; the caller then flushes WAL + snapshots and exits.
            while True:
                try:
                    command = commands.get_nowait()
                except queue_module.Empty:
                    return
                if command[0] == "stop":
                    return
                _execute_command(shard, service, command, conn, injector)
        try:
            command = commands.get(timeout=0.1)
        except queue_module.Empty:
            # Idle heartbeat: acks double as liveness while busy, so a
            # beat is only needed when there is nothing to ack.  A send
            # failure means the parent is gone — exit quietly.
            if beat_every > 0.0 and time.monotonic() - last_sent >= beat_every:
                try:
                    conn.send(("beat", shard))
                except OSError:
                    return
                last_sent = time.monotonic()
            continue
        if command[0] == "stop":
            return
        _execute_command(shard, service, command, conn, injector)
        last_sent = time.monotonic()


def _shard_worker(
    shard: int,
    state_dir: str,
    config,
    policy: str,
    fsync: bool,
    max_queue: int,
    ledger_path: str | None,
    commands,
    conn,
    injector=None,
    beat_every: float = 0.0,
) -> None:
    """Worker-process entry point (module-level: spawn-picklable).

    Owns one shard: lock the state dir, warm-recover every session,
    serve commands until ``("stop",)`` or SIGTERM, then flush WAL +
    final snapshots and release the lock.  Any exception is reported to
    the parent as an ``("error", ...)`` message rather than a silent
    nonzero exit.
    """
    stopping = threading.Event()
    signal.signal(signal.SIGTERM, lambda *_args: stopping.set())
    signal.signal(signal.SIGINT, signal.SIG_IGN)  # parent owns ctrl-C
    try:
        lock_path = acquire_shard_lock(state_dir)
    except ShardLockError:
        conn.send(("error", shard, traceback.format_exc()))
        conn.close()
        return
    ledger = (
        RunLedger(ledger_path, fsync=fsync, append=True)
        if ledger_path is not None
        else None
    )
    service = None
    error = None
    try:
        service = _RegisteredAdvisorService(
            Path(state_dir),
            config,
            policy=policy,
            fsync=fsync,
            max_queue=max_queue,
        )
        if ledger is not None:
            with use_ledger(ledger):
                _worker_loop(
                    shard, service, commands, conn, stopping, injector, beat_every
                )
        else:
            _worker_loop(
                shard, service, commands, conn, stopping, injector, beat_every
            )
    except Exception:
        error = traceback.format_exc()
    if service is not None:
        try:
            service.close()
        except Exception:
            if error is None:
                error = traceback.format_exc()
    try:
        conn.send(("stopped", shard) if error is None else ("error", shard, error))
    except OSError:  # parent already gone
        pass
    release_shard_lock(lock_path)
    conn.close()


# -- the sharded tier ------------------------------------------------------


class ShardedAdvisorService:
    """Consistent-hash sharded advisor fleet (see module docstring).

    Parameters
    ----------
    state_dir:
        Root directory; shard ``i`` owns ``state_dir/shard-NN``.
    config:
        Shared :class:`~repro.service.session.SessionConfig`.
    shards:
        Worker count (>= 1).
    workers:
        ``True`` (default) spawns one process per shard.  ``False``
        runs the same routing over in-process ``AdvisorService``
        instances — no parallelism, but byte-for-byte the same
        partition; the equivalence property tests this mode.
    queue_depth:
        Bound on each shard's pending-command queue.  ``submit_lines``
        blocks on a full queue (lossless backpressure);
        ``offer_lines`` sheds and counts instead, emitting the same
        rate-limited ``advisor-backpressure`` ledger warning as
        ``AdvisorService.offer``.
    ledger_path:
        Optional base path: worker ``i`` appends its advisor-state
        events to ``<ledger_path>.shard-NN`` (one writer per file —
        JSONL appends do not interleave safely across processes).
    hang_timeout:
        Self-healing supervision: a worker that is *alive* but has sent
        nothing — no ack, no reply, no idle heartbeat — for this many
        seconds while holding in-flight work is presumed hung
        (deadlocked, SIGSTOPped, livelocked), SIGKILLed, and respawned
        through the normal redelivery path.  Workers send idle
        heartbeats every ``hang_timeout / 4`` seconds (floored at 50 ms,
        capped at 1 s) and every ack doubles as a beat, so the timeout
        only needs to exceed the worst-case single-chunk processing
        time.  ``None`` disables hang detection.
    restart_budget:
        Crash-loop containment: after this many *consecutive* crashes
        (any successful ack resets the count) the shard's circuit
        breaker opens — the worker stays down, its traffic is shed with
        count (``breaker_shed``), control requests get ``None`` rows —
        instead of burning CPU respawning forever.  Consecutive crashes
        before the budget back off exponentially (0.1 s doubling, capped
        at 5 s; the first crash respawns immediately).
    poison_budget:
        Poison-chunk quarantine: when the same head-of-queue chunk is
        in flight across this many consecutive crashes, the chunk —
        not the worker — is presumed at fault; it is written with full
        provenance to ``state_dir/poison.quarantine.jsonl``, dropped
        from redelivery, counted (``quarantined_chunks`` /
        ``quarantined_events``), and the crash counter resets so the
        shard keeps serving everything else.
    injector:
        Optional :class:`repro.engine.faults.FaultInjector` consulted
        by workers for every line *before* a chunk is applied — the
        chaos harness's deterministic crash trigger (picklable; ships
        to workers at spawn).
    """

    def __init__(
        self,
        state_dir: str | Path,
        config,
        *,
        shards: int = 2,
        policy: str = "repair",
        fsync: bool = False,
        max_queue: int = 4096,
        queue_depth: int = 8,
        replicas: int = 64,
        workers: bool = True,
        ledger_path: str | Path | None = None,
        recover: bool = True,
        hang_timeout: float | None = 30.0,
        restart_budget: int = 8,
        poison_budget: int = 3,
        injector=None,
        replication=None,
    ) -> None:
        if shards < 1:
            raise InvalidParameterError(f"shards must be >= 1, got {shards}")
        if hang_timeout is not None and not hang_timeout > 0:
            raise InvalidParameterError(
                f"hang_timeout must be > 0 or None, got {hang_timeout}"
            )
        if restart_budget < 1:
            raise InvalidParameterError(
                f"restart_budget must be >= 1, got {restart_budget}"
            )
        if poison_budget < 1:
            raise InvalidParameterError(
                f"poison_budget must be >= 1, got {poison_budget}"
            )
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.config = config
        self.policy = policy
        self.fsync = bool(fsync)
        self.max_queue = int(max_queue)
        self.recover = bool(recover)
        self.shards = int(shards)
        self.queue_depth = max(1, int(queue_depth))
        self.ring = HashRing(self.shards, replicas)
        self.worker_mode = bool(workers)
        self._ledger_path = None if ledger_path is None else str(ledger_path)
        self._ledger = active_ledger()
        # Events shed by offer_lines (tier backpressure), counted per
        # shard; the aggregate is always their sum (see the ``shed``
        # property), so health snapshots can never drift from the
        # per-shard ledger warnings.
        self.shed_by_shard = [0] * self.shards
        self.dispatched_events = 0
        self.restarts = [0] * self.shards
        # -- self-healing supervision (see class docstring) --
        self.hang_timeout = None if hang_timeout is None else float(hang_timeout)
        self.restart_budget = int(restart_budget)
        self.poison_budget = int(poison_budget)
        self.hangs = [0] * self.shards
        self.quarantined_chunks = 0
        self.quarantined_events = 0
        self.breaker_open: set[int] = set()
        self.breaker_shed_by_shard = [0] * self.shards
        self._injector = injector
        # Optional ReplicationMonitor (service/replica.py): lag against
        # the standby's watermarks, surfaced in /health and /ready.
        self.replication = replication
        self._beat_every = (
            0.0
            if self.hang_timeout is None
            else max(0.05, min(1.0, self.hang_timeout / 4.0))
        )
        self._poison_path = self.state_dir / POISON_SIDECAR_NAME
        if not self.worker_mode:
            self._inline = [
                AdvisorService(
                    self._shard_dir(index),
                    config,
                    policy=policy,
                    fsync=fsync,
                    max_queue=max_queue,
                    recover=recover,
                )
                for index in range(self.shards)
            ]
            self._closed = False
            return
        self._context = multiprocessing.get_context("spawn")
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._shard_locks = [threading.Lock() for _ in range(self.shards)]
        self._chunk_counter = 0
        self._request_counter = 0
        # chunk_id -> (command, submit_monotonic, event_count); kept
        # until the owning worker acks — the at-least-once ledger.
        self._in_flight: list[dict[int, tuple]] = [{} for _ in range(self.shards)]
        self._decisions: dict[int, list] = {}
        self._replies: dict[int, object] = {}
        self._pending_controls: dict[int, tuple[int, tuple]] = {}
        self._latencies: list[tuple[float, int]] = []
        self._acked_chunks = [0] * self.shards
        self._acked_events = [0] * self.shards
        self._stop_sent: set[int] = set()
        self._stopped: set[int] = set()
        self._failed: set[int] = set()
        self._eof: set[int] = set()
        self._errors: list[str] = []
        self._shutdown = False
        # Supervision bookkeeping: last message time per shard (acks,
        # replies, and idle beats all count), consecutive-crash counts
        # (reset by any ack or a quarantine), per-chunk crash
        # attribution for the head of each shard's redelivery queue,
        # not-before respawn deadlines (crash-loop backoff), and the
        # set of dead workers whose death has already been classified.
        self._last_seen = [time.monotonic()] * self.shards
        # Shards whose current worker has sent at least one message
        # since its last spawn.  Hang detection only arms after that:
        # a booting worker (interpreter start, warm session recovery)
        # is busy *and* silent for an unbounded, hardware-dependent
        # time, and killing it mid-boot would flap forever.
        self._heard_from: set[int] = set()
        self._consecutive_crashes = [0] * self.shards
        self._head_crashes: list[dict[int, int]] = [{} for _ in range(self.shards)]
        self._respawn_at = [0.0] * self.shards
        self._death_noted: set[int] = set()
        self._commands: list = [None] * self.shards
        self._pipes: list = [None] * self.shards
        self._procs: list = [None] * self.shards
        for index in range(self.shards):
            self._spawn(index)
        self._collector = threading.Thread(
            target=self._collect, name="shard-collector", daemon=True
        )
        self._collector.start()

    # -- topology ---------------------------------------------------------

    def _shard_dir(self, shard: int) -> Path:
        return self.state_dir / f"shard-{shard:02d}"

    def _worker_ledger_path(self, shard: int) -> str | None:
        if self._ledger_path is None:
            return None
        return f"{self._ledger_path}.shard-{shard:02d}"

    def route(self, vehicle_id: str) -> int:
        """The shard index owning ``vehicle_id`` (pure, deterministic)."""
        return self.ring.route(str(vehicle_id))

    @property
    def worker_pids(self) -> list[int | None]:
        if not self.worker_mode:
            return []
        return [process.pid if process is not None else None for process in self._procs]

    def __enter__(self) -> "ShardedAdvisorService":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- routing/partition ------------------------------------------------

    def _partition(self, lines: list[str]) -> list[tuple[int, tuple[list, list]]]:
        """Group JSONL lines by owning shard, preserving in-chunk order.

        Decoded once here for routing only; workers re-parse their own
        sub-chunk (in parallel, through the same ``ingest_lines`` array
        decode).  A line whose vehicle cannot be identified — garbage
        JSON, or no usable ``vehicle`` field — is routed by a hash of
        the raw line: deterministic, and behaviour-neutral because such
        lines only touch malformed counters, never a session.
        """
        try:
            records = json.loads("[" + ",".join(lines) + "]")
            if len(records) != len(lines):
                records = None
        except json.JSONDecodeError:
            records = None
        if records is None:
            records = []
            for line in lines:
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError:
                    records.append(None)
        groups: dict[int, tuple[list, list]] = {}
        for position, (line, record) in enumerate(zip(lines, records)):
            vehicle = AdvisorService._identifiable_vehicle(record)
            shard = self.ring.route(vehicle if vehicle is not None else line)
            bucket = groups.setdefault(shard, ([], []))
            bucket[0].append(position)
            bucket[1].append(line)
        return sorted(groups.items())

    @staticmethod
    def _as_lines(lines) -> list[str]:
        return [
            line if isinstance(line, str) else json.dumps(line) for line in lines
        ]

    # -- ingestion --------------------------------------------------------

    def submit_lines(self, lines) -> None:
        """Route one chunk to its shards, blocking on full queues.

        The lossless path (file pumps, benches, chaos harnesses): a
        full shard queue exerts backpressure on the caller instead of
        shedding.  "Lossless" has one exception — a shard whose circuit
        breaker is open has no worker to block *for*, so its sub-chunks
        are shed with count (``breaker_shed_by_shard``) rather than
        deadlocking the caller.
        """
        lines = self._as_lines(lines)
        if not lines:
            return
        for shard, (_positions, sub_lines) in self._partition(lines):
            if not self.worker_mode:
                self._inline[shard].ingest_lines(sub_lines)
            elif (
                self._dispatch(shard, sub_lines, want_decisions=False, block=True)
                is _BREAKER
            ):
                self._note_breaker_shed(shard, len(sub_lines))

    def offer_lines(self, lines) -> int:
        """Route one chunk, shedding sub-chunks on full queues.

        The overload-protection path: per-shard queues are bounded, and
        a full one sheds the whole sub-chunk and counts it (plus a
        rate-limited ``advisor-backpressure`` ledger warning) — silent
        loss is never allowed, unbounded memory never happens.  Returns
        the number of accepted events.
        """
        lines = self._as_lines(lines)
        if not lines:
            return 0
        accepted = 0
        for shard, (_positions, sub_lines) in self._partition(lines):
            if not self.worker_mode:
                self._inline[shard].ingest_lines(sub_lines)
                accepted += len(sub_lines)
                continue
            result = self._dispatch(
                shard, sub_lines, want_decisions=False, block=False
            )
            if result is _BREAKER:
                self._note_breaker_shed(shard, len(sub_lines))
            elif result is None:
                self._note_shed(shard, len(sub_lines))
            else:
                accepted += len(sub_lines)
        return accepted

    def request_lines(self, lines, timeout: float | None = None) -> list:
        """Route one chunk and wait for its decisions, aligned with input.

        The front end's request/response path: one decision (or None
        for malformed/dropped records) per input line, in input order.
        """
        lines = self._as_lines(lines)
        results: list = [None] * len(lines)
        if not lines:
            return results
        partition = self._partition(lines)
        if not self.worker_mode:
            for shard, (positions, sub_lines) in partition:
                decisions = self._inline[shard].ingest_lines(sub_lines)
                for position, decision in zip(positions, decisions):
                    results[position] = decision
            return results
        waiting = []
        for shard, (positions, sub_lines) in partition:
            chunk_id = self._dispatch(
                shard, sub_lines, want_decisions=True, block=True
            )
            if chunk_id is _BREAKER:
                # Breaker-open shard: those positions stay None (the
                # same contract as a malformed/dropped record) and the
                # shed is counted.
                self._note_breaker_shed(shard, len(sub_lines))
                continue
            waiting.append((chunk_id, positions))
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._wake:
            for chunk_id, positions in waiting:
                while chunk_id not in self._decisions:
                    self._raise_errors_locked()
                    if deadline is not None and time.monotonic() > deadline:
                        raise TimeoutError(
                            f"no decision for chunk {chunk_id} within {timeout}s"
                        )
                    self._wake.wait(0.2)
                decisions = self._decisions.pop(chunk_id)
                for position, decision in zip(positions, decisions):
                    results[position] = decision
        return results

    def drain(self, timeout: float | None = None) -> None:
        """Block until every dispatched chunk has been acknowledged."""
        if not self.worker_mode:
            return
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._wake:
            while any(self._in_flight[index] for index in range(self.shards)):
                self._raise_errors_locked()
                if deadline is not None and time.monotonic() > deadline:
                    pending = {
                        index: len(self._in_flight[index])
                        for index in range(self.shards)
                        if self._in_flight[index]
                    }
                    raise TimeoutError(f"shards did not drain in time: {pending}")
                self._wake.wait(0.2)

    def _dispatch(self, shard, sub_lines, *, want_decisions, block):
        submit_t = time.monotonic()
        with self._wake:
            self._raise_errors_locked()
            if self._shutdown or shard in self._stop_sent:
                raise ReproError("dispatch on a closed ShardedAdvisorService")
            if shard in self.breaker_open:
                return _BREAKER
            self._chunk_counter += 1
            chunk_id = self._chunk_counter
        command = ("chunk", chunk_id, sub_lines, want_decisions)
        while True:
            # The per-shard lock serializes this put against the
            # collector's queue swap on worker death: a chunk either
            # lands in the pre-swap queue *and* is recorded in flight
            # (so the swap redelivers it) or lands in the fresh queue.
            with self._shard_locks[shard]:
                try:
                    if block:
                        self._commands[shard].put(command, timeout=0.2)
                    else:
                        self._commands[shard].put_nowait(command)
                except queue_module.Full:
                    full = True
                else:
                    full = False
                    with self._lock:
                        if shard in self.breaker_open:
                            # The breaker opened between the top check
                            # and the put: the put landed in a dead
                            # worker's queue.  Recording it in flight
                            # would strand the caller forever (the
                            # breaker sweep already ran), so shed it.
                            return _BREAKER
                        self._in_flight[shard][chunk_id] = (
                            command,
                            submit_t,
                            len(sub_lines),
                        )
                        self.dispatched_events += len(sub_lines)
            if not full:
                return chunk_id
            if not block:
                return None
            with self._lock:
                self._raise_errors_locked()
                if shard in self.breaker_open:
                    return _BREAKER

    @property
    def shed(self) -> int:
        """Total events shed by the tier — the sum of per-shard sheds."""
        return sum(self.shed_by_shard)

    @property
    def breaker_shed(self) -> int:
        """Total events shed because a circuit breaker was open."""
        return sum(self.breaker_shed_by_shard)

    def _note_breaker_shed(self, shard: int, events: int) -> None:
        """Count events shed into an open breaker (kept separate from
        backpressure sheds — they have different operator responses:
        provisioning vs investigating a crash loop)."""
        with self._lock:
            self.breaker_shed_by_shard[shard] += events

    def _note_shed(self, shard: int, events: int) -> None:
        """Count a shed sub-chunk against its shard; warn rate-limited.

        The cadence matches ``AdvisorService.offer`` — the first shed
        on a shard, then every ``_SHED_WARN_EVERY``th on that shard —
        but stated as a boundary *crossing* because tier sheds arrive
        in multi-event sub-chunks: a chunk that jumps the counter from
        999 to 1003 still fires the 1000-mark warning (an exact
        ``% _SHED_WARN_EVERY == 0`` check would skip it, and counting
        the aggregate would mis-attribute one shard's overload to
        whichever shard happened to cross the shared boundary).
        """
        before = self.shed_by_shard[shard]
        after = before + events
        self.shed_by_shard[shard] = after
        ledger = active_ledger() or self._ledger
        if ledger is not None and (
            before == 0 or after // _SHED_WARN_EVERY > before // _SHED_WARN_EVERY
        ):
            ledger.emit(
                "advisor-backpressure",
                tier="shard",
                shard=shard,
                shed=after,
                shed_total=self.shed,
                queue_depth=self.queue_depth,
            )

    # -- control plane ----------------------------------------------------

    def _control(self, name: str, *args, timeout: float | None = None) -> list:
        """One control request per shard; returns payloads by shard index.

        Requests are recorded in ``_pending_controls`` *before* the put
        so a worker death between put and reply re-sends them on
        respawn (duplicates are ignored reply-side).  A breaker-open
        shard has no worker to answer: its slot is ``None`` (callers
        render it as a "down" row rather than blocking forever).
        """
        request_ids = []
        for shard in range(self.shards):
            with self._wake:
                self._raise_errors_locked()
                self._request_counter += 1
                request_id = self._request_counter
                if shard in self.breaker_open:
                    self._replies[request_id] = None
                    request_ids.append(request_id)
                    continue
            command = (name, request_id, *args)
            with self._lock:
                self._pending_controls[request_id] = (shard, command)
            self._put_command(shard, command)
            request_ids.append(request_id)
        deadline = None if timeout is None else time.monotonic() + timeout
        results = []
        with self._wake:
            for request_id in request_ids:
                while request_id not in self._replies:
                    self._raise_errors_locked()
                    if deadline is not None and time.monotonic() > deadline:
                        raise TimeoutError(f"no {name} reply within {timeout}s")
                    self._wake.wait(0.2)
                results.append(self._replies.pop(request_id))
        return results

    def _put_command(self, shard: int, command) -> None:
        """Blocking put that survives a queue swap mid-wait."""
        while True:
            with self._shard_locks[shard]:
                with self._lock:
                    if shard in self.breaker_open:
                        # The breaker sweep already answered (or shed)
                        # everything this shard owed; the put is moot.
                        return
                try:
                    self._commands[shard].put(command, timeout=0.2)
                    return
                except queue_module.Full:
                    pass
            with self._lock:
                self._raise_errors_locked()

    def _raise_errors_locked(self) -> None:
        if self._errors:
            raise ReproError(f"shard worker failed:\n{self._errors[0]}")

    # -- observability ----------------------------------------------------

    def take_latencies(self) -> list[tuple[float, int]]:
        """Drain the accumulated per-chunk ``(latency_s, events)`` samples.

        Latency is dispatch-to-worker-ack wall time — the worst case an
        event in the chunk waited for its decision (queueing included).
        """
        if not self.worker_mode:
            return []
        with self._lock:
            latencies, self._latencies = self._latencies, []
        return latencies

    def digests(self, timeout: float | None = None) -> dict[str, str]:
        """Per-vehicle ``state_digest()`` across the whole fleet, sorted."""
        if self.worker_mode:
            parts = self._control("digests", timeout=timeout)
        else:
            parts = [
                {
                    vehicle_id: session.state_digest()
                    for vehicle_id, session in sorted(service.sessions.items())
                }
                for service in self._inline
            ]
        merged: dict[str, str] = {}
        for part in parts:
            merged.update(part)
        return dict(sorted(merged.items()))

    def health_snapshot(
        self, include_vehicles: bool = False, timeout: float | None = None
    ) -> dict:
        """Fleet-wide health: per-shard snapshots aggregated.

        Same core schema as ``AdvisorService.health_snapshot`` —
        ``fleet_cost`` / ``vehicles`` / ``ingest`` / ``states`` — plus
        ``routing`` (ring + tier-level counters) and ``shards`` (one
        row per worker: pid, liveness, restarts, hangs, acked
        chunks/events, in-flight depth, breaker state).
        ``include_vehicles=False`` keeps the payload O(shards), not
        O(fleet) — at 100k vehicles the per-vehicle map is megabytes.

        A breaker-open shard contributes a ``"down": True`` row with
        ``None`` health fields — its worker is gone, so its session
        state is unreadable, but the fleet snapshot must still answer.
        """
        if self.worker_mode:
            snapshots = self._control("health", include_vehicles, timeout=timeout)
        else:
            snapshots = []
            for service in self._inline:
                snapshot = service.health_snapshot(include_vehicles=include_vehicles)
                snapshot["vehicle_count"] = len(service.sessions)
                snapshots.append(snapshot)
        live = [snapshot for snapshot in snapshots if snapshot is not None]
        vehicles: dict = {}
        for snapshot in live:
            vehicles.update(snapshot["vehicles"])
        vehicles = dict(sorted(vehicles.items()))
        if include_vehicles and vehicles:
            # Sum in sorted-vehicle order: bitwise-reproducible across
            # shard counts (a single-process snapshot sums the same way).
            fleet_cost = sum(info["total_cost"] for info in vehicles.values())
        else:
            fleet_cost = sum(snapshot["fleet_cost"] for snapshot in live)

        def _total(*keys):
            total = 0.0 if "wall_s" in keys else 0
            for snapshot in live:
                value = snapshot["ingest"]
                for key in keys:
                    value = value[key]
                total += value
            return total

        def _durability_total(key):
            return sum(
                snapshot.get("durability", {}).get(key, 0) for snapshot in live
            )

        batch_events = _total("batch", "events")
        batch_wall = _total("batch", "wall_s")
        shard_rows = []
        for index, snapshot in enumerate(snapshots):
            if snapshot is None:
                row = {
                    "shard": index,
                    "down": True,
                    "vehicles": None,
                    "fleet_cost": None,
                    "states": None,
                    "shed": None,
                    "tier_shed": self.shed_by_shard[index],
                }
            else:
                row = {
                    "shard": index,
                    "vehicles": snapshot["vehicle_count"],
                    "fleet_cost": snapshot["fleet_cost"],
                    "states": snapshot["states"],
                    # Worker-level shed (AdvisorService.offer inside the
                    # shard) vs tier-level shed (offer_lines dropped the
                    # sub-chunk before it ever reached the worker).
                    "shed": snapshot["ingest"]["shed"],
                    "tier_shed": self.shed_by_shard[index],
                }
            if self.worker_mode:
                process = self._procs[index]
                with self._lock:
                    row.update(
                        pid=None if process is None else process.pid,
                        alive=process is not None and process.is_alive(),
                        restarts=self.restarts[index],
                        hangs=self.hangs[index],
                        consecutive_crashes=self._consecutive_crashes[index],
                        breaker_open=index in self.breaker_open,
                        breaker_shed=self.breaker_shed_by_shard[index],
                        chunks_acked=self._acked_chunks[index],
                        events_acked=self._acked_events[index],
                        in_flight=len(self._in_flight[index]),
                    )
            shard_rows.append(row)
        return {
            "fleet_cost": fleet_cost,
            "vehicles": vehicles,
            "ingest": {
                "received": _total("received"),
                "queued": _total("queued"),
                "max_queue": self.max_queue,
                "shed": _total("shed"),
                "malformed": _total("malformed"),
                "duplicates": _total("duplicates"),
                "rejected": _total("rejected"),
                "batch": {
                    "chunks": _total("batch", "chunks"),
                    "events": batch_events,
                    "wall_s": batch_wall,
                    "events_per_s": (
                        batch_events / batch_wall if batch_wall > 0.0 else 0.0
                    ),
                },
            },
            "states": {
                state: sum(snapshot["states"][state] for snapshot in live)
                for state in ("healthy", "degraded", "safe")
            },
            "durability": {
                key: _durability_total(key)
                for key in (
                    "suspended_sessions",
                    "buffered_events",
                    "dropped_events",
                    "suspensions",
                    "resumes",
                )
            },
            **(
                {"replication": self.replication.snapshot()}
                if self.replication is not None
                else {}
            ),
            "routing": {
                "algorithm": "consistent-hash",
                "shards": self.shards,
                "replicas": self.ring.replicas,
                "queue_depth": self.queue_depth,
                "dispatched_events": self.dispatched_events,
                "shed_events": self.shed,
                "shed_by_shard": list(self.shed_by_shard),
                "restarts": sum(self.restarts),
                "hangs": sum(self.hangs),
                "hang_timeout": self.hang_timeout,
                "quarantined_chunks": self.quarantined_chunks,
                "quarantined_events": self.quarantined_events,
                "breaker_open": sorted(self.breaker_open),
                "breaker_shed": self.breaker_shed,
            },
            "shards": shard_rows,
        }

    def readiness(self, timeout: float | None = 5.0) -> dict:
        """Serving-readiness verdict for the front end's ``GET /ready``.

        Stricter than liveness: ready means every shard's worker is
        alive, no circuit breaker is open, no worker has failed, and no
        session anywhere in the fleet is durability-suspended.  Returns
        ``{"ready": bool, "reasons": [str, ...]}`` — reasons name what
        is wrong so the probe's consumer (a load balancer, an operator)
        can tell a crash loop from a full disk.
        """
        reasons: list[str] = []
        if not self.worker_mode:
            for index, service in enumerate(self._inline):
                verdict = service.readiness()
                reasons.extend(
                    f"shard {index}: {reason}" for reason in verdict["reasons"]
                )
            return gate_on_replication(self.replication, reasons)
        with self._lock:
            if self._errors:
                reasons.append("worker error (see service logs)")
            breakers = sorted(self.breaker_open)
            dead = [
                index
                for index in range(self.shards)
                if index not in self.breaker_open
                and (
                    self._procs[index] is None
                    or not self._procs[index].is_alive()
                )
            ]
        if breakers:
            reasons.append(f"circuit breaker open on shards {breakers}")
        if dead:
            reasons.append(f"workers dead on shards {dead}")
        if not reasons:
            try:
                snapshots = self._control("health", False, timeout=timeout)
            except (ReproError, TimeoutError) as exc:
                reasons.append(f"health probe failed: {exc}")
            else:
                for index, snapshot in enumerate(snapshots):
                    if snapshot is None:
                        reasons.append(f"shard {index} is down")
                        continue
                    suspended = snapshot.get("durability", {}).get(
                        "suspended_sessions", 0
                    )
                    if suspended:
                        reasons.append(
                            f"shard {index}: durability suspended on "
                            f"{suspended} session(s)"
                        )
        return gate_on_replication(self.replication, reasons)

    # -- worker lifecycle -------------------------------------------------

    def _spawn(self, shard: int) -> None:
        commands = self._context.Queue(self.queue_depth)
        parent_conn, child_conn = self._context.Pipe(duplex=False)
        process = self._context.Process(
            target=_shard_worker,
            args=(
                shard,
                str(self._shard_dir(shard)),
                self.config,
                self.policy,
                self.fsync,
                self.max_queue,
                self._worker_ledger_path(shard),
                commands,
                child_conn,
                self._injector,
                self._beat_every,
            ),
            daemon=True,
        )
        process.start()
        child_conn.close()
        self._commands[shard] = commands
        self._pipes[shard] = parent_conn
        self._procs[shard] = process
        # Fresh liveness lease: the new worker cannot be declared hung
        # until it has spoken once (see _heard_from), and its
        # (eventual) death is a new event to classify.
        self._last_seen[shard] = time.monotonic()
        self._heard_from.discard(shard)
        self._death_noted.discard(shard)

    def _collect(self) -> None:
        # The collector is the supervisor: if a bug in the reap/
        # containment logic escaped, dying silently would freeze every
        # blocked caller forever — surface it through the same _errors
        # channel worker failures use, so waiters raise instead of hang.
        try:
            while self._collect_once():
                pass
        except Exception:
            with self._wake:
                self._errors.append(traceback.format_exc())
                self._wake.notify_all()

    def _collect_once(self) -> bool:
        with self._lock:
            if self._shutdown:
                return False
            conns = {
                self._pipes[index]: index
                for index in range(self.shards)
                if self._pipes[index] is not None and index not in self._eof
            }
        if conns:
            ready = _connection_wait(list(conns), timeout=0.2)
        else:
            time.sleep(0.05)
            ready = []
        for conn in ready:
            shard = conns[conn]
            try:
                message = conn.recv()
            except (EOFError, OSError):
                # Clean EOF (worker exited) or a send torn by
                # SIGKILL; either way this pipe is done — the reap
                # pass below decides whether to respawn.
                with self._lock:
                    self._eof.add(shard)
                continue
            except Exception:  # torn pickle mid-SIGKILL
                with self._lock:
                    self._eof.add(shard)
                continue
            # Any message — ack, reply, stopped, or idle beat — proves
            # the worker is making progress: stamp its liveness lease
            # and arm hang detection for it.
            self._last_seen[shard] = time.monotonic()
            self._heard_from.add(shard)
            self._handle_message(message)
        self._check_hangs()
        self._reap()
        return True

    def _handle_message(self, message) -> None:
        kind = message[0]
        with self._wake:
            if kind == "ack":
                _, shard, chunk_id, done_t, events, decisions = message
                entry = self._in_flight[shard].pop(chunk_id, None)
                if entry is not None:
                    _command, submit_t, _events = entry
                    self._latencies.append((max(0.0, done_t - submit_t), events))
                    self._acked_chunks[shard] += 1
                    self._acked_events[shard] += events
                # Forward progress: the worker is not crash-looping, and
                # this chunk is exonerated of any past crash suspicion.
                self._consecutive_crashes[shard] = 0
                self._head_crashes[shard].pop(chunk_id, None)
                if decisions is not None:
                    self._decisions[chunk_id] = decisions
            elif kind == "beat":
                pass  # liveness only; _collect already stamped the lease
            elif kind == "reply":
                _, _shard, request_id, payload = message
                if self._pending_controls.pop(request_id, None) is not None:
                    self._replies[request_id] = payload
            elif kind == "stopped":
                self._stopped.add(message[1])
            elif kind == "error":
                self._errors.append(message[2])
                self._failed.add(message[1])
            self._wake.notify_all()

    def _check_hangs(self) -> None:
        """SIGKILL workers that are alive, busy, and silent past deadline.

        "Busy" means holding in-flight chunks or pending control
        requests — an idle worker beats every ``_beat_every`` seconds,
        so silence while busy past ``hang_timeout`` means the worker is
        deadlocked, SIGSTOPped, or livelocked and will never ack.  The
        kill turns the hang into an ordinary worker death: the normal
        reap/respawn/redeliver machinery takes it from there.
        """
        if self.hang_timeout is None:
            return
        now = time.monotonic()
        ledger = active_ledger() or self._ledger
        for shard in range(self.shards):
            process = self._procs[shard]
            if process is None or not process.is_alive():
                continue
            if shard not in self._heard_from:
                continue  # still booting: silence is expected, not a hang
            silent = now - self._last_seen[shard]
            if silent < self.hang_timeout:
                continue
            with self._lock:
                if shard in self.breaker_open or shard in self._stopped:
                    continue
                busy = bool(self._in_flight[shard]) or any(
                    owner == shard
                    for owner, _command in self._pending_controls.values()
                )
                if not busy:
                    continue
                self.hangs[shard] += 1
                # Re-stamp the lease so one hang is one kill: the reap
                # pass classifies the death, not a second timeout.
                self._last_seen[shard] = now
            try:
                os.kill(process.pid, signal.SIGKILL)
            except OSError:  # pragma: no cover - raced a natural death
                pass
            if ledger is not None:
                ledger.emit(
                    "shard-hang",
                    shard=shard,
                    pid=process.pid,
                    silent_s=round(silent, 3),
                    in_flight=len(self._in_flight[shard]),
                )

    def _reap(self) -> None:
        """Detect dead workers; contain, then respawn + redeliver.

        Each dead worker's death is classified exactly once by
        :meth:`_note_death` (crash vs handoff vs reported failure);
        crashes then wait out their backoff deadline before
        :meth:`_respawn` — during the wait the shard's queue keeps
        absorbing traffic up to ``queue_depth``, after which the normal
        backpressure/shed semantics apply.
        """
        for shard in range(self.shards):
            process = self._procs[shard]
            if process is None or process.is_alive():
                continue
            with self._lock:
                if shard in self.breaker_open or shard in self._failed:
                    continue
                if shard in self._stopped and shard in self._stop_sent:
                    continue  # clean shutdown we asked for
                noted = shard in self._death_noted
            if not noted and not self._note_death(shard):
                continue
            if time.monotonic() < self._respawn_at[shard]:
                continue  # crash-loop backoff: not yet
            self._respawn(shard)

    def _note_death(self, shard: int) -> bool:
        """Classify one worker death; True when a respawn is due.

        The dead worker's pipe is drained first: acks it managed to
        send shrink the redelivery set *and* pin crash attribution to
        the chunk it actually died on (the head of the in-flight queue
        after the drain).  Then, in order: a clean SIGTERM handoff
        respawns immediately; a reported error stays down; a crash is
        attributed, quarantines its head chunk at ``poison_budget``
        repeats, opens the circuit breaker at ``restart_budget``
        consecutive crashes, and otherwise schedules a backed-off
        respawn.
        """
        conn = self._pipes[shard]
        try:
            while conn.poll(0):
                self._handle_message(conn.recv())
        except (EOFError, OSError, pickle.UnpicklingError) as exc:
            # Expected shrapnel of a dying worker: clean EOF, a pipe
            # torn mid-send, or a half-written pickle frame.  Anything
            # else is a parent-side bug and propagates to the collector
            # guard instead of being silently swallowed.
            ledger = active_ledger() or self._ledger
            if ledger is not None:
                ledger.emit("shard-drain-error", shard=shard, error=repr(exc))
        with self._lock:
            self._death_noted.add(shard)
            if shard in self._failed:
                return False  # the drain surfaced a reported error
            if shard in self._stopped:
                # A clean SIGTERM exit we did NOT ask for is the drain/
                # handoff path: state is flushed, hand the shard to a
                # fresh worker immediately.
                self._stopped.discard(shard)
                self._respawn_at[shard] = 0.0
                return True
            self._consecutive_crashes[shard] += 1
            crashes = self._consecutive_crashes[shard]
            head = min(self._in_flight[shard]) if self._in_flight[shard] else None
            head_crashes = 0
            if head is not None:
                self._head_crashes[shard][head] = (
                    self._head_crashes[shard].get(head, 0) + 1
                )
                head_crashes = self._head_crashes[shard][head]
        if head is not None and head_crashes >= self.poison_budget:
            self._quarantine_chunk(shard, head, head_crashes)
            with self._lock:
                crashes = self._consecutive_crashes[shard]
        if crashes >= self.restart_budget:
            self._open_breaker(shard, crashes)
            return False
        # First crash respawns immediately (the common SIGKILL/OOM case
        # must not add latency); repeats back off exponentially.
        delay = (
            0.0
            if crashes <= 1
            else min(_BACKOFF_CAP_S, _BACKOFF_BASE_S * 2 ** (crashes - 2))
        )
        self._respawn_at[shard] = time.monotonic() + delay
        return True

    def _quarantine_chunk(self, shard: int, chunk_id: int, crashes: int) -> None:
        """Skip a poison chunk: sidecar it with provenance, keep serving.

        The shard-tier mirror of the validation layer's quarantine
        files: the sidecar record carries the raw lines plus everything
        needed to investigate or replay (shard, crash count, the pid
        that died on it, the shard's restart count).  Quarantining
        resets the consecutive-crash counter — the presumed cause is
        gone, so the shard gets a fresh restart budget for the rest of
        its traffic.
        """
        with self._lock:
            entry = self._in_flight[shard].pop(chunk_id, None)
            self._head_crashes[shard].pop(chunk_id, None)
            self._consecutive_crashes[shard] = 0
            if entry is None:  # pragma: no cover - raced an ack
                return
            command, _submit_t, events = entry
            process = self._procs[shard]
            record = {
                "chunk": chunk_id,
                "shard": shard,
                "crashes": crashes,
                "events": events,
                "worker_pid": None if process is None else process.pid,
                "restarts": self.restarts[shard],
                "lines": list(command[2]),
            }
            self.quarantined_chunks += 1
            self.quarantined_events += events
            if command[3]:  # want_decisions: unblock request_lines waiters
                self._decisions[chunk_id] = [None] * len(command[2])
            self._wake.notify_all()
        try:
            with open(self._poison_path, "a") as handle:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())
        except OSError:
            pass  # quarantine is telemetry; a sick disk must not block recovery
        ledger = active_ledger() or self._ledger
        if ledger is not None:
            ledger.emit(
                "shard-poison-quarantine",
                shard=shard,
                chunk=chunk_id,
                crashes=crashes,
                events=events,
            )

    def _open_breaker(self, shard: int, crashes: int) -> None:
        """Hold a crash-looping shard down; shed its traffic with count.

        Everything the shard held is released so no caller blocks on a
        worker that will never come back: in-flight chunks are shed
        (counted in ``breaker_shed_by_shard``, ``None`` decisions for
        request/response waiters) and pending control requests get
        ``None`` replies.  The breaker stays open for the life of the
        service — after ``restart_budget`` consecutive crashes with no
        single chunk to blame, respawning again would just burn CPU.
        """
        shed_events = 0
        with self._lock:
            self.breaker_open.add(shard)
            for chunk_id, (command, _submit_t, events) in sorted(
                self._in_flight[shard].items()
            ):
                shed_events += events
                if command[3]:
                    self._decisions[chunk_id] = [None] * len(command[2])
            self._in_flight[shard].clear()
            self._head_crashes[shard].clear()
            self.breaker_shed_by_shard[shard] += shed_events
            for request_id, (owner, _command) in list(
                self._pending_controls.items()
            ):
                if owner == shard:
                    del self._pending_controls[request_id]
                    self._replies[request_id] = None
            self._wake.notify_all()
        ledger = active_ledger() or self._ledger
        if ledger is not None:
            ledger.emit(
                "shard-breaker-open",
                shard=shard,
                crashes=crashes,
                shed_events=shed_events,
                restarts=self.restarts[shard],
            )

    def _respawn(self, shard: int) -> None:
        with self._shard_locks[shard]:
            old_commands = self._commands[shard]
            old_pipe = self._pipes[shard]
            old_process = self._procs[shard]
            old_process.join(timeout=1.0)
            if old_process.is_alive():
                # is_alive() went false once (that is what got us here),
                # so a live process now means an exit raced by a revival
                # we cannot explain — escalate to SIGKILL and wait it
                # out: spawning a replacement while the old worker still
                # holds the shard lock would dead-end the respawn.
                old_process.kill()
                old_process.join(timeout=10.0)
            self._spawn(shard)
            with self._lock:
                self.restarts[shard] += 1
                self._eof.discard(shard)
                redeliver = sorted(self._in_flight[shard].items())
                controls = sorted(
                    (request_id, command)
                    for request_id, (owner, command) in self._pending_controls.items()
                    if owner == shard
                )
                stop_again = shard in self._stop_sent
                pid = self._procs[shard].pid
            ledger = active_ledger() or self._ledger
            if ledger is not None:
                ledger.emit(
                    "shard-restart",
                    shard=shard,
                    pid=pid,
                    redelivered_chunks=len(redeliver),
                )
            # At-least-once redelivery in original dispatch order; the
            # sessions' idempotent event ids absorb anything the dead
            # worker had already applied and made durable.
            for _chunk_id, (command, _submit_t, _events) in redeliver:
                if not self._put_alive(shard, command):
                    return  # died again already; the next reap retries
            for _request_id, command in controls:
                if not self._put_alive(shard, command):
                    return
            if stop_again:
                self._put_alive(shard, ("stop",))
        old_pipe.close()
        old_commands.close()
        old_commands.cancel_join_thread()

    def _put_alive(self, shard: int, command) -> bool:
        """Put into the (already-locked) fresh queue, aborting on death."""
        while True:
            try:
                self._commands[shard].put(command, timeout=0.2)
                return True
            except queue_module.Full:
                if not self._procs[shard].is_alive():
                    return False

    # -- shutdown ---------------------------------------------------------

    def close(self, timeout: float = 120.0) -> None:
        """Graceful fleet drain: every worker flushes WAL + snapshots.

        Sends ``("stop",)`` behind all queued work on every shard; a
        worker that dies mid-shutdown is respawned (recovering its
        shard) and re-stopped, so even a close raced by a SIGKILL
        leaves every shard durable and unlocked.  Breaker-open shards
        have no worker to stop — they count as already down (their last
        crash-recovery worker flushed whatever state survived).
        """
        if not self.worker_mode:
            if not self._closed:
                self._closed = True
                for service in self._inline:
                    service.close()
            return
        with self._lock:
            if self._shutdown:
                return
            already_failed = bool(self._errors)
            self._stop_sent.update(range(self.shards))
        if not already_failed:
            for shard in range(self.shards):
                try:
                    self._put_command(shard, ("stop",))
                except ReproError:
                    break
            deadline = time.monotonic() + timeout
            with self._wake:
                while (
                    len(self._stopped | self._failed | self.breaker_open)
                    < self.shards
                ):
                    if time.monotonic() > deadline:
                        break
                    self._wake.wait(0.2)
        with self._lock:
            self._shutdown = True
            errors = list(self._errors)
            stopped = set(self._stopped) | set(self.breaker_open)
        self._collector.join(timeout=10.0)
        for shard in range(self.shards):
            process = self._procs[shard]
            if process is None:
                continue
            process.join(timeout=10.0)
            if process.is_alive():  # pragma: no cover - last-resort teardown
                process.terminate()
                process.join(timeout=5.0)
            self._pipes[shard].close()
            self._commands[shard].close()
            self._commands[shard].cancel_join_thread()
        if errors:
            raise ReproError(f"shard worker failed:\n{errors[0]}")
        if len(stopped) < self.shards:
            missing = sorted(set(range(self.shards)) - stopped)
            raise ReproError(f"shards {missing} did not stop cleanly")
