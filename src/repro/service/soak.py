"""Deterministic soak/chaos harness for the advisor service.

The durability contract — "a SIGKILL at any instant loses nothing" —
is only worth stating if something kills the service mid-stream and
checks the books afterwards.  This harness does exactly that:

1. synthesize an NREL-shaped fleet event stream
   (:func:`build_fleet_events` — the same generator the experiments
   use, interleaved into one timestamped multi-vehicle feed);
2. run it **uninterrupted** through an :class:`AdvisorService` into a
   clean state directory (the reference);
3. run the same stream through kill/restart cycles: a child process
   serves the stream and is SIGKILLed at injected event indices
   (reusing :class:`repro.engine.faults.FaultInjector`, whose
   cross-process claim files make each kill fire exactly once across
   restarts), then a fresh child recovers from the state directory and
   replays the stream from the top — duplicate delivery is the
   *normal* case here, exercising idempotent ingestion for free;
4. assert the chaos run's realized fleet cost and per-vehicle state
   digests are **bit-identical** to the uninterrupted run.

Run it directly (the CI ``service-chaos`` job does)::

    python -m repro.service.soak --vehicles 4 --stops 80 --kills 3 \
        --seed 7 --out results/soak

Exit status 0 means parity held; the state directories, WALs and the
chaos ledger are left under ``--out`` for post-mortems.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import sys
from dataclasses import asdict
from pathlib import Path

import numpy as np

from ..engine.faults import Fault, FaultInjector
from ..engine.ledger import RunLedger, read_ledger, use_ledger
from ..fleet import area_config
from ..fleet.generator import FleetGenerator
from .advisor import AdvisorService, RegisteredAdvisorService
from .session import SessionConfig

__all__ = [
    "build_fleet_events",
    "run_stream",
    "run_chaos",
    "run_sharded_chaos",
    "run_hang_chaos",
    "run_poison_chaos",
    "run_disk_fault_chaos",
    "run_replica_chaos",
    "SoakResult",
    "main",
]


def build_fleet_events(
    vehicles: int = 4,
    stops_per_vehicle: int = 80,
    seed: int = 7,
    area: str = "chicago",
) -> list[dict]:
    """An NREL-shaped multi-vehicle event stream, round-robin interleaved.

    Timestamps are the global event index, so every vehicle's clock is
    strictly monotone and the stream is reproducible byte-for-byte from
    ``(vehicles, stops_per_vehicle, seed, area)``.
    """
    config = area_config(area)
    generator = FleetGenerator(config, seed=seed)
    rng = np.random.default_rng(seed)
    fleet = [generator.generate_vehicle(index, rng) for index in range(vehicles)]
    events: list[dict] = []
    for stop_index in range(stops_per_vehicle):
        for vehicle in fleet:
            stops = vehicle.stop_lengths
            stop = float(stops[stop_index % stops.size])
            events.append(
                {
                    "id": f"{vehicle.vehicle_id}-{stop_index:05d}",
                    "vehicle": vehicle.vehicle_id,
                    "t": float(len(events)),
                    "stop": stop,
                }
            )
    return events


class SoakResult(dict):
    """``{"fleet_cost": float, "digests": {vehicle: sha}, "snapshot": ...}``."""


def _noop(item):
    """Identity task for the kill injector (module-level: picklable)."""
    return item


def run_stream(
    events: list[dict],
    state_dir: str | Path,
    config: SessionConfig,
    *,
    policy: str = "repair",
    injector: FaultInjector | None = None,
    ledger_path: str | Path | None = None,
    batch: int = 1,
    fs=None,
    register: bool = False,
) -> SoakResult:
    """Serve ``events`` into ``state_dir`` (recovering any prior state).

    ``injector`` is consulted with the global event index before each
    event — a ``"kill"`` fault SIGKILLs the process right there, which
    is the whole point.  ``batch > 1`` serves through the columnar
    ``process_batch`` path in chunks of that size; the injector is still
    consulted per event index (before the chunk applies), so a kill can
    land mid-plan and tear a group-commit.  ``fs`` is an optional
    :class:`repro.engine.faults.FsFaultInjector` threaded into the
    service's WAL/snapshot writers — the disk-fault chaos hook.
    ``register=True`` serves through a
    :class:`~repro.service.advisor.RegisteredAdvisorService` so the
    state dir carries a vehicle registry — required for a state dir that
    a standby may later have to promote without redelivery.
    """
    ledger = (
        RunLedger(ledger_path, append=True) if ledger_path is not None else None
    )
    service_cls = RegisteredAdvisorService if register else AdvisorService
    service = service_cls(Path(state_dir), config, policy=policy, fs=fs)
    if ledger is not None:
        with use_ledger(ledger):
            _serve(service, events, injector, batch)
    else:
        _serve(service, events, injector, batch)
    service.close()
    snapshot = service.health_snapshot()
    return SoakResult(
        fleet_cost=service.fleet_cost,
        digests={
            vehicle: info["digest"] for vehicle, info in snapshot["vehicles"].items()
        },
        snapshot=snapshot,
    )


def _serve(
    service: AdvisorService, events: list[dict], injector, batch: int = 1
) -> None:
    if batch <= 1:
        for index, record in enumerate(events):
            if injector is not None:
                injector(index)
            service.process(record)
        return
    for start in range(0, len(events), batch):
        chunk = events[start : start + batch]
        if injector is not None:
            for index in range(start, start + len(chunk)):
                injector(index)
        service.process_batch(chunk)


def _chaos_child(
    events, state_dir, config, policy, injector, ledger_path, out_path, batch
):
    """Child-process entry: serve the stream, persist the result."""
    result = run_stream(
        events,
        state_dir,
        config,
        policy=policy,
        injector=injector,
        ledger_path=ledger_path,
        batch=batch,
    )
    Path(out_path).write_text(json.dumps(result, sort_keys=True))


def run_chaos(
    events: list[dict],
    state_dir: str | Path,
    config: SessionConfig,
    kill_points: list[int],
    *,
    policy: str = "repair",
    ledger_path: str | Path | None = None,
    batch: int = 1,
) -> tuple[SoakResult, int]:
    """Kill/restart the service through ``kill_points``; returns the
    final completed run's result and the number of restarts taken.

    The kill injector is constructed in *this* (parent) process so the
    child's pid differs from the creator's and the ``"kill"`` fault
    delivers a real SIGKILL (see :mod:`repro.engine.faults`); its claim
    files live under the state directory, so each kill fires exactly
    once across the whole cycle — do **not** sweep stale claims between
    restarts, the dead-pid claims are the record of kills already fired.
    """
    state_dir = Path(state_dir)
    state_dir.mkdir(parents=True, exist_ok=True)
    injector = FaultInjector(
        _noop,
        {index: Fault("kill") for index in kill_points},
        state_dir / "kill-claims",
    )
    out_path = state_dir / "result.json"
    context = multiprocessing.get_context("spawn")
    restarts = -1
    for _attempt in range(len(kill_points) + 2):
        restarts += 1
        child = context.Process(
            target=_chaos_child,
            args=(
                events,
                state_dir,
                config,
                policy,
                injector,
                ledger_path,
                out_path,
                batch,
            ),
        )
        child.start()
        child.join()
        if child.exitcode == 0:
            return SoakResult(json.loads(out_path.read_text())), restarts
        if child.exitcode >= 0:
            raise RuntimeError(f"chaos child failed with exit code {child.exitcode}")
    raise RuntimeError(
        f"service did not complete within {len(kill_points) + 2} restarts"
    )


def _replica_primary_child(
    events, state_dir, config, policy, injector, out_path, event_delay
):
    """Primary-side child for :func:`run_replica_chaos`: serve with a
    vehicle registry (a promotable primary) until the injected SIGKILL.

    The child holds the state dir's ``shard.lock`` like a real primary
    would, so the later ``promote --fence`` run exercises the owner-token
    fencing for real: the SIGKILL leaves the lock file behind with a
    dead owner record, which promotion must recognize as stale (a live
    record would — correctly — refuse the promotion as split-brain).

    ``event_delay`` paces the stream so the parent's shipping loop
    genuinely streams mid-run instead of racing a microsecond burst —
    without it the standby would usually see zero frames before the kill.
    """
    import time

    from .shard import acquire_shard_lock, release_shard_lock

    def paced(index):
        if event_delay:
            time.sleep(event_delay)
        injector(index)

    lock = acquire_shard_lock(Path(state_dir))
    try:
        result = run_stream(
            events, state_dir, config, policy=policy, injector=paced, register=True
        )
    finally:
        release_shard_lock(lock)
    Path(out_path).write_text(json.dumps(result, sort_keys=True))


def run_replica_chaos(
    events: list[dict],
    out_dir: str | Path,
    config: SessionConfig,
    *,
    kill_point: int,
    policy: str = "repair",
    sync_interval: float = 0.01,
    event_delay: float = 0.005,
) -> dict:
    """The disaster-recovery drill: lose the primary, promote, verify.

    A child process serves the stream into ``out_dir/primary`` as a
    registered (promotable) service and is SIGKILLed at ``kill_point``;
    meanwhile this process ships WAL frames and snapshots to
    ``out_dir/standby`` every ``sync_interval`` seconds — but **only
    while the child is alive**.  The primary's disk is never read after
    the kill: that is the machine-loss story, and the standby holds only
    what was shipped in time.

    Recovery then follows the operator runbook end to end: ``promote``
    the standby (fencing against the dead primary's ``shard.lock``),
    finish the stream by full redelivery (idempotent ingestion absorbs
    everything already applied), and round-trip the result through
    ``backup`` → ``restore`` → ``fleet_doctor`` → ``promote`` to prove
    the cold-archive path lands on the same digests.  The caller
    parity-checks the returned ``final`` result against a clean run.
    """
    import time

    from .replica import (
        LocalReplicaTarget,
        backup,
        fleet_doctor,
        promote,
        restore,
        sync_once,
    )

    out_dir = Path(out_dir)
    primary_dir = out_dir / "primary"
    standby_dir = out_dir / "standby"
    primary_dir.mkdir(parents=True, exist_ok=True)
    injector = FaultInjector(
        _noop, {kill_point: Fault("kill")}, primary_dir / "kill-claims"
    )
    result_path = out_dir / "primary-result.json"
    context = multiprocessing.get_context("spawn")
    child = context.Process(
        target=_replica_primary_child,
        args=(
            events, primary_dir, config, policy, injector, result_path,
            event_delay,
        ),
    )
    child.start()
    target = LocalReplicaTarget(standby_dir)
    sync_passes = 0
    frames_shipped = 0
    while child.is_alive():
        stats = sync_once(primary_dir, target)
        sync_passes += 1
        frames_shipped += stats["frames"]
        time.sleep(sync_interval)
    child.join()
    if child.exitcode == 0:
        raise RuntimeError(
            f"primary finished the stream without dying — kill point "
            f"{kill_point} never fired"
        )
    if sync_passes == 0 or frames_shipped == 0:
        raise RuntimeError(
            "standby never caught a frame before the primary died — "
            "kill point too early for this sync interval"
        )

    promoted = promote(standby_dir, config, fence=primary_dir, policy=policy)
    final = run_stream(events, standby_dir, config, policy=policy, register=True)

    archive_dir = out_dir / "archive"
    restored_dir = out_dir / "restored"
    backup(standby_dir, archive_dir)
    restore(archive_dir, restored_dir)
    report = fleet_doctor(
        restored_dir, archive_dir=archive_dir, verify_restore=True
    )
    if not report["ok"]:
        raise RuntimeError(
            f"fleet doctor rejected the backup/restore round trip: "
            f"{report['problems']}"
        )
    recovered = promote(restored_dir, config, policy=policy)
    if recovered["digests"] != final["digests"] or recovered[
        "fleet_cost"
    ] != final["fleet_cost"]:
        raise RuntimeError(
            "backup -> restore -> promote landed on different digests than "
            "the live standby"
        )

    return {
        "promoted": promoted,
        "final": final,
        "sync_passes": sync_passes,
        "frames_shipped": frames_shipped,
        "restored_digests": recovered["digests"],
    }


def run_sharded_chaos(
    events: list[dict],
    state_dir: str | Path,
    config: SessionConfig,
    *,
    shards: int,
    kills: int = 0,
    chunk: int = 16,
    policy: str = "repair",
    ledger_path: str | Path | None = None,
) -> tuple[SoakResult, int]:
    """Serve the stream through a sharded fleet, SIGKILLing live workers.

    Chunks of ``chunk`` events are routed through a
    :class:`~repro.service.shard.ShardedAdvisorService`; at ``kills``
    evenly spaced chunk boundaries a live worker (round-robin over
    shards) gets a real ``SIGKILL`` **while the rest of the fleet keeps
    serving** — the parent detects the death, respawns the worker
    (which recovers its shard bit-identically from WAL + snapshots) and
    redelivers the unacknowledged chunks.  Returns the final result and
    the number of worker restarts observed (must equal ``kills``).
    """
    import os
    import signal
    import time

    from .shard import ShardedAdvisorService

    service = ShardedAdvisorService(
        Path(state_dir),
        config,
        shards=shards,
        policy=policy,
        ledger_path=ledger_path,
    )
    chunks = [events[start : start + chunk] for start in range(0, len(events), chunk)]
    kill_at: dict[int, int] = {}
    for index in range(kills):
        slot = 1 + (index * max(1, (len(chunks) - 2))) // max(1, kills)
        while slot in kill_at:  # keep every kill distinct on short streams
            slot += 1
        kill_at[slot] = index % shards
    fired = 0
    try:
        for index, batch in enumerate(chunks):
            if index in kill_at:
                victim = kill_at[index]
                pid = service.worker_pids[victim]
                if pid is not None:
                    os.kill(pid, signal.SIGKILL)
                    fired += 1
                    # Wait for the respawn so consecutive kills cannot
                    # collapse into one observed death.
                    deadline = time.monotonic() + 60.0
                    baseline = service.restarts[victim]
                    while service.restarts[victim] == baseline:
                        if time.monotonic() > deadline:
                            raise RuntimeError(
                                f"shard {victim} was not respawned in time"
                            )
                        time.sleep(0.02)
            service.submit_lines([json.dumps(record) for record in batch])
        service.drain(timeout=300.0)
        digests = service.digests(timeout=120.0)
        snapshot = service.health_snapshot(timeout=120.0)
        restarts = sum(service.restarts)
    finally:
        service.close()
    if restarts != fired:
        raise RuntimeError(
            f"expected exactly {fired} worker restart(s), observed {restarts}"
        )
    return (
        SoakResult(
            fleet_cost=snapshot["fleet_cost"], digests=digests, snapshot=snapshot
        ),
        restarts,
    )


def run_hang_chaos(
    events: list[dict],
    state_dir: str | Path,
    config: SessionConfig,
    *,
    shards: int,
    hangs: int = 1,
    chunk: int = 16,
    hang_timeout: float = 2.0,
    policy: str = "repair",
    ledger_path: str | Path | None = None,
) -> tuple[SoakResult, int]:
    """Freeze live workers with ``SIGSTOP``; the supervisor must notice.

    A SIGSTOPped worker is the canonical hang: the process is alive
    (``is_alive()`` stays true, the pipe stays open) but it will never
    ack again.  At ``hangs`` evenly spaced chunk boundaries a worker
    that owns real vehicles is frozen *after* its chunk is dispatched,
    so it sits on in-flight work; the parent must detect the silence,
    SIGKILL it, respawn it, and redeliver — while the rest of the fleet
    keeps serving.  Returns the final result and the number of hangs
    the supervisor detected (must equal ``hangs``).
    """
    import os
    import signal
    import time

    from .shard import ShardedAdvisorService

    service = ShardedAdvisorService(
        Path(state_dir),
        config,
        shards=shards,
        policy=policy,
        ledger_path=ledger_path,
        hang_timeout=hang_timeout,
    )
    chunks = [events[start : start + chunk] for start in range(0, len(events), chunk)]
    freeze_at: set[int] = set()
    for index in range(hangs):
        slot = 1 + (index * max(1, len(chunks) - 2)) // max(1, hangs)
        while slot in freeze_at:
            slot += 1
        freeze_at.add(slot)
    observed = 0
    try:
        for index, batch in enumerate(chunks):
            lines = [json.dumps(record) for record in batch]
            if index in freeze_at:
                # Settle the fleet first: hang detection only arms once a
                # worker has spoken since its last spawn, so freezing a
                # still-booting worker would be silent-but-excused forever.
                # After the drain every worker is armed and idle; the
                # victim owns this chunk's first event, so the SIGSTOP
                # must come *before* the submit below parks in-flight
                # work on it — a worker frozen after acking everything is
                # idle, and idle silence is not a hang.
                service.drain(timeout=300.0)
                victim = service.route(batch[0]["vehicle"])
                pid = service.worker_pids[victim]
                if pid is not None:
                    baseline = service.restarts[victim]
                    os.kill(pid, signal.SIGSTOP)
                    service.submit_lines(lines)
                    deadline = time.monotonic() + 60.0
                    while service.restarts[victim] == baseline:
                        if time.monotonic() > deadline:
                            raise RuntimeError(
                                f"hung shard {victim} was not respawned in time"
                            )
                        time.sleep(0.02)
                    observed += 1
                    continue
            service.submit_lines(lines)
        service.drain(timeout=300.0)
        digests = service.digests(timeout=120.0)
        snapshot = service.health_snapshot(timeout=120.0)
        detected = sum(service.hangs)
    finally:
        service.close()
    if detected != observed:
        raise RuntimeError(
            f"expected {observed} detected hang(s), supervisor saw {detected}"
        )
    return (
        SoakResult(
            fleet_cost=snapshot["fleet_cost"], digests=digests, snapshot=snapshot
        ),
        detected,
    )


def run_poison_chaos(
    events: list[dict],
    state_dir: str | Path,
    config: SessionConfig,
    *,
    shards: int,
    chunk: int = 16,
    poison_budget: int = 3,
    policy: str = "repair",
    ledger_path: str | Path | None = None,
) -> tuple[SoakResult, list[dict]]:
    """One poison chunk must be quarantined; everything else must serve.

    Mid-stream, a single-line chunk whose line deterministically
    SIGKILLs any worker that touches it (a ``"kill"`` fault keyed to
    the line, with enough claim budget to survive every redelivery) is
    submitted on its own.  The supervisor must attribute the crash loop
    to that chunk, quarantine it to the sidecar with provenance after
    ``poison_budget`` crashes, and keep the shard serving its other
    vehicles — the final digests must be bit-identical to a clean run
    that never saw the poison line.  Returns the final result and the
    parsed quarantine sidecar records.
    """
    import time

    from .shard import POISON_SIDECAR_NAME, ShardedAdvisorService

    state_dir = Path(state_dir)
    state_dir.mkdir(parents=True, exist_ok=True)
    poison_line = json.dumps(
        {"id": "poison-0", "vehicle": "poison-pill", "t": -1.0, "stop": 1.0},
        sort_keys=True,
    )
    injector = FaultInjector(
        _noop,
        # Claim budget beyond poison_budget: every redelivery attempt
        # burns one claim, and the quarantine decision happens parent-
        # side — the line must keep killing until it is quarantined.
        {poison_line: Fault("kill", times=4 * poison_budget)},
        state_dir / "poison-claims",
    )
    service = ShardedAdvisorService(
        state_dir,
        config,
        shards=shards,
        policy=policy,
        ledger_path=ledger_path,
        injector=injector,
        poison_budget=poison_budget,
    )
    chunks = [events[start : start + chunk] for start in range(0, len(events), chunk)]
    half = len(chunks) // 2
    try:
        for batch in chunks[:half]:
            service.submit_lines([json.dumps(record) for record in batch])
        # Drain first so the poison chunk is the sole head of its
        # shard's in-flight queue — crash attribution is unambiguous.
        service.drain(timeout=300.0)
        service.submit_lines([poison_line])
        deadline = time.monotonic() + 120.0
        while service.quarantined_chunks < 1:
            if time.monotonic() > deadline:
                raise RuntimeError("poison chunk was not quarantined in time")
            time.sleep(0.02)
        for batch in chunks[half:]:
            service.submit_lines([json.dumps(record) for record in batch])
        service.drain(timeout=300.0)
        digests = service.digests(timeout=120.0)
        snapshot = service.health_snapshot(timeout=120.0)
    finally:
        service.close()
    sidecar = state_dir / POISON_SIDECAR_NAME
    records = [
        json.loads(line) for line in sidecar.read_text().splitlines() if line.strip()
    ]
    if len(records) != 1 or records[0]["lines"] != [poison_line]:
        raise RuntimeError(f"unexpected quarantine sidecar contents: {records}")
    return (
        SoakResult(
            fleet_cost=snapshot["fleet_cost"], digests=digests, snapshot=snapshot
        ),
        records,
    )


def run_disk_fault_chaos(
    events: list[dict],
    state_dir: str | Path,
    config: SessionConfig,
    *,
    windows: int = 2,
    window_length: int = 3,
    policy: str = "repair",
    ledger_path: str | Path | None = None,
    batch: int = 1,
) -> tuple[SoakResult, object]:
    """Serve through injected ``ENOSPC`` windows; heal bit-identically.

    ``windows`` down-windows of ``window_length`` failing disk
    operations each are spread over the first half of the stream's
    write schedule.  While a window is open the service must keep
    serving (SAFE decisions, zero unhandled exceptions); once the disk
    heals the buffered tail is replayed and the final state must be
    bit-identical to a run that never saw a fault.  Returns the final
    result and the injector (for ``ops``/``raised`` assertions).
    """
    from ..engine.faults import FsFault, FsFaultInjector

    state_dir = Path(state_dir)
    state_dir.mkdir(parents=True, exist_ok=True)
    # One WAL append per event dominates the op schedule; keeping every
    # window inside the first half of the stream guarantees the probe
    # backoff drains it with events to spare before the run ends.
    budget = max(2, len(events) // 2)
    faults = {}
    for index in range(windows):
        ordinal = 2 + (index * budget) // max(1, windows)
        while ordinal in faults:
            ordinal += window_length + 1
        faults[ordinal] = FsFault(count=window_length)
    fs = FsFaultInjector(faults, state_dir / "fs-claims")
    result = run_stream(
        events,
        state_dir,
        config,
        policy=policy,
        ledger_path=ledger_path,
        batch=batch,
        fs=fs,
    )
    return result, fs


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.service.soak",
        description="SIGKILL soak test: chaos run must cost exactly what the clean run costs.",
    )
    parser.add_argument("--vehicles", type=int, default=4)
    parser.add_argument("--stops", type=int, default=80, help="stops per vehicle")
    parser.add_argument("--kills", type=int, default=3, help="SIGKILL injection count")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--area", default="chicago")
    parser.add_argument("--break-even", type=float, default=28.0)
    parser.add_argument("--safe-strategy", choices=("nrand", "det"), default="nrand")
    parser.add_argument(
        "--batch",
        type=int,
        default=1,
        help="serve in columnar chunks of N events; the batched clean run "
        "is parity-checked against the scalar clean run, and the chaos "
        "cycle itself runs batched (kills land mid-group-commit)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        help="also run the stream through an N-shard multi-process fleet "
        "and parity-check it against the single-process clean run "
        "(0 = skip the sharded phase)",
    )
    parser.add_argument(
        "--kill-workers",
        type=int,
        default=0,
        help="SIGKILL this many live shard workers mid-stream (requires "
        "--shards); the fleet must keep serving and every killed shard "
        "must recover bit-identically",
    )
    parser.add_argument(
        "--hang-workers",
        type=int,
        default=0,
        help="SIGSTOP this many live shard workers mid-stream (requires "
        "--shards); the supervisor must detect each hang, SIGKILL and "
        "respawn the worker, and the run must stay bit-identical",
    )
    parser.add_argument(
        "--poison",
        action="store_true",
        help="inject one worker-killing poison chunk (requires --shards); "
        "it must be quarantined with provenance after the poison budget "
        "while the shard keeps serving everything else",
    )
    parser.add_argument(
        "--disk-faults",
        type=int,
        default=0,
        help="inject this many ENOSPC down-windows into the single-process "
        "run's disk writes; the service must keep serving SAFE decisions "
        "and recover bit-identically once the disk heals",
    )
    parser.add_argument(
        "--kill-primary",
        action="store_true",
        help="run the disaster-recovery drill: SIGKILL the primary "
        "two-thirds through the stream while a standby ships its WAL, "
        "promote the standby (fenced against the dead primary's lock), "
        "finish the stream, and round-trip backup -> restore -> fleet "
        "doctor; the result must be bit-identical to the clean run",
    )
    parser.add_argument(
        "--out", type=Path, default=Path("results/soak"), help="artifact directory"
    )
    args = parser.parse_args(argv)
    if args.kill_workers and not args.shards:
        parser.error("--kill-workers requires --shards N")
    if args.hang_workers and not args.shards:
        parser.error("--hang-workers requires --shards N")
    if args.poison and not args.shards:
        parser.error("--poison requires --shards N")

    events = build_fleet_events(args.vehicles, args.stops, args.seed, args.area)
    config = SessionConfig(
        break_even=args.break_even,
        safe_strategy=args.safe_strategy,
        # dedup must cover full-stream redelivery after each restart
        dedup_window=max(1024, args.stops + 1),
        seed=args.seed,
    )
    rng = np.random.default_rng(args.seed)
    kill_points = sorted(
        int(i) for i in rng.choice(np.arange(1, len(events) - 1), size=min(args.kills, len(events) - 2), replace=False)
    )
    print(f"{len(events)} events over {args.vehicles} vehicles; kills at {kill_points}")

    clean = run_stream(events, args.out / "clean", config)
    if args.batch > 1:
        batched = run_stream(
            events, args.out / "clean-batch", config, batch=args.batch
        )
        if (
            batched["fleet_cost"] != clean["fleet_cost"]
            or batched["digests"] != clean["digests"]
        ):
            print(
                f"PARITY FAILED: batched clean run (--batch {args.batch}) "
                "differs from the scalar clean run",
                file=sys.stderr,
            )
            return 1
        print(f"batched clean run (--batch {args.batch}) matches scalar")
    if args.shards:
        sharded, worker_restarts = run_sharded_chaos(
            events,
            args.out / "sharded",
            config,
            shards=args.shards,
            kills=args.kill_workers,
            chunk=max(args.batch, 8),
            ledger_path=args.out / "sharded-ledger.jsonl",
        )
        if (
            sharded["fleet_cost"] != clean["fleet_cost"]
            or sharded["digests"] != clean["digests"]
        ):
            mismatched = [
                vehicle
                for vehicle in clean["digests"]
                if sharded["digests"].get(vehicle) != clean["digests"][vehicle]
            ]
            print(
                f"PARITY FAILED: sharded run (--shards {args.shards}, "
                f"{args.kill_workers} worker kill(s)) mismatched vehicles "
                f"{mismatched}",
                file=sys.stderr,
            )
            return 1
        print(
            f"sharded run (--shards {args.shards}) matches single-process "
            f"after {worker_restarts} worker SIGKILL(s)"
        )
        (args.out / "sharded-summary.json").write_text(
            json.dumps(
                {
                    "shards": args.shards,
                    "worker_kills": args.kill_workers,
                    "worker_restarts": worker_restarts,
                    "fleet_cost": sharded["fleet_cost"],
                    "digests": sharded["digests"],
                },
                indent=2,
                sort_keys=True,
            )
        )
    if args.hang_workers:
        hung, detected = run_hang_chaos(
            events,
            args.out / "hang",
            config,
            shards=args.shards,
            hangs=args.hang_workers,
            chunk=max(args.batch, 8),
            ledger_path=args.out / "hang-ledger.jsonl",
        )
        if (
            hung["fleet_cost"] != clean["fleet_cost"]
            or hung["digests"] != clean["digests"]
        ):
            print(
                f"PARITY FAILED: hang-chaos run ({args.hang_workers} frozen "
                "worker(s)) differs from the clean run",
                file=sys.stderr,
            )
            return 1
        print(
            f"hang-chaos run matches clean after {detected} detected hang(s) "
            "(SIGSTOP -> supervisor SIGKILL -> respawn)"
        )
    if args.poison:
        poisoned, quarantined = run_poison_chaos(
            events,
            args.out / "poison",
            config,
            shards=args.shards,
            chunk=max(args.batch, 8),
            ledger_path=args.out / "poison-ledger.jsonl",
        )
        if (
            poisoned["fleet_cost"] != clean["fleet_cost"]
            or poisoned["digests"] != clean["digests"]
        ):
            print(
                "PARITY FAILED: poison-chaos run differs from the clean run",
                file=sys.stderr,
            )
            return 1
        print(
            f"poison-chaos run matches clean; {len(quarantined)} chunk(s) "
            f"quarantined after {quarantined[0]['crashes']} crash(es)"
        )
    if args.disk_faults:
        faulted, fs = run_disk_fault_chaos(
            events,
            args.out / "disk",
            config,
            windows=args.disk_faults,
            ledger_path=args.out / "disk-ledger.jsonl",
            batch=args.batch,
        )
        durability = faulted["snapshot"]["durability"]
        if (
            faulted["fleet_cost"] != clean["fleet_cost"]
            or faulted["digests"] != clean["digests"]
        ):
            print(
                f"PARITY FAILED: disk-fault run ({args.disk_faults} ENOSPC "
                "window(s)) differs from the clean run",
                file=sys.stderr,
            )
            return 1
        if durability["suspensions"] < 1 or fs.raised < 1:
            print(
                "DISK-FAULT CHECK FAILED: no suspension was ever triggered "
                f"(suspensions={durability['suspensions']}, raised={fs.raised})",
                file=sys.stderr,
            )
            return 1
        if durability["suspended_sessions"] or durability["dropped_events"]:
            print(
                f"DISK-FAULT CHECK FAILED: durability did not heal cleanly "
                f"({durability})",
                file=sys.stderr,
            )
            return 1
        print(
            f"disk-fault run matches clean after {durability['suspensions']} "
            f"suspension(s) ({fs.raised} injected write failure(s), "
            f"{durability['resumes']} resume(s))"
        )
    if args.kill_primary:
        replica = run_replica_chaos(
            events,
            args.out / "replica",
            config,
            kill_point=max(1, (2 * len(events)) // 3),
        )
        final = replica["final"]
        if (
            final["fleet_cost"] != clean["fleet_cost"]
            or final["digests"] != clean["digests"]
        ):
            mismatched = [
                vehicle
                for vehicle in clean["digests"]
                if final["digests"].get(vehicle) != clean["digests"][vehicle]
            ]
            print(
                f"PARITY FAILED: promoted-standby run mismatched vehicles "
                f"{mismatched}",
                file=sys.stderr,
            )
            return 1
        print(
            f"promoted standby matches clean after primary SIGKILL "
            f"({replica['sync_passes']} sync pass(es), "
            f"{replica['frames_shipped']} frame(s) shipped before the kill); "
            f"backup/restore round trip verified"
        )
        (args.out / "replica-summary.json").write_text(
            json.dumps(
                {
                    "kill_point": max(1, (2 * len(events)) // 3),
                    "sync_passes": replica["sync_passes"],
                    "frames_shipped": replica["frames_shipped"],
                    "fleet_cost": final["fleet_cost"],
                    "digests": final["digests"],
                    "restored_digests": replica["restored_digests"],
                },
                indent=2,
                sort_keys=True,
            )
        )
    chaos, restarts = run_chaos(
        events,
        args.out / "chaos",
        config,
        kill_points,
        ledger_path=args.out / "chaos-ledger.jsonl",
        batch=args.batch,
    )
    print(f"clean fleet cost: {clean['fleet_cost']!r}")
    print(f"chaos fleet cost: {chaos['fleet_cost']!r} ({restarts} restart(s))")
    ledger_records = read_ledger(args.out / "chaos-ledger.jsonl")
    print(f"chaos ledger: {len(ledger_records)} record(s)")
    (args.out / "soak-summary.json").write_text(
        json.dumps(
            {
                "config": asdict(config),
                "batch": args.batch,
                "kill_points": kill_points,
                "restarts": restarts,
                "clean": clean,
                "chaos": chaos,
            },
            indent=2,
            sort_keys=True,
        )
    )
    if chaos["fleet_cost"] != clean["fleet_cost"] or chaos["digests"] != clean["digests"]:
        mismatched = [
            vehicle
            for vehicle in clean["digests"]
            if chaos["digests"].get(vehicle) != clean["digests"][vehicle]
        ]
        print(f"PARITY FAILED: mismatched vehicles {mismatched}", file=sys.stderr)
        return 1
    print("PARITY OK: chaos run is bit-identical to the clean run")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI/CI
    sys.exit(main())
