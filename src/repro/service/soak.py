"""Deterministic soak/chaos harness for the advisor service.

The durability contract — "a SIGKILL at any instant loses nothing" —
is only worth stating if something kills the service mid-stream and
checks the books afterwards.  This harness does exactly that:

1. synthesize an NREL-shaped fleet event stream
   (:func:`build_fleet_events` — the same generator the experiments
   use, interleaved into one timestamped multi-vehicle feed);
2. run it **uninterrupted** through an :class:`AdvisorService` into a
   clean state directory (the reference);
3. run the same stream through kill/restart cycles: a child process
   serves the stream and is SIGKILLed at injected event indices
   (reusing :class:`repro.engine.faults.FaultInjector`, whose
   cross-process claim files make each kill fire exactly once across
   restarts), then a fresh child recovers from the state directory and
   replays the stream from the top — duplicate delivery is the
   *normal* case here, exercising idempotent ingestion for free;
4. assert the chaos run's realized fleet cost and per-vehicle state
   digests are **bit-identical** to the uninterrupted run.

Run it directly (the CI ``service-chaos`` job does)::

    python -m repro.service.soak --vehicles 4 --stops 80 --kills 3 \
        --seed 7 --out results/soak

Exit status 0 means parity held; the state directories, WALs and the
chaos ledger are left under ``--out`` for post-mortems.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import sys
from dataclasses import asdict
from pathlib import Path

import numpy as np

from ..engine.faults import Fault, FaultInjector
from ..engine.ledger import RunLedger, read_ledger, use_ledger
from ..fleet import area_config
from ..fleet.generator import FleetGenerator
from .advisor import AdvisorService
from .session import SessionConfig

__all__ = [
    "build_fleet_events",
    "run_stream",
    "run_chaos",
    "run_sharded_chaos",
    "SoakResult",
    "main",
]


def build_fleet_events(
    vehicles: int = 4,
    stops_per_vehicle: int = 80,
    seed: int = 7,
    area: str = "chicago",
) -> list[dict]:
    """An NREL-shaped multi-vehicle event stream, round-robin interleaved.

    Timestamps are the global event index, so every vehicle's clock is
    strictly monotone and the stream is reproducible byte-for-byte from
    ``(vehicles, stops_per_vehicle, seed, area)``.
    """
    config = area_config(area)
    generator = FleetGenerator(config, seed=seed)
    rng = np.random.default_rng(seed)
    fleet = [generator.generate_vehicle(index, rng) for index in range(vehicles)]
    events: list[dict] = []
    for stop_index in range(stops_per_vehicle):
        for vehicle in fleet:
            stops = vehicle.stop_lengths
            stop = float(stops[stop_index % stops.size])
            events.append(
                {
                    "id": f"{vehicle.vehicle_id}-{stop_index:05d}",
                    "vehicle": vehicle.vehicle_id,
                    "t": float(len(events)),
                    "stop": stop,
                }
            )
    return events


class SoakResult(dict):
    """``{"fleet_cost": float, "digests": {vehicle: sha}, "snapshot": ...}``."""


def _noop(item):
    """Identity task for the kill injector (module-level: picklable)."""
    return item


def run_stream(
    events: list[dict],
    state_dir: str | Path,
    config: SessionConfig,
    *,
    policy: str = "repair",
    injector: FaultInjector | None = None,
    ledger_path: str | Path | None = None,
    batch: int = 1,
) -> SoakResult:
    """Serve ``events`` into ``state_dir`` (recovering any prior state).

    ``injector`` is consulted with the global event index before each
    event — a ``"kill"`` fault SIGKILLs the process right there, which
    is the whole point.  ``batch > 1`` serves through the columnar
    ``process_batch`` path in chunks of that size; the injector is still
    consulted per event index (before the chunk applies), so a kill can
    land mid-plan and tear a group-commit.
    """
    ledger = (
        RunLedger(ledger_path, append=True) if ledger_path is not None else None
    )
    service = AdvisorService(Path(state_dir), config, policy=policy)
    if ledger is not None:
        with use_ledger(ledger):
            _serve(service, events, injector, batch)
    else:
        _serve(service, events, injector, batch)
    service.close()
    snapshot = service.health_snapshot()
    return SoakResult(
        fleet_cost=service.fleet_cost,
        digests={
            vehicle: info["digest"] for vehicle, info in snapshot["vehicles"].items()
        },
        snapshot=snapshot,
    )


def _serve(
    service: AdvisorService, events: list[dict], injector, batch: int = 1
) -> None:
    if batch <= 1:
        for index, record in enumerate(events):
            if injector is not None:
                injector(index)
            service.process(record)
        return
    for start in range(0, len(events), batch):
        chunk = events[start : start + batch]
        if injector is not None:
            for index in range(start, start + len(chunk)):
                injector(index)
        service.process_batch(chunk)


def _chaos_child(
    events, state_dir, config, policy, injector, ledger_path, out_path, batch
):
    """Child-process entry: serve the stream, persist the result."""
    result = run_stream(
        events,
        state_dir,
        config,
        policy=policy,
        injector=injector,
        ledger_path=ledger_path,
        batch=batch,
    )
    Path(out_path).write_text(json.dumps(result, sort_keys=True))


def run_chaos(
    events: list[dict],
    state_dir: str | Path,
    config: SessionConfig,
    kill_points: list[int],
    *,
    policy: str = "repair",
    ledger_path: str | Path | None = None,
    batch: int = 1,
) -> tuple[SoakResult, int]:
    """Kill/restart the service through ``kill_points``; returns the
    final completed run's result and the number of restarts taken.

    The kill injector is constructed in *this* (parent) process so the
    child's pid differs from the creator's and the ``"kill"`` fault
    delivers a real SIGKILL (see :mod:`repro.engine.faults`); its claim
    files live under the state directory, so each kill fires exactly
    once across the whole cycle — do **not** sweep stale claims between
    restarts, the dead-pid claims are the record of kills already fired.
    """
    state_dir = Path(state_dir)
    state_dir.mkdir(parents=True, exist_ok=True)
    injector = FaultInjector(
        _noop,
        {index: Fault("kill") for index in kill_points},
        state_dir / "kill-claims",
    )
    out_path = state_dir / "result.json"
    context = multiprocessing.get_context("spawn")
    restarts = -1
    for _attempt in range(len(kill_points) + 2):
        restarts += 1
        child = context.Process(
            target=_chaos_child,
            args=(
                events,
                state_dir,
                config,
                policy,
                injector,
                ledger_path,
                out_path,
                batch,
            ),
        )
        child.start()
        child.join()
        if child.exitcode == 0:
            return SoakResult(json.loads(out_path.read_text())), restarts
        if child.exitcode >= 0:
            raise RuntimeError(f"chaos child failed with exit code {child.exitcode}")
    raise RuntimeError(
        f"service did not complete within {len(kill_points) + 2} restarts"
    )


def run_sharded_chaos(
    events: list[dict],
    state_dir: str | Path,
    config: SessionConfig,
    *,
    shards: int,
    kills: int = 0,
    chunk: int = 16,
    policy: str = "repair",
    ledger_path: str | Path | None = None,
) -> tuple[SoakResult, int]:
    """Serve the stream through a sharded fleet, SIGKILLing live workers.

    Chunks of ``chunk`` events are routed through a
    :class:`~repro.service.shard.ShardedAdvisorService`; at ``kills``
    evenly spaced chunk boundaries a live worker (round-robin over
    shards) gets a real ``SIGKILL`` **while the rest of the fleet keeps
    serving** — the parent detects the death, respawns the worker
    (which recovers its shard bit-identically from WAL + snapshots) and
    redelivers the unacknowledged chunks.  Returns the final result and
    the number of worker restarts observed (must equal ``kills``).
    """
    import os
    import signal
    import time

    from .shard import ShardedAdvisorService

    service = ShardedAdvisorService(
        Path(state_dir),
        config,
        shards=shards,
        policy=policy,
        ledger_path=ledger_path,
    )
    chunks = [events[start : start + chunk] for start in range(0, len(events), chunk)]
    kill_at: dict[int, int] = {}
    for index in range(kills):
        slot = 1 + (index * max(1, (len(chunks) - 2))) // max(1, kills)
        while slot in kill_at:  # keep every kill distinct on short streams
            slot += 1
        kill_at[slot] = index % shards
    fired = 0
    try:
        for index, batch in enumerate(chunks):
            if index in kill_at:
                victim = kill_at[index]
                pid = service.worker_pids[victim]
                if pid is not None:
                    os.kill(pid, signal.SIGKILL)
                    fired += 1
                    # Wait for the respawn so consecutive kills cannot
                    # collapse into one observed death.
                    deadline = time.monotonic() + 60.0
                    baseline = service.restarts[victim]
                    while service.restarts[victim] == baseline:
                        if time.monotonic() > deadline:
                            raise RuntimeError(
                                f"shard {victim} was not respawned in time"
                            )
                        time.sleep(0.02)
            service.submit_lines([json.dumps(record) for record in batch])
        service.drain(timeout=300.0)
        digests = service.digests(timeout=120.0)
        snapshot = service.health_snapshot(timeout=120.0)
        restarts = sum(service.restarts)
    finally:
        service.close()
    if restarts != fired:
        raise RuntimeError(
            f"expected exactly {fired} worker restart(s), observed {restarts}"
        )
    return (
        SoakResult(
            fleet_cost=snapshot["fleet_cost"], digests=digests, snapshot=snapshot
        ),
        restarts,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.service.soak",
        description="SIGKILL soak test: chaos run must cost exactly what the clean run costs.",
    )
    parser.add_argument("--vehicles", type=int, default=4)
    parser.add_argument("--stops", type=int, default=80, help="stops per vehicle")
    parser.add_argument("--kills", type=int, default=3, help="SIGKILL injection count")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--area", default="chicago")
    parser.add_argument("--break-even", type=float, default=28.0)
    parser.add_argument("--safe-strategy", choices=("nrand", "det"), default="nrand")
    parser.add_argument(
        "--batch",
        type=int,
        default=1,
        help="serve in columnar chunks of N events; the batched clean run "
        "is parity-checked against the scalar clean run, and the chaos "
        "cycle itself runs batched (kills land mid-group-commit)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        help="also run the stream through an N-shard multi-process fleet "
        "and parity-check it against the single-process clean run "
        "(0 = skip the sharded phase)",
    )
    parser.add_argument(
        "--kill-workers",
        type=int,
        default=0,
        help="SIGKILL this many live shard workers mid-stream (requires "
        "--shards); the fleet must keep serving and every killed shard "
        "must recover bit-identically",
    )
    parser.add_argument(
        "--out", type=Path, default=Path("results/soak"), help="artifact directory"
    )
    args = parser.parse_args(argv)
    if args.kill_workers and not args.shards:
        parser.error("--kill-workers requires --shards N")

    events = build_fleet_events(args.vehicles, args.stops, args.seed, args.area)
    config = SessionConfig(
        break_even=args.break_even,
        safe_strategy=args.safe_strategy,
        # dedup must cover full-stream redelivery after each restart
        dedup_window=max(1024, args.stops + 1),
        seed=args.seed,
    )
    rng = np.random.default_rng(args.seed)
    kill_points = sorted(
        int(i) for i in rng.choice(np.arange(1, len(events) - 1), size=min(args.kills, len(events) - 2), replace=False)
    )
    print(f"{len(events)} events over {args.vehicles} vehicles; kills at {kill_points}")

    clean = run_stream(events, args.out / "clean", config)
    if args.batch > 1:
        batched = run_stream(
            events, args.out / "clean-batch", config, batch=args.batch
        )
        if (
            batched["fleet_cost"] != clean["fleet_cost"]
            or batched["digests"] != clean["digests"]
        ):
            print(
                f"PARITY FAILED: batched clean run (--batch {args.batch}) "
                "differs from the scalar clean run",
                file=sys.stderr,
            )
            return 1
        print(f"batched clean run (--batch {args.batch}) matches scalar")
    if args.shards:
        sharded, worker_restarts = run_sharded_chaos(
            events,
            args.out / "sharded",
            config,
            shards=args.shards,
            kills=args.kill_workers,
            chunk=max(args.batch, 8),
            ledger_path=args.out / "sharded-ledger.jsonl",
        )
        if (
            sharded["fleet_cost"] != clean["fleet_cost"]
            or sharded["digests"] != clean["digests"]
        ):
            mismatched = [
                vehicle
                for vehicle in clean["digests"]
                if sharded["digests"].get(vehicle) != clean["digests"][vehicle]
            ]
            print(
                f"PARITY FAILED: sharded run (--shards {args.shards}, "
                f"{args.kill_workers} worker kill(s)) mismatched vehicles "
                f"{mismatched}",
                file=sys.stderr,
            )
            return 1
        print(
            f"sharded run (--shards {args.shards}) matches single-process "
            f"after {worker_restarts} worker SIGKILL(s)"
        )
        (args.out / "sharded-summary.json").write_text(
            json.dumps(
                {
                    "shards": args.shards,
                    "worker_kills": args.kill_workers,
                    "worker_restarts": worker_restarts,
                    "fleet_cost": sharded["fleet_cost"],
                    "digests": sharded["digests"],
                },
                indent=2,
                sort_keys=True,
            )
        )
    chaos, restarts = run_chaos(
        events,
        args.out / "chaos",
        config,
        kill_points,
        ledger_path=args.out / "chaos-ledger.jsonl",
        batch=args.batch,
    )
    print(f"clean fleet cost: {clean['fleet_cost']!r}")
    print(f"chaos fleet cost: {chaos['fleet_cost']!r} ({restarts} restart(s))")
    ledger_records = read_ledger(args.out / "chaos-ledger.jsonl")
    print(f"chaos ledger: {len(ledger_records)} record(s)")
    (args.out / "soak-summary.json").write_text(
        json.dumps(
            {
                "config": asdict(config),
                "batch": args.batch,
                "kill_points": kill_points,
                "restarts": restarts,
                "clean": clean,
                "chaos": chaos,
            },
            indent=2,
            sort_keys=True,
        )
    )
    if chaos["fleet_cost"] != clean["fleet_cost"] or chaos["digests"] != clean["digests"]:
        mismatched = [
            vehicle
            for vehicle in clean["digests"]
            if chaos["digests"].get(vehicle) != clean["digests"][vehicle]
        ]
        print(f"PARITY FAILED: mismatched vehicles {mismatched}", file=sys.stderr)
        return 1
    print("PARITY OK: chaos run is bit-identical to the clean run")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI/CI
    sys.exit(main())
