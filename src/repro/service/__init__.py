"""Crash-safe online advisor service (``repro-idling serve``).

The deployed face of the paper's algorithms: per-vehicle
:class:`~repro.service.session.AdvisorSession` objects wrap
:class:`~repro.core.adaptive.AdaptiveProposed` with

* **durability** — a CRC-framed write-ahead log plus atomic compacted
  snapshots (:mod:`repro.service.wal`): a SIGKILL at any instant
  restores every session bit-identically;
* **drift detection** — Page-Hinkley/CUSUM over stop lengths and over
  the short/long split (:mod:`repro.service.drift`);
* **graceful degradation** — a HEALTHY → DEGRADED → SAFE ladder with
  hysteresis that ends at a provable guarantee (N-Rand's ``e/(e-1)``
  or DET's 2-competitive bound) instead of failing open
  (:mod:`repro.service.session`);
* **defensive ingestion** — idempotent event ids, monotone-clock
  enforcement through the :mod:`repro.validation` policies, and a
  bounded queue with shed-and-count backpressure
  (:mod:`repro.service.advisor`);
* **a chaos harness** — kill/restart soak runs that pin cost parity
  with the uninterrupted run (:mod:`repro.service.soak`);
* **horizontal scale** — consistent-hash sharding across worker
  processes with at-least-once redelivery and bit-identical shard
  recovery (:mod:`repro.service.shard`), fronted by a JSONL
  socket/stdin server with a ``/health`` endpoint
  (:mod:`repro.service.frontend`);
* **disaster recovery** — streaming WAL shipping to a standby with
  watermarked catch-up, lock-fenced standby promotion bit-identical to
  a clean continuation, cold backup/point-in-time restore under a
  content manifest, and a ``fleet doctor`` that cross-checks all of it
  (:mod:`repro.service.replica`).

See ``docs/serving.md`` for the state machine, the durability
guarantees, and the degradation ladder's competitive-ratio bounds.
"""

# NOTE: repro.service.soak is deliberately not imported here — it is
# runnable as ``python -m repro.service.soak`` and importing it from the
# package __init__ would shadow that execution (runpy warns).
from .advisor import AdvisorService, RegisteredAdvisorService, parse_event_line
from .augmented import (
    AugmentedAdvisorSession,
    AugmentedSessionConfig,
    ConstantPredictor,
    ContextualPredictor,
    TrustLearner,
    build_predictor,
)
from .drift import DriftDetector, PageHinkley
from .frontend import JsonlFrontend, parse_listen
from .replica import (
    LocalReplicaTarget,
    RemoteReplicaTarget,
    ReplicaServer,
    ReplicationError,
    ReplicationMonitor,
    backup,
    fleet_doctor,
    promote,
    replicate,
    restore,
    sweep_state_dir,
    sync_once,
)
from .session import AdvisorSession, HealthState, SessionConfig, vehicle_seed
from .shard import (
    HashRing,
    ShardedAdvisorService,
    ShardLockError,
    sweep_stale_shard_locks,
)
from .wal import SnapshotStore, WalCorruptionError, WriteAheadLog

__all__ = [
    "AdvisorService",
    "AdvisorSession",
    "AugmentedAdvisorSession",
    "AugmentedSessionConfig",
    "ConstantPredictor",
    "ContextualPredictor",
    "DriftDetector",
    "HashRing",
    "HealthState",
    "JsonlFrontend",
    "LocalReplicaTarget",
    "PageHinkley",
    "RegisteredAdvisorService",
    "RemoteReplicaTarget",
    "ReplicaServer",
    "ReplicationError",
    "ReplicationMonitor",
    "SessionConfig",
    "ShardLockError",
    "ShardedAdvisorService",
    "SnapshotStore",
    "TrustLearner",
    "WalCorruptionError",
    "WriteAheadLog",
    "backup",
    "build_predictor",
    "fleet_doctor",
    "parse_event_line",
    "parse_listen",
    "promote",
    "replicate",
    "restore",
    "sweep_stale_shard_locks",
    "sweep_state_dir",
    "sync_once",
    "vehicle_seed",
]
