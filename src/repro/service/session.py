"""Per-vehicle advisor sessions: crash-safe state + graceful degradation.

An :class:`AdvisorSession` is the long-running, deployed counterpart of
:class:`~repro.core.adaptive.AdaptiveProposed`: it advises an idling
threshold per stop, learns from every completed stop, and — unlike the
batch experiments — survives crashes and distribution drift.

Durability
----------
Every applied event is appended to a CRC-framed write-ahead log
*before* it mutates the session, and the full session state (estimator
accumulators, RNG stream, drift detectors, health machine, cost
counters) is periodically compacted into an atomic snapshot.  Recovery
loads the snapshot and replays the WAL tail through the *same* apply
path, so a SIGKILL at any instant restores the session bit-identically
— pinned by the soak harness (:mod:`repro.service.soak`) and the
Hypothesis round-trip property in the tests.

Degradation ladder
------------------
``HEALTHY → DEGRADED → SAFE``, driven by the drift detectors
(:mod:`repro.service.drift`), by
:class:`~repro.errors.DegenerateStatisticsError` from the solver, and
by streaks of event-validation failures:

* **HEALTHY** — play the adaptive selector on the full-history
  estimate (the paper's proposed algorithm with estimated statistics).
* **DEGRADED** — the estimate is suspect: rebuild the estimator over a
  short exponentially-forgetting window of recent stops and re-solve,
  so the advisor tracks the new regime instead of averaging across the
  shift.  Recovers to HEALTHY after ``recover_after`` clean stops.
* **SAFE** — estimation has failed twice; abandon estimated statistics
  entirely and play a distribution-free guarantee: N-Rand
  (``e/(e-1) ≈ 1.582`` expected CR against *any* distribution) or,
  via ``safe_strategy="det"``, DET (unconditionally 2-competitive per
  stop).  Returns to DEGRADED only after the longer
  ``safe_recover_after`` clean streak (hysteresis — flapping between
  guarantees is worse than staying conservative).

Every transition is emitted to the ambient run ledger
(:func:`repro.engine.ledger.active_ledger`) as an ``advisor-state``
event.

Defensive ingestion
-------------------
Duplicate event ids (at-least-once delivery) are no-ops; events whose
timestamp runs behind the vehicle's clock are rejected through the
:mod:`repro.validation` policy machinery (strict raises, repair drops,
quarantine diverts to a sidecar); malformed values never reach the
estimator and, in streaks, degrade the session's health.
"""

from __future__ import annotations

import hashlib
import json
import math
from collections import deque
from dataclasses import dataclass
from enum import Enum
from pathlib import Path

import numpy as np

from ..constants import E
from ..core.adaptive import AdaptiveProposed
from ..core.costs import validate_break_even
from ..core.deterministic import Deterministic
from ..core.randomized import NRand
from ..errors import DegenerateStatisticsError, InvalidParameterError
from ..engine.ledger import active_ledger
from ..simulation.controller import StopStartController
from ..validation import PolicyEnforcer
from .drift import DriftDetector
from .wal import SnapshotStore, WriteAheadLog

__all__ = ["HealthState", "SessionConfig", "AdvisorSession", "vehicle_seed"]

#: Snapshot schema version; bump on incompatible state layout changes.
STATE_VERSION = 1

#: Transitions kept in memory *and* in snapshots.  The cap must be
#: identical in both places: an uncapped live list would diverge from a
#: capped restored one and break bit-identical recovery.
TRANSITION_HISTORY = 64


class HealthState(str, Enum):
    """The degradation ladder (see module docstring)."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    SAFE = "safe"


@dataclass(frozen=True)
class SessionConfig:
    """Tuning knobs of one advisor session.

    Recovery is bit-identical only when the session is reopened with
    the same config it ran under — the config is an input of the
    deterministic apply path, not part of the durable state.
    """

    break_even: float
    min_samples: int = 10
    healthy_decay: float = 1.0
    degraded_decay: float = 0.9
    degraded_window: int = 32
    recent_window: int = 128
    dedup_window: int = 1024
    snapshot_every: int = 64
    safe_strategy: str = "nrand"
    # Page-Hinkley knobs, in robust-σ units (deviations are self-scaled
    # by a running mean absolute deviation — see repro.service.drift):
    # delta 0.25 tolerates wander up to a quarter-MAD per observation;
    # threshold 50 keeps the stationary false-alarm rate negligible even
    # for heavy-tailed stop streams (typical stationary departures stay
    # under ~15) while catching a one-MAD mean shift within ~50 stops.
    length_delta: float = 0.25
    length_threshold: float = 50.0
    split_delta: float = 0.25
    split_threshold: float = 50.0
    drift_min_count: int = 20
    recover_after: int = 50
    safe_recover_after: int = 200
    bad_event_streak: int = 5
    seed: int = 20140601

    def __post_init__(self) -> None:
        validate_break_even(self.break_even)
        if self.safe_strategy not in ("nrand", "det"):
            raise InvalidParameterError(
                f"safe_strategy must be 'nrand' or 'det', got {self.safe_strategy!r}"
            )
        for name in ("healthy_decay", "degraded_decay"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise InvalidParameterError(f"{name} must lie in (0, 1], got {value!r}")
        for name in (
            "min_samples",
            "degraded_window",
            "recent_window",
            "dedup_window",
            "snapshot_every",
            "drift_min_count",
            "recover_after",
            "safe_recover_after",
            "bad_event_streak",
        ):
            if getattr(self, name) < 1:
                raise InvalidParameterError(f"{name} must be >= 1, got {getattr(self, name)}")

    @property
    def safe_guarantee(self) -> float:
        """The competitive-ratio bound of the SAFE fallback: N-Rand's
        distribution-free ``e/(e-1)`` or DET's unconditional 2."""
        return E / (E - 1.0) if self.safe_strategy == "nrand" else 2.0


def vehicle_seed(base_seed: int, vehicle_id: str) -> np.random.SeedSequence:
    """Deterministic per-vehicle seed: stable across runs and restarts."""
    digest = hashlib.sha256(vehicle_id.encode()).digest()
    return np.random.SeedSequence([int(base_seed), int.from_bytes(digest[:8], "big")])


class AdvisorSession:
    """One vehicle's online advisor (see module docstring).

    Parameters
    ----------
    vehicle_id:
        Routing key; also salts the session's RNG stream.
    config:
        :class:`SessionConfig`.
    state_dir:
        Directory for this session's WAL + snapshot.  ``None`` runs the
        session in memory only (tests, ephemeral evaluation).
    policy / report / quarantine_writer / enforcer:
        Validation plumbing.  Pass ``enforcer`` to share one
        :class:`~repro.validation.PolicyEnforcer` across sessions (the
        multi-vehicle service does); otherwise one is built from
        ``policy``/``report``.
    fsync:
        Fsync WAL appends and snapshots (power-loss durability; a plain
        process kill is already covered by flush).
    recover:
        Restore durable state found in ``state_dir`` (default).  False
        starts fresh even over existing state (the soak harness's
        "uninterrupted" reference runs do this into clean directories).
    """

    def __init__(
        self,
        vehicle_id: str,
        config: SessionConfig,
        state_dir: str | Path | None = None,
        *,
        policy: str = "repair",
        report=None,
        enforcer: PolicyEnforcer | None = None,
        fsync: bool = False,
        recover: bool = True,
    ) -> None:
        self.vehicle_id = str(vehicle_id)
        self.config = config
        self._enforcer = (
            enforcer
            if enforcer is not None
            else PolicyEnforcer(policy, report, f"events:{self.vehicle_id}")
        )
        self._fallback = (
            NRand(config.break_even)
            if config.safe_strategy == "nrand"
            else Deterministic(config.break_even)
        )
        self._controller = StopStartController(self._fallback)
        self._wal: WriteAheadLog | None = None
        self._snapshots: SnapshotStore | None = None
        if state_dir is not None:
            directory = Path(state_dir)
            self._wal = WriteAheadLog(directory / "wal.jsonl", fsync=fsync)
            self._snapshots = SnapshotStore(directory / "snapshot.json", fsync=fsync)
        self._init_fresh_state()
        if recover and self._snapshots is not None:
            self._recover()

    def _init_fresh_state(self) -> None:
        config = self.config
        self._replaying = False
        self.applied = 0
        self.total_cost = 0.0
        self.health = HealthState.HEALTHY
        self.clean_streak = 0
        self.bad_streak = 0
        self.duplicates = 0
        self.rejected = 0
        self.last_timestamp: float | None = None
        self.transitions: deque = deque(maxlen=TRANSITION_HISTORY)
        self._recent_stops: deque = deque(maxlen=config.recent_window)
        self._recent_ids: deque = deque(maxlen=config.dedup_window)
        self._recent_id_set: set[str] = set()
        self.estimator = AdaptiveProposed(
            config.break_even, config.min_samples, decay=config.healthy_decay
        )
        self.rng = np.random.default_rng(vehicle_seed(config.seed, self.vehicle_id))
        self.drift = DriftDetector(
            length_delta=config.length_delta,
            length_threshold=config.length_threshold,
            split_delta=config.split_delta,
            split_threshold=config.split_threshold,
            min_count=config.drift_min_count,
        )

    # -- ingestion --------------------------------------------------------

    def submit(self, event_id: str, timestamp: float, stop_length: float):
        """Ingest one stop event; returns the decision dict, or None when
        the event was a duplicate or was rejected.

        The caller is expected to have value-validated the fields (see
        :func:`repro.validation.schemas.stop_event_findings`); this
        method performs the *stateful* checks — idempotency and clock
        monotonicity — then makes the event durable and applies it.
        """
        event_id = str(event_id)
        if event_id in self._recent_id_set:
            # At-least-once delivery: a replayed event is a no-op, not an
            # error — counted, never reported per-record (a redelivery
            # storm after a restart must not flood the report).
            self.duplicates += 1
            return None
        stop_length = float(stop_length)
        if not math.isfinite(stop_length) or stop_length < 0.0:
            # Defense in depth against callers that skipped the schema
            # checks: a bad value must never reach the WAL, where its
            # replay would poison recovery.
            check = (
                "negative-duration" if math.isfinite(stop_length) else "non-finite-duration"
            )
            kept = self._enforcer.flag(
                check,
                f"vehicle {self.vehicle_id}: event {event_id} stop length {stop_length!r}",
                record=[event_id, self.vehicle_id, repr(timestamp), repr(stop_length)],
            )
            if not kept:
                self.rejected += 1
                self.note_invalid_event(check)
                return None
        timestamp = float(timestamp)
        if self.last_timestamp is not None and timestamp < self.last_timestamp:
            kept = self._enforcer.flag(
                "non-monotonic-timestamp",
                f"vehicle {self.vehicle_id}: event {event_id} at t={timestamp!r} "
                f"behind clock {self.last_timestamp!r}",
                record=[event_id, self.vehicle_id, repr(timestamp), repr(stop_length)],
            )
            if not kept:
                self.rejected += 1
                self.note_invalid_event("non-monotonic-timestamp")
                return None
        record = {
            "seq": self.applied + 1,
            "id": event_id,
            "t": timestamp,
            "y": float(stop_length),
        }
        if self._wal is not None:
            self._wal.append(record)
        decision = self._apply(record)
        if self._snapshots is not None and self.applied % self.config.snapshot_every == 0:
            self.compact()
        return decision

    def note_invalid_event(self, check: str) -> None:
        """Feed one event-validation failure into the health machine.

        Isolated bad records are routine telemetry noise; a *streak* of
        ``bad_event_streak`` consecutive failures without a single valid
        event in between means the feed itself is broken and the
        estimate can no longer be trusted — treated like a drift alarm.
        """
        self.bad_streak += 1
        if self.bad_streak >= self.config.bad_event_streak:
            self.bad_streak = 0
            self._on_alarm(f"validation-streak:{check}")

    # -- the deterministic apply path (live and replay) -------------------

    def _apply(self, record: dict) -> dict:
        """Apply one durable event: decide, account, learn, adjudicate.

        This is the *only* code path that mutates session state from an
        event, used identically live and during WAL replay — which is
        what makes recovery bit-identical.
        """
        stop_length = float(record["y"])
        threshold = self.active_strategy.draw_threshold(self.rng)
        decision = self._controller.apply(stop_length, threshold)
        self.applied = int(record["seq"])
        self.total_cost += decision.total_cost(self.config.break_even)
        self.last_timestamp = float(record["t"])
        self._remember_id(str(record["id"]))
        self._recent_stops.append(stop_length)
        self.bad_streak = 0
        alarm = self.drift.update(stop_length, stop_length >= self.config.break_even)
        degenerate = False
        try:
            self.estimator.observe(stop_length)
        except DegenerateStatisticsError:
            degenerate = True
        if degenerate:
            self._on_alarm("degenerate-statistics")
        elif alarm:
            self._on_alarm("drift")
        else:
            self._on_clean()
        return {
            "vehicle": self.vehicle_id,
            "id": str(record["id"]),
            "seq": self.applied,
            "threshold": decision.threshold,
            "idle_seconds": decision.idle_seconds,
            "restarted": decision.restarted,
            "cost": decision.total_cost(self.config.break_even),
            "health": self.health.value,
            "strategy": self.active_strategy_name,
        }

    def _remember_id(self, event_id: str) -> None:
        if len(self._recent_ids) == self._recent_ids.maxlen:
            self._recent_id_set.discard(self._recent_ids[0])
        self._recent_ids.append(event_id)
        self._recent_id_set.add(event_id)

    # -- the state machine ------------------------------------------------

    def _on_alarm(self, reason: str) -> None:
        self.clean_streak = 0
        if self.health is HealthState.HEALTHY:
            self._transition(HealthState.DEGRADED, reason)
        elif self.health is HealthState.DEGRADED:
            self._transition(HealthState.SAFE, reason)
        else:
            # Already SAFE: stay, but restart the detectors so the clean
            # streak required to climb back out starts from scratch.
            self.drift.reset()

    def _on_clean(self) -> None:
        self.clean_streak += 1
        if (
            self.health is HealthState.DEGRADED
            and self.clean_streak >= self.config.recover_after
        ):
            self._transition(HealthState.HEALTHY, "recovered")
        elif (
            self.health is HealthState.SAFE
            and self.clean_streak >= self.config.safe_recover_after
        ):
            self._transition(HealthState.DEGRADED, "probation")

    def _transition(self, to: HealthState, reason: str) -> None:
        record = {
            "from": self.health.value,
            "to": to.value,
            "reason": reason,
            "applied": self.applied,
        }
        self.health = to
        self.clean_streak = 0
        self.drift.reset()
        self.transitions.append(record)
        if to is HealthState.DEGRADED:
            self._rebuild_estimator(
                self.config.degraded_decay, self.config.degraded_window
            )
        elif to is HealthState.HEALTHY:
            self._rebuild_estimator(
                self.config.healthy_decay, self.config.recent_window
            )
        # WAL replay re-derives transitions that were already emitted
        # before the crash; re-announcing them would duplicate ledger
        # records across restarts.
        ledger = active_ledger()
        if ledger is not None and not self._replaying:
            ledger.emit("advisor-state", vehicle=self.vehicle_id, **record)

    def _rebuild_estimator(self, decay: float, window: int) -> None:
        """Re-learn from the recent-stop buffer under a new window.

        A pure function of (buffer, decay, window), so replaying the
        same events rebuilds the same estimator — transitions included.
        """
        self.estimator = AdaptiveProposed(
            self.config.break_even, self.config.min_samples, decay=decay
        )
        tail = list(self._recent_stops)[-window:]
        if tail:
            self.estimator.observe_many(np.asarray(tail))

    # -- advising ---------------------------------------------------------

    @property
    def active_strategy(self):
        """What the vehicle should play *now*: the adaptive selection
        while estimation is trusted, the guaranteed fallback in SAFE."""
        if self.health is HealthState.SAFE:
            return self._fallback
        return self.estimator

    @property
    def active_strategy_name(self) -> str:
        if self.health is HealthState.SAFE:
            return self._fallback.name
        return self.estimator.selected_name

    # -- durability -------------------------------------------------------

    def to_state(self) -> dict:
        """The full serializable session state (snapshot payload)."""
        return {
            "version": STATE_VERSION,
            "vehicle": self.vehicle_id,
            "applied": self.applied,
            "total_cost": self.total_cost,
            "health": self.health.value,
            "clean_streak": self.clean_streak,
            "bad_streak": self.bad_streak,
            "duplicates": self.duplicates,
            "rejected": self.rejected,
            "last_timestamp": self.last_timestamp,
            "transitions": list(self.transitions),
            "recent_stops": list(self._recent_stops),
            "recent_ids": list(self._recent_ids),
            "estimator": self.estimator.to_state(),
            "rng": self.rng.bit_generator.state,
            "drift": self.drift.to_state(),
        }

    def _load_state(self, state: dict) -> None:
        if int(state.get("version", -1)) != STATE_VERSION:
            raise InvalidParameterError(
                f"unsupported session state version {state.get('version')!r}"
            )
        self.applied = int(state["applied"])
        self.total_cost = float(state["total_cost"])
        self.health = HealthState(state["health"])
        self.clean_streak = int(state["clean_streak"])
        self.bad_streak = int(state["bad_streak"])
        self.duplicates = int(state["duplicates"])
        self.rejected = int(state["rejected"])
        timestamp = state["last_timestamp"]
        self.last_timestamp = None if timestamp is None else float(timestamp)
        self.transitions = deque(state["transitions"], maxlen=TRANSITION_HISTORY)
        self._recent_stops = deque(
            (float(y) for y in state["recent_stops"]),
            maxlen=self.config.recent_window,
        )
        self._recent_ids = deque(
            (str(i) for i in state["recent_ids"]), maxlen=self.config.dedup_window
        )
        self._recent_id_set = set(self._recent_ids)
        self.estimator = AdaptiveProposed.from_state(state["estimator"])
        self.rng = np.random.default_rng(0)
        self.rng.bit_generator.state = state["rng"]
        self.drift = DriftDetector.from_state(state["drift"])

    def _recover(self) -> None:
        """Snapshot + WAL-tail replay (see the module docstring).

        After replay the state is immediately re-compacted: the durable
        snapshot then equals the in-memory state and the WAL is empty,
        so a second crash right after recovery costs nothing.
        """
        snapshot = self._snapshots.load()
        base_seq = 0
        if snapshot is not None:
            base_seq, state = snapshot
            self._load_state(state)
        replayed = 0
        self._replaying = True
        try:
            for record in self._wal.replay():
                if int(record["seq"]) <= base_seq:
                    continue  # already folded into the snapshot (compaction crashed mid-way)
                self._apply(record)
                replayed += 1
        finally:
            self._replaying = False
        # Compacting also when the WAL tail was torn resets the log, so
        # the torn bytes can never merge with a later append.
        if replayed or snapshot is None or self._wal.tail_torn:
            self.compact()

    def compact(self) -> None:
        """Publish a snapshot, then atomically reset the WAL.

        Ordering matters: the snapshot lands first, so a crash between
        the two steps leaves WAL records whose ``seq`` the snapshot
        already covers — replay skips them by the seq filter.
        """
        if self._snapshots is None:
            return
        self._snapshots.save(self.applied, self.to_state())
        self._wal.reset()

    # -- observability ----------------------------------------------------

    def state_digest(self) -> str:
        """SHA-256 over the parity-relevant state.

        Delivery counters (duplicates, rejections) are *excluded*: a
        crash-recovered run legitimately sees redeliveries that the
        uninterrupted reference run never did, while everything the
        advisor computes — estimator, RNG stream, health, costs — must
        match bit-for-bit.
        """
        state = self.to_state()
        for volatile in ("duplicates", "rejected"):
            state.pop(volatile)
        body = json.dumps(state, sort_keys=True, allow_nan=False, default=str)
        return hashlib.sha256(body.encode()).hexdigest()

    def health_snapshot(self) -> dict:
        """Operator-facing view of the session (the ``serve`` dump)."""
        statistics = self.estimator.current_statistics()
        return {
            "vehicle": self.vehicle_id,
            "health": self.health.value,
            "strategy": self.active_strategy_name,
            "applied": self.applied,
            "total_cost": self.total_cost,
            "observed_stops": self.estimator.observed_stops,
            "statistics": None if statistics is None else statistics.as_dict(),
            "safe_guarantee": self.config.safe_guarantee,
            "clean_streak": self.clean_streak,
            "transitions": list(self.transitions),
            "delivery": {
                "duplicates": self.duplicates,
                "rejected": self.rejected,
            },
            "digest": self.state_digest(),
        }
