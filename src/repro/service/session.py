"""Per-vehicle advisor sessions: crash-safe state + graceful degradation.

An :class:`AdvisorSession` is the long-running, deployed counterpart of
:class:`~repro.core.adaptive.AdaptiveProposed`: it advises an idling
threshold per stop, learns from every completed stop, and — unlike the
batch experiments — survives crashes and distribution drift.

Durability
----------
Every applied event is appended to a CRC-framed write-ahead log
*before* it mutates the session, and the full session state (estimator
accumulators, RNG stream, drift detectors, health machine, cost
counters) is periodically compacted into an atomic snapshot.  Recovery
loads the snapshot and replays the WAL tail through the *same* apply
path, so a SIGKILL at any instant restores the session bit-identically
— pinned by the soak harness (:mod:`repro.service.soak`) and the
Hypothesis round-trip property in the tests.

When the *disk itself* fails (``ENOSPC``, ``EIO``, read-only FS) the
session enters **DURABILITY_SUSPENDED** instead of dying: decisions
keep flowing from the SAFE fallback (distribution-free guarantee, no
state needed), incoming events buffer in a bounded in-memory tail, the
disk is probed on an event-counted backoff schedule, and on recovery
the buffer replays through the normal apply path — converging
bit-identically to a run that never faulted.  See the
"disk-fault degradation" section below.

Degradation ladder
------------------
``HEALTHY → DEGRADED → SAFE``, driven by the drift detectors
(:mod:`repro.service.drift`), by
:class:`~repro.errors.DegenerateStatisticsError` from the solver, and
by streaks of event-validation failures:

* **HEALTHY** — play the adaptive selector on the full-history
  estimate (the paper's proposed algorithm with estimated statistics).
* **DEGRADED** — the estimate is suspect: rebuild the estimator over a
  short exponentially-forgetting window of recent stops and re-solve,
  so the advisor tracks the new regime instead of averaging across the
  shift.  Recovers to HEALTHY after ``recover_after`` clean stops.
* **SAFE** — estimation has failed twice; abandon estimated statistics
  entirely and play a distribution-free guarantee: N-Rand
  (``e/(e-1) ≈ 1.582`` expected CR against *any* distribution) or,
  via ``safe_strategy="det"``, DET (unconditionally 2-competitive per
  stop).  Returns to DEGRADED only after the longer
  ``safe_recover_after`` clean streak (hysteresis — flapping between
  guarantees is worse than staying conservative).

Every transition is emitted to the ambient run ledger
(:func:`repro.engine.ledger.active_ledger`) as an ``advisor-state``
event.

Defensive ingestion
-------------------
Duplicate event ids (at-least-once delivery) are no-ops; events whose
timestamp runs behind the vehicle's clock are rejected through the
:mod:`repro.validation` policy machinery (strict raises, repair drops,
quarantine diverts to a sidecar); malformed values never reach the
estimator and, in streaks, degrade the session's health.
"""

from __future__ import annotations

import hashlib
import json
import math
from collections import deque
from dataclasses import dataclass
from enum import Enum
from pathlib import Path

import numpy as np

from ..constants import E
from ..core.adaptive import RENORM_FLUSH, RENORM_INTERVAL, AdaptiveProposed
from ..core.costs import validate_break_even
from ..core.deterministic import Deterministic
from ..core.kernels import VERTEX_NAMES, select_vertices
from ..core.randomized import NRand
from ..core.strategy import DeterministicThresholdStrategy
from ..errors import DegenerateStatisticsError, InvalidParameterError
from ..engine.ledger import active_ledger
from ..simulation.controller import StopStartController
from ..validation import PolicyEnforcer
from .drift import DriftDetector
from .wal import SNAPSHOT_NAME, WAL_NAME, SnapshotStore, WriteAheadLog

__all__ = ["HealthState", "SessionConfig", "AdvisorSession", "vehicle_seed"]

#: Snapshot schema version; bump on incompatible state layout changes.
STATE_VERSION = 1

#: Transitions kept in memory *and* in snapshots.  The cap must be
#: identical in both places: an uncapped live list would diverge from a
#: capped restored one and break bit-identical recovery.
TRANSITION_HISTORY = 64

#: Appended-event budget before a delta compaction re-bases onto a full
#: snapshot.  Deltas grow linearly with distance from their base (every
#: applied event appends an id + a stop), so without a cap the snapshot
#: stream's bytes-per-event degrades over a long run; re-basing every
#: ~1k events keeps it O(1) while deltas stay ~4x smaller than fulls.
_DELTA_REBASE = 1024


class HealthState(str, Enum):
    """The degradation ladder (see module docstring)."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    SAFE = "safe"


@dataclass(frozen=True)
class SessionConfig:
    """Tuning knobs of one advisor session.

    Recovery is bit-identical only when the session is reopened with
    the same config it ran under — the config is an input of the
    deterministic apply path, not part of the durable state.
    """

    break_even: float
    min_samples: int = 10
    healthy_decay: float = 1.0
    degraded_decay: float = 0.9
    degraded_window: int = 32
    recent_window: int = 128
    dedup_window: int = 1024
    snapshot_every: int = 64
    safe_strategy: str = "nrand"
    # Page-Hinkley knobs, in robust-σ units (deviations are self-scaled
    # by a running mean absolute deviation — see repro.service.drift):
    # delta 0.25 tolerates wander up to a quarter-MAD per observation;
    # threshold 50 keeps the stationary false-alarm rate negligible even
    # for heavy-tailed stop streams (typical stationary departures stay
    # under ~15) while catching a one-MAD mean shift within ~50 stops.
    length_delta: float = 0.25
    length_threshold: float = 50.0
    split_delta: float = 0.25
    split_threshold: float = 50.0
    drift_min_count: int = 20
    recover_after: int = 50
    safe_recover_after: int = 200
    bad_event_streak: int = 5
    seed: int = 20140601
    # Bounded in-memory event tail kept while durability is suspended
    # (disk fault): events past the bound are dropped-and-counted, so a
    # long outage degrades availability of *history*, never memory.
    suspend_buffer: int = 4096

    def __post_init__(self) -> None:
        validate_break_even(self.break_even)
        if self.safe_strategy not in ("nrand", "det"):
            raise InvalidParameterError(
                f"safe_strategy must be 'nrand' or 'det', got {self.safe_strategy!r}"
            )
        for name in ("healthy_decay", "degraded_decay"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise InvalidParameterError(f"{name} must lie in (0, 1], got {value!r}")
        for name in (
            "min_samples",
            "degraded_window",
            "recent_window",
            "dedup_window",
            "snapshot_every",
            "drift_min_count",
            "recover_after",
            "safe_recover_after",
            "bad_event_streak",
            "suspend_buffer",
        ):
            if getattr(self, name) < 1:
                raise InvalidParameterError(f"{name} must be >= 1, got {getattr(self, name)}")

    @property
    def safe_guarantee(self) -> float:
        """The competitive-ratio bound of the SAFE fallback: N-Rand's
        distribution-free ``e/(e-1)`` or DET's unconditional 2."""
        return E / (E - 1.0) if self.safe_strategy == "nrand" else 2.0

    def build_session(self, vehicle_id: str, state_dir=None, **kwargs):
        """Construct the session this config describes.

        The service layer calls this instead of naming a session class,
        so config subclasses (the learning-augmented tier) can swap in
        their own session without the service knowing about them.
        """
        return AdvisorSession(vehicle_id, self, state_dir, **kwargs)


def vehicle_seed(base_seed: int, vehicle_id: str) -> np.random.SeedSequence:
    """Deterministic per-vehicle seed: stable across runs and restarts."""
    digest = hashlib.sha256(vehicle_id.encode()).digest()
    return np.random.SeedSequence([int(base_seed), int.from_bytes(digest[:8], "big")])


class AdvisorSession:
    """One vehicle's online advisor (see module docstring).

    Parameters
    ----------
    vehicle_id:
        Routing key; also salts the session's RNG stream.
    config:
        :class:`SessionConfig`.
    state_dir:
        Directory for this session's WAL + snapshot.  ``None`` runs the
        session in memory only (tests, ephemeral evaluation).
    policy / report / quarantine_writer / enforcer:
        Validation plumbing.  Pass ``enforcer`` to share one
        :class:`~repro.validation.PolicyEnforcer` across sessions (the
        multi-vehicle service does); otherwise one is built from
        ``policy``/``report``.
    fsync:
        Fsync WAL appends and snapshots (power-loss durability; a plain
        process kill is already covered by flush).
    recover:
        Restore durable state found in ``state_dir`` (default).  False
        starts fresh even over existing state (the soak harness's
        "uninterrupted" reference runs do this into clean directories).
    fs:
        Optional fault-injection shim forwarded to the WAL and snapshot
        store (:class:`repro.engine.faults.FsFaultInjector`) — how the
        ``DURABILITY_SUSPENDED`` path is tested deterministically.
    """

    def __init__(
        self,
        vehicle_id: str,
        config: SessionConfig,
        state_dir: str | Path | None = None,
        *,
        policy: str = "repair",
        report=None,
        enforcer: PolicyEnforcer | None = None,
        fsync: bool = False,
        recover: bool = True,
        fs=None,
    ) -> None:
        self.vehicle_id = str(vehicle_id)
        self.config = config
        self._enforcer = (
            enforcer
            if enforcer is not None
            else PolicyEnforcer(policy, report, f"events:{self.vehicle_id}")
        )
        self._fallback = (
            NRand(config.break_even)
            if config.safe_strategy == "nrand"
            else Deterministic(config.break_even)
        )
        self._controller = StopStartController(self._fallback)
        self._wal: WriteAheadLog | None = None
        self._snapshots: SnapshotStore | None = None
        if state_dir is not None:
            directory = Path(state_dir)
            # Canonical names from wal.py: the replication layer and the
            # state-dir doctor address session state by exactly these.
            self._wal = WriteAheadLog(directory / WAL_NAME, fsync=fsync, fs=fs)
            self._snapshots = SnapshotStore(
                directory / SNAPSHOT_NAME, fsync=fsync, fs=fs
            )
        self._init_fresh_state()
        if recover and self._snapshots is not None:
            self._recover()

    def _init_fresh_state(self) -> None:
        config = self.config
        self._replaying = False
        # Delta-compaction bookkeeping (volatile; never serialized): the
        # (applied, transition-count) coordinates of the last FULL
        # snapshot, against which delta snapshots slice their appends.
        self._delta_base: dict | None = None
        self._transitions_seen = 0
        self.applied = 0
        self.total_cost = 0.0
        self.health = HealthState.HEALTHY
        self.clean_streak = 0
        self.bad_streak = 0
        self.duplicates = 0
        self.rejected = 0
        self.last_timestamp: float | None = None
        self.transitions: deque = deque(maxlen=TRANSITION_HISTORY)
        self._recent_stops: deque = deque(maxlen=config.recent_window)
        self._recent_ids: deque = deque(maxlen=config.dedup_window)
        self._recent_id_set: set[str] = set()
        self.estimator = AdaptiveProposed(
            config.break_even, config.min_samples, decay=config.healthy_decay
        )
        # DURABILITY_SUSPENDED overlay (volatile; never serialized — the
        # whole point is that a healed session is indistinguishable from
        # one that never faulted, so nothing here may reach to_state()).
        self.durability_suspended = False
        self.suspend_reason: str | None = None
        self.suspensions = 0
        self.resumes = 0
        self.suspend_dropped = 0
        self._suspend_buffer: deque = deque()
        self._suspend_ids: set[str] = set()
        self._suspend_rng = None
        self._suspend_seen = 0
        self._probe_backoff = 1
        self._next_probe_at = 1
        self.rng = np.random.default_rng(vehicle_seed(config.seed, self.vehicle_id))
        self.drift = DriftDetector(
            length_delta=config.length_delta,
            length_threshold=config.length_threshold,
            split_delta=config.split_delta,
            split_threshold=config.split_threshold,
            min_count=config.drift_min_count,
        )

    # -- ingestion --------------------------------------------------------

    def submit(self, event_id: str, timestamp: float, stop_length: float):
        """Ingest one stop event; returns the decision dict, or None when
        the event was a duplicate or was rejected.

        The caller is expected to have value-validated the fields (see
        :func:`repro.validation.schemas.stop_event_findings`); this
        method performs the *stateful* checks — idempotency and clock
        monotonicity — then makes the event durable and applies it.

        While durability is suspended (disk fault) the event is served
        from the SAFE fallback and buffered instead of applied — see
        :meth:`_submit_suspended`.
        """
        event_id = str(event_id)
        if self.durability_suspended:
            self._probe_maybe()
            if self.durability_suspended:
                return self._submit_suspended(event_id, timestamp, stop_length)
        if event_id in self._recent_id_set:
            # At-least-once delivery: a replayed event is a no-op, not an
            # error — counted, never reported per-record (a redelivery
            # storm after a restart must not flood the report).
            self.duplicates += 1
            return None
        stop_length = float(stop_length)
        if not math.isfinite(stop_length) or stop_length < 0.0:
            # Defense in depth against callers that skipped the schema
            # checks: a bad value must never reach the WAL, where its
            # replay would poison recovery.
            check = (
                "negative-duration" if math.isfinite(stop_length) else "non-finite-duration"
            )
            kept = self._enforcer.flag(
                check,
                f"vehicle {self.vehicle_id}: event {event_id} stop length {stop_length!r}",
                record=[event_id, self.vehicle_id, repr(timestamp), repr(stop_length)],
            )
            if not kept:
                self.rejected += 1
                self.note_invalid_event(check)
                return None
        timestamp = float(timestamp)
        if self.last_timestamp is not None and timestamp < self.last_timestamp:
            kept = self._enforcer.flag(
                "non-monotonic-timestamp",
                f"vehicle {self.vehicle_id}: event {event_id} at t={timestamp!r} "
                f"behind clock {self.last_timestamp!r}",
                record=[event_id, self.vehicle_id, repr(timestamp), repr(stop_length)],
            )
            if not kept:
                self.rejected += 1
                self.note_invalid_event("non-monotonic-timestamp")
                return None
        record = {
            "seq": self.applied + 1,
            "id": event_id,
            "t": timestamp,
            "y": float(stop_length),
        }
        if self._wal is not None:
            try:
                self._wal.append(record)
            except OSError as exc:
                # The append failed, so the event is NOT durable and the
                # WAL-before-apply invariant forbids applying it; park
                # it in the suspension buffer to be replayed — through
                # this very path — once the disk heals.
                self._suspend(exc, "wal-append")
                return self._submit_suspended(event_id, timestamp, stop_length)
        decision = self._apply(record)
        if self._snapshots is not None and self.applied % self.config.snapshot_every == 0:
            self.compact()
        return decision

    def note_invalid_event(self, check: str) -> None:
        """Feed one event-validation failure into the health machine.

        Isolated bad records are routine telemetry noise; a *streak* of
        ``bad_event_streak`` consecutive failures without a single valid
        event in between means the feed itself is broken and the
        estimate can no longer be trusted — treated like a drift alarm.
        """
        self.bad_streak += 1
        if self.bad_streak >= self.config.bad_event_streak:
            self.bad_streak = 0
            self._on_alarm(f"validation-streak:{check}")

    # -- disk-fault degradation (DURABILITY_SUSPENDED) --------------------
    #
    # A WAL append or snapshot publish that raises OSError (ENOSPC, EIO,
    # read-only FS) must not kill the session OR violate the
    # WAL-before-apply invariant by applying an event that was never
    # made durable.  Instead the session suspends durability:
    #
    # * incoming events are buffered verbatim (bounded) and answered
    #   with decisions from the distribution-free SAFE fallback, drawn
    #   on a dedicated side RNG so the session's own stream is untouched;
    # * no session state mutates — cost, estimator, health, clocks all
    #   freeze at the last durable event;
    # * the disk is probed on an exponential backoff schedule counted in
    #   suspended events (deterministic for tests — no wall clock), and
    #   on success the buffered tail replays through the normal
    #   :meth:`submit` path and the session re-compacts.
    #
    # Because replay uses the same apply path and the buffered events
    # arrive in original order, the healed durable state is
    # bit-identical to a run that never faulted — the same argument that
    # makes WAL recovery bit-identical.  The overlay is volatile by
    # construction: nothing here is serialized, and ``state_digest()``
    # already excludes the delivery counters suspension touches.

    def _suspend(self, exc: OSError, op: str) -> None:
        """Enter (or stay in) DURABILITY_SUSPENDED after a disk fault."""
        self.suspend_reason = f"{op}: {exc!r}"
        if self.durability_suspended:
            return
        self.durability_suspended = True
        self.suspensions += 1
        self._suspend_seen = 0
        self._probe_backoff = 1
        self._next_probe_at = 1
        ledger = active_ledger()
        if ledger is not None and not self._replaying:
            ledger.emit(
                "advisor-durability",
                vehicle=self.vehicle_id,
                state="suspended",
                op=op,
                error=repr(exc),
                applied=self.applied,
            )

    def _submit_suspended(self, event_id: str, timestamp, stop_length):
        """Serve one event while durability is suspended.

        The event cannot be made durable, so it must not mutate session
        state; it is buffered (bounded by ``config.suspend_buffer``) for
        in-order replay after the disk heals, and the decision served
        *now* comes from the SAFE fallback — the health ladder's floor,
        whose guarantee needs no estimator and no durable state.
        """
        self._suspend_seen += 1
        if event_id in self._recent_id_set or event_id in self._suspend_ids:
            self.duplicates += 1
            return None
        try:
            timestamp = float(timestamp)
            stop_length = float(stop_length)
        except (TypeError, ValueError):
            self.rejected += 1
            return None
        if len(self._suspend_buffer) >= self.config.suspend_buffer:
            # Bounded memory beats unbounded history: the drop is
            # counted and surfaced, and recovery still converges — the
            # dropped events simply never happened, exactly as if the
            # producer had shed them.
            self.suspend_dropped += 1
        else:
            self._suspend_buffer.append((event_id, timestamp, stop_length))
            self._suspend_ids.add(event_id)
        return self._suspended_decision(event_id, stop_length)

    def _suspended_decision(self, event_id: str, stop_length: float):
        if not math.isfinite(stop_length) or stop_length < 0.0:
            return None  # value-invalid: the normal path would reject it too
        if self._suspend_rng is None:
            # A dedicated stream, seeded apart from the session RNG: the
            # session stream must replay bit-identically after healing,
            # so suspension-mode draws cannot come from it.
            self._suspend_rng = np.random.default_rng(
                vehicle_seed(self.config.seed, self.vehicle_id + "\x00durability")
            )
        threshold = self._fallback.draw_threshold(self._suspend_rng)
        decision = self._controller.apply(stop_length, threshold)
        return {
            "vehicle": self.vehicle_id,
            "id": event_id,
            "seq": None,  # not durable, not applied — no sequence number
            "threshold": decision.threshold,
            "idle_seconds": decision.idle_seconds,
            "restarted": decision.restarted,
            "cost": decision.total_cost(self.config.break_even),
            "health": HealthState.SAFE.value,
            "strategy": self._fallback.name,
            "durability": "suspended",
        }

    def _probe_maybe(self) -> None:
        """Probe the disk when the backoff schedule says so.

        The schedule is counted in *suspended events* (1, 2, 4, ...
        capped at 64 events between probes), not wall time — an idle
        session costs nothing, a busy one probes promptly, and tests
        are deterministic.
        """
        if self._suspend_seen < self._next_probe_at:
            return
        if not self._try_resume():
            self._probe_backoff = min(64, self._probe_backoff * 2)
            self._next_probe_at = self._suspend_seen + self._probe_backoff

    def probe_durability(self) -> bool:
        """Force one disk probe now; True when durability is (re)active.

        The operator/close-path hook: ignores the backoff schedule.
        """
        if not self.durability_suspended:
            return True
        return self._try_resume()

    def _try_resume(self) -> bool:
        """One probe; on success replay the buffered tail and resume.

        Replay routes every buffered event through the normal
        :meth:`submit` — full validation, WAL-before-apply, RNG draws,
        cost accounting — so the healed state converges to the
        never-faulted run's.  A disk that fails again mid-replay simply
        re-suspends: the failing event re-buffers itself, and the
        not-yet-replayed remainder is queued back behind it in order.
        """
        if self._wal is not None:
            try:
                self._wal.probe()
            except OSError as exc:
                self.suspend_reason = f"wal-probe: {exc!r}"
                return False
        self.durability_suspended = False
        # Compact BEFORE replaying: the failed append may have left a
        # durable prefix of frames this session never applied in memory,
        # and replaying the buffer would append the same events again —
        # a later crash-recovery would then apply them twice.  Snapshot
        # the actual in-memory state and reset the WAL first, so any
        # orphaned frames are discarded and replay starts from a log
        # that matches memory.
        self.compact()
        if self.durability_suspended:
            return False  # the snapshot publish found the disk sick again
        buffered = list(self._suspend_buffer)
        self._suspend_buffer.clear()
        self._suspend_ids.clear()
        for position, event in enumerate(buffered):
            self.submit(*event)
            if self.durability_suspended:
                for event_id, timestamp, stop_length in buffered[position + 1:]:
                    if len(self._suspend_buffer) >= self.config.suspend_buffer:
                        self.suspend_dropped += 1
                    else:
                        self._suspend_buffer.append(
                            (event_id, timestamp, stop_length)
                        )
                        self._suspend_ids.add(event_id)
                return False
        self.resumes += 1
        self.suspend_reason = None
        ledger = active_ledger()
        if ledger is not None and not self._replaying:
            ledger.emit(
                "advisor-durability",
                vehicle=self.vehicle_id,
                state="resumed",
                replayed=len(buffered),
                applied=self.applied,
            )
        return True

    def durability_status(self) -> dict:
        """The suspension overlay, as surfaced in health snapshots."""
        return {
            "suspended": self.durability_suspended,
            "reason": self.suspend_reason,
            "buffered": len(self._suspend_buffer),
            "dropped": self.suspend_dropped,
            "suspensions": self.suspensions,
            "resumes": self.resumes,
        }

    # -- batched ingestion (the columnar serving path) --------------------

    def submit_batch(self, event_ids, timestamps, stop_lengths) -> list:
        """Ingest a batch of stop events; one decision dict (or None)
        per event, bit-identical to calling :meth:`submit` per event.

        The batch is split into maximal **clean runs** — contiguous
        events that pass every stateful admission check (dedup, value
        guards, clock monotonicity) without side effects.  Each run is
        made durable with ONE WAL group-commit (`append_many`), staged
        with vectorized estimator/drift updates, and its thresholds are
        drawn with one ``rng.uniform(size=k)`` when possible.  Any event
        a check would touch (duplicate, bad value, stale clock) falls
        back to the scalar :meth:`submit` — enforcer flags, strict-mode
        raises, and streak bookkeeping all behave exactly as today.

        Compaction is amortized: instead of snapshotting at every
        ``snapshot_every`` boundary inside the batch, one (delta)
        snapshot is published after the batch if a boundary was crossed.
        """
        ids = [str(event_id) for event_id in event_ids]
        ts = np.asarray(timestamps, dtype=float)
        ys = np.asarray(stop_lengths, dtype=float)
        if not len(ids) == ts.size == ys.size:
            raise InvalidParameterError(
                f"batch fields disagree on length: {len(ids)} ids, "
                f"{ts.size} timestamps, {ys.size} stop lengths"
            )
        results: list = [None] * len(ids)
        if not ids:
            return results
        if self.durability_suspended:
            self._probe_maybe()
        # Timestamps must also be finite for the run path: the WAL's
        # canonical JSON rejects NaN/inf, and a non-finite clock must
        # fail on exactly the event that carries it, not abort the run.
        clean = np.isfinite(ys) & (ys >= 0.0) & np.isfinite(ts)
        entry_applied = self.applied
        index = 0
        n = len(ids)
        while index < n:
            if self.durability_suspended:
                # Once suspended (at entry or mid-batch), every later
                # event of the batch buffers behind the failing one —
                # replay order must match arrival order exactly.
                results[index] = self._submit_suspended(
                    ids[index], float(ts[index]), float(ys[index])
                )
                index += 1
                continue
            run = self._admit_run(ids, ts, clean, index)
            if run == 0:
                # Complication event: full scalar semantics.
                results[index] = self.submit(
                    ids[index], float(ts[index]), float(ys[index])
                )
                index += 1
                continue
            self._commit_run(ids, ts, ys, index, run, results)
            index += run
        snapshot_every = self.config.snapshot_every
        if (
            self._snapshots is not None
            and self.applied // snapshot_every != entry_applied // snapshot_every
        ):
            self.compact(delta=True)
        return results

    def _admit_run(self, ids: list, ts, clean, start: int) -> int:
        """Length of the longest clean run starting at ``start``.

        Pure read-only scan: an event joins the run only when dedup
        (against the durable window AND the run itself), value guards,
        and clock monotonicity would all wave it through.  The first
        event that would trip any check ends the run with length 0 at
        its own position, so the caller routes it through scalar
        :meth:`submit`.
        """
        last_timestamp = self.last_timestamp
        seen = self._recent_id_set
        local: set[str] = set()
        index = start
        n = len(ids)
        while index < n:
            if not clean[index]:
                break
            event_id = ids[index]
            if event_id in seen or event_id in local:
                break
            timestamp = ts[index]
            if last_timestamp is not None and timestamp < last_timestamp:
                break
            local.add(event_id)
            last_timestamp = timestamp
            index += 1
        return index - start

    def _commit_run(self, ids, ts, ys, start: int, k: int, results: list) -> None:
        """Make one clean run durable, stage it, draw, finish.

        WAL-first ordering is load-bearing: staging emits live ledger
        events (health transitions), and the WAL-before-apply invariant
        is what guarantees every emitted transition was caused by a
        durable event (a crash redelivers it and dedups).
        """
        seq = self.applied
        frames = [
            {
                "seq": seq + j + 1,
                "id": ids[start + j],
                "t": float(ts[start + j]),
                "y": float(ys[start + j]),
            }
            for j in range(k)
        ]
        if self._wal is not None:
            try:
                self._wal.append_many(frames)
            except OSError as exc:
                # None of the run is durable (append_many is all-or-
                # nothing from this process's view), so none of it may
                # apply: the whole run buffers for post-heal replay.
                self._suspend(exc, "wal-append")
                for j in range(k):
                    results[start + j] = self._submit_suspended(
                        ids[start + j], float(ts[start + j]), float(ys[start + j])
                    )
                return
        staged = self._stage_run(frames)
        self._finish_run(staged, results, start)

    def _stage_run(self, frames: list) -> list:
        """Stage a committed run; vectorized in HEALTHY, scalar otherwise.

        Outside HEALTHY the ladder can climb *up* mid-run (recovery
        transitions at exact clean-streak counts, estimator rebuilds),
        so events go through the per-event :meth:`_stage`; the batch
        still benefits from the group commit and batched draws.
        """
        if self.health is not HealthState.HEALTHY:
            return [self._stage(frame) for frame in frames]
        return self._stage_run_fast(frames)

    def _stage_run_fast(self, frames: list) -> list:
        """The columnar staging path for a clean run in HEALTHY.

        Decomposition (each leg bit-identical to the scalar loop):

        1. the estimator's accumulator recurrence is sequential Python
           arithmetic (hoisted locals, same renormalization schedule),
           recording the per-event trajectory;
        2. drift verdicts come from one ``DriftDetector.update_many``
           sweep — valid through the first alarm; on an alarm the
           transition resets the detectors, wiping any post-alarm
           pollution exactly as the scalar path's reset does;
        3. per-event vertex selections come from one vectorized
           ``select_vertices`` call over the trajectory (HEALTHY's only
           downward transition is the first alarm, so selections before
           it are a pure function of the accumulators);
        4. state is committed through the alarm event (or the whole
           run), the alarm — if any — is adjudicated exactly once, and
           any remainder is staged per event under the new health.
        """
        estimator = self.estimator
        config = self.config
        break_even = config.break_even
        k = len(frames)
        ys = [frame["y"] for frame in frames]
        ys_arr = np.asarray(ys)
        # 1. Accumulator trajectories (exact observe() recurrence).
        count0 = estimator._count
        weight = estimator._weight
        short_sum = estimator._short_sum
        long_weight = estimator._long_weight
        decay = estimator.decay
        weights = []
        short_sums = []
        long_weights = []
        count = count0
        for value in ys:
            count += 1
            weight = weight * decay + 1.0
            short_sum *= decay
            long_weight *= decay
            if value >= break_even:
                long_weight += 1.0
            else:
                short_sum += value
            if count % RENORM_INTERVAL == 0:
                if 0.0 < short_sum < RENORM_FLUSH:
                    short_sum = 0.0
                if 0.0 < long_weight < RENORM_FLUSH:
                    long_weight = 0.0
            weights.append(weight)
            short_sums.append(short_sum)
            long_weights.append(long_weight)
        # 2. Drift verdicts; only those up to the first alarm are used.
        alarms = self.drift.update_many(ys_arr, ys_arr >= break_even)
        alarm_indices = np.flatnonzero(alarms)
        cut = int(alarm_indices[0]) if alarm_indices.size else -1
        limit = k if cut < 0 else cut + 1
        # 3. Per-event decision specs and post-event strategy names.
        weight_arr = np.asarray(weights)
        mu = np.asarray(short_sums) / weight_arr
        q = np.minimum(1.0, np.asarray(long_weights) / weight_arr)
        codes, vertex_thresholds = select_vertices(mu, q, break_even)
        min_samples = estimator.min_samples
        entering_spec = self._decision_spec()
        entering_name = self.active_strategy_name
        specs = []
        names = []
        for j in range(limit):
            if j == 0 or count0 + j < min_samples:
                specs.append(entering_spec)
            elif codes[j - 1] == 3:
                specs.append(("nrand", break_even))
            else:
                specs.append(("fixed", float(vertex_thresholds[j - 1])))
            if count0 + j + 1 >= min_samples:
                names.append(VERTEX_NAMES[codes[j]])
            else:
                names.append(entering_name)
        # 4. Commit state through the alarm (or the whole run).
        self.applied = int(frames[limit - 1]["seq"])
        self.last_timestamp = frames[limit - 1]["t"]
        for j in range(limit):
            self._remember_id(frames[j]["id"])
        self._recent_stops.extend(ys[:limit])
        self.bad_streak = 0
        estimator._count = count0 + limit
        estimator._weight = weights[limit - 1]
        estimator._short_sum = short_sums[limit - 1]
        estimator._long_weight = long_weights[limit - 1]
        if cut < 0:
            self.clean_streak += limit
            if estimator._count >= min_samples:
                estimator._reselect()
        else:
            self.clean_streak += cut
            # The transition resets the detectors and rebuilds the
            # estimator from the recent-stop window — exactly what the
            # scalar path does after its alarm event.
            self._on_alarm("drift")
        staged = []
        for j in range(limit):
            if j == cut:
                health = self.health.value
                name = self.active_strategy_name
            else:
                health = HealthState.HEALTHY.value
                name = names[j]
            staged.append(
                {
                    "id": frames[j]["id"],
                    "seq": frames[j]["seq"],
                    "y": ys[j],
                    "spec": specs[j],
                    "health": health,
                    "strategy": name,
                }
            )
        # Remainder after an alarm: per-event under the new health.
        for j in range(limit, k):
            staged.append(self._stage(frames[j]))
        return staged

    def _finish_run(self, staged: list, results: list, start: int) -> None:
        """Draw thresholds for a staged run in event order, then finish.

        ``rng.uniform(size=k)`` consumes the PCG64 stream exactly like
        ``k`` scalar ``rng.uniform()`` calls (the same fact
        ``Strategy.draw_thresholds`` relies on), so batching the N-Rand
        draws preserves the RNG stream bit-for-bit.  Fixed-threshold
        specs consume nothing, and any generic spec falls back to
        sequential draws for the whole run.
        """
        kinds = [item["spec"][0] for item in staged]
        if "generic" in kinds:
            thresholds = [self._draw_one(item["spec"]) for item in staged]
        else:
            n_random = sum(1 for kind in kinds if kind == "nrand")
            uniforms = self.rng.uniform(size=n_random) if n_random else None
            thresholds = []
            draw = 0
            for item in staged:
                kind, payload = item["spec"]
                if kind == "fixed":
                    thresholds.append(payload)
                else:
                    thresholds.append(
                        payload * math.log1p(float(uniforms[draw]) * (E - 1.0))
                    )
                    draw += 1
        for j, (item, threshold) in enumerate(zip(staged, thresholds)):
            results[start + j] = self._finish(item, threshold)

    # -- the deterministic apply path (live and replay) -------------------
    #
    # ``_apply`` is split into three legs so the batched ingest path can
    # interleave them differently without changing a single float:
    #
    # * ``_stage``  — every state mutation that does NOT depend on the
    #   drawn threshold (learning, drift, health, histories).  Consumes
    #   no RNG, but *captures* the decision spec active at entry — the
    #   strategy the scalar path would have drawn from.
    # * ``_draw_one`` — consume the RNG for one staged event, exactly as
    #   the captured strategy's ``draw_threshold`` would.
    # * ``_finish`` — resolve the decision and account its cost.
    #
    # The scalar path runs stage->draw->finish per event; the batched
    # path stages a whole run, then draws for the run in event order
    # (one vectorized ``rng.uniform(size=k)`` when every randomized spec
    # is N-Rand — stream-identical to k scalar draws).  Legal because
    # no staged mutation reads the RNG and no draw reads staged state:
    # the decision spec is fixed before the event mutates anything.

    def _decision_spec(self, record: dict | None = None):
        """How the *next* threshold will be drawn, frozen before the
        event's mutations: ``("fixed", x)`` for deterministic-threshold
        strategies (no RNG), ``("nrand", B)`` for the exact N-Rand
        closed form (one uniform), ``("generic", strategy)`` otherwise.

        ``record`` is the durable event about to be applied; the base
        session ignores it (its strategies depend only on session
        state), but prediction-augmented subclasses read the event's
        timestamp to look up a contextual stop-length prediction.
        """
        strategy = self.active_strategy
        if isinstance(strategy, AdaptiveProposed):
            strategy = strategy._current
        if isinstance(strategy, DeterministicThresholdStrategy):
            return ("fixed", strategy.threshold)
        if type(strategy) is NRand:
            return ("nrand", strategy.break_even)
        return ("generic", strategy)

    def _draw_one(self, spec) -> float:
        kind, payload = spec
        if kind == "fixed":
            return payload
        if kind == "nrand":
            # Inlined NRand.inverse_cdf(rng.uniform()): math.log1p, not
            # np.log1p — they can differ by 1 ulp and the batched path
            # must reproduce the scalar stream bit-for-bit.
            u = self.rng.uniform()
            return payload * math.log1p(float(u) * (E - 1.0))
        return payload.draw_threshold(self.rng)

    def _stage(self, record: dict) -> dict:
        """Mutate all threshold-independent state for one durable event.

        Returns the staged event: identity, the frozen decision spec,
        and the post-event health/strategy labels the decision dict
        reports.
        """
        stop_length = float(record["y"])
        spec = self._decision_spec(record)
        self.applied = int(record["seq"])
        self.last_timestamp = float(record["t"])
        self._remember_id(str(record["id"]))
        self._recent_stops.append(stop_length)
        self.bad_streak = 0
        alarm = self.drift.update(stop_length, stop_length >= self.config.break_even)
        degenerate = False
        try:
            self.estimator.observe(stop_length)
        except DegenerateStatisticsError:
            degenerate = True
        if degenerate:
            self._on_alarm("degenerate-statistics")
        elif alarm:
            self._on_alarm("drift")
        else:
            self._on_clean()
        return {
            "id": str(record["id"]),
            "seq": self.applied,
            "y": stop_length,
            "spec": spec,
            "health": self.health.value,
            "strategy": self.active_strategy_name,
        }

    def _finish(self, staged: dict, threshold: float) -> dict:
        """Resolve one staged event against its drawn threshold."""
        decision = self._controller.apply(staged["y"], threshold)
        cost = decision.total_cost(self.config.break_even)
        self.total_cost += cost
        return {
            "vehicle": self.vehicle_id,
            "id": staged["id"],
            "seq": staged["seq"],
            "threshold": decision.threshold,
            "idle_seconds": decision.idle_seconds,
            "restarted": decision.restarted,
            "cost": cost,
            "health": staged["health"],
            "strategy": staged["strategy"],
        }

    def _apply(self, record: dict) -> dict:
        """Apply one durable event: decide, account, learn, adjudicate.

        This is the *only* code path that mutates session state from an
        event, used identically live and during WAL replay — which is
        what makes recovery bit-identical.  (The batched path is pinned
        to it by the equivalence harness; WAL replay itself always runs
        per event through here.)
        """
        staged = self._stage(record)
        return self._finish(staged, self._draw_one(staged["spec"]))

    def _remember_id(self, event_id: str) -> None:
        if len(self._recent_ids) == self._recent_ids.maxlen:
            self._recent_id_set.discard(self._recent_ids[0])
        self._recent_ids.append(event_id)
        self._recent_id_set.add(event_id)

    # -- the state machine ------------------------------------------------

    def _on_alarm(self, reason: str) -> None:
        self.clean_streak = 0
        if self.health is HealthState.HEALTHY:
            self._transition(HealthState.DEGRADED, reason)
        elif self.health is HealthState.DEGRADED:
            self._transition(HealthState.SAFE, reason)
        else:
            # Already SAFE: stay, but restart the detectors so the clean
            # streak required to climb back out starts from scratch.
            self.drift.reset()

    def _on_clean(self) -> None:
        self.clean_streak += 1
        if (
            self.health is HealthState.DEGRADED
            and self.clean_streak >= self.config.recover_after
        ):
            self._transition(HealthState.HEALTHY, "recovered")
        elif (
            self.health is HealthState.SAFE
            and self.clean_streak >= self.config.safe_recover_after
        ):
            self._transition(HealthState.DEGRADED, "probation")

    def _transition(self, to: HealthState, reason: str) -> None:
        record = {
            "from": self.health.value,
            "to": to.value,
            "reason": reason,
            "applied": self.applied,
        }
        self.health = to
        self.clean_streak = 0
        self.drift.reset()
        self.transitions.append(record)
        self._transitions_seen += 1
        if to is HealthState.DEGRADED:
            self._rebuild_estimator(
                self.config.degraded_decay, self.config.degraded_window
            )
        elif to is HealthState.HEALTHY:
            self._rebuild_estimator(
                self.config.healthy_decay, self.config.recent_window
            )
        # WAL replay re-derives transitions that were already emitted
        # before the crash; re-announcing them would duplicate ledger
        # records across restarts.
        ledger = active_ledger()
        if ledger is not None and not self._replaying:
            ledger.emit("advisor-state", vehicle=self.vehicle_id, **record)

    def _rebuild_estimator(self, decay: float, window: int) -> None:
        """Re-learn from the recent-stop buffer under a new window.

        A pure function of (buffer, decay, window), so replaying the
        same events rebuilds the same estimator — transitions included.
        """
        self.estimator = AdaptiveProposed(
            self.config.break_even, self.config.min_samples, decay=decay
        )
        tail = list(self._recent_stops)[-window:]
        if tail:
            self.estimator.observe_many(np.asarray(tail))

    # -- advising ---------------------------------------------------------

    @property
    def active_strategy(self):
        """What the vehicle should play *now*: the adaptive selection
        while estimation is trusted, the guaranteed fallback in SAFE."""
        if self.health is HealthState.SAFE:
            return self._fallback
        return self.estimator

    @property
    def active_strategy_name(self) -> str:
        if self.health is HealthState.SAFE:
            return self._fallback.name
        return self.estimator.selected_name

    # -- durability -------------------------------------------------------

    def to_state(self) -> dict:
        """The full serializable session state (snapshot payload)."""
        return {
            "version": STATE_VERSION,
            "vehicle": self.vehicle_id,
            "applied": self.applied,
            "total_cost": self.total_cost,
            "health": self.health.value,
            "clean_streak": self.clean_streak,
            "bad_streak": self.bad_streak,
            "duplicates": self.duplicates,
            "rejected": self.rejected,
            "last_timestamp": self.last_timestamp,
            "transitions": list(self.transitions),
            "recent_stops": list(self._recent_stops),
            "recent_ids": list(self._recent_ids),
            "estimator": self.estimator.to_state(),
            "rng": self.rng.bit_generator.state,
            "drift": self.drift.to_state(),
        }

    def _load_state(self, state: dict) -> None:
        if int(state.get("version", -1)) != STATE_VERSION:
            raise InvalidParameterError(
                f"unsupported session state version {state.get('version')!r}"
            )
        self.applied = int(state["applied"])
        self.total_cost = float(state["total_cost"])
        self.health = HealthState(state["health"])
        self.clean_streak = int(state["clean_streak"])
        self.bad_streak = int(state["bad_streak"])
        self.duplicates = int(state["duplicates"])
        self.rejected = int(state["rejected"])
        timestamp = state["last_timestamp"]
        self.last_timestamp = None if timestamp is None else float(timestamp)
        self.transitions = deque(state["transitions"], maxlen=TRANSITION_HISTORY)
        self._recent_stops = deque(
            (float(y) for y in state["recent_stops"]),
            maxlen=self.config.recent_window,
        )
        self._recent_ids = deque(
            (str(i) for i in state["recent_ids"]), maxlen=self.config.dedup_window
        )
        self._recent_id_set = set(self._recent_ids)
        self.estimator = AdaptiveProposed.from_state(state["estimator"])
        self.rng = np.random.default_rng(0)
        self.rng.bit_generator.state = state["rng"]
        self.drift = DriftDetector.from_state(state["drift"])

    def _recover(self) -> None:
        """Snapshot + WAL-tail replay (see the module docstring).

        After replay the state is immediately re-compacted: the durable
        snapshot then equals the in-memory state and the WAL is empty,
        so a second crash right after recovery costs nothing.
        """
        snapshot = self._snapshots.load()
        base_seq = 0
        if snapshot is not None:
            base_seq, state = snapshot
            self._load_state(state)
        replayed = 0
        self._replaying = True
        try:
            for record in self._wal.replay():
                if int(record["seq"]) <= base_seq:
                    continue  # already folded into the snapshot (compaction crashed mid-way)
                self._apply(record)
                replayed += 1
        finally:
            self._replaying = False
        # Compacting also when the WAL tail was torn resets the log, so
        # the torn bytes can never merge with a later append.
        if replayed or snapshot is None or self._wal.tail_torn:
            self.compact()

    def compact(self, *, delta: bool = False) -> None:
        """Publish a snapshot, then atomically reset the WAL.

        Ordering matters: the snapshot lands first, so a crash between
        the two steps leaves WAL records whose ``seq`` the snapshot
        already covers — replay skips them by the seq filter.

        ``delta=True`` (the batched path) publishes a delta overlay
        against the last full snapshot when one exists and the overlay
        would actually be smaller — the scalar fields plus only the
        items appended to the bounded histories since the full base.
        Falls back to a full snapshot otherwise.

        A disk fault here suspends durability instead of propagating:
        the applied state is safe in memory and the WAL (whatever the
        disk retained of it), and the resume path re-compacts once the
        disk heals.
        """
        if self._snapshots is None:
            return
        if self.durability_suspended:
            return  # pointless while the disk is sick; resume re-compacts
        try:
            if delta and self._try_delta_compact():
                self._wal.reset()
                return
            self._snapshots.save(self.applied, self.to_state())
            self._delta_base = {
                "applied": self.applied,
                "transitions": self._transitions_seen,
            }
            self._wal.reset()
        except OSError as exc:
            self._suspend(exc, "compact")

    def _try_delta_compact(self) -> bool:
        """Publish a delta snapshot if profitable; False to go full.

        Correct because every applied event appends exactly one entry to
        ``recent_stops`` and ``recent_ids``: the items appended since
        the full base are the last ``applied - base_applied`` of each
        (capped by the deque bound — the restore path re-trims), and
        transitions are counted by the monotone ``_transitions_seen``.

        Profitability is bounded: a delta's bulk is the appended id/stop
        history, which grows linearly with distance from the full base,
        so past ``_DELTA_REBASE`` appended events (or the dedup window,
        whichever is smaller) a full snapshot re-bases instead — the
        amortized bytes-per-event of the snapshot stream stays O(1).
        """
        base = self._delta_base
        if base is None:
            return False
        appended = self.applied - base["applied"]
        if appended <= 0 or appended >= min(
            self.config.dedup_window, _DELTA_REBASE
        ):
            return False
        changed = self._delta_changed_fields()
        new_transitions = self._transitions_seen - base["transitions"]
        appended_lists = {
            "recent_stops": list(self._recent_stops)[
                -min(appended, self.config.recent_window):
            ],
            "recent_ids": list(self._recent_ids)[
                -min(appended, self.config.dedup_window):
            ],
            "transitions": (
                list(self.transitions)[-min(new_transitions, TRANSITION_HISTORY):]
                if new_transitions > 0
                else []
            ),
        }
        self._snapshots.save_delta(
            self.applied, base["applied"], changed, appended_lists
        )
        return True

    def _delta_changed_fields(self) -> dict:
        """The scalar state a delta snapshot replaces wholesale (the
        appended histories travel separately).  Subclasses that
        serialize extra state extend this dict, so delta compaction
        never silently drops their fields."""
        return {
            "applied": self.applied,
            "total_cost": self.total_cost,
            "health": self.health.value,
            "clean_streak": self.clean_streak,
            "bad_streak": self.bad_streak,
            "duplicates": self.duplicates,
            "rejected": self.rejected,
            "last_timestamp": self.last_timestamp,
            "estimator": self.estimator.to_state(),
            "rng": self.rng.bit_generator.state,
            "drift": self.drift.to_state(),
        }

    # -- observability ----------------------------------------------------

    def state_digest(self) -> str:
        """SHA-256 over the parity-relevant state.

        Delivery counters (duplicates, rejections) are *excluded*: a
        crash-recovered run legitimately sees redeliveries that the
        uninterrupted reference run never did, while everything the
        advisor computes — estimator, RNG stream, health, costs — must
        match bit-for-bit.
        """
        state = self.to_state()
        for volatile in ("duplicates", "rejected"):
            state.pop(volatile)
        body = json.dumps(state, sort_keys=True, allow_nan=False, default=str)
        return hashlib.sha256(body.encode()).hexdigest()

    def health_snapshot(self) -> dict:
        """Operator-facing view of the session (the ``serve`` dump)."""
        statistics = self.estimator.current_statistics()
        return {
            "vehicle": self.vehicle_id,
            "health": self.health.value,
            "strategy": self.active_strategy_name,
            "applied": self.applied,
            "total_cost": self.total_cost,
            "observed_stops": self.estimator.observed_stops,
            "statistics": None if statistics is None else statistics.as_dict(),
            "safe_guarantee": self.config.safe_guarantee,
            "clean_streak": self.clean_streak,
            "transitions": list(self.transitions),
            "delivery": {
                "duplicates": self.duplicates,
                "rejected": self.rejected,
            },
            "durability": self.durability_status(),
            "digest": self.state_digest(),
        }
