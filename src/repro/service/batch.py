"""Columnar chunk planning for batched ingest.

The scalar serving loop walks one event at a time: parse, validate,
route to the vehicle's session, apply, WAL-append, fsync.  The batched
path amortizes all of that per *chunk*: this module turns a chunk of
parsed JSONL records into a :class:`ChunkPlan` — per-vehicle columnar
runs (numpy struct arrays of timestamps/stop lengths plus the event
ids) interleaved with malformed-event markers — that
:meth:`AdvisorService.process_batch
<repro.service.advisor.AdvisorService.process_batch>` executes with one
:meth:`~repro.service.session.AdvisorSession.submit_batch` group-commit
per run.

Planning preserves exactly the ordering that session state depends on:

* **within a vehicle**, events and malformed markers keep their chunk
  order (a malformed record claiming vehicle V splits V's run, because
  its failure-streak signal must land between the events it arrived
  between);
* **across vehicles**, runs are independent — per-vehicle session state
  never reads another vehicle's events — so the plan orders items by
  their first chunk index.  The only observable reordering is the row
  order of the shared validation report/quarantine sidecar within one
  chunk, which interleaved streams cannot preserve under group-commit.

Validation is byte-identical to the scalar path: every record goes
through :func:`repro.validation.schemas.stop_event_findings`, and the
resulting event tuples are what the columns are built from.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..validation.schemas import stop_event_findings

__all__ = ["EVENT_DTYPE", "ColumnarRun", "MalformedEvent", "ChunkPlan", "plan_chunk"]

#: Structured dtype for one planned run: the record's position in the
#: chunk (for scattering decisions back), its timestamp and stop length.
#: Event ids stay in a Python list — they are arbitrary-length strings
#: and the session needs them as ``str`` for dedup hashing anyway.
EVENT_DTYPE = np.dtype(
    [("index", np.int64), ("t", np.float64), ("stop", np.float64)]
)


@dataclass
class ColumnarRun:
    """A maximal run of valid events for one vehicle, as columns."""

    vehicle: str
    event_ids: list
    columns: np.ndarray  # EVENT_DTYPE

    @property
    def indices(self) -> np.ndarray:
        return self.columns["index"]

    @property
    def timestamps(self) -> np.ndarray:
        return self.columns["t"]

    @property
    def stop_lengths(self) -> np.ndarray:
        return self.columns["stop"]

    def __len__(self) -> int:
        return self.columns.shape[0]


@dataclass
class MalformedEvent:
    """A record that failed value validation, kept at its chunk position."""

    index: int
    vehicle: str | None  # identifiable claimed vehicle, if any
    record: object
    findings: list


@dataclass
class ChunkPlan:
    """The executable plan for one chunk: items in processing order."""

    size: int
    items: list  # ColumnarRun | MalformedEvent


def _identifiable_vehicle(record) -> str | None:
    if isinstance(record, dict):
        vehicle = record.get("vehicle")
        if isinstance(vehicle, str) and vehicle.strip():
            return vehicle
    return None


#: Largest integer magnitude the fast-shape check accepts for ``t``/
#: ``stop``: within +-2**53 every int is exactly a float, so the fast
#: conversion and the scalar path's ``float(str(value))`` round-trip
#: agree bit-for-bit.  Bigger ints (rounding, or overflow to inf on the
#: string parse) take the slow path.
_EXACT_INT = 2**53


def _fast_event(record):
    """The common event shape, validated without string round-trips.

    Returns the same ``(id, vehicle, t, stop)`` tuple
    :func:`stop_event_findings` would, but only for records it can
    prove that function accepts with identical values: a plain dict
    with exactly-typed fields (``str`` ids, non-bool ``int``/``float``
    numbers, finite, non-negative).  Anything else returns None and is
    re-checked by the full validator — the fast path may *defer*, never
    disagree.
    """
    if type(record) is not dict:
        return None
    try:
        event_id = record["id"]
        vehicle = record["vehicle"]
        timestamp = record["t"]
        stop_length = record["stop"]
    except KeyError:
        return None
    if type(event_id) is not str or not event_id.strip():
        return None
    if type(vehicle) is not str or not vehicle.strip():
        return None
    for value in (timestamp, stop_length):
        kind = type(value)
        if kind is float:
            if not (math.isfinite(value) and value >= 0.0):
                return None
        elif kind is int:
            if not 0 <= value <= _EXACT_INT:
                return None
        else:
            return None
    return event_id, vehicle, float(timestamp), float(stop_length)


def plan_chunk(records) -> ChunkPlan:
    """Group a chunk of parsed records into an ordered :class:`ChunkPlan`.

    Valid events accumulate into per-vehicle runs; a malformed record
    flushes the run of the vehicle it claims to be from (preserving the
    within-vehicle order its health signal depends on).  Unattributable
    malformed records stand alone at their own chunk position.
    """
    # Per vehicle: a list of finished items plus one open run buffer.
    finished: dict[str, list] = {}
    open_runs: dict[str, list] = {}

    def _flush(vehicle: str) -> None:
        buffer = open_runs.get(vehicle)
        if not buffer:
            return
        columns = np.empty(len(buffer), dtype=EVENT_DTYPE)
        columns["index"] = [item[0] for item in buffer]
        columns["t"] = [item[2] for item in buffer]
        columns["stop"] = [item[3] for item in buffer]
        event_ids = [item[1] for item in buffer]
        finished.setdefault(vehicle, []).append(
            ColumnarRun(vehicle, event_ids, columns)
        )
        buffer.clear()

    loose: list[MalformedEvent] = []
    for index, record in enumerate(records):
        event = _fast_event(record)
        if event is None:
            findings, event = stop_event_findings(record)
        if event is None:
            vehicle = _identifiable_vehicle(record)
            marker = MalformedEvent(index, vehicle, record, findings)
            if vehicle is None:
                loose.append(marker)
            else:
                _flush(vehicle)
                finished.setdefault(vehicle, []).append(marker)
            continue
        event_id, vehicle, timestamp, stop_length = event
        open_runs.setdefault(vehicle, []).append(
            (index, event_id, timestamp, stop_length)
        )
    for vehicle in open_runs:
        _flush(vehicle)

    items = [item for group in finished.values() for item in group] + loose
    items.sort(key=_first_index)
    return ChunkPlan(size=len(records), items=items)


def _first_index(item) -> int:
    if isinstance(item, MalformedEvent):
        return item.index
    return int(item.columns["index"][0])
