"""Replicated durability: WAL shipping, standby promotion, PITR.

The serving tier's durability story (CRC-framed WAL + atomic snapshots,
PR 5) lives on one state directory — losing the machine loses every
session, trust weight, and RNG stream bit-for-bit irrecoverably.  This
module adds the missing layer:

* **Shipping** — :func:`sync_once` streams every session's WAL frames
  (via :meth:`WriteAheadLog.follow`) plus snapshot/delta sidecars and
  the ``vehicles.idx`` registry to a :class:`LocalReplicaTarget` or, over
  the wire, a :class:`RemoteReplicaTarget` talking JSONL to a
  :class:`ReplicaServer`.  A watermark file on the standby records
  ``(session, applied_seq)`` so catch-up after a standby restart resumes
  from the watermark instead of re-shipping history, and so replication
  lag is observable (:class:`ReplicationMonitor`, surfaced in
  ``/health`` and ``/ready``).

* **Promotion** — :func:`promote` fences the old primary via the
  ``shard.lock`` owner-token machinery (a *live* owner refuses the
  promotion: split-brain), then brings the standby up through the
  ordinary compact-then-replay recovery path so its ``state_digest()``
  is bit-identical to a clean continuation of the primary.

* **Point-in-time recovery** — :func:`backup` copies a state dir into a
  cold archive under a CRC-framed manifest of content hashes;
  :func:`restore` verifies every hash before writing a byte and can
  truncate to ``--upto-seq`` when the WAL still holds that history.

* **Verification** — :func:`fleet_doctor` cross-checks WAL/snapshot
  integrity, seq contiguity, replica watermarks and logical digests,
  and archive manifests end to end; :func:`sweep_state_dir` reclaims
  the orphaned ``.tmp*`` files and stale delta sidecars a SIGKILL mid-
  compaction leaves behind.

Correctness hinges on two orderings.  The shipper reads each session's
**WAL before its snapshot**: a compaction racing the pass then always
ships the covering snapshot in the same pass, so the standby never holds
frames whose prefix is missing.  The target applies **snapshots before
frames**: a standby crash mid-pass leaves a consistent prefix state.
Frame application is idempotent (the target drops frames at or below its
local WAL tip), so re-shipping after a dropped connection is safe.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import os
import time
import zlib
from pathlib import Path

from ..engine.faults import owner_alive, pid_alive
from ..errors import ReproError
from .advisor import REGISTRY_NAME, RegisteredAdvisorService, _vehicle_dirname
from .frontend import parse_listen
from .shard import SHARD_LOCK_NAME, ShardLockError, acquire_shard_lock, release_shard_lock
from .wal import (
    DELTA_NAME,
    SNAPSHOT_NAME,
    WAL_NAME,
    SnapshotStore,
    WalCorruptionError,
    WriteAheadLog,
    _unframe,
)

__all__ = [
    "MANIFEST_NAME",
    "WATERMARKS_NAME",
    "LocalReplicaTarget",
    "RemoteReplicaTarget",
    "ReplicaServer",
    "ReplicationError",
    "ReplicationMonitor",
    "backup",
    "durable_summary",
    "fleet_doctor",
    "promote",
    "read_manifest",
    "registry_files",
    "replicate",
    "restore",
    "service_roots",
    "session_dirs",
    "sweep_state_dir",
    "sync_once",
]

#: Watermark sidecar at the standby root: one CRC-framed JSON line
#: mapping session keys to ``{"applied": seq, "snapshot": seq, "delta":
#: seq}`` (registry keys map to ``{"bytes": n}``).
WATERMARKS_NAME = "replica.watermarks.json"

#: CRC-framed backup manifest, written *last* so a torn backup is a
#: missing manifest, never a silently short archive.
MANIFEST_NAME = "backup.manifest.json"

#: JSONL line limit on the replication channel — a ``frames`` op or a
#: shipped snapshot can far exceed the frontend's 1 MiB event limit.
_REPLICA_LINE_LIMIT = 1 << 26

#: Frames per ``frames`` op when shipping remotely (bounds line length).
_FRAMES_PER_OP = 512


class ReplicationError(ReproError, RuntimeError):
    """Replication/backup invariant violated (gap, divergence, corrupt
    archive, unidentifiable session) — never silently continued past."""


# ---------------------------------------------------------------------------
# State-dir layout helpers


def session_dirs(state_dir: str | Path) -> list[tuple[str, Path]]:
    """Every session directory under ``state_dir`` as ``(key, path)``.

    Keys are POSIX relpaths — ``vehicles/<dirname>`` for a flat service
    dir, ``shard-NN/vehicles/<dirname>`` under a sharded one — and are
    the unit of replication: watermark entries, shipped-frame batches,
    and doctor reports are all addressed by these keys.
    """
    state_dir = Path(state_dir)
    roots: list[tuple[Path, str]] = [(state_dir, "")]
    for shard in sorted(state_dir.glob("shard-*")):
        if shard.is_dir():
            roots.append((shard, shard.name + "/"))
    found: list[tuple[str, Path]] = []
    for root, prefix in roots:
        vehicles = root / "vehicles"
        if not vehicles.is_dir():
            continue
        for vdir in sorted(vehicles.iterdir()):
            if not vdir.is_dir():
                continue
            if any(
                (vdir / name).exists()
                for name in (WAL_NAME, SNAPSHOT_NAME, DELTA_NAME)
            ):
                found.append((prefix + "vehicles/" + vdir.name, vdir))
    return found


def service_roots(state_dir: str | Path) -> list[Path]:
    """The advisor-service roots under ``state_dir``: its ``shard-*``
    subdirectories when sharded, else the directory itself."""
    state_dir = Path(state_dir)
    shards = sorted(path for path in state_dir.glob("shard-*") if path.is_dir())
    return shards or [state_dir]


def registry_files(state_dir: str | Path) -> list[str]:
    """Relpaths of the ``vehicles.idx`` registries present under
    ``state_dir`` (one per service root)."""
    state_dir = Path(state_dir)
    rels = []
    for root in service_roots(state_dir):
        if (root / REGISTRY_NAME).exists():
            rels.append(
                REGISTRY_NAME if root == state_dir else root.name + "/" + REGISTRY_NAME
            )
    return rels


def _publish_text(path: Path, text: str, *, fs=None, op: str = "replica-publish") -> None:
    """Atomically publish ``text`` at ``path`` (tmp + rename), with an
    injection point for fault schedules."""
    path.parent.mkdir(parents=True, exist_ok=True)
    if fs is not None:
        fs.check(op, path)
    tmp = path.with_name(path.name + f".tmp{os.getpid()}")
    with open(tmp, "w") as handle:
        handle.write(text)
        handle.flush()
    os.replace(tmp, path)


def _load_marks(path: Path) -> dict:
    """Watermarks from ``path`` (empty when absent; corrupt raises)."""
    if not path.exists():
        return {}
    payload = _unframe(path.read_text().strip())
    if payload is None or not isinstance(payload.get("marks"), dict):
        raise WalCorruptionError(f"{path}: watermark file failed its CRC check")
    return payload["marks"]


def durable_summary(session_dir: str | Path) -> dict:
    """One session directory's durable state in one pass:
    ``{"tip", "snapshot_seq", "digest"}``.

    ``tip`` is the highest durably-applied seq (merged snapshot or WAL
    tail, whichever is further); ``digest`` hashes the merged snapshot
    state plus the WAL records beyond it, so two directories with the
    same tip *and the same snapshot seq* must agree bit-for-bit.  (Two
    dirs at the same tip but different compaction points legitimately
    differ — the doctor only compares digests when snapshot seqs match.)
    """
    session_dir = Path(session_dir)
    loaded = SnapshotStore(session_dir / SNAPSHOT_NAME).load()
    seq, state = loaded if loaded is not None else (0, None)
    wal = WriteAheadLog(session_dir / WAL_NAME)
    tail = [record for _seq, _line, record in wal.follow(seq)]
    tip = tail[-1]["seq"] if tail else seq
    body = json.dumps(
        {"seq": seq, "state": state, "tail": tail}, sort_keys=True, default=str
    )
    return {
        "tip": tip,
        "snapshot_seq": seq,
        "digest": hashlib.sha256(body.encode()).hexdigest(),
    }


def durable_tip(session_dir: str | Path) -> int:
    """Highest durably-applied seq in one session directory."""
    return durable_summary(session_dir)["tip"]


# ---------------------------------------------------------------------------
# Replica targets


class LocalReplicaTarget:
    """Applies shipped state to a standby directory on this machine.

    Also the server-side engine behind :class:`ReplicaServer` — the
    remote protocol is just these five methods as JSONL ops.  Frame
    application filters to ``seq`` above the standby WAL's local tip,
    making re-ships idempotent; watermarks are published atomically on
    :meth:`commit` (one pass = one commit), never mid-pass.
    """

    def __init__(self, state_dir: str | Path, *, fs=None) -> None:
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.fs = fs
        self._marks = _load_marks(self.state_dir / WATERMARKS_NAME)
        self._tips: dict[str, int] = {}

    def watermarks(self) -> dict:
        return {key: dict(mark) for key, mark in self._marks.items()}

    def put_text(self, rel: str, text: str) -> None:
        _publish_text(self.state_dir / rel, text, fs=self.fs, op="replica-put")

    def remove(self, rel: str) -> None:
        try:
            os.unlink(self.state_dir / rel)
        except FileNotFoundError:
            pass

    def append_frames(self, key: str, lines: list[str]) -> int:
        """Append shipped WAL frames for session ``key``; returns how
        many were new.  Every line is CRC-verified again here (end-to-end
        integrity), unframed, filtered to ``seq`` beyond the local tip,
        and re-appended — framing is deterministic, so the standby's WAL
        bytes equal the primary's.
        """
        wal = WriteAheadLog(self.state_dir / key / WAL_NAME, fs=self.fs)
        tip = self._tips.get(key)
        if tip is None:
            tip = wal.last_seq()
        records = []
        for line in lines:
            record = _unframe(line)
            if record is None:
                raise ReplicationError(
                    f"{key}: shipped frame failed its CRC check in transit"
                )
            seq = record.get("seq")
            if type(seq) is not int:
                raise ReplicationError(f"{key}: shipped frame carries no seq")
            if seq <= tip:
                continue
            if records and seq <= records[-1]["seq"]:
                raise ReplicationError(
                    f"{key}: shipped frames out of order ({records[-1]['seq']} "
                    f"then {seq})"
                )
            records.append(record)
        if records:
            wal.append_many(records)
            tip = records[-1]["seq"]
        self._tips[key] = tip
        return len(records)

    def set_mark(self, key: str, mark: dict) -> None:
        self._marks[key] = dict(mark)

    def commit(self) -> None:
        body = json.dumps(
            {"version": 1, "marks": self._marks}, sort_keys=True, allow_nan=False
        )
        _publish_text(
            self.state_dir / WATERMARKS_NAME,
            f"{zlib.crc32(body.encode()):08x} {body}",
            fs=self.fs,
            op="replica-commit",
        )

    def close(self) -> None:
        self.commit()


class RemoteReplicaTarget:
    """Same interface as :class:`LocalReplicaTarget`, over the wire.

    Mutating ops buffer locally and flush as one JSONL exchange on
    :meth:`commit` — the server applies them in order and publishes its
    watermarks only when the trailing ``commit`` op lands, so a dropped
    connection leaves data-without-watermark (re-shipped harmlessly next
    pass), never watermark-without-data.  ``net`` is an optional
    :class:`~repro.engine.faults.NetFaultInjector` hooked at ``connect``
    and before every ``send``.
    """

    def __init__(self, address: str, *, net=None, timeout: float = 30.0) -> None:
        self.address = parse_listen(address)
        self.net = net
        self.timeout = float(timeout)
        self._ops: list[dict] = []

    def watermarks(self) -> dict:
        replies = self._exchange([{"op": "watermarks"}])
        return replies[0]["marks"]

    def put_text(self, rel: str, text: str) -> None:
        self._ops.append({"op": "put", "rel": rel, "text": text})

    def remove(self, rel: str) -> None:
        self._ops.append({"op": "rm", "rel": rel})

    def append_frames(self, key: str, lines: list[str]) -> int:
        for start in range(0, len(lines), _FRAMES_PER_OP):
            self._ops.append(
                {"op": "frames", "key": key, "lines": lines[start : start + _FRAMES_PER_OP]}
            )
        return len(lines)

    def set_mark(self, key: str, mark: dict) -> None:
        self._ops.append({"op": "mark", "key": key, "mark": dict(mark)})

    def commit(self) -> None:
        ops = self._ops + [{"op": "commit"}]
        self._ops = []
        self._exchange(ops)

    def close(self) -> None:
        if self._ops:
            self.commit()

    def _exchange(self, ops: list[dict]) -> list[dict]:
        if self.net is not None:
            self.net.check("connect")
        return asyncio.run(self._roundtrip(ops))

    async def _roundtrip(self, ops: list[dict]) -> list[dict]:
        if self.address[0] == "unix":
            opener = asyncio.open_unix_connection(
                self.address[1], limit=_REPLICA_LINE_LIMIT
            )
        else:
            opener = asyncio.open_connection(
                self.address[1], self.address[2], limit=_REPLICA_LINE_LIMIT
            )
        reader, writer = await asyncio.wait_for(opener, self.timeout)
        try:
            replies = []
            for op in ops:
                if self.net is not None:
                    self.net.check("send")
                writer.write((json.dumps(op, sort_keys=True) + "\n").encode())
                await asyncio.wait_for(writer.drain(), self.timeout)
                line = await asyncio.wait_for(reader.readline(), self.timeout)
                if not line:
                    raise ConnectionResetError(
                        "replica server closed the connection mid-exchange"
                    )
                reply = json.loads(line)
                if not reply.get("ok"):
                    raise ReplicationError(
                        f"replica server rejected {op.get('op')!r}: {reply.get('error')}"
                    )
                replies.append(reply)
            return replies
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, ConnectionResetError):
                pass


class ReplicaServer:
    """Standby-side network front end: JSONL ops over a unix or TCP
    socket (the repo's established framing), applied through a
    :class:`LocalReplicaTarget`.  Run via ``repro-idling replicate
    --listen`` on the standby machine.
    """

    def __init__(self, state_dir: str | Path, *, fs=None) -> None:
        self.target = LocalReplicaTarget(state_dir, fs=fs)
        self.requests = 0
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None

    def _apply(self, op: dict) -> dict:
        kind = op.get("op")
        if kind == "watermarks":
            return {"ok": True, "marks": self.target.watermarks()}
        if kind == "put":
            self.target.put_text(op["rel"], op["text"])
            return {"ok": True}
        if kind == "rm":
            self.target.remove(op["rel"])
            return {"ok": True}
        if kind == "frames":
            appended = self.target.append_frames(op["key"], op["lines"])
            return {"ok": True, "appended": appended}
        if kind == "mark":
            self.target.set_mark(op["key"], op["mark"])
            return {"ok": True}
        if kind == "commit":
            self.target.commit()
            return {"ok": True}
        return {"ok": False, "error": f"unknown op {kind!r}"}

    async def _handle(self, reader, writer) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    op = json.loads(line)
                except ValueError:
                    reply = {"ok": False, "error": "malformed JSON op"}
                else:
                    if not isinstance(op, dict):
                        reply = {"ok": False, "error": "op must be a JSON object"}
                    else:
                        self.requests += 1
                        try:
                            reply = await asyncio.to_thread(self._apply, op)
                        except (ReplicationError, WalCorruptionError, OSError, KeyError, TypeError) as exc:
                            reply = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
                writer.write((json.dumps(reply, sort_keys=True) + "\n").encode())
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, asyncio.LimitOverrunError, ValueError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, ConnectionResetError):
                pass

    async def serve(self, listen: str, *, ready=None, install_signals: bool = False) -> None:
        import signal

        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        if install_signals:
            for sig in (signal.SIGINT, signal.SIGTERM):
                try:
                    self._loop.add_signal_handler(sig, self._stop.set)
                except (NotImplementedError, RuntimeError):
                    pass
        parsed = parse_listen(listen)
        if parsed[0] == "unix":
            server = await asyncio.start_unix_server(
                self._handle, path=parsed[1], limit=_REPLICA_LINE_LIMIT
            )
        else:
            server = await asyncio.start_server(
                self._handle, host=parsed[1], port=parsed[2], limit=_REPLICA_LINE_LIMIT
            )
        async with server:
            if ready is not None:
                ready.set()
            await self._stop.wait()
        self.target.commit()

    def request_stop(self) -> None:
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None:
            loop.call_soon_threadsafe(stop.set)


# ---------------------------------------------------------------------------
# The shipper


def sync_once(primary_dir: str | Path, target, *, fs=None) -> dict:
    """One replication pass: ship everything the target hasn't seen.

    Read order per session is WAL **then** snapshot — if a compaction
    lands between the two reads, the snapshot we then read covers every
    frame the reset just dropped, so this same pass ships it and the
    standby never sees a history gap.  (The converse order could read a
    pre-compaction snapshot and a post-compaction WAL whose first frame
    is far beyond it.)  A gap that does appear — the primary compacted
    *and* its snapshot is older than the WAL start, i.e. history the
    standby never received is gone — raises :class:`ReplicationError`
    rather than shipping a stream recovery would silently mis-apply.
    """
    primary = Path(primary_dir)
    marks = target.watermarks()
    stats = {"vehicles": 0, "frames": 0, "snapshots": 0, "deltas": 0, "registries": 0}

    for rel in registry_files(primary):
        data = (primary / rel).read_text()
        mark = marks.get(rel) or {}
        if mark.get("bytes") != len(data):
            target.put_text(rel, data)
            target.set_mark(rel, {"bytes": len(data)})
            stats["registries"] += 1

    for key, vdir in session_dirs(primary):
        stats["vehicles"] += 1
        mark = marks.get(key) or {}
        applied = int(mark.get("applied", 0))
        snap_mark = int(mark.get("snapshot", 0))
        delta_mark = int(mark.get("delta", 0))

        wal = WriteAheadLog(vdir / WAL_NAME, fs=fs)
        frames = list(wal.follow(applied))

        snap_path = vdir / SNAPSHOT_NAME
        snap_text = snap_path.read_text() if snap_path.exists() else None
        snap_seq = 0
        if snap_text is not None:
            payload = _unframe(snap_text.strip())
            if payload is None or "seq" not in payload:
                raise WalCorruptionError(
                    f"{snap_path}: snapshot failed its CRC check"
                )
            snap_seq = int(payload["seq"])
        merged_seq = snap_seq

        delta_path = vdir / DELTA_NAME
        delta_text = delta_path.read_text() if delta_path.exists() else None
        delta_seq = 0
        if delta_text is not None:
            payload = _unframe(delta_text.strip())
            if payload is None or "base_seq" not in payload or "seq" not in payload:
                raise WalCorruptionError(
                    f"{delta_path}: snapshot delta failed its CRC check"
                )
            if int(payload["base_seq"]) == snap_seq:
                delta_seq = int(payload["seq"])
                merged_seq = max(merged_seq, delta_seq)
            else:
                delta_text = None  # stale — extends a base that moved on

        if frames and frames[0][0] > applied + 1 and merged_seq < frames[0][0] - 1:
            raise ReplicationError(
                f"{key}: primary WAL starts at seq {frames[0][0]} but the standby "
                f"applied only {applied} and no snapshot covers the gap — "
                f"history needed for catch-up is gone"
            )

        if snap_text is not None and snap_seq > snap_mark:
            target.put_text(key + "/" + SNAPSHOT_NAME, snap_text)
            stats["snapshots"] += 1
        if delta_text is not None:
            if delta_seq > delta_mark:
                target.put_text(key + "/" + DELTA_NAME, delta_text)
                stats["deltas"] += 1
        elif delta_mark:
            target.remove(key + "/" + DELTA_NAME)

        if frames:
            stats["frames"] += target.append_frames(
                key, [line for _seq, line, _record in frames]
            )

        tip = max(applied, merged_seq, frames[-1][0] if frames else 0)
        target.set_mark(
            key,
            {
                "applied": tip,
                "snapshot": max(snap_mark, snap_seq),
                "delta": delta_seq if delta_text is not None else 0,
            },
        )

    target.commit()
    return stats


def replicate(
    primary_dir: str | Path,
    target,
    *,
    interval: float = 0.2,
    passes: int | None = None,
    stop=None,
    max_errors: int | None = None,
    fs=None,
) -> dict:
    """Run :func:`sync_once` in a loop — the standby's steady state.

    Channel drops (``ConnectionError``) are counted and retried: every
    op is idempotent, so a half-applied pass just re-ships.  ``stop`` is
    an optional :class:`threading.Event`-alike; ``passes`` bounds the
    loop for tests and one-shot catch-ups; ``max_errors`` turns a
    persistently dead channel into a :class:`ReplicationError`.
    """
    totals = {
        "passes": 0,
        "frames": 0,
        "snapshots": 0,
        "deltas": 0,
        "registries": 0,
        "channel_errors": 0,
    }
    while True:
        if stop is not None and stop.is_set():
            break
        try:
            stats = sync_once(primary_dir, target, fs=fs)
        except ConnectionError as exc:
            totals["channel_errors"] += 1
            if max_errors is not None and totals["channel_errors"] > max_errors:
                raise ReplicationError(
                    f"replication channel failed {totals['channel_errors']} "
                    f"times; last error: {exc}"
                ) from exc
        else:
            totals["passes"] += 1
            for field in ("frames", "snapshots", "deltas", "registries"):
                totals[field] += stats[field]
            if passes is not None and totals["passes"] >= passes:
                break
        if stop is not None:
            if stop.wait(interval):
                break
        elif interval:
            time.sleep(interval)
    return totals


# ---------------------------------------------------------------------------
# Promotion


def _identify_vehicle(session_dir: Path) -> str | None:
    """The vehicle id a session directory belongs to, from its snapshot
    (``state["vehicle"]``) — the fallback when the registry is silent,
    since the hashed directory name is not invertible."""
    loaded = SnapshotStore(session_dir / SNAPSHOT_NAME).load()
    if loaded is None:
        return None
    vehicle = loaded[1].get("vehicle")
    return vehicle if isinstance(vehicle, str) else None


def promote(
    state_dir: str | Path,
    config,
    *,
    fence: str | Path | None = None,
    policy: str = "repair",
    fsync: bool = False,
    fs=None,
) -> dict:
    """Promote a standby (or restored) state dir to primary.

    ``fence`` names the *old* primary's state dir: any ``shard.lock``
    there with a live owner (pid + start-time token, pid-reuse-proof)
    refuses the promotion — that is a split-brain attempt, not a
    failover.  Dead owners are stale locks and promotion proceeds.

    The promotion itself is the ordinary recovery path: acquire each
    service root's lock, rebuild every session from its registry entry
    (falling back to the snapshot's own vehicle id), and close — the
    compact-then-replay step.  Because recovery is bit-identical, the
    returned per-vehicle ``state_digest()`` values equal what a clean
    continuation of the primary would have had.  A session directory
    that *cannot* be identified raises rather than silently dropping a
    vehicle's history.
    """
    state_dir = Path(state_dir)
    if fence is not None:
        fence = Path(fence)
        for lock in sorted(fence.rglob(SHARD_LOCK_NAME)):
            try:
                record = lock.read_text()
            except OSError:
                continue
            if owner_alive(record):
                raise ShardLockError(
                    f"refusing to promote {state_dir}: primary {fence} is still "
                    f"owned by a live process ({record.strip()!r}) — split-brain "
                    f"attempt fenced"
                )

    digests: dict[str, str] = {}
    costs: dict[str, float] = {}
    roots: list[str] = []
    for root in service_roots(state_dir):
        roots.append(str(root))
        lock = acquire_shard_lock(root)
        try:
            service = RegisteredAdvisorService(
                root, config, policy=policy, fsync=fsync, fs=fs, recover=True
            )
            try:
                known_dirs = {
                    _vehicle_dirname(vid) for vid in service.sessions
                }
                for _key, vdir in session_dirs(root):
                    if vdir.name in known_dirs:
                        continue
                    vehicle = _identify_vehicle(vdir)
                    if vehicle is None:
                        raise ReplicationError(
                            f"{vdir}: session directory has no registry entry "
                            f"and no snapshot naming its vehicle — its RNG "
                            f"stream cannot be rebuilt"
                        )
                    if _vehicle_dirname(vehicle) != vdir.name:
                        raise ReplicationError(
                            f"{vdir}: snapshot claims vehicle {vehicle!r} but "
                            f"that vehicle maps to a different directory — "
                            f"misplaced session state"
                        )
                    service.session(vehicle)
                    known_dirs.add(vdir.name)
                snapshot = service.health_snapshot()
                for vid, info in snapshot["vehicles"].items():
                    digests[vid] = info["digest"]
                    costs[vid] = info["total_cost"]
            finally:
                service.close()
        finally:
            release_shard_lock(lock)

    # This dir is a primary now; a leftover standby watermark file would
    # only mislead a future doctor run.
    try:
        os.unlink(state_dir / WATERMARKS_NAME)
    except FileNotFoundError:
        pass

    ordered = sorted(digests)
    return {
        "fleet_cost": sum(costs[vid] for vid in ordered),
        "digests": {vid: digests[vid] for vid in ordered},
        "vehicles": ordered,
        "roots": roots,
    }


# ---------------------------------------------------------------------------
# Cold backup / point-in-time restore


def backup(state_dir: str | Path, archive_dir: str | Path, *, fs=None) -> dict:
    """Copy a state dir into a cold archive under a content manifest.

    Files are copied first; per-vehicle tips/digests are then computed
    **from the archive copies** (a live primary may have moved on — the
    manifest must describe the archive, not the source); the CRC-framed
    manifest is published last, so a backup interrupted at any point is
    a missing/unreadable manifest — detected, never trusted.
    """
    state_dir = Path(state_dir)
    archive = Path(archive_dir)
    manifest_path = archive / MANIFEST_NAME
    if manifest_path.exists():
        raise ReplicationError(
            f"{archive}: already holds a backup manifest — refusing to overwrite"
        )
    archive.mkdir(parents=True, exist_ok=True)

    rels = list(registry_files(state_dir))
    if (state_dir / WATERMARKS_NAME).exists():
        rels.append(WATERMARKS_NAME)
    for key, vdir in session_dirs(state_dir):
        for name in (WAL_NAME, SNAPSHOT_NAME, DELTA_NAME):
            if (vdir / name).exists():
                rels.append(key + "/" + name)

    files = {}
    for rel in rels:
        data = (state_dir / rel).read_bytes()
        dest = archive / rel
        dest.parent.mkdir(parents=True, exist_ok=True)
        if fs is not None:
            fs.check("backup-write", dest)
        tmp = dest.with_name(dest.name + f".tmp{os.getpid()}")
        tmp.write_bytes(data)
        os.replace(tmp, dest)
        files[rel] = {
            "sha256": hashlib.sha256(data).hexdigest(),
            "bytes": len(data),
        }

    vehicles = {}
    for key, vdir in session_dirs(archive):
        summary = durable_summary(vdir)
        entry = {"tip": summary["tip"], "digest": summary["digest"]}
        vehicle = _identify_vehicle(vdir)
        if vehicle is not None:
            entry["vehicle"] = vehicle
        vehicles[key] = entry

    manifest = {"version": 1, "files": files, "vehicles": vehicles}
    body = json.dumps(manifest, sort_keys=True, allow_nan=False)
    if fs is not None:
        fs.check("backup-write", manifest_path)
    _publish_text(
        manifest_path, f"{zlib.crc32(body.encode()):08x} {body}", fs=None
    )
    return manifest


def read_manifest(archive_dir: str | Path) -> dict:
    """The archive's manifest; missing or CRC-bad raises
    :class:`ReplicationError` (a torn backup looks exactly like this)."""
    path = Path(archive_dir) / MANIFEST_NAME
    if not path.exists():
        raise ReplicationError(
            f"corrupt backup: {path} is missing (backup incomplete or torn)"
        )
    payload = _unframe(path.read_text().strip())
    if payload is None or not isinstance(payload.get("files"), dict):
        raise ReplicationError(f"corrupt backup: {path} failed its CRC check")
    return payload


def restore(
    archive_dir: str | Path,
    state_dir: str | Path,
    *,
    upto_seq: int | None = None,
    fs=None,
) -> dict:
    """Restore a cold archive into an empty state dir.

    Every archived file's hash is verified against the manifest *before
    anything is written* — a corrupt backup aborts with the target
    untouched.  With ``upto_seq``, history past that point is dropped:
    a delta beyond it is removed, the WAL is truncated to frames at or
    below it, and a full snapshot already past it (compaction consumed
    the requested history) refuses the restore rather than producing a
    state newer than asked for.
    """
    archive = Path(archive_dir)
    state_dir = Path(state_dir)
    manifest = read_manifest(archive)
    state_dir.mkdir(parents=True, exist_ok=True)
    if session_dirs(state_dir):
        raise ReplicationError(
            f"{state_dir}: target already holds session state — refusing to "
            f"restore over it"
        )

    for rel, meta in sorted(manifest["files"].items()):
        src = archive / rel
        if not src.exists():
            raise ReplicationError(
                f"corrupt backup: {rel} is named in the manifest but missing"
            )
        data = src.read_bytes()
        if len(data) != meta["bytes"] or hashlib.sha256(data).hexdigest() != meta["sha256"]:
            raise ReplicationError(
                f"corrupt backup: {rel} does not match its manifest hash"
            )

    report = {"files": 0, "truncated": {}, "upto_seq": upto_seq}
    for rel in sorted(manifest["files"]):
        if rel == WATERMARKS_NAME:
            continue  # the restored dir is a primary, not a standby
        data = (archive / rel).read_bytes()
        dest = state_dir / rel
        dest.parent.mkdir(parents=True, exist_ok=True)
        if fs is not None:
            fs.check("restore-write", dest)
        tmp = dest.with_name(dest.name + f".tmp{os.getpid()}")
        tmp.write_bytes(data)
        os.replace(tmp, dest)
        report["files"] += 1

    if upto_seq is not None:
        for key, vdir in session_dirs(state_dir):
            snap_path = vdir / SNAPSHOT_NAME
            full_seq = 0
            if snap_path.exists():
                payload = _unframe(snap_path.read_text().strip())
                if payload is None or "seq" not in payload:
                    raise ReplicationError(
                        f"corrupt backup: {key} snapshot failed its CRC check"
                    )
                full_seq = int(payload["seq"])
            if full_seq > upto_seq:
                raise ReplicationError(
                    f"{key}: full snapshot is at seq {full_seq} > --upto-seq "
                    f"{upto_seq}; compaction already consumed the history that "
                    f"restore point needs"
                )
            delta_path = vdir / DELTA_NAME
            if delta_path.exists():
                payload = _unframe(delta_path.read_text().strip())
                if payload is None or "base_seq" not in payload or "seq" not in payload:
                    raise ReplicationError(
                        f"corrupt backup: {key} delta failed its CRC check"
                    )
                if int(payload["base_seq"]) == full_seq and int(payload["seq"]) > upto_seq:
                    delta_path.unlink()
            wal = WriteAheadLog(vdir / WAL_NAME, fs=fs)
            kept, dropped = [], 0
            for seq, line, _record in wal.follow(0):
                if seq <= upto_seq:
                    kept.append(line)
                else:
                    dropped += 1
            if dropped:
                if fs is not None:
                    fs.check("restore-write", wal.path)
                tmp = wal.path.with_name(wal.path.name + f".tmp{os.getpid()}")
                with open(tmp, "w") as handle:
                    handle.write("".join(line + "\n" for line in kept))
                    handle.flush()
                os.replace(tmp, wal.path)
                report["truncated"][key] = dropped
    return report


# ---------------------------------------------------------------------------
# End-to-end verification


def fleet_doctor(
    state_dir: str | Path,
    *,
    replica_dir: str | Path | None = None,
    archive_dir: str | Path | None = None,
    max_lag: int | None = None,
    verify_restore: bool = False,
) -> dict:
    """Cross-check WAL/snapshot/replica/archive consistency end to end.

    ``problems`` are states recovery would get *wrong* or data that is
    already lost (corrupt frames, seq gaps, a replica ahead of its
    primary, divergent digests at the same compaction point, a corrupt
    backup); ``warnings`` are benign-but-notable (torn tails, stale
    deltas, unregistered sessions).  ``ok`` is ``problems == []``.

    With ``replica_dir``, per-session lag (primary durable tip minus
    replica durable tip) is reported, watermarks are checked against
    what is actually on the replica's disk, and — when both sides sit at
    the same tip *and* the same snapshot seq — their durable digests
    must match bit-for-bit.  With ``archive_dir``, every archived file
    is re-hashed against the manifest; ``verify_restore`` additionally
    checks ``state_dir`` byte-for-byte against the manifest (meaningful
    right after a *full* restore, before promotion compacts).
    """
    state_dir = Path(state_dir)
    problems: list[str] = []
    warnings: list[str] = []
    vehicles: dict[str, dict] = {}

    registered: set[str] = set()
    for rel in registry_files(state_dir):
        lines = (state_dir / rel).read_text().splitlines()
        for index, line in enumerate(lines):
            if not line:
                continue
            try:
                vehicle = json.loads(line)
            except ValueError:
                if index == len(lines) - 1:
                    warnings.append(f"{rel}: torn trailing registry line (in-flight append)")
                else:
                    problems.append(f"{rel}: registry-corrupt: bad line {index + 1}")
                continue
            if isinstance(vehicle, str):
                registered.add(vehicle)
    registered_dirs = {_vehicle_dirname(vid) for vid in registered}

    for key, vdir in session_dirs(state_dir):
        info: dict = {"tip": 0, "snapshot_seq": 0, "digest": None}
        vehicles[key] = info
        snap = SnapshotStore(vdir / SNAPSHOT_NAME)
        try:
            loaded = snap.load()
        except WalCorruptionError as exc:
            problems.append(f"{key}: snapshot-corrupt: {exc}")
            continue
        merged_seq, state = loaded if loaded is not None else (0, None)

        wal = WriteAheadLog(vdir / WAL_NAME)
        try:
            frames = list(wal.follow(0))
        except WalCorruptionError as exc:
            problems.append(f"{key}: wal-corrupt: {exc}")
            continue
        if wal.tail_torn:
            warnings.append(f"{key}: wal-tail-torn (final frame dropped — in-flight append)")

        expect = merged_seq
        for seq, _line, _record in frames:
            if seq <= merged_seq:
                continue
            if seq != expect + 1:
                problems.append(
                    f"{key}: wal-gap: seq jumps {expect} -> {seq} beyond "
                    f"snapshot seq {merged_seq} — recovery would silently skip "
                    f"events"
                )
                break
            expect = seq

        full_seq = 0
        if snap.path.exists():
            payload = _unframe(snap.path.read_text().strip())
            if payload is not None and "seq" in payload:
                full_seq = int(payload["seq"])
        if snap.delta_path.exists():
            payload = _unframe(snap.delta_path.read_text().strip())
            if payload is not None and int(payload.get("base_seq", -1)) != full_seq:
                warnings.append(
                    f"{key}: stale delta (base_seq {payload.get('base_seq')} != "
                    f"snapshot seq {full_seq}) — ignored on load; "
                    f"`cache doctor --state-dir` reclaims it"
                )

        vehicle = state.get("vehicle") if isinstance(state, dict) else None
        if vdir.name not in registered_dirs and not isinstance(vehicle, str):
            warnings.append(
                f"{key}: unidentified session (no registry entry, no snapshot) — "
                f"promote would refuse this directory"
            )

        info.update(durable_summary(vdir))

    replication = None
    if replica_dir is not None:
        replica_dir = Path(replica_dir)
        marks: dict = {}
        try:
            marks = _load_marks(replica_dir / WATERMARKS_NAME)
        except WalCorruptionError as exc:
            problems.append(f"replica: watermark-corrupt: {exc}")
        lag_by_key: dict[str, int] = {}
        total_lag = 0
        max_lag_seen = 0
        lagging = 0
        for key, vdir in session_dirs(state_dir):
            info = vehicles[key]
            if info["digest"] is None:
                continue  # primary side already flagged corrupt
            rdir = replica_dir / key
            r_summary = None
            if rdir.is_dir():
                try:
                    r_summary = durable_summary(rdir)
                except WalCorruptionError as exc:
                    problems.append(f"replica {key}: {exc}")
                    continue
            r_tip = r_summary["tip"] if r_summary else 0
            mark = marks.get(key) or {}
            applied = int(mark.get("applied", 0)) if isinstance(mark, dict) else 0
            if applied > r_tip:
                problems.append(
                    f"replica {key}: watermark-ahead: watermark claims applied "
                    f"seq {applied} but replica state only reaches {r_tip}"
                )
            if r_tip > info["tip"]:
                problems.append(
                    f"replica {key}: replica-ahead: replica at seq {r_tip} but "
                    f"primary at {info['tip']} — wrong pairing or primary rollback"
                )
            lag = max(0, info["tip"] - r_tip)
            lag_by_key[key] = lag
            total_lag += lag
            max_lag_seen = max(max_lag_seen, lag)
            lagging += 1 if lag else 0
            if (
                r_summary is not None
                and lag == 0
                and r_tip == info["tip"]
                and r_summary["snapshot_seq"] == info["snapshot_seq"]
                and r_summary["digest"] != info["digest"]
            ):
                problems.append(
                    f"replica {key}: replica-diverged: same durable tip "
                    f"{info['tip']} and snapshot seq but different logical digest"
                )
        replication = {
            "replica": str(replica_dir),
            "max_lag_events": max_lag_seen,
            "total_lag_events": total_lag,
            "vehicles_lagging": lagging,
            "lag": lag_by_key,
        }
        if max_lag is not None and max_lag_seen > max_lag:
            problems.append(
                f"replication-lag: max lag {max_lag_seen} events exceeds the "
                f"configured bound {max_lag}"
            )

    archive = None
    if archive_dir is not None:
        archive_dir = Path(archive_dir)
        manifest = None
        try:
            manifest = read_manifest(archive_dir)
        except ReplicationError as exc:
            problems.append(f"backup-corrupt: {exc}")
        if manifest is not None:
            archive = {"files": len(manifest["files"]), "verified": 0}
            for rel, meta in sorted(manifest["files"].items()):
                src = archive_dir / rel
                if not src.exists():
                    problems.append(
                        f"backup-corrupt: {rel} is named in the manifest but missing"
                    )
                    continue
                data = src.read_bytes()
                if (
                    len(data) != meta["bytes"]
                    or hashlib.sha256(data).hexdigest() != meta["sha256"]
                ):
                    problems.append(
                        f"backup-corrupt: {rel} does not match its manifest hash"
                    )
                    continue
                archive["verified"] += 1
            if verify_restore:
                for rel, meta in sorted(manifest["files"].items()):
                    if rel == WATERMARKS_NAME:
                        continue
                    dest = state_dir / rel
                    if not dest.exists():
                        problems.append(
                            f"restore-incomplete: {rel} is missing from {state_dir}"
                        )
                        continue
                    data = dest.read_bytes()
                    if hashlib.sha256(data).hexdigest() != meta["sha256"]:
                        problems.append(
                            f"restore-diverged: {rel} differs from the backup copy"
                        )

    return {
        "ok": not problems,
        "problems": problems,
        "warnings": warnings,
        "vehicles": vehicles,
        "replication": replication,
        "archive": archive,
    }


class ReplicationMonitor:
    """Live replication-lag gauge for a primary's health/readiness.

    Wire into ``AdvisorService(..., replication=monitor)`` (or the
    sharded service): ``health_snapshot()`` then carries a
    ``replication`` section and ``/ready`` flips to 503 with a machine-
    readable reason while any session lags past ``max_lag`` events.
    Reads the primary's durable tips and the standby's watermark file —
    both crash-safe artifacts — so it is accurate across restarts of
    either side.
    """

    def __init__(
        self, primary_dir: str | Path, replica_dir: str | Path, *, max_lag: int = 0
    ) -> None:
        self.primary_dir = Path(primary_dir)
        self.replica_dir = Path(replica_dir)
        self.max_lag = int(max_lag)

    def snapshot(self) -> dict:
        marks: dict = {}
        corrupt = False
        try:
            marks = _load_marks(self.replica_dir / WATERMARKS_NAME)
        except WalCorruptionError:
            corrupt = True
        per_vehicle: dict[str, dict] = {}
        total_lag = 0
        max_lag_seen = 0
        lagging = 0
        for key, vdir in session_dirs(self.primary_dir):
            try:
                tip = durable_summary(vdir)["tip"]
            except WalCorruptionError:
                continue  # the doctor reports corruption; lag is moot here
            mark = marks.get(key) or {}
            applied = int(mark.get("applied", 0)) if isinstance(mark, dict) else 0
            lag = max(0, tip - applied)
            per_vehicle[key] = {"tip": tip, "applied": applied, "lag": lag}
            total_lag += lag
            max_lag_seen = max(max_lag_seen, lag)
            lagging += 1 if lag else 0
        return {
            "replica": str(self.replica_dir),
            "max_lag_bound": self.max_lag,
            "max_lag_events": max_lag_seen,
            "total_lag_events": total_lag,
            "vehicles_lagging": lagging,
            "vehicles": per_vehicle,
            "within_bound": (not corrupt) and max_lag_seen <= self.max_lag,
            "watermarks_corrupt": corrupt,
        }


# ---------------------------------------------------------------------------
# State-dir hygiene (`cache doctor --state-dir`)


def sweep_state_dir(state_dir: str | Path) -> list[str]:
    """Reclaim debris a SIGKILL mid-compaction leaves in a state dir.

    Two families: ``*.tmp<pid>`` staging files whose writer is dead (a
    live writer's temps are left alone — it is about to rename them),
    and delta sidecars whose base snapshot is gone or has moved past
    their ``base_seq`` (loads already ignore them; this reclaims the
    bytes).  Returns the removed paths relative to ``state_dir``.
    """
    state_dir = Path(state_dir)
    removed: list[str] = []
    for path in sorted(state_dir.rglob("*.tmp*")):
        if not path.is_file():
            continue
        suffix = path.name[path.name.rfind(".tmp") + 4 :]
        if suffix.isdigit() and pid_alive(int(suffix)):
            continue
        try:
            path.unlink()
        except FileNotFoundError:
            continue
        removed.append(str(path.relative_to(state_dir)))
    for delta_path in sorted(state_dir.rglob(DELTA_NAME)):
        if not delta_path.is_file():
            continue
        base = delta_path.with_name(SNAPSHOT_NAME)
        drop = False
        if not base.exists():
            drop = True
        else:
            payload = _unframe(delta_path.read_text().strip())
            if payload is None or "base_seq" not in payload:
                drop = True
            else:
                base_payload = _unframe(base.read_text().strip())
                if (
                    base_payload is not None
                    and "seq" in base_payload
                    and int(payload["base_seq"]) != int(base_payload["seq"])
                ):
                    drop = True
                # A corrupt *base* is the doctor's problem, not sweepable
                # debris — removing the delta there would destroy evidence.
        if drop:
            try:
                delta_path.unlink()
            except FileNotFoundError:
                continue
            removed.append(str(delta_path.relative_to(state_dir)))
    return removed
