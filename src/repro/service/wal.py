"""Durable per-session state: CRC-framed write-ahead log + snapshots.

The advisor service promises that a SIGKILL at *any* instant loses no
applied work: restarting from the same state directory restores every
session bit-identically.  Two files per session make that true:

``wal.jsonl``
    An append-only log of applied stop events.  Each line is framed as
    ``<crc32-hex8> <json>`` where the CRC covers the JSON bytes, so a
    torn tail (the process died mid-write) is *detected*, not parsed as
    garbage: replay stops at the first bad frame.  Every append is
    flushed (surviving a process kill); ``fsync=True`` additionally
    syncs to disk (surviving an OS crash).
``snapshot.json``
    A periodic compaction point: the full serialized session state
    after ``seq`` applied events, written to a temp file and atomically
    published with ``os.replace`` — readers see either the old snapshot
    or the new one, never a partial write.

Recovery = load the snapshot (if any), then replay WAL records with
``seq`` greater than the snapshot's.  The ``seq`` filter is what makes
compaction crash-safe: the snapshot is published *before* the WAL is
reset, so dying between the two steps merely leaves already-compacted
records in the log, and replay skips them.
"""

from __future__ import annotations

import json
import math
import os
import zlib
from pathlib import Path

from ..errors import ReproError

__all__ = ["WriteAheadLog", "SnapshotStore", "WalCorruptionError"]

#: Canonical per-session durable file names (the replication layer and
#: state-dir doctor address sessions by these).
WAL_NAME = "wal.jsonl"
SNAPSHOT_NAME = "snapshot.json"
DELTA_NAME = SNAPSHOT_NAME + ".delta"


def _fsync_dir(path: Path) -> None:
    """Fsync a directory so a just-created or just-renamed entry survives
    an OS crash — ``fsync`` of the file alone durably stores its *bytes*
    but not the directory entry naming them.  Best-effort: directories
    are not fsyncable on every platform/filesystem, and losing the
    belt-and-braces sync there is not an error.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-specific
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-specific
        pass
    finally:
        os.close(fd)


class WalCorruptionError(ReproError, RuntimeError):
    """A WAL or snapshot frame failed its integrity check *before* the
    final record — real corruption, not a torn tail."""


def _event_body(payload: dict) -> str | None:
    """Hand-rolled serializer for the hot stop-event frame shape.

    Byte-identical to ``json.dumps(payload, sort_keys=True)`` for a
    plain ``{"id": str, "seq": int, "t": float, "y": float}`` record
    (Python's ``repr`` of a finite float IS the json float form, and
    the string field still goes through ``json.dumps`` for escaping);
    returns None for any other shape so the general encoder handles it.
    ``test_service_wal.py`` pins the byte identity.
    """
    if len(payload) != 4:
        return None
    try:
        event_id = payload["id"]
        seq = payload["seq"]
        timestamp = payload["t"]
        stop_length = payload["y"]
    except KeyError:
        return None
    if (
        type(event_id) is not str
        or type(seq) is not int
        or type(timestamp) is not float
        or type(stop_length) is not float
        or not math.isfinite(timestamp)
        or not math.isfinite(stop_length)
    ):
        return None
    return (
        f'{{"id": {json.dumps(event_id)}, "seq": {seq}, '
        f'"t": {timestamp!r}, "y": {stop_length!r}}}'
    )


def _frame(payload: dict) -> str:
    body = _event_body(payload)
    if body is None:
        body = json.dumps(payload, sort_keys=True, allow_nan=False)
    return f"{zlib.crc32(body.encode()):08x} {body}"


def _unframe(line: str) -> dict | None:
    """Decode one WAL line; None means the frame is invalid."""
    if len(line) < 10 or line[8] != " ":
        return None
    crc_text, body = line[:8], line[9:]
    try:
        crc = int(crc_text, 16)
    except ValueError:
        return None
    if zlib.crc32(body.encode()) != crc:
        return None
    try:
        payload = json.loads(body)
    except json.JSONDecodeError:
        return None
    return payload if isinstance(payload, dict) else None


class WriteAheadLog:
    """Append-only CRC-framed JSONL log for one advisor session.

    ``fs`` is an optional fault-injection shim (``check(op, path)``)
    consulted before each physical operation; a scheduled ``OSError``
    from it is indistinguishable from the real disk failing
    (:class:`repro.engine.faults.FsFaultInjector`).
    """

    def __init__(self, path: str | Path, *, fsync: bool = False, fs=None) -> None:
        self.path = Path(path)
        self.fsync = bool(fsync)
        self.fs = fs
        #: True when the last :meth:`replay` dropped a torn final frame;
        #: recovery uses it to force a compaction so the torn bytes never
        #: survive into the next append.
        self.tail_torn = False
        # The directory entry for a brand-new log file is only durable
        # once its parent directory is synced; done lazily on the first
        # fsync'd append rather than here (creation may predate fsync).
        self._dir_synced = False
        self.path.parent.mkdir(parents=True, exist_ok=True)

    def _check(self, op: str) -> None:
        if self.fs is not None:
            self.fs.check(op, self.path)

    def probe(self) -> None:
        """One cheap disk-health probe: open-append + flush (+ fsync when
        configured), raising ``OSError`` while the disk is still sick.

        What the ``DURABILITY_SUSPENDED`` recovery path calls on its
        backoff schedule before attempting to replay the buffered tail.
        """
        self._check("wal-probe")
        with open(self.path, "ab") as handle:
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())

    def append(self, record: dict) -> None:
        """Durably append one record (flush always; fsync on request).

        A previous crash can leave the file without a trailing newline.
        Appending blindly would merge the new frame into that tail, so
        the tail is healed first: a complete frame that lost only its
        newline gets one (the record is preserved); a partial frame is
        truncated away (it was never durable).
        """
        self._check("wal-append")
        with open(self.path, "a+b") as handle:
            size = handle.seek(0, os.SEEK_END)
            if size:
                handle.seek(size - 1)
                if handle.read(1) != b"\n":
                    handle.seek(0)
                    data = handle.read()
                    cut = data.rfind(b"\n") + 1
                    tail = data[cut:].decode(errors="replace")
                    if _unframe(tail) is not None:
                        handle.write(b"\n")
                    else:
                        handle.truncate(cut)
            handle.write((_frame(record) + "\n").encode())
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
                self._sync_dir_once()

    def _sync_dir_once(self) -> None:
        """Make the log's directory entry durable, once per instance.

        Only reached under ``fsync=True``: without it nothing here
        claims OS-crash durability anyway."""
        if not self._dir_synced:
            _fsync_dir(self.path.parent)
            self._dir_synced = True

    def append_many(self, records: list[dict]) -> None:
        """Group-commit: durably append a batch with ONE write + flush
        (+ at most one fsync), instead of one syscall round-trip per
        record.

        The frames are concatenated into a single buffer before the
        write, so a kill mid-commit tears the file at some byte offset
        of that buffer: replay then recovers exactly the complete
        leading frames — a *prefix* of the batch, never a frame from the
        middle without its predecessors.  (POSIX does not promise a
        single ``write`` is atomic, but it does append sequentially;
        the prefix property is all recovery needs, and the torn-anywhere
        Hypothesis property in ``tests/test_service_wal.py`` pins it.)
        """
        if not records:
            return
        self._check("wal-append")
        with open(self.path, "a+b") as handle:
            size = handle.seek(0, os.SEEK_END)
            if size:
                handle.seek(size - 1)
                if handle.read(1) != b"\n":
                    handle.seek(0)
                    data = handle.read()
                    cut = data.rfind(b"\n") + 1
                    tail = data[cut:].decode(errors="replace")
                    if _unframe(tail) is not None:
                        handle.write(b"\n")
                    else:
                        handle.truncate(cut)
            buffer = "".join(_frame(record) + "\n" for record in records)
            handle.write(buffer.encode())
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
                self._sync_dir_once()

    def replay(self) -> list[dict]:
        """All intact records, in order.

        The final frame may be torn by a kill mid-append and is then
        dropped (and :attr:`tail_torn` set, so recovery compacts the
        torn bytes away); a bad frame *followed by intact ones* means
        the file was corrupted at rest and raises
        :class:`WalCorruptionError`.
        """
        self.tail_torn = False
        if not self.path.exists():
            return []
        lines = self.path.read_text().splitlines()
        records: list[dict] = []
        for index, line in enumerate(lines):
            if not line:
                continue
            record = _unframe(line)
            if record is None:
                if index == len(lines) - 1:
                    self.tail_torn = True
                    break
                raise WalCorruptionError(
                    f"{self.path}: bad frame at line {index + 1} "
                    f"(not the final line — corruption, not a torn tail)"
                )
            records.append(record)
        return records

    def follow(self, from_seq: int = 0):
        """Tail-follower for replication: yield ``(seq, line, record)``
        for every intact frame whose ``seq`` is greater than ``from_seq``.

        ``line`` is the raw CRC-framed text exactly as it sits in the
        log, so a shipper can append it to a standby's WAL byte-for-byte
        (re-framing would be byte-identical anyway — framing is
        deterministic — but shipping the verified original is cheaper
        and keeps the CRC end-to-end).  Torn-tail discipline is exactly
        :meth:`replay`'s: a bad *final* frame is dropped silently (and
        :attr:`tail_torn` set) because the primary may be mid-append
        right now; a bad frame followed by intact ones raises
        :class:`WalCorruptionError`.  Records without an integer ``seq``
        are never shipped (none are written by the session today).
        """
        self.tail_torn = False
        if not self.path.exists():
            return
        lines = self.path.read_text().splitlines()
        for index, line in enumerate(lines):
            if not line:
                continue
            record = _unframe(line)
            if record is None:
                if index == len(lines) - 1:
                    self.tail_torn = True
                    return
                raise WalCorruptionError(
                    f"{self.path}: bad frame at line {index + 1} "
                    f"(not the final line — corruption, not a torn tail)"
                )
            seq = record.get("seq")
            if type(seq) is int and seq > from_seq:
                yield seq, line, record

    def last_seq(self) -> int:
        """Highest intact ``seq`` in the log (0 when empty/missing)."""
        last = 0
        for seq, _line, _record in self.follow(0):
            last = seq
        return last

    def reset(self) -> None:
        """Atomically truncate the log (the post-snapshot compaction step).

        ``os.replace`` of a fresh empty file means a crash leaves either
        the full old log or an empty one — never a half-truncated file.
        """
        self._check("wal-reset")
        tmp = self.path.with_name(self.path.name + f".tmp{os.getpid()}")
        tmp.write_text("")
        os.replace(tmp, self.path)
        if self.fsync:
            _fsync_dir(self.path.parent)


class SnapshotStore:
    """Atomic snapshot of one session's full state, plus delta overlays.

    A full snapshot (``snapshot.json``) is the complete serialized
    state.  Between full snapshots a compaction may instead publish a
    **delta** sidecar (``snapshot.json.delta``): the scalar fields that
    changed plus the items *appended* to the bounded history lists since
    the full base — typically 10-50x smaller than a full snapshot whose
    bulk is the dedup window.  Both files are published atomically, and
    the delta names the full snapshot it extends (``base_seq``): a delta
    left behind by a crash whose base has since moved is stale and
    ignored, never half-applied.  Base seqs cannot collide: a delta at
    ``seq`` proves the session durably reached ``seq``, and applied
    counts never move backwards, so no later full snapshot can reuse the
    delta's smaller ``base_seq``.
    """

    def __init__(self, path: str | Path, *, fsync: bool = False, fs=None) -> None:
        self.path = Path(path)
        self.delta_path = self.path.with_name(self.path.name + ".delta")
        self.fsync = bool(fsync)
        self.fs = fs
        self.path.parent.mkdir(parents=True, exist_ok=True)

    def _publish(self, path: Path, body: str) -> None:
        if self.fs is not None:
            self.fs.check("snapshot-publish", path)
        payload = f"{zlib.crc32(body.encode()):08x} {body}"
        tmp = path.with_name(path.name + f".tmp{os.getpid()}")
        with open(tmp, "w") as handle:
            handle.write(payload)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        os.replace(tmp, path)
        # The rename itself lives in the directory: without a directory
        # fsync an OS crash can revert the publish even though the new
        # snapshot's bytes are safely on disk.
        if self.fsync:
            _fsync_dir(path.parent)

    def save(self, seq: int, state: dict) -> None:
        """Publish ``state`` as the full snapshot after ``seq`` events.

        Any delta sidecar is deleted afterwards: it extended the
        *previous* full snapshot.  A crash between the two steps leaves
        a stale delta whose ``base_seq`` no longer matches — ignored on
        load and cleaned up by the next full save.
        """
        body = json.dumps(
            {"seq": int(seq), "state": state}, sort_keys=True, allow_nan=False
        )
        self._publish(self.path, body)
        try:
            os.unlink(self.delta_path)
        except FileNotFoundError:
            pass

    def save_delta(
        self, seq: int, base_seq: int, changed: dict, appended: dict
    ) -> None:
        """Publish a delta: ``changed`` fields replace the base's,
        ``appended`` lists extend them (bounded histories re-trim on
        load).  Always cumulative against the *full* base, so rewriting
        the one sidecar file supersedes the previous delta."""
        body = json.dumps(
            {
                "seq": int(seq),
                "base_seq": int(base_seq),
                "set": changed,
                "append": appended,
            },
            sort_keys=True,
            allow_nan=False,
        )
        self._publish(self.delta_path, body)

    def _load_delta(self) -> dict | None:
        if not self.delta_path.exists():
            return None
        payload = _unframe(self.delta_path.read_text().strip())
        if (
            payload is None
            or "seq" not in payload
            or "base_seq" not in payload
            or "set" not in payload
            or "append" not in payload
        ):
            raise WalCorruptionError(
                f"{self.delta_path}: snapshot delta failed its CRC check"
            )
        return payload

    def load(self) -> tuple[int, dict] | None:
        """The latest snapshot as ``(seq, state)``, or None if absent.

        A valid delta whose ``base_seq`` matches the full snapshot is
        merged in (appended list items are concatenated; the session's
        bounded deques re-trim them on restore).  The CRCs guard against
        at-rest corruption; because publication is atomic, a bad frame
        here is never a torn write and always raises.
        """
        if not self.path.exists():
            return None
        payload = _unframe(self.path.read_text().strip())
        if payload is None or "seq" not in payload or "state" not in payload:
            raise WalCorruptionError(f"{self.path}: snapshot failed its CRC check")
        seq, state = int(payload["seq"]), payload["state"]
        delta = self._load_delta()
        if delta is not None and int(delta["base_seq"]) == seq:
            state = dict(state)
            state.update(delta["set"])
            for key, items in delta["append"].items():
                state[key] = list(state.get(key, [])) + list(items)
            seq = int(delta["seq"])
        return seq, state
