"""Durable per-session state: CRC-framed write-ahead log + snapshots.

The advisor service promises that a SIGKILL at *any* instant loses no
applied work: restarting from the same state directory restores every
session bit-identically.  Two files per session make that true:

``wal.jsonl``
    An append-only log of applied stop events.  Each line is framed as
    ``<crc32-hex8> <json>`` where the CRC covers the JSON bytes, so a
    torn tail (the process died mid-write) is *detected*, not parsed as
    garbage: replay stops at the first bad frame.  Every append is
    flushed (surviving a process kill); ``fsync=True`` additionally
    syncs to disk (surviving an OS crash).
``snapshot.json``
    A periodic compaction point: the full serialized session state
    after ``seq`` applied events, written to a temp file and atomically
    published with ``os.replace`` — readers see either the old snapshot
    or the new one, never a partial write.

Recovery = load the snapshot (if any), then replay WAL records with
``seq`` greater than the snapshot's.  The ``seq`` filter is what makes
compaction crash-safe: the snapshot is published *before* the WAL is
reset, so dying between the two steps merely leaves already-compacted
records in the log, and replay skips them.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path

from ..errors import ReproError

__all__ = ["WriteAheadLog", "SnapshotStore", "WalCorruptionError"]


class WalCorruptionError(ReproError, RuntimeError):
    """A WAL or snapshot frame failed its integrity check *before* the
    final record — real corruption, not a torn tail."""


def _frame(payload: dict) -> str:
    body = json.dumps(payload, sort_keys=True, allow_nan=False)
    return f"{zlib.crc32(body.encode()):08x} {body}"


def _unframe(line: str) -> dict | None:
    """Decode one WAL line; None means the frame is invalid."""
    if len(line) < 10 or line[8] != " ":
        return None
    crc_text, body = line[:8], line[9:]
    try:
        crc = int(crc_text, 16)
    except ValueError:
        return None
    if zlib.crc32(body.encode()) != crc:
        return None
    try:
        payload = json.loads(body)
    except json.JSONDecodeError:
        return None
    return payload if isinstance(payload, dict) else None


class WriteAheadLog:
    """Append-only CRC-framed JSONL log for one advisor session."""

    def __init__(self, path: str | Path, *, fsync: bool = False) -> None:
        self.path = Path(path)
        self.fsync = bool(fsync)
        #: True when the last :meth:`replay` dropped a torn final frame;
        #: recovery uses it to force a compaction so the torn bytes never
        #: survive into the next append.
        self.tail_torn = False
        self.path.parent.mkdir(parents=True, exist_ok=True)

    def append(self, record: dict) -> None:
        """Durably append one record (flush always; fsync on request).

        A previous crash can leave the file without a trailing newline.
        Appending blindly would merge the new frame into that tail, so
        the tail is healed first: a complete frame that lost only its
        newline gets one (the record is preserved); a partial frame is
        truncated away (it was never durable).
        """
        with open(self.path, "a+b") as handle:
            size = handle.seek(0, os.SEEK_END)
            if size:
                handle.seek(size - 1)
                if handle.read(1) != b"\n":
                    handle.seek(0)
                    data = handle.read()
                    cut = data.rfind(b"\n") + 1
                    tail = data[cut:].decode(errors="replace")
                    if _unframe(tail) is not None:
                        handle.write(b"\n")
                    else:
                        handle.truncate(cut)
            handle.write((_frame(record) + "\n").encode())
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())

    def replay(self) -> list[dict]:
        """All intact records, in order.

        The final frame may be torn by a kill mid-append and is then
        dropped (and :attr:`tail_torn` set, so recovery compacts the
        torn bytes away); a bad frame *followed by intact ones* means
        the file was corrupted at rest and raises
        :class:`WalCorruptionError`.
        """
        self.tail_torn = False
        if not self.path.exists():
            return []
        lines = self.path.read_text().splitlines()
        records: list[dict] = []
        for index, line in enumerate(lines):
            if not line:
                continue
            record = _unframe(line)
            if record is None:
                if index == len(lines) - 1:
                    self.tail_torn = True
                    break
                raise WalCorruptionError(
                    f"{self.path}: bad frame at line {index + 1} "
                    f"(not the final line — corruption, not a torn tail)"
                )
            records.append(record)
        return records

    def reset(self) -> None:
        """Atomically truncate the log (the post-snapshot compaction step).

        ``os.replace`` of a fresh empty file means a crash leaves either
        the full old log or an empty one — never a half-truncated file.
        """
        tmp = self.path.with_name(self.path.name + f".tmp{os.getpid()}")
        tmp.write_text("")
        os.replace(tmp, self.path)


class SnapshotStore:
    """Atomic single-file snapshot of one session's full state."""

    def __init__(self, path: str | Path, *, fsync: bool = False) -> None:
        self.path = Path(path)
        self.fsync = bool(fsync)
        self.path.parent.mkdir(parents=True, exist_ok=True)

    def save(self, seq: int, state: dict) -> None:
        """Publish ``state`` as the snapshot after ``seq`` applied events."""
        body = json.dumps(
            {"seq": int(seq), "state": state}, sort_keys=True, allow_nan=False
        )
        payload = f"{zlib.crc32(body.encode()):08x} {body}"
        tmp = self.path.with_name(self.path.name + f".tmp{os.getpid()}")
        with open(tmp, "w") as handle:
            handle.write(payload)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        os.replace(tmp, self.path)

    def load(self) -> tuple[int, dict] | None:
        """The latest snapshot as ``(seq, state)``, or None if absent.

        The CRC guards against at-rest corruption; because publication
        is atomic, a bad frame here is never a torn write and always
        raises.
        """
        if not self.path.exists():
            return None
        payload = _unframe(self.path.read_text().strip())
        if payload is None or "seq" not in payload or "state" not in payload:
            raise WalCorruptionError(f"{self.path}: snapshot failed its CRC check")
        return int(payload["seq"]), payload["state"]
