"""The multi-vehicle advisor service: routing, backpressure, health.

:class:`AdvisorService` owns one :class:`~repro.service.session.AdvisorSession`
per vehicle, each with its own sub-directory of the service state
directory (WAL + snapshot), a shared validation report/quarantine
sidecar, and a bounded ingestion queue:

* ``offer(record)`` enqueues one raw event; when the queue is full the
  event is **shed and counted** (explicit backpressure — the caller
  sees False and the health snapshot reports the count) rather than
  growing memory without bound;
* ``drain()`` parses, validates and routes everything queued;
* ``process(record)`` is offer+drain for one event (the file/stdin
  serving loop).

Raw records are value-validated by
:func:`repro.validation.schemas.stop_event_findings` before they reach
a session; malformed records are policy-handled (strict raises, repair
drops, quarantine diverts to ``events.quarantine.csv`` in the state
directory) and fed to the owning session's failure-streak health signal
when the vehicle is identifiable.
"""

from __future__ import annotations

import hashlib
import json
import re
from collections import deque
from pathlib import Path

from ..validation import CsvQuarantineWriter, PolicyEnforcer, ValidationReport
from ..validation.schemas import stop_event_findings
from .session import AdvisorSession, SessionConfig

__all__ = ["AdvisorService", "parse_event_line"]

_UNSAFE_CHARS = re.compile(r"[^A-Za-z0-9._-]")


def _vehicle_dirname(vehicle_id: str) -> str:
    """A filesystem-safe, collision-free directory name per vehicle.

    The name always ends in a hash of the exact id, so distinct ids can
    never share a directory — not even ids differing only in case on a
    case-insensitive filesystem (macOS/Windows), and not an id that
    happens to look like another id's hashed name.  A sanitized prefix
    of the id is kept for operator readability.
    """
    digest = hashlib.sha256(vehicle_id.encode()).hexdigest()[:16]
    prefix = _UNSAFE_CHARS.sub("_", vehicle_id)[:48].lstrip(".")
    return f"{prefix}-{digest}" if prefix else f"veh-{digest}"


def parse_event_line(line: str):
    """Parse one JSONL event line; returns ``(record, error)``.

    ``record`` is the decoded JSON value (*not* yet schema-validated);
    ``error`` is a message when the line is not JSON at all.
    """
    try:
        return json.loads(line), None
    except json.JSONDecodeError as exc:
        return None, f"not valid JSON: {exc}"


class AdvisorService:
    """Long-running advisor for a fleet (see module docstring).

    Parameters
    ----------
    state_dir:
        Root of the durable state; one sub-directory per vehicle.
    config:
        Shared :class:`SessionConfig` for every session.
    policy:
        Validation policy for ingestion (default ``repair`` — a
        deployed service must not die on one bad record; pass
        ``strict`` to make it do exactly that in tests).
    max_queue:
        Bound on the in-memory ingestion queue; beyond it events are
        shed and counted.
    fsync:
        Forwarded to every session's WAL/snapshot writes.
    recover:
        Restore per-vehicle durable state found under ``state_dir``.
    """

    def __init__(
        self,
        state_dir: str | Path,
        config: SessionConfig,
        *,
        policy: str = "repair",
        report: ValidationReport | None = None,
        max_queue: int = 4096,
        fsync: bool = False,
        recover: bool = True,
        source: str = "events",
    ) -> None:
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.config = config
        self.policy = policy
        self.fsync = bool(fsync)
        self.recover = bool(recover)
        if max_queue < 1:
            max_queue = 1
        self.max_queue = int(max_queue)
        self.report = report if report is not None else ValidationReport(str(policy))
        self._enforcer = PolicyEnforcer(policy, self.report, source)
        self._enforcer.attach_quarantine_writer(
            CsvQuarantineWriter(self.state_dir / source, self.report)
        )
        self.sessions: dict[str, AdvisorSession] = {}
        self._queue: deque = deque()
        self.shed = 0
        self.received = 0
        self.malformed = 0

    # -- sessions ---------------------------------------------------------

    def session(self, vehicle_id: str) -> AdvisorSession:
        """The vehicle's session, creating (and recovering) it on first use."""
        vehicle_id = str(vehicle_id)
        existing = self.sessions.get(vehicle_id)
        if existing is not None:
            return existing
        session = AdvisorSession(
            vehicle_id,
            self.config,
            self.state_dir / "vehicles" / _vehicle_dirname(vehicle_id),
            enforcer=self._enforcer,
            fsync=self.fsync,
            recover=self.recover,
        )
        self.sessions[vehicle_id] = session
        return session

    # -- ingestion --------------------------------------------------------

    def offer(self, record) -> bool:
        """Enqueue one raw event; False when it was shed (queue full)."""
        self.received += 1
        if len(self._queue) >= self.max_queue:
            self.shed += 1
            return False
        self._queue.append(record)
        return True

    def drain(self) -> list[dict]:
        """Process everything queued; returns the decisions made."""
        decisions = []
        while self._queue:
            decision = self._handle(self._queue.popleft())
            if decision is not None:
                decisions.append(decision)
        return decisions

    def process(self, record) -> dict | None:
        """Offer + drain for one event (the serving loop's hot path)."""
        if not self.offer(record):
            return None
        decision = None
        for result in self.drain():
            decision = result
        return decision

    def ingest_line(self, line: str) -> dict | None:
        """Parse one JSONL event line and process it (the ``serve`` loop).

        Undecodable lines are policy-handled as ``malformed-event`` —
        the raw line goes to the quarantine sidecar under the
        ``quarantine`` policy — and never reach a session.
        """
        record, error = parse_event_line(line)
        if error is not None:
            self.received += 1
            self.malformed += 1
            self._enforcer.flag("malformed-event", error, record=[line])
            return None
        return self.process(record)

    def _handle(self, record) -> dict | None:
        findings, event = stop_event_findings(record)
        if event is None:
            self.malformed += 1
            vehicle = self._identifiable_vehicle(record)
            for check, message in findings:
                self._enforcer.flag(
                    check,
                    message if vehicle is None else f"vehicle {vehicle}: {message}",
                    record=[json.dumps(record, default=repr)],
                )
            # A malformed record still carries a health signal for the
            # vehicle it claims to be from — but only for vehicles we
            # already serve: garbage must not create sessions.
            if vehicle is not None and vehicle in self.sessions:
                self.sessions[vehicle].note_invalid_event(findings[0][0])
            return None
        event_id, vehicle, timestamp, stop_length = event
        return self.session(vehicle).submit(event_id, timestamp, stop_length)

    @staticmethod
    def _identifiable_vehicle(record) -> str | None:
        if isinstance(record, dict):
            vehicle = record.get("vehicle")
            if isinstance(vehicle, str) and vehicle.strip():
                return vehicle
        return None

    # -- lifecycle / observability ---------------------------------------

    @property
    def fleet_cost(self) -> float:
        """Total realized cost (idle-seconds units) across all sessions."""
        return sum(session.total_cost for session in self.sessions.values())

    def health_snapshot(self) -> dict:
        """Operator-facing service view: fleet totals + per-vehicle state."""
        vehicles = {
            vehicle_id: session.health_snapshot()
            for vehicle_id, session in sorted(self.sessions.items())
        }
        return {
            "fleet_cost": self.fleet_cost,
            "vehicles": vehicles,
            "ingest": {
                "received": self.received,
                "queued": len(self._queue),
                "max_queue": self.max_queue,
                "shed": self.shed,
                "malformed": self.malformed,
                "duplicates": sum(s.duplicates for s in self.sessions.values()),
                "rejected": sum(s.rejected for s in self.sessions.values()),
            },
            "states": {
                state: sum(
                    1 for s in self.sessions.values() if s.health.value == state
                )
                for state in ("healthy", "degraded", "safe")
            },
        }

    def close(self) -> None:
        """Flush durable state: final compaction for every session."""
        self.drain()
        for session in self.sessions.values():
            session.compact()
        self._enforcer.close()
