"""The multi-vehicle advisor service: routing, backpressure, health.

:class:`AdvisorService` owns one :class:`~repro.service.session.AdvisorSession`
per vehicle, each with its own sub-directory of the service state
directory (WAL + snapshot), a shared validation report/quarantine
sidecar, and a bounded ingestion queue:

* ``offer(record)`` enqueues one raw event; when the queue is full the
  event is **shed and counted** (explicit backpressure — the caller
  sees False and the health snapshot reports the count) rather than
  growing memory without bound;
* ``drain()`` parses, validates and routes everything queued;
* ``process(record)`` is offer+drain for one event (the file/stdin
  serving loop);
* ``process_batch(records)`` / ``ingest_lines(lines)`` are the columnar
  fast path (``serve --batch N``): a chunk is planned into per-vehicle
  runs (:mod:`repro.service.batch`) and each run applied through one
  vectorized group-commit — bit-identical to the scalar loop (the
  equivalence harness in ``tests/test_service_batch.py`` pins it).

Raw records are value-validated by
:func:`repro.validation.schemas.stop_event_findings` before they reach
a session; malformed records are policy-handled (strict raises, repair
drops, quarantine diverts to ``events.quarantine.csv`` in the state
directory) and fed to the owning session's failure-streak health signal
when the vehicle is identifiable.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import time
from collections import deque
from pathlib import Path

from ..engine.ledger import active_ledger
from ..validation import CsvQuarantineWriter, PolicyEnforcer, ValidationReport
from ..validation.schemas import stop_event_findings
from .batch import MalformedEvent, plan_chunk
from .session import AdvisorSession, SessionConfig

__all__ = [
    "REGISTRY_NAME",
    "AdvisorService",
    "RegisteredAdvisorService",
    "gate_on_replication",
    "parse_event_line",
]

#: JSONL registry of every vehicle id a service root has ever held —
#: hashed session directory names cannot be inverted, so warm recovery
#: (shard respawn, standby promotion) replays this file to rebuild each
#: session under its correct RNG seed.
REGISTRY_NAME = "vehicles.idx"

#: Backpressure ledger warnings fire on the first shed event and at
#: every multiple of this — loud enough to see overload in the run
#: ledger, quiet enough not to amplify it.
_SHED_WARN_EVERY = 1000

_UNSAFE_CHARS = re.compile(r"[^A-Za-z0-9._-]")


def _vehicle_dirname(vehicle_id: str) -> str:
    """A filesystem-safe, collision-free directory name per vehicle.

    The name always ends in a hash of the exact id, so distinct ids can
    never share a directory — not even ids differing only in case on a
    case-insensitive filesystem (macOS/Windows), and not an id that
    happens to look like another id's hashed name.  A sanitized prefix
    of the id is kept for operator readability.
    """
    digest = hashlib.sha256(vehicle_id.encode()).hexdigest()[:16]
    prefix = _UNSAFE_CHARS.sub("_", vehicle_id)[:48].lstrip(".")
    return f"{prefix}-{digest}" if prefix else f"veh-{digest}"


def gate_on_replication(replication, reasons: list) -> dict:
    """Fold replication lag into a readiness verdict.

    Shared by the single-process and sharded tiers so ``/ready`` speaks
    one schema: the verdict carries the monitor's full lag snapshot
    under ``"replication"`` (machine-readable), and flips not-ready when
    lag exceeds the monitor's bound or the standby's watermark file is
    unreadable (its state is then unknown — the conservative verdict).
    """
    verdict = {"ready": True, "reasons": reasons}
    if replication is not None:
        lag = replication.snapshot()
        verdict["replication"] = lag
        if not lag["within_bound"]:
            if lag["watermarks_corrupt"]:
                reasons.append(
                    "replication watermarks corrupt: standby state unknown"
                )
            else:
                reasons.append(
                    f"replication lag {lag['max_lag_events']} events exceeds "
                    f"bound {lag['max_lag_bound']} "
                    f"({lag['vehicles_lagging']} session(s) lagging)"
                )
    verdict["ready"] = not reasons
    return verdict


def parse_event_line(line: str):
    """Parse one JSONL event line; returns ``(record, error)``.

    ``record`` is the decoded JSON value (*not* yet schema-validated);
    ``error`` is a message when the line is not JSON at all.
    """
    try:
        return json.loads(line), None
    except json.JSONDecodeError as exc:
        return None, f"not valid JSON: {exc}"


class AdvisorService:
    """Long-running advisor for a fleet (see module docstring).

    Parameters
    ----------
    state_dir:
        Root of the durable state; one sub-directory per vehicle.
    config:
        Shared :class:`SessionConfig` for every session.
    policy:
        Validation policy for ingestion (default ``repair`` — a
        deployed service must not die on one bad record; pass
        ``strict`` to make it do exactly that in tests).
    max_queue:
        Bound on the in-memory ingestion queue; beyond it events are
        shed and counted.
    fsync:
        Forwarded to every session's WAL/snapshot writes.
    recover:
        Restore per-vehicle durable state found under ``state_dir``.
    fs:
        Optional fault-injection shim shared by every session's WAL and
        snapshot store (:class:`repro.engine.faults.FsFaultInjector`);
        the ordinal schedule then covers the whole service's disk
        traffic, which is how the disk-fault soak is driven.
    replication:
        Optional :class:`repro.service.replica.ReplicationMonitor`.
        When set, :meth:`health_snapshot` carries a ``replication``
        section (per-session lag against the standby's watermarks) and
        :meth:`readiness` refuses traffic with a machine-readable
        reason while any session lags past the monitor's bound.
    """

    def __init__(
        self,
        state_dir: str | Path,
        config: SessionConfig,
        *,
        policy: str = "repair",
        report: ValidationReport | None = None,
        max_queue: int = 4096,
        fsync: bool = False,
        recover: bool = True,
        source: str = "events",
        fs=None,
        replication=None,
    ) -> None:
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.config = config
        self.policy = policy
        self.fsync = bool(fsync)
        self.fs = fs
        self.replication = replication
        self.recover = bool(recover)
        if max_queue < 1:
            max_queue = 1
        self.max_queue = int(max_queue)
        self.report = report if report is not None else ValidationReport(str(policy))
        self._enforcer = PolicyEnforcer(policy, self.report, source)
        self._enforcer.attach_quarantine_writer(
            CsvQuarantineWriter(self.state_dir / source, self.report)
        )
        self.sessions: dict[str, AdvisorSession] = {}
        self._queue: deque = deque()
        self.shed = 0
        self.received = 0
        self.malformed = 0
        # Batched-ingest throughput counters (health_snapshot -> ingest.batch).
        self.batch_chunks = 0
        self.batch_events = 0
        self.batch_seconds = 0.0

    # -- sessions ---------------------------------------------------------

    def session(self, vehicle_id: str) -> AdvisorSession:
        """The vehicle's session, creating (and recovering) it on first use."""
        vehicle_id = str(vehicle_id)
        existing = self.sessions.get(vehicle_id)
        if existing is not None:
            return existing
        session = self.config.build_session(
            vehicle_id,
            self.state_dir / "vehicles" / _vehicle_dirname(vehicle_id),
            enforcer=self._enforcer,
            fsync=self.fsync,
            recover=self.recover,
            fs=self.fs,
        )
        self.sessions[vehicle_id] = session
        return session

    # -- ingestion --------------------------------------------------------

    def offer(self, record) -> bool:
        """Enqueue one raw event; False when it was shed (queue full).

        Shedding is counted (health snapshot) *and* surfaced as a
        rate-limited ``advisor-backpressure`` run-ledger warning — on
        the first shed event and every `_SHED_WARN_EVERY`th thereafter —
        so fleet operators see overload in the ledger, not just in a
        counter they would have to poll.
        """
        self.received += 1
        if len(self._queue) >= self.max_queue:
            self.shed += 1
            if self.shed == 1 or self.shed % _SHED_WARN_EVERY == 0:
                ledger = active_ledger()
                if ledger is not None:
                    ledger.emit(
                        "advisor-backpressure",
                        tier="service",
                        shed=self.shed,
                        received=self.received,
                        max_queue=self.max_queue,
                    )
            return False
        self._queue.append(record)
        return True

    def drain(self) -> list[dict]:
        """Process everything queued; returns the decisions made."""
        decisions = []
        while self._queue:
            decision = self._handle(self._queue.popleft())
            if decision is not None:
                decisions.append(decision)
        return decisions

    def process(self, record) -> dict | None:
        """Offer + drain for one event (the serving loop's hot path)."""
        if not self.offer(record):
            return None
        decision = None
        for result in self.drain():
            decision = result
        return decision

    def ingest_line(self, line: str) -> dict | None:
        """Parse one JSONL event line and process it (the ``serve`` loop).

        Undecodable lines are policy-handled as ``malformed-event`` —
        the raw line goes to the quarantine sidecar under the
        ``quarantine`` policy — and never reach a session.
        """
        record, error = parse_event_line(line)
        if error is not None:
            self.received += 1
            self.malformed += 1
            self._enforcer.flag("malformed-event", error, record=[line])
            return None
        return self.process(record)

    def process_batch(self, records) -> list:
        """The columnar fast path: apply a chunk of parsed records.

        The chunk is planned into per-vehicle runs
        (:func:`repro.service.batch.plan_chunk`); each run is applied
        with one vectorized
        :meth:`~repro.service.session.AdvisorSession.submit_batch` —
        one WAL group-commit, one fsync — and malformed markers are
        policy-handled at their in-chunk position so per-vehicle health
        signals land exactly where the scalar loop would put them.

        Returns decisions aligned with ``records`` (None where the
        record was malformed or dropped).  Any previously queued events
        are drained first so ordering across ``offer``/batch mixes is
        preserved.
        """
        self.drain()
        records = list(records)
        self.received += len(records)
        results: list = [None] * len(records)
        if not records:
            return results
        start = time.perf_counter()
        for item in plan_chunk(records).items:
            if isinstance(item, MalformedEvent):
                self._flag_malformed(item.record, item.findings)
                continue
            decisions = self.session(item.vehicle).submit_batch(
                item.event_ids, item.timestamps, item.stop_lengths
            )
            for position, decision in zip(item.indices, decisions):
                results[int(position)] = decision
        self.batch_chunks += 1
        self.batch_events += len(records)
        self.batch_seconds += time.perf_counter() - start
        return results

    def ingest_lines(self, lines) -> list:
        """Parse a chunk of JSONL lines and apply it as one batch.

        The whole chunk is decoded with a single ``json.loads`` (each
        line is one JSON value, so joining them into an array is one
        C-level parse instead of one call per line).  If *any* line is
        undecodable the chunk falls back to per-line parsing, where bad
        lines are policy-handled exactly as :meth:`ingest_line` handles
        them and the decoded remainder still goes through
        :meth:`process_batch`.  Returns decisions aligned with
        ``lines``.
        """
        lines = list(lines)
        try:
            records = json.loads("[" + ",".join(lines) + "]")
        except json.JSONDecodeError:
            records = None
        # Length mismatch = some line held several comma-separated JSON
        # values (invalid alone, but legal inside the joined array) —
        # only the per-line path flags it the way ingest_line would.
        if records is not None and len(records) == len(lines):
            return self.process_batch(records)
        results: list = [None] * len(lines)
        decodable = []
        positions = []
        for position, line in enumerate(lines):
            record, error = parse_event_line(line)
            if error is not None:
                self.received += 1
                self.malformed += 1
                self._enforcer.flag("malformed-event", error, record=[line])
                continue
            decodable.append(record)
            positions.append(position)
        for position, decision in zip(positions, self.process_batch(decodable)):
            results[position] = decision
        return results

    def _handle(self, record) -> dict | None:
        findings, event = stop_event_findings(record)
        if event is None:
            self._flag_malformed(record, findings)
            return None
        event_id, vehicle, timestamp, stop_length = event
        return self.session(vehicle).submit(event_id, timestamp, stop_length)

    def _flag_malformed(self, record, findings) -> None:
        """Policy-handle one value-invalid record (scalar and batch paths)."""
        self.malformed += 1
        vehicle = self._identifiable_vehicle(record)
        for check, message in findings:
            self._enforcer.flag(
                check,
                message if vehicle is None else f"vehicle {vehicle}: {message}",
                record=[json.dumps(record, default=repr)],
            )
        # A malformed record still carries a health signal for the
        # vehicle it claims to be from — but only for vehicles we
        # already serve: garbage must not create sessions.
        if vehicle is not None and vehicle in self.sessions:
            self.sessions[vehicle].note_invalid_event(findings[0][0])

    @staticmethod
    def _identifiable_vehicle(record) -> str | None:
        if isinstance(record, dict):
            vehicle = record.get("vehicle")
            if isinstance(vehicle, str) and vehicle.strip():
                return vehicle
        return None

    # -- lifecycle / observability ---------------------------------------

    @property
    def fleet_cost(self) -> float:
        """Total realized cost (idle-seconds units) across all sessions.

        Summed in sorted-vehicle order: float addition is not
        associative, and a canonical order makes the total
        bit-reproducible no matter how sessions were created — the
        sharded tier's aggregated snapshot sums the same sequence.
        """
        return sum(
            self.sessions[vehicle].total_cost for vehicle in sorted(self.sessions)
        )

    def health_snapshot(self, include_vehicles: bool = True) -> dict:
        """Operator-facing service view: fleet totals + per-vehicle state.

        ``include_vehicles=False`` keeps the same schema but leaves the
        ``vehicles`` map empty — the sharded tier aggregates snapshots
        across workers, where a 100k-vehicle per-session map would make
        every ``/health`` poll cost megabytes of pickled payload.
        """
        vehicles = (
            {
                vehicle_id: session.health_snapshot()
                for vehicle_id, session in sorted(self.sessions.items())
            }
            if include_vehicles
            else {}
        )
        snapshot = {
            "fleet_cost": self.fleet_cost,
            "vehicles": vehicles,
            "ingest": {
                "received": self.received,
                "queued": len(self._queue),
                "max_queue": self.max_queue,
                "shed": self.shed,
                "malformed": self.malformed,
                "duplicates": sum(s.duplicates for s in self.sessions.values()),
                "rejected": sum(s.rejected for s in self.sessions.values()),
                "batch": {
                    "chunks": self.batch_chunks,
                    "events": self.batch_events,
                    "wall_s": self.batch_seconds,
                    "events_per_s": (
                        self.batch_events / self.batch_seconds
                        if self.batch_seconds > 0.0
                        else 0.0
                    ),
                },
            },
            "states": {
                state: sum(
                    1 for s in self.sessions.values() if s.health.value == state
                )
                for state in ("healthy", "degraded", "safe")
            },
            "durability": self.durability_summary(),
        }
        if self.replication is not None:
            snapshot["replication"] = self.replication.snapshot()
        return snapshot

    def durability_summary(self) -> dict:
        """Aggregated DURABILITY_SUSPENDED overlay across sessions."""
        sessions = self.sessions.values()
        return {
            "suspended_sessions": sum(
                1 for s in sessions if s.durability_suspended
            ),
            "buffered_events": sum(len(s._suspend_buffer) for s in sessions),
            "dropped_events": sum(s.suspend_dropped for s in sessions),
            "suspensions": sum(s.suspensions for s in sessions),
            "resumes": sum(s.resumes for s in sessions),
        }

    def readiness(self) -> dict:
        """What a load balancer should gate on: ``{"ready", "reasons"}``.

        Distinct from :meth:`health_snapshot` — health reports, readiness
        *decides*.  A service with any durability-suspended session is
        serving SAFE decisions (still correct under the distribution-free
        guarantee) but cannot persist state, so new traffic should go
        elsewhere while it heals.
        """
        suspended = sorted(
            vehicle
            for vehicle, session in self.sessions.items()
            if session.durability_suspended
        )
        reasons = []
        if suspended:
            reasons.append(
                f"durability suspended for {len(suspended)} session(s): "
                f"{suspended[:5]}"
            )
        return gate_on_replication(self.replication, reasons)

    def close(self) -> None:
        """Flush durable state: final compaction for every session.

        A durability-suspended session gets one forced probe first — the
        last chance to land its buffered tail before the process exits
        (a tail still unlandable stays lost, by design: it was never
        durable and the snapshot says so).
        """
        self.drain()
        for session in self.sessions.values():
            if session.durability_suspended:
                session.probe_durability()
            session.compact()
        self._enforcer.close()


class RegisteredAdvisorService(AdvisorService):
    """An ``AdvisorService`` that can warm-recover its whole fleet.

    The stock service recovers sessions lazily on first use, which is
    fine when the full stream is redelivered after a restart — but a
    respawned shard only gets its unacknowledged chunks back, and a
    promoted standby gets nothing at all, so both must restore every
    session the root ever held before answering health or digest
    queries.  Vehicle directory names are hashed and cannot be inverted,
    so the service keeps a registry (JSONL of vehicle ids at
    :data:`REGISTRY_NAME`, appended and flushed *before* the session's
    durable state is created — a crash can orphan a registry line, never
    a session) and replays it at startup.  The registry file itself is
    shipped by the replication layer, which is what lets ``promote``
    rebuild each session under its correct RNG seed.
    """

    def __init__(self, state_dir, config, **kwargs) -> None:
        super().__init__(state_dir, config, **kwargs)
        self._registry_path = self.state_dir / REGISTRY_NAME
        known: list[str] = []
        if self._registry_path.exists():
            for line in self._registry_path.read_text().splitlines():
                try:
                    vehicle_id = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail: the id re-registers on redelivery
                if isinstance(vehicle_id, str) and vehicle_id not in known:
                    known.append(vehicle_id)
        self._registered: set[str] = set()
        self._registry = open(self._registry_path, "a")
        if self.recover:
            for vehicle_id in known:
                self._registered.add(vehicle_id)
                self.session(vehicle_id)
        else:
            self._registered.update(known)

    def session(self, vehicle_id):
        vehicle_id = str(vehicle_id)
        if vehicle_id not in self._registered:
            self._registry.write(json.dumps(vehicle_id) + "\n")
            self._registry.flush()
            if self.fsync:
                os.fsync(self._registry.fileno())
            self._registered.add(vehicle_id)
        return super().session(vehicle_id)

    def close(self) -> None:
        super().close()
        self._registry.close()
