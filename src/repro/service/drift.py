"""Drift detection over the stop stream: Page-Hinkley / CUSUM.

The adaptive selector is only as good as its ``(mu_B_minus, q_B_plus)``
estimate, and that estimate silently rots when the traffic regime
shifts (new commute, construction season, a different driver).  Two
detectors watch for that rot, one per statistic the theory cares about:

* a two-sided **Page-Hinkley** test over stop lengths — the classic
  CUSUM variant for mean shifts in a stream: it accumulates
  ``m_t = Σ (z_i - δ)`` and alarms when ``m_t`` departs from its
  running extremum by more than ``λ``.  ``δ`` (the drift allowance)
  absorbs slow wander; ``λ`` (the threshold) sets the detection delay /
  false-alarm trade-off.  Deviations ``z_i`` are **self-scaled** by a
  running mean absolute deviation and winsorized at ``±clip``, so
  ``δ`` and ``λ`` are in robust-σ units and one default works for
  30-second city stops and 10-minute depot idles alike (stop lengths
  are heavy-tailed; absolute-unit thresholds would false-alarm on any
  stationary stream whose spread they underestimate, and unclipped
  normalized deviations would let a single tail stop walk the CUSUM
  most of the way to an alarm).
* the same statistic over the **short/long indicator** ``1{y >= B}`` —
  a Bernoulli CUSUM on exactly the split that drives the constrained
  solver's vertex choice, so a shift in ``q_B_plus`` is seen even when
  the mean stop length barely moves.

Both are O(1) state and fully serializable, so detectors survive crash
recovery bit-identically along with the rest of the session.
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidParameterError

__all__ = ["PageHinkley", "DriftDetector"]


class PageHinkley:
    """Two-sided Page-Hinkley mean-shift test, O(1) state.

    Parameters
    ----------
    delta:
        Allowed drift per observation in robust-σ units (running mean
        absolute deviations); slow changes within ``±delta`` never
        alarm.
    threshold:
        Alarm level ``λ`` (same units) for the departure of the
        cumulative statistic from its running extremum.
    min_count:
        Calibration length: the first ``min_count`` observations only
        feed the running mean and scale — the cumulative statistic
        starts after them.  While the sample is tiny the scale estimate
        is noisily small, and a single spuriously huge normalized
        deviation would be locked into the CUSUM forever.
    clip:
        Winsorization bound for normalized deviations (robust-σ units):
        heavy-tailed stop streams routinely produce single 10-σ-looking
        stops, and each would otherwise jump the CUSUM a third of the
        way to the threshold on its own.
    """

    def __init__(
        self, delta: float, threshold: float, min_count: int = 20, clip: float = 4.0
    ) -> None:
        if delta < 0.0:
            raise InvalidParameterError(f"delta must be >= 0, got {delta!r}")
        if threshold <= 0.0:
            raise InvalidParameterError(f"threshold must be > 0, got {threshold!r}")
        if min_count < 1:
            raise InvalidParameterError(f"min_count must be >= 1, got {min_count}")
        if clip <= 0.0:
            raise InvalidParameterError(f"clip must be > 0, got {clip!r}")
        self.delta = float(delta)
        self.threshold = float(threshold)
        self.min_count = int(min_count)
        self.clip = float(clip)
        self.reset()

    def reset(self) -> None:
        """Forget all history (called on every health-state transition)."""
        self._count = 0
        self._mean = 0.0
        self._scale = 0.0
        # Separate accumulators per direction: the increase test subtracts
        # delta (so a stationary stream drifts it *down*, tracked by its
        # min), the decrease test adds delta (drifts *up*, tracked by its
        # max).  Sharing one sum would let the delta allowance itself
        # walk the statistic away from the opposite extremum and
        # false-alarm on perfectly stationary data.
        self._cum_inc = 0.0
        self._min_inc = 0.0
        self._cum_dec = 0.0
        self._max_dec = 0.0

    def update(self, value: float) -> bool:
        """Feed one observation; True when a mean shift is detected."""
        x = float(value)
        self._count += 1
        if self._count == 1:
            # No deviation information yet; the first value just seeds
            # the mean (the scale stays 0 until a second value arrives).
            self._mean = x
            return False
        # Innovation against the *previous* mean, winsorized at
        # ``clip`` scales before it feeds anything: one parked-overnight
        # stop must neither walk the CUSUM toward an alarm nor poison
        # the mean/scale estimates so badly that ordinary stops look
        # like a downward shift afterwards.
        deviation = x - self._mean
        if self._scale > 0.0:
            limit = self.clip * self._scale
            deviation = max(-limit, min(limit, deviation))
            normalized = deviation / self._scale
        else:
            normalized = 0.0
        self._mean += deviation / self._count
        self._scale += (abs(deviation) - self._scale) / self._count
        if self._count <= self.min_count:
            return False
        self._cum_inc += normalized - self.delta
        self._min_inc = min(self._min_inc, self._cum_inc)
        self._cum_dec += normalized + self.delta
        self._max_dec = max(self._max_dec, self._cum_dec)
        return (
            self._cum_inc - self._min_inc > self.threshold
            or self._max_dec - self._cum_dec > self.threshold
        )

    def update_many(self, values) -> np.ndarray:
        """Feed a batch of observations; per-observation alarm verdicts.

        The recurrence is inherently sequential (each innovation is
        measured against the mean *so far*), so this is the scalar loop
        with the instance attributes hoisted into locals — bit-identical
        to ``n`` scalar :meth:`update` calls, including the ``min_count``
        calibration window, which keeps counting *observations* no
        matter how the stream is split into batches.
        """
        xs = np.asarray(values, dtype=float)
        alarms = np.zeros(xs.shape[0], dtype=bool)
        count = self._count
        mean = self._mean
        scale = self._scale
        cum_inc = self._cum_inc
        min_inc = self._min_inc
        cum_dec = self._cum_dec
        max_dec = self._max_dec
        delta = self.delta
        threshold = self.threshold
        min_count = self.min_count
        clip = self.clip
        for index in range(xs.shape[0]):
            x = float(xs[index])
            count += 1
            if count == 1:
                mean = x
                continue
            deviation = x - mean
            if scale > 0.0:
                limit = clip * scale
                deviation = max(-limit, min(limit, deviation))
                normalized = deviation / scale
            else:
                normalized = 0.0
            mean += deviation / count
            scale += (abs(deviation) - scale) / count
            if count <= min_count:
                continue
            cum_inc += normalized - delta
            min_inc = min(min_inc, cum_inc)
            cum_dec += normalized + delta
            max_dec = max(max_dec, cum_dec)
            alarms[index] = (
                cum_inc - min_inc > threshold or max_dec - cum_dec > threshold
            )
        self._count = count
        self._mean = mean
        self._scale = scale
        self._cum_inc = cum_inc
        self._min_inc = min_inc
        self._cum_dec = cum_dec
        self._max_dec = max_dec
        return alarms

    def to_state(self) -> dict:
        return {
            "delta": self.delta,
            "threshold": self.threshold,
            "min_count": self.min_count,
            "clip": self.clip,
            "count": self._count,
            "mean": self._mean,
            "scale": self._scale,
            "cum_inc": self._cum_inc,
            "min_inc": self._min_inc,
            "cum_dec": self._cum_dec,
            "max_dec": self._max_dec,
        }

    @classmethod
    def from_state(cls, state: dict) -> "PageHinkley":
        detector = cls(
            delta=float(state["delta"]),
            threshold=float(state["threshold"]),
            min_count=int(state["min_count"]),
            clip=float(state["clip"]),
        )
        detector._count = int(state["count"])
        detector._mean = float(state["mean"])
        detector._scale = float(state["scale"])
        detector._cum_inc = float(state["cum_inc"])
        detector._min_inc = float(state["min_inc"])
        detector._cum_dec = float(state["cum_dec"])
        detector._max_dec = float(state["max_dec"])
        return detector


class DriftDetector:
    """The pair of tests the advisor session runs per observed stop.

    ``update(stop_length, is_long)`` returns the alarm verdict: True
    when either the stop-length mean or the short/long split rate has
    shifted beyond its allowance.
    """

    def __init__(
        self,
        *,
        length_delta: float,
        length_threshold: float,
        split_delta: float,
        split_threshold: float,
        min_count: int = 20,
    ) -> None:
        self.lengths = PageHinkley(length_delta, length_threshold, min_count)
        self.split = PageHinkley(split_delta, split_threshold, min_count)

    def update(self, stop_length: float, is_long: bool) -> bool:
        length_alarm = self.lengths.update(stop_length)
        split_alarm = self.split.update(1.0 if is_long else 0.0)
        return length_alarm or split_alarm

    def update_many(self, stop_lengths, is_long) -> np.ndarray:
        """Batched :meth:`update`: per-observation alarm verdicts.

        Both detectors consume the whole batch (alarms do not
        short-circuit the feed — scalar callers likewise keep feeding
        after an alarm until the session machinery resets us), and the
        calibration window counts observations exactly as the scalar
        path does, so verdicts are split-invariant.
        """
        lengths = np.asarray(stop_lengths, dtype=float)
        indicators = np.where(np.asarray(is_long, dtype=bool), 1.0, 0.0)
        length_alarms = self.lengths.update_many(lengths)
        split_alarms = self.split.update_many(indicators)
        return length_alarms | split_alarms

    def reset(self) -> None:
        self.lengths.reset()
        self.split.reset()

    def to_state(self) -> dict:
        return {"lengths": self.lengths.to_state(), "split": self.split.to_state()}

    @classmethod
    def from_state(cls, state: dict) -> "DriftDetector":
        detector = cls.__new__(cls)
        detector.lengths = PageHinkley.from_state(state["lengths"])
        detector.split = PageHinkley.from_state(state["split"])
        return detector
